//! LEB128 variable-length unsigned integers, used by container and codec headers.

use crate::{CodecError, Result};

/// Append a u64 as LEB128 to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`write_varint`] will emit for `value`.
pub fn varint_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

/// Read a LEB128 u64 from `buf` starting at `*pos`, advancing `*pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::Corrupt("varint overflows u64"));
        }
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_magnitudes() {
        let values = [
            0u64,
            1,
            127,
            128,
            255,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len(), "value {v}");
        }
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 42);
        assert_eq!(buf, vec![42]);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn overlong_input_rejected() {
        // 11 continuation bytes would shift past 64 bits.
        let buf = vec![0x80u8; 11];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&buf, &mut pos),
            Err(CodecError::Corrupt(_))
        ));
    }
}
