//! Canonical Huffman coding over `u32` symbols.
//!
//! The SZ3 baseline (paper Sec. 6.1.3) entropy-codes its linear-scale quantization
//! codes with Huffman before the final lossless pass; the LZR backend reuses the same
//! coder for its byte-oriented token stream. The implementation builds a classical
//! frequency-sorted tree, converts it to canonical form (codes assigned by
//! non-decreasing length, then symbol order) and serializes only the `(symbol, length)`
//! table, so the decoder can rebuild the exact same codebook.

use crate::bitstream::{BitReader, BitWriter};
use crate::varint::{read_varint, write_varint};
use crate::{CodecError, Result};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A single symbol's canonical code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Code {
    bits: u64,
    len: u8,
}

/// Build canonical code lengths for `symbols` with the given frequencies.
///
/// Returns `(symbol, code_length)` pairs sorted by symbol. Handles the degenerate
/// cases of zero or one distinct symbol (the single symbol gets a 1-bit code).
fn code_lengths(freqs: &HashMap<u32, u64>) -> Vec<(u32, u8)> {
    if freqs.is_empty() {
        return Vec::new();
    }
    if freqs.len() == 1 {
        let &sym = freqs.keys().next().expect("one entry");
        return vec![(sym, 1)];
    }

    // Node arena: leaves first, then internal nodes.
    #[derive(Clone, Copy)]
    struct Node {
        freq: u64,
        left: usize,
        right: usize,
        symbol: u32,
    }
    const NONE: usize = usize::MAX;

    let mut nodes: Vec<Node> = Vec::with_capacity(freqs.len() * 2);
    // Deterministic order: sort by symbol so equal-frequency ties break identically
    // across runs.
    let mut symbols: Vec<(u32, u64)> = freqs.iter().map(|(&s, &f)| (s, f)).collect();
    symbols.sort_unstable();
    for &(sym, freq) in &symbols {
        nodes.push(Node {
            freq,
            left: NONE,
            right: NONE,
            symbol: sym,
        });
    }

    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| Reverse((n.freq, i)))
        .collect();

    while heap.len() > 1 {
        let Reverse((f1, i1)) = heap.pop().expect("heap has >= 2 items");
        let Reverse((f2, i2)) = heap.pop().expect("heap has >= 2 items");
        let parent = nodes.len();
        nodes.push(Node {
            freq: f1 + f2,
            left: i1,
            right: i2,
            symbol: 0,
        });
        heap.push(Reverse((f1 + f2, parent)));
    }
    let root = heap.pop().expect("single root").0 .1;

    // Depth-first traversal to assign lengths.
    let mut lengths: Vec<(u32, u8)> = Vec::with_capacity(freqs.len());
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        let n = nodes[idx];
        if n.left == NONE {
            lengths.push((n.symbol, depth.max(1)));
        } else {
            stack.push((n.left, depth + 1));
            stack.push((n.right, depth + 1));
        }
    }
    lengths.sort_unstable();
    lengths
}

/// Assign canonical codes given `(symbol, length)` pairs.
fn canonical_codes(lengths: &[(u32, u8)]) -> HashMap<u32, Code> {
    let mut entries: Vec<(u8, u32)> = lengths.iter().map(|&(s, l)| (l, s)).collect();
    entries.sort_unstable();
    let mut codes = HashMap::with_capacity(entries.len());
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(len, sym) in &entries {
        code <<= len - prev_len;
        codes.insert(
            sym,
            Code {
                bits: code,
                len,
            },
        );
        code += 1;
        prev_len = len;
    }
    codes
}

/// Encode a slice of `u32` symbols into a self-describing byte buffer.
///
/// The buffer starts with the symbol count, the canonical `(symbol, length)` table,
/// and then the bit-packed payload.
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let mut freqs: HashMap<u32, u64> = HashMap::new();
    for &s in symbols {
        *freqs.entry(s).or_insert(0) += 1;
    }
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    let mut out = Vec::new();
    write_varint(&mut out, symbols.len() as u64);
    write_varint(&mut out, lengths.len() as u64);
    for &(sym, len) in &lengths {
        write_varint(&mut out, sym as u64);
        out.push(len);
    }

    let mut writer = BitWriter::with_capacity_bits(symbols.len() * 8);
    for &s in symbols {
        let c = codes[&s];
        writer.write_bits(c.bits, c.len as u32);
    }
    let payload = writer.into_bytes();
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decode a buffer produced by [`huffman_encode`].
pub fn huffman_decode(buf: &[u8]) -> Result<Vec<u32>> {
    let mut pos = 0usize;
    let n_symbols = read_varint(buf, &mut pos)? as usize;
    let table_len = read_varint(buf, &mut pos)? as usize;
    if n_symbols > 0 && table_len == 0 {
        return Err(CodecError::Corrupt("empty code table for non-empty payload"));
    }
    let mut lengths: Vec<(u32, u8)> = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        let sym = read_varint(buf, &mut pos)? as u32;
        let len = *buf.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        if len == 0 || len > 64 {
            return Err(CodecError::Corrupt("invalid code length"));
        }
        lengths.push((sym, len));
    }
    let payload_len = read_varint(buf, &mut pos)? as usize;
    let payload = buf
        .get(pos..pos + payload_len)
        .ok_or(CodecError::UnexpectedEof)?;

    // Build a (length, code) -> symbol lookup.
    let codes = canonical_codes(&lengths);
    let mut decode_map: HashMap<(u8, u64), u32> = HashMap::with_capacity(codes.len());
    let mut max_len = 0u8;
    for (sym, code) in &codes {
        decode_map.insert((code.len, code.bits), *sym);
        max_len = max_len.max(code.len);
    }

    let mut reader = BitReader::new(payload);
    let mut out = Vec::with_capacity(n_symbols);
    for _ in 0..n_symbols {
        let mut code = 0u64;
        let mut len = 0u8;
        loop {
            code = (code << 1) | reader.read_bit()? as u64;
            len += 1;
            if let Some(&sym) = decode_map.get(&(len, code)) {
                out.push(sym);
                break;
            }
            if len > max_len {
                return Err(CodecError::Corrupt("code not found in table"));
            }
        }
    }
    Ok(out)
}

/// Encode a byte slice with Huffman (bytes promoted to `u32` symbols).
pub fn huffman_encode_bytes(bytes: &[u8]) -> Vec<u8> {
    let symbols: Vec<u32> = bytes.iter().map(|&b| b as u32).collect();
    huffman_encode(&symbols)
}

/// Decode a buffer produced by [`huffman_encode_bytes`].
pub fn huffman_decode_bytes(buf: &[u8]) -> Result<Vec<u8>> {
    let symbols = huffman_decode(buf)?;
    symbols
        .into_iter()
        .map(|s| {
            u8::try_from(s).map_err(|_| CodecError::Corrupt("byte symbol out of range"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let data = vec![1u32, 2, 2, 3, 3, 3, 3, 7, 7, 1, 0];
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        let enc = huffman_encode(&[]);
        assert_eq!(huffman_decode(&enc).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn roundtrip_single_distinct_symbol() {
        let data = vec![42u32; 1000];
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
        // 1000 symbols at 1 bit each + table should be far smaller than raw.
        assert!(enc.len() < 200);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros: entropy ~0.47 bits/symbol, so the encoded size must be well
        // below one byte per symbol.
        let mut data = vec![0u32; 9000];
        data.extend(std::iter::repeat(5u32).take(1000));
        let enc = huffman_encode(&data);
        assert!(enc.len() < 10_000 / 4, "encoded {} bytes", enc.len());
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_large_alphabet() {
        let data: Vec<u32> = (0..5000u32).map(|i| (i * i) % 1031).collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn byte_helpers_roundtrip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let enc = huffman_encode_bytes(&data);
        assert_eq!(huffman_decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data = vec![1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let enc = huffman_encode(&data);
        let truncated = &enc[..enc.len() - 2];
        assert!(huffman_decode(truncated).is_err());
    }

    #[test]
    fn deterministic_output() {
        let data: Vec<u32> = (0..1000u32).map(|i| i % 17).collect();
        assert_eq!(huffman_encode(&data), huffman_encode(&data));
    }
}
