//! Canonical Huffman coding over `u32` symbols.
//!
//! The SZ3 baseline (paper Sec. 6.1.3) entropy-codes its linear-scale quantization
//! codes with Huffman before the final lossless pass; the LZR backend reuses the same
//! coder for its byte-oriented token stream. The implementation builds a classical
//! frequency-sorted tree, converts it to canonical form (codes assigned by
//! non-decreasing length, then symbol order) and serializes only the `(symbol, length)`
//! table, so the decoder can rebuild the exact same codebook.

use crate::bitstream::{BitReader, BitWriter};
use crate::varint::{read_varint, varint_len, write_varint};
use crate::{CodecError, Result};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A single symbol's canonical code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Code {
    bits: u64,
    len: u8,
}

/// Build canonical code lengths for `symbols` with the given frequencies.
///
/// Returns `(symbol, code_length)` pairs sorted by symbol. Handles the degenerate
/// cases of zero or one distinct symbol (the single symbol gets a 1-bit code).
fn code_lengths(freqs: &HashMap<u32, u64>) -> Vec<(u32, u8)> {
    if freqs.is_empty() {
        return Vec::new();
    }
    if freqs.len() == 1 {
        let &sym = freqs.keys().next().expect("one entry");
        return vec![(sym, 1)];
    }

    // Node arena: leaves first, then internal nodes.
    #[derive(Clone, Copy)]
    struct Node {
        freq: u64,
        left: usize,
        right: usize,
        symbol: u32,
    }
    const NONE: usize = usize::MAX;

    let mut nodes: Vec<Node> = Vec::with_capacity(freqs.len() * 2);
    // Deterministic order: sort by symbol so equal-frequency ties break identically
    // across runs.
    let mut symbols: Vec<(u32, u64)> = freqs.iter().map(|(&s, &f)| (s, f)).collect();
    symbols.sort_unstable();
    for &(sym, freq) in &symbols {
        nodes.push(Node {
            freq,
            left: NONE,
            right: NONE,
            symbol: sym,
        });
    }

    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| Reverse((n.freq, i)))
        .collect();

    while heap.len() > 1 {
        let Reverse((f1, i1)) = heap.pop().expect("heap has >= 2 items");
        let Reverse((f2, i2)) = heap.pop().expect("heap has >= 2 items");
        let parent = nodes.len();
        nodes.push(Node {
            freq: f1 + f2,
            left: i1,
            right: i2,
            symbol: 0,
        });
        heap.push(Reverse((f1 + f2, parent)));
    }
    let root = heap.pop().expect("single root").0 .1;

    // Depth-first traversal to assign lengths.
    let mut lengths: Vec<(u32, u8)> = Vec::with_capacity(freqs.len());
    let mut stack = vec![(root, 0u8)];
    while let Some((idx, depth)) = stack.pop() {
        let n = nodes[idx];
        if n.left == NONE {
            lengths.push((n.symbol, depth.max(1)));
        } else {
            stack.push((n.left, depth + 1));
            stack.push((n.right, depth + 1));
        }
    }
    lengths.sort_unstable();
    lengths
}

/// Assign canonical codes given `(symbol, length)` pairs.
fn canonical_codes(lengths: &[(u32, u8)]) -> HashMap<u32, Code> {
    let mut entries: Vec<(u8, u32)> = lengths.iter().map(|&(s, l)| (l, s)).collect();
    entries.sort_unstable();
    let mut codes = HashMap::with_capacity(entries.len());
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(len, sym) in &entries {
        code <<= len - prev_len;
        codes.insert(sym, Code { bits: code, len });
        code += 1;
        prev_len = len;
    }
    codes
}

/// Encode a slice of `u32` symbols into a self-describing byte buffer.
///
/// The buffer starts with the symbol count, the canonical `(symbol, length)` table,
/// and then the bit-packed payload.
pub fn huffman_encode(symbols: &[u32]) -> Vec<u8> {
    let mut freqs: HashMap<u32, u64> = HashMap::new();
    for &s in symbols {
        *freqs.entry(s).or_insert(0) += 1;
    }
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths);

    let mut out = Vec::new();
    write_varint(&mut out, symbols.len() as u64);
    write_varint(&mut out, lengths.len() as u64);
    for &(sym, len) in &lengths {
        write_varint(&mut out, sym as u64);
        out.push(len);
    }

    let mut writer = BitWriter::with_capacity_bits(symbols.len() * 8);
    for &s in symbols {
        let c = codes[&s];
        writer.write_bits(c.bits, c.len as u32);
    }
    let payload = writer.into_bytes();
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Canonical decoding tables: a direct-lookup table resolving all codes up to
/// [`CanonicalDecoder::TABLE_BITS`] bits in one peek, plus the
/// first-code/offset arrays that resolve longer codes with integer compares
/// (no hashing anywhere on the per-symbol path).
struct CanonicalDecoder {
    /// `lut[peeked] = (symbol, code_len)`; `code_len == 0` marks "longer than
    /// TABLE_BITS, take the slow path".
    lut: Vec<(u32, u8)>,
    /// Symbols sorted by (code length, symbol) — canonical code order.
    symbols: Vec<u32>,
    /// Per code length `l`: the first canonical code of that length.
    first_code: [u64; 65],
    /// Per code length `l`: index into `symbols` of that first code.
    first_index: [usize; 65],
    /// Per code length `l`: number of codes of that length.
    count: [usize; 65],
    max_len: u8,
}

impl CanonicalDecoder {
    const TABLE_BITS: u32 = 12;

    /// Build the decoding tables, rejecting tables that violate the canonical
    /// (Kraft) constraint — headers are untrusted bytes, and an oversubscribed
    /// length table would otherwise push the code counter past `2^len` and out
    /// of the lookup table.
    fn new(lengths: &[(u32, u8)]) -> Result<Self> {
        // Canonical order: by (length, symbol), matching `canonical_codes`.
        let mut entries: Vec<(u8, u32)> = lengths.iter().map(|&(s, l)| (l, s)).collect();
        entries.sort_unstable();
        let mut symbols = Vec::with_capacity(entries.len());
        let mut first_code = [0u64; 65];
        let mut first_index = [0usize; 65];
        let mut count = [0usize; 65];
        let mut max_len = 0u8;
        let mut lut = vec![(0u32, 0u8); 1usize << Self::TABLE_BITS];
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for (i, &(len, sym)) in entries.iter().enumerate() {
            let shift = (len - prev_len) as u32;
            code = match code.checked_shl(shift) {
                // checked_shl rejects shift ≥ 64; a shifted-out high bit is the
                // same oversubscription expressed earlier.
                Some(shifted) if shift == 0 || shifted >> shift == code => shifted,
                _ if code == 0 => 0,
                _ => return Err(CodecError::Corrupt("oversubscribed Huffman code table")),
            };
            if len < 64 && code >> len != 0 {
                return Err(CodecError::Corrupt("oversubscribed Huffman code table"));
            }
            if count[len as usize] == 0 {
                first_code[len as usize] = code;
                first_index[len as usize] = i;
            }
            count[len as usize] += 1;
            if (len as u32) <= Self::TABLE_BITS {
                // Every TABLE_BITS-wide window starting with this code decodes
                // to `sym`.
                let shift = Self::TABLE_BITS - len as u32;
                let base = (code << shift) as usize;
                for slot in &mut lut[base..base + (1usize << shift)] {
                    *slot = (sym, len);
                }
            }
            symbols.push(sym);
            max_len = max_len.max(len);
            code += 1;
            prev_len = len;
        }
        Ok(Self {
            lut,
            symbols,
            first_code,
            first_index,
            count,
            max_len,
        })
    }

    /// Decode `n` symbols from `payload`, feeding each to `emit`.
    ///
    /// Runs on a local MSB-aligned 64-bit buffer: the top `have` bits of `acc`
    /// are the next stream bits, refilled a byte at a time and consumed with one
    /// shift per symbol — no per-bit reads and no hashing. Tables declaring
    /// codes longer than 56 bits (possible only in hand-crafted headers — a real
    /// histogram would need hundreds of gigabytes of input to produce one) are
    /// routed to the bitwise fallback, which keeps the fast loop's refill
    /// invariant `len ≤ have` unconditional.
    fn decode_all(&self, payload: &[u8], n: usize, mut emit: impl FnMut(u32)) -> Result<()> {
        if self.max_len > 56 {
            return self.decode_all_bitwise(payload, n, emit);
        }
        // Register-resident MSB-aligned bit buffer: the top `have` bits of
        // `acc` are the next stream bits. The refill ORs a whole 8-byte load
        // below the valid region but only *accounts* for whole bytes; the
        // surplus sub-byte bits are real stream bits that the next refill ORs
        // again to the same positions (OR is idempotent), which keeps the
        // per-symbol critical path free of load latency.
        let total_bits = payload.len() * 8;
        let mut consumed = 0usize;
        let mut byte_pos = 0usize;
        let mut acc: u64 = 0;
        let mut have: u32 = 0;
        for _ in 0..n {
            if have <= 56 {
                if byte_pos + 8 <= payload.len() {
                    let bytes: [u8; 8] = payload[byte_pos..byte_pos + 8]
                        .try_into()
                        .expect("8-byte slice");
                    acc |= u64::from_be_bytes(bytes) >> have;
                    let take = (64 - have) >> 3;
                    byte_pos += take as usize;
                    have += take * 8;
                } else {
                    while have <= 56 && byte_pos < payload.len() {
                        acc |= (payload[byte_pos] as u64) << (56 - have);
                        byte_pos += 1;
                        have += 8;
                    }
                }
            }
            let (mut sym, mut len) = {
                let (s, l) = self.lut[(acc >> (64 - Self::TABLE_BITS)) as usize];
                (s, l as u32)
            };
            if len == 0 {
                // The code is longer than the lookup window; extend it with
                // canonical first-code compares on the same buffered window.
                let mut l = Self::TABLE_BITS + 1;
                loop {
                    if l > self.max_len as u32 {
                        return Err(CodecError::Corrupt("code not found in table"));
                    }
                    let code = acc >> (64 - l);
                    let li = l as usize;
                    if self.count[li] > 0 {
                        let offset = code.wrapping_sub(self.first_code[li]);
                        if offset < self.count[li] as u64 {
                            sym = self.symbols[self.first_index[li] + offset as usize];
                            len = l;
                            break;
                        }
                    }
                    l += 1;
                }
            }
            consumed += len as usize;
            if consumed > total_bits {
                return Err(CodecError::UnexpectedEof);
            }
            // `len ≤ 56 < have` whenever unread bytes remain; at the stream end
            // the EOF check above bounds `len` by the exact remainder.
            acc <<= len;
            have = have.saturating_sub(len);
            emit(sym);
        }
        Ok(())
    }

    /// Bit-at-a-time fallback for adversarial tables with > 56-bit codes.
    fn decode_all_bitwise(
        &self,
        payload: &[u8],
        n: usize,
        mut emit: impl FnMut(u32),
    ) -> Result<()> {
        let mut reader = BitReader::new(payload);
        for _ in 0..n {
            let mut code = 0u64;
            let mut l = 0usize;
            loop {
                code = (code << 1) | reader.read_bit()? as u64;
                l += 1;
                if l > self.max_len as usize {
                    return Err(CodecError::Corrupt("code not found in table"));
                }
                if self.count[l] > 0 {
                    let offset = code.wrapping_sub(self.first_code[l]);
                    if offset < self.count[l] as u64 {
                        emit(self.symbols[self.first_index[l] + offset as usize]);
                        break;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Parsed self-describing header: `(n_symbols, (symbol, length) table, payload)`.
type ParsedHeader<'a> = (usize, Vec<(u32, u8)>, &'a [u8]);

/// Parse the header shared by [`huffman_decode`] and [`huffman_decode_bytes`].
fn parse_header(buf: &[u8]) -> Result<ParsedHeader<'_>> {
    let mut pos = 0usize;
    let n_symbols = read_varint(buf, &mut pos)? as usize;
    let table_len = read_varint(buf, &mut pos)? as usize;
    // Every code is at least one bit, so a symbol count that outruns the
    // entire buffer's bit count is corrupt; checking here keeps the output
    // preallocation bounded by the input size.
    if n_symbols / 8 > buf.len() {
        return Err(CodecError::Corrupt("symbol count exceeds payload bits"));
    }
    if n_symbols > 0 && table_len == 0 {
        return Err(CodecError::Corrupt(
            "empty code table for non-empty payload",
        ));
    }
    // Each table entry consumes at least two bytes, so a table_len larger than
    // the buffer is corrupt; checking first keeps the preallocation bounded.
    if table_len > buf.len() {
        return Err(CodecError::UnexpectedEof);
    }
    let mut lengths: Vec<(u32, u8)> = Vec::with_capacity(table_len);
    for _ in 0..table_len {
        let sym = read_varint(buf, &mut pos)? as u32;
        let len = *buf.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        if len == 0 || len > 64 {
            return Err(CodecError::Corrupt("invalid code length"));
        }
        lengths.push((sym, len));
    }
    let payload_len = read_varint(buf, &mut pos)? as usize;
    let payload = buf
        .get(pos..pos.saturating_add(payload_len))
        .ok_or(CodecError::UnexpectedEof)?;
    Ok((n_symbols, lengths, payload))
}

/// Decode a buffer produced by [`huffman_encode`].
pub fn huffman_decode(buf: &[u8]) -> Result<Vec<u32>> {
    let (n_symbols, lengths, payload) = parse_header(buf)?;
    let decoder = CanonicalDecoder::new(&lengths)?;
    let mut out = Vec::with_capacity(n_symbols);
    decoder.decode_all(payload, n_symbols, |sym| out.push(sym))?;
    Ok(out)
}

/// Shared implementation of the byte-specialized encoder. When `size_limit` is
/// set, returns `None` without doing any bit packing if the exact encoded size
/// (computable from the histogram alone) would not be strictly smaller.
fn huffman_encode_bytes_impl(bytes: &[u8], size_limit: Option<usize>) -> Option<Vec<u8>> {
    let mut freq = [0u64; 256];
    for &b in bytes {
        freq[b as usize] += 1;
    }
    let freqs: HashMap<u32, u64> = freq
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(s, &f)| (s as u32, f))
        .collect();
    let lengths = code_lengths(&freqs);

    // Exact output size, known before writing a single bit: header varints plus
    // `Σ freq(s) · len(s)` payload bits.
    let payload_bits: u64 = lengths
        .iter()
        .map(|&(sym, len)| freq[sym as usize] * len as u64)
        .sum();
    let payload_len = (payload_bits as usize).div_ceil(8);
    let header_len = varint_len(bytes.len() as u64)
        + varint_len(lengths.len() as u64)
        + lengths
            .iter()
            .map(|&(sym, _)| varint_len(sym as u64) + 1)
            .sum::<usize>()
        + varint_len(payload_len as u64);
    if let Some(limit) = size_limit {
        if header_len + payload_len >= limit {
            return None;
        }
    }

    let mut out = Vec::with_capacity(header_len + payload_len);
    write_varint(&mut out, bytes.len() as u64);
    write_varint(&mut out, lengths.len() as u64);
    for &(sym, len) in &lengths {
        write_varint(&mut out, sym as u64);
        out.push(len);
    }
    write_varint(&mut out, payload_len as u64);

    // Dense code table + a local 64-bit accumulator: roughly one shift/or and an
    // amortized byte push per symbol, instead of a BitWriter call per code.
    let codes = canonical_codes(&lengths);
    let mut table = [(0u64, 0u32); 256];
    for (&sym, code) in &codes {
        table[sym as usize] = (code.bits, code.len as u32);
    }
    let payload_start = out.len();
    out.reserve(payload_len);
    let mut acc: u64 = 0;
    let mut fill: u32 = 0;
    for &b in bytes {
        let (bits, len) = table[b as usize];
        if len <= 56 {
            acc = (acc << len) | bits;
            fill += len;
        } else {
            // Degenerate >56-bit codes: split the append in two halves.
            let hi = len - 32;
            acc = (acc << hi) | (bits >> 32);
            fill += hi;
            while fill >= 8 {
                fill -= 8;
                out.push((acc >> fill) as u8);
            }
            acc = (acc << 32) | (bits & 0xFFFF_FFFF);
            fill += 32;
        }
        while fill >= 8 {
            fill -= 8;
            out.push((acc >> fill) as u8);
        }
    }
    if fill > 0 {
        out.push((acc << (8 - fill)) as u8);
    }
    debug_assert_eq!(out.len() - payload_start, payload_len);
    Some(out)
}

/// Encode a byte slice with Huffman (bytes promoted to `u32` symbols).
///
/// Produces output byte-identical to `huffman_encode(&bytes as u32s)` but runs
/// on the LZR hot path: frequencies are counted in a flat 256-slot array and
/// codes are emitted through a dense per-byte table into a local bit
/// accumulator instead of hash lookups and per-code writer calls.
pub fn huffman_encode_bytes(bytes: &[u8]) -> Vec<u8> {
    huffman_encode_bytes_impl(bytes, None).expect("unbounded encode always succeeds")
}

/// Encode `bytes` only if the exact encoded size is strictly smaller than
/// `limit`; otherwise return `None` without paying for the bit packing.
///
/// The size test is computed from the histogram, so callers that fall back to
/// storing raw data (like the LZR container) skip the entire entropy pass on
/// incompressible input.
pub fn huffman_encode_bytes_under(bytes: &[u8], limit: usize) -> Option<Vec<u8>> {
    huffman_encode_bytes_impl(bytes, Some(limit))
}

/// Exact size in bytes that [`huffman_encode_bytes`] would produce, computed
/// from the histogram alone — no code table materialization and no bit
/// packing. The entropy-stage dispatch uses this to compare Huffman against
/// rANS before committing to either encode.
pub fn huffman_encoded_bytes_size(bytes: &[u8]) -> usize {
    let mut freq = [0u64; 256];
    for &b in bytes {
        freq[b as usize] += 1;
    }
    let freqs: HashMap<u32, u64> = freq
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(s, &f)| (s as u32, f))
        .collect();
    let lengths = code_lengths(&freqs);
    let payload_bits: u64 = lengths
        .iter()
        .map(|&(sym, len)| freq[sym as usize] * len as u64)
        .sum();
    let payload_len = (payload_bits as usize).div_ceil(8);
    varint_len(bytes.len() as u64)
        + varint_len(lengths.len() as u64)
        + lengths
            .iter()
            .map(|&(sym, _)| varint_len(sym as u64) + 1)
            .sum::<usize>()
        + varint_len(payload_len as u64)
        + payload_len
}

/// Decode a buffer produced by [`huffman_encode_bytes`].
pub fn huffman_decode_bytes(buf: &[u8]) -> Result<Vec<u8>> {
    huffman_decode_bytes_capped(buf, usize::MAX)
}

/// [`huffman_decode_bytes`] that additionally rejects streams declaring more
/// than `max_symbols` symbols, for callers decoding untrusted bytes.
pub fn huffman_decode_bytes_capped(buf: &[u8], max_symbols: usize) -> Result<Vec<u8>> {
    let (n_symbols, lengths, payload) = parse_header(buf)?;
    if n_symbols > max_symbols {
        return Err(CodecError::Corrupt("symbol count exceeds cap"));
    }
    if lengths.iter().any(|&(sym, _)| sym > u8::MAX as u32) {
        return Err(CodecError::Corrupt("byte symbol out of range"));
    }
    let decoder = CanonicalDecoder::new(&lengths)?;
    let mut out = Vec::with_capacity(n_symbols);
    decoder.decode_all(payload, n_symbols, |sym| out.push(sym as u8))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let data = vec![1u32, 2, 2, 3, 3, 3, 3, 7, 7, 1, 0];
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_empty() {
        let enc = huffman_encode(&[]);
        assert_eq!(huffman_decode(&enc).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn roundtrip_single_distinct_symbol() {
        let data = vec![42u32; 1000];
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
        // 1000 symbols at 1 bit each + table should be far smaller than raw.
        assert!(enc.len() < 200);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% zeros: entropy ~0.47 bits/symbol, so the encoded size must be well
        // below one byte per symbol.
        let mut data = vec![0u32; 9000];
        data.extend(std::iter::repeat_n(5u32, 1000));
        let enc = huffman_encode(&data);
        assert!(enc.len() < 10_000 / 4, "encoded {} bytes", enc.len());
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn oversubscribed_code_table_is_rejected_not_panicking() {
        // Hand-crafted header: 1 symbol to decode, table declaring THREE codes
        // of length 1 (only two can exist). Must return Corrupt, not panic.
        let crafted = [1u8, 3, 0, 1, 1, 1, 2, 1, 1, 0];
        assert!(matches!(
            huffman_decode(&crafted),
            Err(CodecError::Corrupt(_))
        ));
        assert!(matches!(
            huffman_decode_bytes(&crafted),
            Err(CodecError::Corrupt(_))
        ));
        // Oversubscription at a longer length (five 2-bit codes).
        let mut crafted = vec![1u8, 5];
        for sym in 0u8..5 {
            crafted.extend_from_slice(&[sym, 2]);
        }
        crafted.extend_from_slice(&[1, 0]);
        assert!(matches!(
            huffman_decode(&crafted),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn roundtrip_large_alphabet() {
        let data: Vec<u32> = (0..5000u32).map(|i| (i * i) % 1031).collect();
        let enc = huffman_encode(&data);
        assert_eq!(huffman_decode(&enc).unwrap(), data);
    }

    #[test]
    fn byte_helpers_roundtrip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let enc = huffman_encode_bytes(&data);
        assert_eq!(huffman_decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_stream_errors() {
        let data = vec![1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let enc = huffman_encode(&data);
        let truncated = &enc[..enc.len() - 2];
        assert!(huffman_decode(truncated).is_err());
    }

    #[test]
    fn deterministic_output() {
        let data: Vec<u32> = (0..1000u32).map(|i| i % 17).collect();
        assert_eq!(huffman_encode(&data), huffman_encode(&data));
    }

    #[test]
    fn encoded_bytes_size_is_exact() {
        for data in [
            Vec::new(),
            vec![42u8; 777],
            (0..=255u8).cycle().take(3000).collect::<Vec<u8>>(),
            (0..4000u32).map(|i| (i % 5) as u8).collect(),
        ] {
            assert_eq!(
                huffman_encoded_bytes_size(&data),
                huffman_encode_bytes(&data).len()
            );
        }
    }

    #[test]
    fn symbol_count_cap_and_bit_bound_enforced() {
        let data = vec![3u8; 500];
        let enc = huffman_encode_bytes(&data);
        assert_eq!(huffman_decode_bytes_capped(&enc, 500).unwrap(), data);
        assert!(matches!(
            huffman_decode_bytes_capped(&enc, 499),
            Err(CodecError::Corrupt(_))
        ));
        // A header declaring more symbols than the buffer has bits is corrupt
        // before any allocation happens.
        let mut bomb = Vec::new();
        write_varint(&mut bomb, 1 << 50);
        write_varint(&mut bomb, 1);
        bomb.extend_from_slice(&[7, 1, 1, 0]);
        assert!(matches!(
            huffman_decode_bytes(&bomb),
            Err(CodecError::Corrupt(_))
        ));
    }
}
