//! Little-endian scalar and slice serialization helpers for container formats.

use crate::{CodecError, Result};

/// Append a `u32` in little-endian order.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian order.
pub fn write_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` in little-endian IEEE-754 order.
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u32` at `*pos`, advancing it.
pub fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let bytes: [u8; 4] = buf
        .get(*pos..*pos + 4)
        .ok_or(CodecError::UnexpectedEof)?
        .try_into()
        .expect("slice length checked");
    *pos += 4;
    Ok(u32::from_le_bytes(bytes))
}

/// Read a `u64` at `*pos`, advancing it.
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let bytes: [u8; 8] = buf
        .get(*pos..*pos + 8)
        .ok_or(CodecError::UnexpectedEof)?
        .try_into()
        .expect("slice length checked");
    *pos += 8;
    Ok(u64::from_le_bytes(bytes))
}

/// Read an `f64` at `*pos`, advancing it.
pub fn read_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    Ok(f64::from_bits(read_u64(buf, pos)?))
}

/// Append a length-prefixed byte slice.
pub fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    crate::varint::write_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Read a length-prefixed byte slice.
pub fn read_bytes<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a [u8]> {
    let len = crate::varint::read_varint(buf, pos)? as usize;
    // Saturating: an adversarial length must fail the range check, not
    // overflow the addition.
    let slice = buf
        .get(*pos..pos.saturating_add(len))
        .ok_or(CodecError::UnexpectedEof)?;
    *pos += len;
    Ok(slice)
}

/// Serialize an `f64` slice to little-endian bytes.
pub fn f64_slice_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Deserialize little-endian bytes into an `f64` vector.
pub fn bytes_to_f64_vec(bytes: &[u8]) -> Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CodecError::Corrupt("f64 buffer length not a multiple of 8"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 0xDEAD_BEEF);
        write_u64(&mut buf, u64::MAX - 7);
        write_f64(&mut buf, -1234.5678e-9);
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos).unwrap(), 0xDEAD_BEEF);
        assert_eq!(read_u64(&buf, &mut pos).unwrap(), u64::MAX - 7);
        assert_eq!(read_f64(&buf, &mut pos).unwrap(), -1234.5678e-9);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_scalar_errors() {
        let buf = vec![1u8, 2, 3];
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn length_prefixed_bytes_roundtrip() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, b"hello");
        write_bytes(&mut buf, b"");
        write_bytes(&mut buf, &[7u8; 300]);
        let mut pos = 0;
        assert_eq!(read_bytes(&buf, &mut pos).unwrap(), b"hello");
        assert_eq!(read_bytes(&buf, &mut pos).unwrap(), b"");
        assert_eq!(read_bytes(&buf, &mut pos).unwrap(), &[7u8; 300][..]);
    }

    #[test]
    fn f64_slice_roundtrip() {
        let values = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, std::f64::consts::PI];
        let bytes = f64_slice_to_bytes(&values);
        assert_eq!(bytes_to_f64_vec(&bytes).unwrap(), values);
    }

    #[test]
    fn f64_slice_bad_length_rejected() {
        assert!(bytes_to_f64_vec(&[0u8; 9]).is_err());
    }
}
