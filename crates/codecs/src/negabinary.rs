//! Negabinary (base −2) integer representation.
//!
//! Paper Sec. 4.4.2 selects negabinary over two's complement and sign-magnitude for
//! bitplane coding because (a) values that fluctuate around zero keep their
//! high-order bitplanes full of zeros, and (b) the error uncertainty introduced by
//! truncating the `d` lowest bitplanes is only about two thirds of sign-magnitude's
//! `2^d − 1`.
//!
//! With the standard mapping `nb(x) = (x + M) XOR M` where `M = 0xAAAA…AA`
//! (alternating bit mask), a negabinary word interprets bit `i` with weight `(−2)^i`,
//! so truncating low bits splits the value additively — exactly the property the
//! progressive decoder relies on when it adds late-arriving bitplanes onto an earlier
//! reconstruction.

/// Alternating-bit mask used by the negabinary conversion (`…10101010`).
pub const NEGABINARY_MASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Convert a signed integer to its negabinary (base −2) bit pattern.
///
/// # Examples
///
/// ```
/// use ipc_codecs::negabinary::{to_negabinary, from_negabinary};
/// assert_eq!(to_negabinary(0), 0);
/// assert_eq!(to_negabinary(1), 0b1);
/// assert_eq!(to_negabinary(-1), 0b11);
/// assert_eq!(from_negabinary(to_negabinary(-12345)), -12345);
/// ```
#[inline]
pub fn to_negabinary(value: i64) -> u64 {
    (value as u64).wrapping_add(NEGABINARY_MASK) ^ NEGABINARY_MASK
}

/// Convert a negabinary bit pattern back to the signed integer it encodes.
#[inline]
pub fn from_negabinary(bits: u64) -> i64 {
    (bits ^ NEGABINARY_MASK).wrapping_sub(NEGABINARY_MASK) as i64
}

/// Bulk conversion of signed integers to negabinary words.
///
/// One tight add/xor pass; the compiler auto-vectorizes it, which matters on the
/// bitplane coder's hot path where whole levels are converted at once.
pub fn to_negabinary_slice(values: &[i64]) -> Vec<u64> {
    values.iter().map(|&v| to_negabinary(v)).collect()
}

/// Bulk conversion of negabinary words back to signed integers.
pub fn from_negabinary_slice(words: &[u64]) -> Vec<i64> {
    words.iter().map(|&w| from_negabinary(w)).collect()
}

/// Evaluate a negabinary word keeping only bitplanes `>= lowest_kept`.
///
/// This models the effect of *not loading* the `lowest_kept` least significant
/// bitplanes during progressive retrieval: the decoder sees those bits as zero.
#[inline]
pub fn truncate_negabinary(bits: u64, lowest_kept: u32) -> u64 {
    if lowest_kept >= 64 {
        0
    } else {
        bits & (u64::MAX << lowest_kept)
    }
}

/// Signed value represented by only the discarded low `d` bitplanes of `bits`.
///
/// Because negabinary is positional, `value = kept + discarded`; this helper returns
/// the `discarded` part, which is exactly the reconstruction error contributed by a
/// single coefficient when its `d` low bitplanes are skipped.
#[inline]
pub fn truncation_loss(bits: u64, d: u32) -> i64 {
    if d == 0 {
        return 0;
    }
    let kept = truncate_negabinary(bits, d);
    from_negabinary(bits) - from_negabinary(kept)
}

/// Worst-case absolute reconstruction error when the `d` lowest negabinary bitplanes
/// are discarded (paper Sec. 4.4.2 closed form).
///
/// * odd `d`:  `2/3·2^d − 1/3`
/// * even `d`: `2/3·2^d − 2/3`
#[inline]
pub fn negabinary_uncertainty(d: u32) -> u64 {
    if d == 0 {
        return 0;
    }
    let p = 1u64 << d;
    if d % 2 == 1 {
        (2 * p - 1) / 3
    } else {
        (2 * p - 2) / 3
    }
}

/// Worst-case absolute reconstruction error for sign-magnitude coding with `d`
/// discarded low bitplanes (`2^d − 1`); used by the coding ablation experiment.
#[inline]
pub fn sign_magnitude_uncertainty(d: u32) -> u64 {
    if d == 0 {
        0
    } else {
        (1u64 << d) - 1
    }
}

/// Number of significant negabinary bitplanes needed to represent every value in
/// `values` exactly (i.e. the position of the highest set bit across the batch).
pub fn required_bitplanes(values: &[i64]) -> u32 {
    let mut max_bits = 0u32;
    for &v in values {
        let nb = to_negabinary(v);
        let bits = 64 - nb.leading_zeros();
        max_bits = max_bits.max(bits);
    }
    max_bits
}

/// [`required_bitplanes`] over already-converted negabinary words. The word
/// OR-reduction lets callers that hold the packed representation avoid a second
/// conversion pass.
pub fn required_bitplanes_words(words: &[u64]) -> u32 {
    let all = words.iter().fold(0u64, |acc, &w| acc | w);
    64 - all.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_match_paper_examples() {
        // Paper: 8-bit representations of 1 and -1 are 00000001 and 00000011 in
        // negabinary.
        assert_eq!(to_negabinary(1) & 0xFF, 0b0000_0001);
        assert_eq!(to_negabinary(-1) & 0xFF, 0b0000_0011);
        assert_eq!(to_negabinary(2) & 0xFF, 0b0000_0110);
        assert_eq!(to_negabinary(-2) & 0xFF, 0b0000_0010);
    }

    #[test]
    fn roundtrip_wide_range() {
        for v in -10_000i64..10_000 {
            assert_eq!(from_negabinary(to_negabinary(v)), v);
        }
        for &v in &[
            i64::MIN / 4,
            i64::MAX / 4,
            0,
            1,
            -1,
            123_456_789,
            -987_654_321,
        ] {
            assert_eq!(from_negabinary(to_negabinary(v)), v);
        }
    }

    #[test]
    fn positional_weights_are_powers_of_minus_two() {
        // bit i alone should decode to (-2)^i.
        for i in 0..20u32 {
            let decoded = from_negabinary(1u64 << i);
            let expected = (-2i64).pow(i);
            assert_eq!(decoded, expected, "bit {i}");
        }
    }

    #[test]
    fn truncation_is_additive() {
        for v in -5000i64..5000 {
            let nb = to_negabinary(v);
            for d in 0..16u32 {
                let kept = from_negabinary(truncate_negabinary(nb, d));
                let loss = truncation_loss(nb, d);
                assert_eq!(kept + loss, v, "v={v} d={d}");
            }
        }
    }

    #[test]
    fn truncation_loss_within_uncertainty_bound() {
        for v in -20_000i64..20_000 {
            let nb = to_negabinary(v);
            for d in 0..12u32 {
                let loss = truncation_loss(nb, d).unsigned_abs();
                assert!(
                    loss <= negabinary_uncertainty(d),
                    "v={v} d={d} loss={loss} bound={}",
                    negabinary_uncertainty(d)
                );
            }
        }
    }

    #[test]
    fn uncertainty_closed_forms() {
        assert_eq!(negabinary_uncertainty(0), 0);
        assert_eq!(negabinary_uncertainty(1), 1); // (2*2-1)/3 = 1
        assert_eq!(negabinary_uncertainty(2), 2); // (2*4-2)/3 = 2
        assert_eq!(negabinary_uncertainty(3), 5); // (2*8-1)/3 = 5
        assert_eq!(negabinary_uncertainty(4), 10);
        assert_eq!(sign_magnitude_uncertainty(4), 15);
        // Negabinary uncertainty approaches 2/3 of sign-magnitude's.
        for d in 4..20 {
            let nb = negabinary_uncertainty(d) as f64;
            let sm = sign_magnitude_uncertainty(d) as f64;
            assert!(nb / sm < 0.70, "d={d}: {nb}/{sm}");
        }
    }

    #[test]
    fn bulk_conversions_match_scalar() {
        let values: Vec<i64> = (-500..500).chain([i64::MIN / 4, i64::MAX / 4]).collect();
        let words = to_negabinary_slice(&values);
        assert_eq!(
            words,
            values.iter().map(|&v| to_negabinary(v)).collect::<Vec<_>>()
        );
        assert_eq!(from_negabinary_slice(&words), values);
    }

    #[test]
    fn required_bitplanes_words_agrees_with_scalar_path() {
        for vals in [
            vec![],
            vec![0i64],
            vec![1, -1, 7],
            (-3000..3000).collect::<Vec<i64>>(),
        ] {
            let words = to_negabinary_slice(&vals);
            assert_eq!(required_bitplanes_words(&words), required_bitplanes(&vals));
        }
    }

    #[test]
    fn required_bitplanes_covers_batch() {
        assert_eq!(required_bitplanes(&[]), 0);
        assert_eq!(required_bitplanes(&[0]), 0);
        assert_eq!(required_bitplanes(&[1]), 1);
        assert_eq!(required_bitplanes(&[-1]), 2);
        let vals = [3, -7, 100, -100];
        let bits = required_bitplanes(&vals);
        for &v in &vals {
            assert_eq!(truncate_negabinary(to_negabinary(v), 0) >> bits, 0);
        }
    }
}
