//! MSB-first bit-granular writer and reader.
//!
//! Bitplane slicing, Huffman codes, and the LZR entropy stage all need to emit and
//! consume individual bits. Both types operate over plain `Vec<u8>` / `&[u8]` so that
//! the produced buffers can be stored directly inside container blocks.

use crate::{CodecError, Result};

/// Append-only bit writer. Bits are packed MSB-first within each byte.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the last byte of `buf` (0 means the last byte is full
    /// or the buffer is empty).
    partial_bits: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty writer with capacity for roughly `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            partial_bits: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial_bits == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.partial_bits as usize
        }
    }

    /// Write a single bit (`true` = 1).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.buf.push(0);
            self.partial_bits = 0;
        }
        let last = self.buf.last_mut().expect("buffer non-empty");
        if bit {
            *last |= 1 << (7 - self.partial_bits);
        }
        self.partial_bits += 1;
        if self.partial_bits == 8 {
            self.partial_bits = 0;
        }
    }

    /// Write the `n` least-significant bits of `value`, most-significant first.
    ///
    /// Runs byte-at-a-time: at most `⌈n/8⌉ + 1` buffer operations instead of one
    /// per bit, which is what makes the Huffman entropy stage word-speed.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        if n == 0 {
            return;
        }
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let mut rem = n;
        // Top up the current partial byte first.
        if self.partial_bits != 0 {
            let free = 8 - self.partial_bits as u32;
            let take = free.min(rem);
            let chunk = ((value >> (rem - take)) as u8) & ((1u16 << take) - 1) as u8;
            let last = self.buf.last_mut().expect("partial byte exists");
            *last |= chunk << (free - take);
            self.partial_bits += take as u8;
            if self.partial_bits == 8 {
                self.partial_bits = 0;
            }
            rem -= take;
        }
        // Whole bytes.
        while rem >= 8 {
            rem -= 8;
            self.buf.push((value >> rem) as u8);
        }
        // Leftover high bits of a fresh byte.
        if rem > 0 {
            let chunk = ((value as u8) & ((1u16 << rem) - 1) as u8) << (8 - rem);
            self.buf.push(chunk);
            self.partial_bits = rem as u8;
        }
    }

    /// Write all 64 bits of `value`, most-significant first.
    ///
    /// Equivalent to `write_bits(value, 64)` but runs word-at-a-time when the
    /// writer is byte-aligned (the common case for the bitplane coder, which
    /// always writes whole plane words).
    #[inline]
    pub fn write_word64(&mut self, value: u64) {
        if self.partial_bits == 0 {
            self.buf.extend_from_slice(&value.to_be_bytes());
        } else {
            self.write_bits(value, 64);
        }
    }

    /// Append `n_bits` stream bits from packed MSB-first plane words
    /// (bit `63 - k` of `words[w]` is stream bit `64·w + k`).
    ///
    /// # Panics
    ///
    /// Panics if `words` holds fewer than `n_bits` bits.
    pub fn write_words(&mut self, words: &[u64], n_bits: usize) {
        assert!(words.len() * 64 >= n_bits, "not enough word bits");
        let full = n_bits / 64;
        for &w in &words[..full] {
            self.write_word64(w);
        }
        let rem = (n_bits % 64) as u32;
        if rem > 0 {
            self.write_bits(words[full] >> (64 - rem), rem);
        }
    }

    /// Finish writing and return the backing buffer (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far (final byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Bit reader matching [`BitWriter`]'s MSB-first packing.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over a byte buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos_bits: 0 }
    }

    /// Number of bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos_bits
    }

    /// Number of bits remaining (including any zero padding in the final byte).
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos_bits
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte_idx = self.pos_bits / 8;
        if byte_idx >= self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let bit_idx = 7 - (self.pos_bits % 8) as u32;
        self.pos_bits += 1;
        Ok((self.buf[byte_idx] >> bit_idx) & 1 == 1)
    }

    /// Read `n` bits into the low bits of a `u64`, most-significant first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }

    /// Peek at the next `n ≤ 56` bits without consuming them, MSB-first in the
    /// low bits of the result. Bits past the end of the buffer read as zero, so
    /// callers that resolve variable-length codes near the end of a stream can
    /// peek a full window and validate the consumed length afterwards.
    #[inline]
    pub fn peek_bits(&self, n: u32) -> u64 {
        debug_assert!(n <= 56, "peek window limited to 56 bits");
        if n == 0 {
            return 0;
        }
        let byte_idx = self.pos_bits / 8;
        let bit_idx = (self.pos_bits % 8) as u32;
        let mut window = [0u8; 8];
        if byte_idx < self.buf.len() {
            let avail = (self.buf.len() - byte_idx).min(8);
            window[..avail].copy_from_slice(&self.buf[byte_idx..byte_idx + avail]);
        }
        (u64::from_be_bytes(window) << bit_idx) >> (64 - n)
    }

    /// Consume `n` bits (previously inspected with [`BitReader::peek_bits`]).
    #[inline]
    pub fn skip_bits(&mut self, n: u32) -> Result<()> {
        if self.remaining() < n as usize {
            return Err(CodecError::UnexpectedEof);
        }
        self.pos_bits += n as usize;
        Ok(())
    }

    /// Read 64 bits as one MSB-first word, byte-at-a-time when aligned.
    #[inline]
    pub fn read_word64(&mut self) -> Result<u64> {
        if self.pos_bits.is_multiple_of(8) {
            let byte_idx = self.pos_bits / 8;
            let bytes = self
                .buf
                .get(byte_idx..byte_idx + 8)
                .ok_or(CodecError::UnexpectedEof)?;
            self.pos_bits += 64;
            let mut buf = [0u8; 8];
            buf.copy_from_slice(bytes);
            Ok(u64::from_be_bytes(buf))
        } else {
            self.read_bits(64)
        }
    }

    /// View the remaining stream as packed MSB-first plane words: bit `63 - k`
    /// of word `w` is stream bit `64·w + k` past the current position. Bits
    /// beyond the buffer read as zero; `n_bits` bits must be available.
    pub fn as_words(&self, n_bits: usize) -> Result<Vec<u64>> {
        if self.remaining() < n_bits {
            return Err(CodecError::UnexpectedEof);
        }
        let mut reader = self.clone();
        let n_words = n_bits.div_ceil(64);
        let mut words = Vec::with_capacity(n_words);
        let mut left = n_bits;
        for _ in 0..n_words {
            if left >= 64 {
                words.push(reader.read_word64()?);
                left -= 64;
            } else {
                let v = reader.read_bits(left as u32)?;
                words.push(v << (64 - left));
                left = 0;
            }
        }
        Ok(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let bits = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &bits {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn reading_past_end_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // The final byte is padded, so 8 bits are readable, the 9th is not.
        for _ in 0..8 {
            r.read_bit().unwrap();
        }
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn position_and_remaining_track_progress() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0xCD, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }

    #[test]
    fn chunked_write_bits_matches_per_bit_reference() {
        // Exhaustive-ish cross-check of the byte-chunked write_bits against a
        // strictly per-bit writer at every alignment.
        let values = [
            0u64,
            1,
            0b1011,
            0xFF,
            0xDEAD_BEEF,
            u64::MAX,
            0x8000_0000_0000_0001,
        ];
        for lead in 0..8u32 {
            for &v in &values {
                for n in [1u32, 3, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64] {
                    let mut fast = BitWriter::new();
                    fast.write_bits(0x5A, lead.min(8));
                    fast.write_bits(v, n);
                    let mut slow = BitWriter::new();
                    slow.write_bits(0x5A, lead.min(8));
                    for i in (0..n).rev() {
                        slow.write_bit((v >> i) & 1 == 1);
                    }
                    assert_eq!(fast.bit_len(), slow.bit_len(), "lead={lead} v={v:#x} n={n}");
                    assert_eq!(
                        fast.into_bytes(),
                        slow.into_bytes(),
                        "lead={lead} v={v:#x} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn peek_and_skip_track_reads() {
        let mut w = BitWriter::new();
        w.write_bits(0b101_1011_0101, 11);
        w.write_bits(0xABCD, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(11), 0b101_1011_0101);
        assert_eq!(r.peek_bits(4), 0b1011, "peek must not consume");
        r.skip_bits(11).unwrap();
        assert_eq!(r.peek_bits(16), 0xABCD);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        // Only padding is left: peeking past the end pads with zeros, and
        // skipping past the end errors.
        assert_eq!(r.peek_bits(40), 0);
        assert!(r.skip_bits(r.remaining() as u32 + 1).is_err());
    }

    #[test]
    fn word_writes_match_bit_writes() {
        let words = [0xDEAD_BEEF_0123_4567u64, 0x8000_0000_0000_0001];
        // Aligned path.
        let mut a = BitWriter::new();
        for &w in &words {
            a.write_word64(w);
        }
        let mut b = BitWriter::new();
        for &w in &words {
            b.write_bits(w, 64);
        }
        assert_eq!(a.into_bytes(), b.into_bytes());
        // Unaligned path.
        let mut a = BitWriter::new();
        a.write_bits(0b101, 3);
        a.write_word64(words[0]);
        let mut b = BitWriter::new();
        b.write_bits(0b101, 3);
        b.write_bits(words[0], 64);
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn write_words_handles_partial_tail() {
        let words = [0xFFFF_0000_FFFF_0000u64, 0xABCD_EF01_2345_6789];
        for n_bits in [1usize, 64, 65, 100, 128] {
            let mut a = BitWriter::new();
            a.write_words(&words, n_bits);
            let mut b = BitWriter::new();
            for k in 0..n_bits {
                let w = words[k / 64];
                b.write_bit((w >> (63 - (k % 64))) & 1 == 1);
            }
            assert_eq!(a.bit_len(), n_bits);
            assert_eq!(a.into_bytes(), b.into_bytes(), "n_bits={n_bits}");
        }
    }

    #[test]
    fn read_word64_aligned_and_unaligned() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.write_word64(0x0123_4567_89AB_CDEF);
        w.write_bits(0, 6);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        assert_eq!(r.read_word64().unwrap(), 0x0123_4567_89AB_CDEF);
        // Aligned fast path.
        let mut w = BitWriter::new();
        w.write_word64(42);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_word64().unwrap(), 42);
        assert!(r.read_word64().is_err());
    }

    #[test]
    fn as_words_roundtrips_write_words() {
        let words = [0x1357_9BDF_0246_8ACEu64, 0xFEDC_BA98_7654_3210, 0xF0F0];
        for n_bits in [3usize, 64, 120, 128, 192] {
            let mut w = BitWriter::new();
            w.write_words(&words, n_bits);
            let bytes = w.into_bytes();
            let r = BitReader::new(&bytes);
            let got = r.as_words(n_bits).unwrap();
            let want: Vec<u64> = (0..n_bits.div_ceil(64))
                .map(|i| {
                    let w = words[i];
                    let used = (n_bits - i * 64).min(64);
                    if used == 64 {
                        w
                    } else {
                        w & !(u64::MAX >> used)
                    }
                })
                .collect();
            assert_eq!(got, want, "n_bits={n_bits}");
        }
        let r = BitReader::new(&[0u8; 2]);
        assert!(r.as_words(17).is_err());
    }

    #[test]
    fn msb_first_packing_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bit(false);
        w.write_bit(true);
        let bytes = w.into_bytes();
        // 1,0,1 packed MSB-first => 1010_0000.
        assert_eq!(bytes, vec![0b1010_0000]);
    }
}
