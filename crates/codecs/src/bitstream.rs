//! MSB-first bit-granular writer and reader.
//!
//! Bitplane slicing, Huffman codes, and the LZR entropy stage all need to emit and
//! consume individual bits. Both types operate over plain `Vec<u8>` / `&[u8]` so that
//! the produced buffers can be stored directly inside container blocks.

use crate::{CodecError, Result};

/// Append-only bit writer. Bits are packed MSB-first within each byte.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Number of valid bits in the last byte of `buf` (0 means the last byte is full
    /// or the buffer is empty).
    partial_bits: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty writer with capacity for roughly `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits.div_ceil(8)),
            partial_bits: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial_bits == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.partial_bits as usize
        }
    }

    /// Write a single bit (`true` = 1).
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.buf.push(0);
            self.partial_bits = 0;
        }
        let last = self.buf.last_mut().expect("buffer non-empty");
        if bit {
            *last |= 1 << (7 - self.partial_bits);
        }
        self.partial_bits += 1;
        if self.partial_bits == 8 {
            self.partial_bits = 0;
        }
    }

    /// Write the `n` least-significant bits of `value`, most-significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        for i in (0..n).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Finish writing and return the backing buffer (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far (final byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Bit reader matching [`BitWriter`]'s MSB-first packing.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos_bits: usize,
}

impl<'a> BitReader<'a> {
    /// Create a reader over a byte buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos_bits: 0 }
    }

    /// Number of bits consumed so far.
    pub fn position(&self) -> usize {
        self.pos_bits
    }

    /// Number of bits remaining (including any zero padding in the final byte).
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos_bits
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte_idx = self.pos_bits / 8;
        if byte_idx >= self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let bit_idx = 7 - (self.pos_bits % 8) as u32;
        self.pos_bits += 1;
        Ok((self.buf[byte_idx] >> bit_idx) & 1 == 1)
    }

    /// Read `n` bits into the low bits of a `u64`, most-significant first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let bits = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &bits {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xDEADBEEF, 32);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEADBEEF);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn zero_width_write_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn reading_past_end_errors() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // The final byte is padded, so 8 bits are readable, the 9th is not.
        for _ in 0..8 {
            r.read_bit().unwrap();
        }
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn position_and_remaining_track_progress() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_bits(0xCD, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 11);
    }

    #[test]
    fn msb_first_packing_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bit(false);
        w.write_bit(true);
        let bytes = w.into_bytes();
        // 1,0,1 packed MSB-first => 1010_0000.
        assert_eq!(bytes, vec![0b1010_0000]);
    }
}
