//! Word-parallel bitplane slicing via 64×64 bit-matrix transposition, plus
//! plane-count-specialized scatter kernels for the decode path.
//!
//! The bitplane coder views a batch of `u64` code words as a bit matrix: row `i`
//! is coefficient `i`, column `p` is bitplane `p`. Slicing planes out of that
//! matrix one bit at a time costs O(n · planes) shift/mask/branch operations; a
//! 64×64 bit transpose does the same job 64 coefficients at a time with
//! word-wide XORs, turning plane extraction into a handful of operations per
//! *word* instead of per *bit*.
//!
//! # Scatter kernels
//!
//! The decode direction — scattering packed plane byte streams back into
//! per-coefficient accumulator words — historically reused the same full
//! 64×64 transpose per 64-coefficient block *regardless of how many planes
//! were actually loaded*, which made the scatter stage the decode bottleneck
//! (a coarse retrieval loading 8 of 48 planes still paid for 64). The
//! [`scatter_planes`] entry point instead dispatches on the live plane count:
//!
//! * **1–8, 9–16, 17–32 planes** — the grouped kernel processes live planes
//!   in groups of 8 through an 8×8 byte-matrix transpose
//!   (Hacker's Delight §7-2), touching only live plane words and skipping
//!   all-zero groups (sparse high planes cost almost nothing).
//! * **33–64 planes** — the full 64×64 transpose, which is already
//!   near-optimal when most rows are live.
//! * An **AVX2 variant** of the grouped kernel (bit-expand via
//!   `shuffle`/`cmpeq`, byte-widen via `cvtepu8_epi64`) is selected at
//!   runtime behind the `simd` cargo feature; the portable kernels remain
//!   compiled and tested unconditionally and are the only path on other
//!   architectures or under `--no-default-features`.
//!
//! Conventions used throughout:
//!
//! * **Coefficient words** store plane `p` of a coefficient at bit `p`
//!   (least-significant bit = plane 0), exactly as produced by
//!   [`crate::negabinary::to_negabinary`].
//! * **Plane words** pack 64 coefficients MSB-first: coefficient `i` of the
//!   block sits at bit `63 - i`, so `u64::to_be_bytes` yields the byte layout of
//!   [`crate::bitstream::BitWriter`] (coefficient `8k` at the MSB of byte `k`).
//!   Within the transposed block, plane `p` lives at row [`plane_row`]`(p)`.
//! * **Packed plane bytes** are the serialized form of plane words: byte `k`
//!   covers coefficients `8k..8k+8`, coefficient `8k` at the byte's MSB.

use crate::envswitch::EnvSwitch;

/// Row index of plane `p` in the output of [`transpose_64x64`] when the input
/// rows are coefficient words in block order.
#[inline(always)]
pub const fn plane_row(p: usize) -> usize {
    63 - p
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3, widened to 64).
///
/// Treating element `(r, c)` as bit `63 - c` of `a[r]`, the array is replaced by
/// its transpose: afterwards bit `63 - c` of `a[r]` equals bit `63 - r` of the
/// original `a[c]`. The operation is an involution.
#[inline]
pub fn transpose_64x64(a: &mut [u64; 64]) {
    let mut j: u32 = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k: usize = 0;
        while k < 64 {
            let t = (a[k] ^ (a[k + j as usize] >> j)) & m;
            a[k] ^= t;
            a[k + j as usize] ^= t << j;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Slice packed coefficient words into per-plane MSB-first byte streams.
///
/// Returns `num_planes` buffers of `ceil(words.len() / 8)` bytes; buffer `p`
/// holds bit `p` of every coefficient in order, bit-identical to writing those
/// bits one at a time through [`crate::bitstream::BitWriter`] (including the
/// zero padding of the final byte).
///
/// The per-block 64×64 transpose dispatches to an AVX2 variant behind the
/// same runtime-detection/`simd` conventions as the scatter kernels
/// ([`gather_impl`] / `IPC_GATHER_IMPL` select it); output bytes are
/// identical on every path.
pub fn slice_planes(words: &[u64], num_planes: usize) -> Vec<Vec<u8>> {
    assert!(num_planes <= 64, "a u64 word has at most 64 planes");
    let n = words.len();
    let plane_len = n.div_ceil(8);
    let mut planes = vec![vec![0u8; plane_len]; num_planes];
    let use_avx2 = gather_avx2_selected();
    for (b, block) in words.chunks(64).enumerate() {
        let mut m = [0u64; 64];
        m[..block.len()].copy_from_slice(block);
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if use_avx2 {
            // SAFETY: AVX2 support verified by `gather_avx2_selected`.
            unsafe { avx2::transpose_64x64_avx2(&mut m) };
        } else {
            transpose_64x64(&mut m);
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        {
            let _ = use_avx2;
            transpose_64x64(&mut m);
        }
        let base = b * 8;
        let nbytes = (plane_len - base).min(8);
        for (p, plane) in planes.iter_mut().enumerate() {
            let bytes = m[plane_row(p)].to_be_bytes();
            plane[base..base + nbytes].copy_from_slice(&bytes[..nbytes]);
        }
    }
    planes
}

// ---- encode-side gather kernels ---------------------------------------------

/// Which gather implementation [`slice_planes`] and [`gather_plane_words`]
/// dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum GatherImpl {
    /// AVX2 kernels when the CPU has them, portable otherwise.
    Auto = 0,
    /// The portable kernels, never AVX2 (regardless of CPU).
    Portable = 2,
}

/// Process-wide gather override, settable via [`force_gather_impl`] or the
/// `IPC_GATHER_IMPL` environment variable (`portable` / `auto`), mirroring
/// `IPC_SCATTER_IMPL`.
static GATHER_IMPL: EnvSwitch = EnvSwitch::new("IPC_GATHER_IMPL");

/// Force every subsequent gather onto one implementation (benchmark A/B
/// harnesses; produced bits are identical either way).
pub fn force_gather_impl(which: GatherImpl) {
    GATHER_IMPL.force(which as u8);
}

/// The implementation gathers currently dispatch to.
pub fn gather_impl() -> GatherImpl {
    match GATHER_IMPL.get(|env| match env {
        Some("portable") => GatherImpl::Portable as u8,
        _ => GatherImpl::Auto as u8,
    }) {
        2 => GatherImpl::Portable,
        _ => GatherImpl::Auto,
    }
}

/// Whether the current dispatch resolves to the AVX2 gather kernels.
fn gather_avx2_selected() -> bool {
    gather_impl() == GatherImpl::Auto && avx2_available()
}

/// Extract planes `[plane_lo, plane_lo + count)` of packed coefficient words
/// as per-plane packed words: `out[j][b]` holds plane `plane_lo + j` of
/// coefficients `64b..64b+64`, coefficient `i` of the block at bit
/// `63 - (i % 64)` (the [`PlaneBlock::plane`] convention).
///
/// This is the few-planes gather the decode pipeline's refinement prefix
/// extraction needs: where a full [`PlaneBlock::gather`] transpose pays for
/// all 64 planes, this touches only the requested ones — a direct bit loop
/// portably, a shift + `movemask` sweep under AVX2 (runtime-detected behind
/// the `simd` feature; bit-identical by the shared tests).
pub fn gather_plane_words(words: &[u64], plane_lo: usize, count: usize) -> Vec<Vec<u64>> {
    assert!(plane_lo + count <= 64, "plane range exceeds a 64-bit word");
    let n_blocks = words.len().div_ceil(64);
    let mut out = vec![vec![0u64; n_blocks]; count];
    if count == 0 || words.is_empty() {
        return out;
    }
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if gather_avx2_selected() {
        // SAFETY: AVX2 support verified by `gather_avx2_selected`.
        unsafe { avx2::gather_plane_words_avx2(words, plane_lo, &mut out) };
        return out;
    }
    gather_plane_words_portable(words, plane_lo, &mut out);
    out
}

/// Portable gather: one bit test per (word, plane).
fn gather_plane_words_portable(words: &[u64], plane_lo: usize, out: &mut [Vec<u64>]) {
    for (b, block) in words.chunks(64).enumerate() {
        for (i, &w) in block.iter().enumerate() {
            for (j, plane) in out.iter_mut().enumerate() {
                plane[b] |= ((w >> (plane_lo + j)) & 1) << (63 - i);
            }
        }
    }
}

/// One 64-coefficient block in plane-major form, for word-parallel per-plane
/// arithmetic (XOR prediction and the like) before scattering back.
#[derive(Debug, Clone)]
pub struct PlaneBlock {
    /// `rows[plane_row(p)]` holds plane `p`; coefficient `i` sits at bit `63-i`.
    rows: [u64; 64],
    /// Number of valid coefficients in this block (1..=64).
    len: usize,
}

impl PlaneBlock {
    /// Gather a block of up to 64 coefficient words into plane-major form.
    pub fn gather(block: &[u64]) -> Self {
        assert!(!block.is_empty() && block.len() <= 64);
        let mut rows = [0u64; 64];
        rows[..block.len()].copy_from_slice(block);
        transpose_64x64(&mut rows);
        Self {
            rows,
            len: block.len(),
        }
    }

    /// Plane `p` of the block as a packed word (coefficient `i` at bit `63-i`).
    #[inline(always)]
    pub fn plane(&self, p: usize) -> u64 {
        self.rows[plane_row(p)]
    }

    /// Scatter the block back into coefficient words.
    pub fn scatter(mut self, block: &mut [u64]) {
        assert_eq!(block.len(), self.len);
        transpose_64x64(&mut self.rows);
        block.copy_from_slice(&self.rows[..self.len]);
    }
}

// ---- plane-count-specialized scatter kernels --------------------------------

/// Which scatter implementation [`scatter_planes`] dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ScatterImpl {
    /// Pick per call: AVX2 grouped kernel when available, otherwise the
    /// portable specialized kernels, with the full transpose for dense plane
    /// spans.
    Auto = 0,
    /// The pre-specialization path: one full 64×64 transpose per block
    /// regardless of plane count. Kept selectable for A/B benchmarking.
    Generic = 1,
    /// The portable specialized kernels, never AVX2 (regardless of CPU).
    Portable = 2,
}

/// Process-wide kernel override, settable via [`force_scatter_impl`] or the
/// `IPC_SCATTER_IMPL` environment variable (`generic` / `portable` / `auto`),
/// mirroring the `IPC_STORE_FORCE_FILE` escape-hatch precedent.
static SCATTER_IMPL: EnvSwitch = EnvSwitch::new("IPC_SCATTER_IMPL");

/// Force every subsequent [`scatter_planes`] call onto one implementation
/// (benchmark A/B harnesses; decoded bits are identical either way).
pub fn force_scatter_impl(which: ScatterImpl) {
    SCATTER_IMPL.force(which as u8);
}

/// The implementation [`scatter_planes`] currently dispatches to.
pub fn scatter_impl() -> ScatterImpl {
    match SCATTER_IMPL.get(|env| match env {
        Some("generic") => ScatterImpl::Generic as u8,
        Some("portable") => ScatterImpl::Portable as u8,
        _ => ScatterImpl::Auto as u8,
    }) {
        1 => ScatterImpl::Generic,
        2 => ScatterImpl::Portable,
        _ => ScatterImpl::Auto,
    }
}

/// Whether the AVX2 grouped kernel is compiled in and supported by this CPU.
pub fn avx2_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Scatter packed plane byte streams into coefficient accumulator words.
///
/// `planes[j]` holds the packed bytes of plane `plane_lo + j` for this span of
/// coefficients (byte `k` covers coefficients `8k..8k+8`, coefficient `8k` at
/// the MSB); each stream must hold at least `out.len().div_ceil(8)` bytes.
/// Bit `plane_lo + j` of `out[i]` is OR-ed with coefficient `i`'s bit of
/// plane `j` — identical to gathering the block, OR-ing rows, and
/// re-transposing, but the kernel is chosen by live plane count (see module
/// docs) instead of always paying the full 64×64 transpose.
///
/// # Panics
///
/// Panics if `plane_lo + planes.len() > 64` or a plane stream is shorter than
/// the span requires.
pub fn scatter_planes(planes: &[&[u8]], plane_lo: usize, out: &mut [u64]) {
    assert!(
        plane_lo + planes.len() <= 64,
        "plane range exceeds a 64-bit word"
    );
    if planes.is_empty() || out.is_empty() {
        return;
    }
    let need = out.len().div_ceil(8);
    for p in planes {
        assert!(
            p.len() >= need,
            "plane stream shorter than coefficient span"
        );
    }
    match scatter_impl() {
        ScatterImpl::Generic => scatter_planes_generic(planes, plane_lo, out),
        ScatterImpl::Portable => scatter_planes_portable(planes, plane_lo, out),
        ScatterImpl::Auto => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was just verified at runtime.
                unsafe { avx2::scatter_planes_avx2(planes, plane_lo, out) };
                return;
            }
            scatter_planes_portable(planes, plane_lo, out)
        }
    }
}

/// Portable dispatch: grouped kernel while ≤ 32 planes are live (1–8, 9–16,
/// 17–32 plane buckets are 1, 2, and 4 group passes), full transpose above
/// that — with most rows live the dense kernel's fixed cost wins.
fn scatter_planes_portable(planes: &[&[u8]], plane_lo: usize, out: &mut [u64]) {
    if planes.len() <= 32 {
        scatter_planes_grouped(planes, plane_lo, out);
    } else {
        scatter_planes_generic(planes, plane_lo, out);
    }
}

/// The pre-specialization scatter: gather every block's live planes into a
/// 64×64 matrix and transpose, whatever the live count.
pub fn scatter_planes_generic(planes: &[&[u8]], plane_lo: usize, out: &mut [u64]) {
    for (b, block) in out.chunks_mut(64).enumerate() {
        let base = b * 8;
        let mut rows = [0u64; 64];
        for (j, p) in planes.iter().enumerate() {
            rows[plane_row(plane_lo + j)] = load_word_be(p, base);
        }
        transpose_64x64(&mut rows);
        for (word, row) in block.iter_mut().zip(rows.iter()) {
            *word |= row;
        }
    }
}

/// Load up to 8 packed plane bytes starting at `base` as an MSB-first word,
/// zero-padding past the end of the stream (ragged final block).
#[inline(always)]
fn load_word_be(p: &[u8], base: usize) -> u64 {
    if p.len() >= base + 8 {
        u64::from_be_bytes(p[base..base + 8].try_into().expect("8-byte slice"))
    } else if base >= p.len() {
        0
    } else {
        let mut bytes = [0u8; 8];
        bytes[..p.len() - base].copy_from_slice(&p[base..]);
        u64::from_be_bytes(bytes)
    }
}

/// 8×8 bit-matrix transpose (Hacker's Delight §7-2): viewing `x` as 8 rows of
/// 8 bits, row `r` in byte `7 - r` (MSB byte = row 0) and column `c` at bit
/// `7 - c` within its byte, the result is the transposed matrix.
#[inline(always)]
fn transpose8(mut x: u64) -> u64 {
    let mut t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Grouped portable kernel: live planes in groups of 8, one 8×8 transpose per
/// group per 8 coefficients. All-zero groups (common in sparse high planes)
/// skip the transpose and the output writes entirely. Groups iterate *inside*
/// the coefficient loop so each accumulator word is touched exactly once.
fn scatter_planes_grouped(planes: &[&[u8]], plane_lo: usize, out: &mut [u64]) {
    let n_groups = planes.len().div_ceil(8);
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        for g in 0..n_groups {
            let group = &planes[g * 8..(g * 8 + 8).min(planes.len())];
            // Row 7-j (byte j) holds plane j, so the transposed byte for
            // coefficient t carries plane j at bit j.
            let mut x = 0u64;
            for (j, p) in group.iter().enumerate() {
                x |= (p[i] as u64) << (8 * j);
            }
            if x == 0 {
                continue;
            }
            let y = transpose8(x);
            let shift = plane_lo + g * 8;
            for (t, word) in chunk.iter_mut().enumerate() {
                *word |= ((y >> (8 * (7 - t))) & 0xFF) << shift;
            }
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! AVX2 grouped scatter: expand each live plane's bits into a lane-per-
    //! coefficient byte mask (`shuffle_epi8` + `cmpeq_epi8`), OR the group's
    //! planes together at their in-byte bit positions, then widen the 32
    //! coefficient bytes to `u64` lanes (`cvtepu8_epi64`) and OR them into
    //! the accumulators at the group's plane shift.
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scatter_planes_avx2(planes: &[&[u8]], plane_lo: usize, out: &mut [u64]) {
        // Byte lane l of a 256-bit vector wants byte l/8 of the group's
        // 4-byte coefficient window; shuffle_epi8 indexes within 128-bit
        // halves, so the second half selects bytes 2 and 3.
        let idx = _mm256_setr_epi8(
            0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, //
            2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3,
        );
        // Lane l selects bit 7 - (l % 8): packed plane bytes are MSB-first.
        let bits = {
            let one_byte: [i8; 8] = [1 << 7, 1 << 6, 1 << 5, 1 << 4, 1 << 3, 1 << 2, 1 << 1, 1];
            let mut pattern = [0i8; 32];
            for (l, b) in pattern.iter_mut().enumerate() {
                *b = one_byte[l % 8];
            }
            _mm256_loadu_si256(pattern.as_ptr() as *const __m256i)
        };
        let n = out.len();
        let full_spans = n / 32;
        let n_groups = planes.len().div_ceil(8);
        for s in 0..full_spans {
            let byte_base = s * 4;
            for g in 0..n_groups {
                let group = &planes[g * 8..(g * 8 + 8).min(planes.len())];
                let mut acc = _mm256_setzero_si256();
                let mut any = 0u32;
                for (j, p) in group.iter().enumerate() {
                    let w = u32::from_le_bytes(
                        p[byte_base..byte_base + 4].try_into().expect("4 bytes"),
                    );
                    any |= w;
                    if w == 0 {
                        continue;
                    }
                    let v = _mm256_set1_epi32(w as i32);
                    let spread = _mm256_shuffle_epi8(v, idx);
                    let m = _mm256_cmpeq_epi8(_mm256_and_si256(spread, bits), bits);
                    let plane_bit = _mm256_set1_epi8((1u8 << j) as i8);
                    acc = _mm256_or_si256(acc, _mm256_and_si256(m, plane_bit));
                }
                if any == 0 {
                    continue;
                }
                // Widen the 32 coefficient bytes to u64 lanes and OR into the
                // accumulators at this group's plane shift (a runtime value,
                // so the shift count travels through an xmm register).
                let shift = _mm_cvtsi32_si128((plane_lo + g * 8) as i32);
                let mut lanes = [0u8; 32];
                _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
                let base = s * 32;
                for q in 0..8 {
                    let four =
                        i32::from_le_bytes(lanes[q * 4..q * 4 + 4].try_into().expect("4 bytes"));
                    let quad = _mm_cvtsi32_si128(four);
                    let wide = _mm256_sll_epi64(_mm256_cvtepu8_epi64(quad), shift);
                    let dst = out[base + q * 4..].as_mut_ptr() as *mut __m256i;
                    _mm256_storeu_si256(dst, _mm256_or_si256(_mm256_loadu_si256(dst), wide));
                }
            }
        }
        // Ragged tail (< 32 coefficients): portable grouped kernel on the
        // remaining bytes.
        let done = full_spans * 32;
        if done < n {
            let tail: Vec<&[u8]> = planes.iter().map(|p| &p[done / 8..]).collect();
            super::scatter_planes_grouped(&tail, plane_lo, &mut out[done..]);
        }
    }

    /// Bit-reversal of a 4-bit value: `movemask` yields lane 0 at bit 0, but
    /// packed plane words want coefficient 0 at the high end.
    const REV4: [u64; 16] = [
        0b0000, 0b1000, 0b0100, 0b1100, 0b0010, 0b1010, 0b0110, 0b1110, //
        0b0001, 0b1001, 0b0101, 0b1101, 0b0011, 0b1011, 0b0111, 0b1111,
    ];

    /// AVX2 gather: shift plane `p` into each lane's sign bit, then a
    /// `movemask_pd` harvests 4 coefficients' bits per instruction. The
    /// coefficient loop is outside the plane loop so each 4-word vector is
    /// loaded once and swept across all requested planes.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_plane_words_avx2(
        words: &[u64],
        plane_lo: usize,
        out: &mut [Vec<u64>],
    ) {
        for (b, block) in words.chunks(64).enumerate() {
            let full = block.len() / 4;
            for g in 0..full {
                let v = _mm256_loadu_si256(block.as_ptr().add(g * 4) as *const __m256i);
                let hi = 63 - 4 * g; // coefficient 4g sits at bit 63 - 4g
                for (j, plane) in out.iter_mut().enumerate() {
                    let shift = _mm_cvtsi32_si128((63 - (plane_lo + j)) as i32);
                    let m = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_sll_epi64(v, shift)));
                    plane[b] |= REV4[m as usize] << (hi - 3);
                }
            }
            // Ragged block tail (< 4 words): portable bit loop.
            for (i, &w) in block.iter().enumerate().skip(full * 4) {
                for (j, plane) in out.iter_mut().enumerate() {
                    plane[b] |= ((w >> (plane_lo + j)) & 1) << (63 - i);
                }
            }
        }
    }

    /// AVX2 64×64 bit-matrix transpose: the four wide rounds (`j` = 32, 16,
    /// 8, 4) pair rows four at a time with 256-bit shift/mask/XOR; the two
    /// narrow rounds (`j` = 2, 1) run the scalar recurrence. Bit-identical to
    /// [`super::transpose_64x64`] (pure bit movement).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn transpose_64x64_avx2(a: &mut [u64; 64]) {
        const ROUNDS: [(u32, u64); 4] = [
            (32, 0x0000_0000_FFFF_FFFF),
            (16, 0x0000_FFFF_0000_FFFF),
            (8, 0x00FF_00FF_00FF_00FF),
            (4, 0x0F0F_0F0F_0F0F_0F0F),
        ];
        for (j, m) in ROUNDS {
            let mask = _mm256_set1_epi64x(m as i64);
            let jc = _mm_cvtsi32_si128(j as i32);
            let mut k = 0usize;
            while k < 64 {
                if k & (j as usize) == 0 {
                    let pa = a.as_mut_ptr().add(k) as *mut __m256i;
                    let pb = a.as_mut_ptr().add(k + j as usize) as *mut __m256i;
                    let va = _mm256_loadu_si256(pa);
                    let vb = _mm256_loadu_si256(pb);
                    let t = _mm256_and_si256(_mm256_xor_si256(va, _mm256_srl_epi64(vb, jc)), mask);
                    _mm256_storeu_si256(pa, _mm256_xor_si256(va, t));
                    _mm256_storeu_si256(pb, _mm256_xor_si256(vb, _mm256_sll_epi64(t, jc)));
                }
                k += 4;
            }
        }
        for (j, m) in [(2u32, 0x3333_3333_3333_3333u64), (1, 0x5555_5555_5555_5555)] {
            let mut k = 0usize;
            while k < 64 {
                let t = (a[k] ^ (a[k + j as usize] >> j)) & m;
                a[k] ^= t;
                a[k + j as usize] ^= t << j;
                k = (k + j as usize + 1) & !(j as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::BitWriter;

    fn reference_bit(words: &[u64], p: usize, i: usize) -> bool {
        (words[i] >> p) & 1 == 1
    }

    #[test]
    fn transpose_is_involution_and_moves_single_bits() {
        let mut a = [0u64; 64];
        a[5] = 1 << 62; // element (5, 1)
        a[63] = 1; // element (63, 63)
        let orig = a;
        transpose_64x64(&mut a);
        assert_eq!(a[1], 1 << (63 - 5), "element (5,1) -> (1,5)");
        assert_eq!(a[63], 1 << 0, "element (63,63) stays");
        transpose_64x64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (r, c) matrix indices are the point
    fn transpose_matches_naive_on_pseudorandom_matrix() {
        let mut a = [0u64; 64];
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for row in a.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *row = x;
        }
        let orig = a;
        transpose_64x64(&mut a);
        for r in 0..64 {
            for c in 0..64 {
                let got = (a[r] >> (63 - c)) & 1;
                let want = (orig[c] >> (63 - r)) & 1;
                assert_eq!(got, want, "({r},{c})");
            }
        }
    }

    #[test]
    fn slice_planes_matches_bitwriter_exactly() {
        // Cover multiple blocks plus a ragged tail that is not byte-aligned.
        for n in [1usize, 7, 8, 63, 64, 65, 130, 200] {
            let words: Vec<u64> = (0..n)
                .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 40)
                .collect();
            let planes = slice_planes(&words, 64);
            for (p, plane) in planes.iter().enumerate() {
                let mut w = BitWriter::with_capacity_bits(n);
                for i in 0..n {
                    w.write_bit(reference_bit(&words, p, i));
                }
                assert_eq!(plane, &w.into_bytes(), "n={n} p={p}");
            }
        }
    }

    /// Bit-at-a-time reference for every scatter kernel: OR plane `lo + j`'s
    /// packed bit `i` into bit `lo + j` of `out[i]`.
    fn scatter_reference(planes: &[&[u8]], plane_lo: usize, out: &mut [u64]) {
        for (j, p) in planes.iter().enumerate() {
            for (i, w) in out.iter_mut().enumerate() {
                let bit = (p[i / 8] >> (7 - (i % 8))) & 1;
                *w |= (bit as u64) << (plane_lo + j);
            }
        }
    }

    /// Deterministic packed plane streams with mixed density (low planes
    /// dense, high planes sparse — the shape real negabinary levels have).
    fn sample_planes(n_planes: usize, n_bytes: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut x = seed | 1;
        (0..n_planes)
            .map(|p| {
                (0..n_bytes)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        // Thin out high planes so the zero-group skip paths run.
                        if p > 8 && !x.is_multiple_of(7) {
                            0
                        } else {
                            (x >> 32) as u8
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn scatter_kernels_agree_with_reference_at_every_plane_count() {
        // Sweep the kernel buckets (1–8, 9–16, 17–32, 33–64), plane offsets,
        // and ragged coefficient counts, comparing every implementation.
        for &n in &[1usize, 7, 8, 31, 32, 64, 65, 100, 256, 500, 515] {
            let n_bytes = n.div_ceil(8);
            for &count in &[1usize, 2, 5, 8, 9, 16, 17, 29, 32, 33, 48, 64] {
                for &lo in &[0usize, 1, 13, 40] {
                    if lo + count > 64 {
                        continue;
                    }
                    let streams = sample_planes(count, n_bytes, (n * 31 + count) as u64);
                    let planes: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
                    let mut want = vec![0u64; n];
                    scatter_reference(&planes, lo, &mut want);

                    let mut generic = vec![0u64; n];
                    scatter_planes_generic(&planes, lo, &mut generic);
                    assert_eq!(generic, want, "generic n={n} count={count} lo={lo}");

                    let mut grouped = vec![0u64; n];
                    scatter_planes_grouped(&planes, lo, &mut grouped);
                    assert_eq!(grouped, want, "grouped n={n} count={count} lo={lo}");

                    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                    if std::arch::is_x86_feature_detected!("avx2") {
                        let mut simd = vec![0u64; n];
                        // SAFETY: AVX2 presence verified above.
                        unsafe { avx2::scatter_planes_avx2(&planes, lo, &mut simd) };
                        assert_eq!(simd, want, "avx2 n={n} count={count} lo={lo}");
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_accumulates_on_top_of_loaded_planes() {
        // Two scatter calls into the same accumulators (refinement order:
        // high planes, then low) must land exactly like one combined call.
        let n = 200usize;
        let streams = sample_planes(12, n.div_ceil(8), 99);
        let planes: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        let mut combined = vec![0u64; n];
        scatter_planes(&planes, 3, &mut combined);
        let mut staged = vec![0u64; n];
        scatter_planes(&planes[6..], 3 + 6, &mut staged);
        scatter_planes(&planes[..6], 3, &mut staged);
        assert_eq!(staged, combined);
    }

    #[test]
    fn scatter_matches_plane_block_roundtrip() {
        // The kernels must reproduce the gather/transpose path bit for bit.
        let words: Vec<u64> = (0..130)
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let sliced = slice_planes(&words, 64);
        let planes: Vec<&[u8]> = sliced.iter().map(Vec::as_slice).collect();
        let mut out = vec![0u64; words.len()];
        scatter_planes(&planes, 0, &mut out);
        assert_eq!(out, words);
    }

    #[test]
    fn forced_scatter_impls_are_bit_identical() {
        let n = 777usize;
        let streams = sample_planes(20, n.div_ceil(8), 7);
        let planes: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();
        let run = |which: ScatterImpl| {
            force_scatter_impl(which);
            let mut out = vec![0u64; n];
            scatter_planes(&planes, 5, &mut out);
            out
        };
        let auto = run(ScatterImpl::Auto);
        let generic = run(ScatterImpl::Generic);
        let portable = run(ScatterImpl::Portable);
        force_scatter_impl(ScatterImpl::Auto);
        assert_eq!(auto, generic);
        assert_eq!(auto, portable);
    }

    #[test]
    fn gather_plane_words_matches_plane_block_on_every_range() {
        // The PlaneBlock transpose is the reference for the few-planes
        // gather, across ragged block sizes and plane offsets, on both
        // implementations.
        for &n in &[1usize, 3, 4, 7, 63, 64, 65, 130, 257, 500] {
            let words: Vec<u64> = (0..n)
                .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 17)
                .collect();
            for &(lo, count) in &[(0usize, 1usize), (5, 2), (13, 3), (40, 4), (62, 2), (0, 64)] {
                if lo + count > 64 {
                    continue;
                }
                let mut want = vec![vec![0u64; n.div_ceil(64)]; count];
                for (b, block) in words.chunks(64).enumerate() {
                    let pb = PlaneBlock::gather(block);
                    for (j, plane) in want.iter_mut().enumerate() {
                        plane[b] = pb.plane(lo + j);
                    }
                }
                let mut portable = vec![vec![0u64; n.div_ceil(64)]; count];
                gather_plane_words_portable(&words, lo, &mut portable);
                assert_eq!(portable, want, "portable n={n} lo={lo} count={count}");

                #[cfg(all(feature = "simd", target_arch = "x86_64"))]
                if std::arch::is_x86_feature_detected!("avx2") {
                    let mut simd = vec![vec![0u64; n.div_ceil(64)]; count];
                    // SAFETY: AVX2 presence verified above.
                    unsafe { avx2::gather_plane_words_avx2(&words, lo, &mut simd) };
                    assert_eq!(simd, want, "avx2 n={n} lo={lo} count={count}");
                }
            }
        }
    }

    #[test]
    fn forced_gather_impls_are_bit_identical() {
        let words: Vec<u64> = (0..300)
            .map(|i| (i as u64).wrapping_mul(0xD134_2543_DE82_EF95))
            .collect();
        let run = |which: GatherImpl| {
            force_gather_impl(which);
            let planes = slice_planes(&words, 48);
            let gathered = gather_plane_words(&words, 10, 3);
            force_gather_impl(GatherImpl::Auto);
            (planes, gathered)
        };
        let auto = run(GatherImpl::Auto);
        let portable = run(GatherImpl::Portable);
        assert_eq!(auto, portable);
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn avx2_transpose_matches_scalar() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let mut a = [0u64; 64];
        let mut x = 0xDEAD_BEEF_0BAD_F00Du64;
        for row in a.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *row = x;
        }
        let mut scalar = a;
        transpose_64x64(&mut scalar);
        // SAFETY: AVX2 presence verified above.
        unsafe { avx2::transpose_64x64_avx2(&mut a) };
        assert_eq!(a, scalar);
        // Involution through the AVX2 path too.
        unsafe { avx2::transpose_64x64_avx2(&mut a) };
        transpose_64x64(&mut scalar);
        assert_eq!(a, scalar);
    }

    #[test]
    fn plane_block_roundtrips_and_exposes_planes() {
        let words: Vec<u64> = (0..50).map(|i| (i as u64) << (i % 60)).collect();
        let block = PlaneBlock::gather(&words);
        for p in 0..64 {
            let w = block.plane(p);
            for (i, &src) in words.iter().enumerate() {
                assert_eq!(
                    (w >> (63 - i)) & 1,
                    (src >> p) & 1,
                    "plane {p} coefficient {i}"
                );
            }
        }
        let mut out = vec![0u64; 50];
        block.scatter(&mut out);
        assert_eq!(out, words);
    }
}
