//! Word-parallel bitplane slicing via 64×64 bit-matrix transposition.
//!
//! The bitplane coder views a batch of `u64` code words as a bit matrix: row `i`
//! is coefficient `i`, column `p` is bitplane `p`. Slicing planes out of that
//! matrix one bit at a time costs O(n · planes) shift/mask/branch operations; a
//! 64×64 bit transpose does the same job 64 coefficients at a time with
//! word-wide XORs, turning plane extraction into a handful of operations per
//! *word* instead of per *bit*.
//!
//! Conventions used throughout:
//!
//! * **Coefficient words** store plane `p` of a coefficient at bit `p`
//!   (least-significant bit = plane 0), exactly as produced by
//!   [`crate::negabinary::to_negabinary`].
//! * **Plane words** pack 64 coefficients MSB-first: coefficient `i` of the
//!   block sits at bit `63 - i`, so `u64::to_be_bytes` yields the byte layout of
//!   [`crate::bitstream::BitWriter`] (coefficient `8k` at the MSB of byte `k`).
//!   Within the transposed block, plane `p` lives at row [`plane_row`]`(p)`.

/// Row index of plane `p` in the output of [`transpose_64x64`] when the input
/// rows are coefficient words in block order.
#[inline(always)]
pub const fn plane_row(p: usize) -> usize {
    63 - p
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight §7-3, widened to 64).
///
/// Treating element `(r, c)` as bit `63 - c` of `a[r]`, the array is replaced by
/// its transpose: afterwards bit `63 - c` of `a[r]` equals bit `63 - r` of the
/// original `a[c]`. The operation is an involution.
#[inline]
pub fn transpose_64x64(a: &mut [u64; 64]) {
    let mut j: u32 = 32;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k: usize = 0;
        while k < 64 {
            let t = (a[k] ^ (a[k + j as usize] >> j)) & m;
            a[k] ^= t;
            a[k + j as usize] ^= t << j;
            k = (k + j as usize + 1) & !(j as usize);
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Slice packed coefficient words into per-plane MSB-first byte streams.
///
/// Returns `num_planes` buffers of `ceil(words.len() / 8)` bytes; buffer `p`
/// holds bit `p` of every coefficient in order, bit-identical to writing those
/// bits one at a time through [`crate::bitstream::BitWriter`] (including the
/// zero padding of the final byte).
pub fn slice_planes(words: &[u64], num_planes: usize) -> Vec<Vec<u8>> {
    assert!(num_planes <= 64, "a u64 word has at most 64 planes");
    let n = words.len();
    let plane_len = n.div_ceil(8);
    let mut planes = vec![vec![0u8; plane_len]; num_planes];
    for (b, block) in words.chunks(64).enumerate() {
        let mut m = [0u64; 64];
        m[..block.len()].copy_from_slice(block);
        transpose_64x64(&mut m);
        let base = b * 8;
        let nbytes = (plane_len - base).min(8);
        for (p, plane) in planes.iter_mut().enumerate() {
            let bytes = m[plane_row(p)].to_be_bytes();
            plane[base..base + nbytes].copy_from_slice(&bytes[..nbytes]);
        }
    }
    planes
}

/// One 64-coefficient block in plane-major form, for word-parallel per-plane
/// arithmetic (XOR prediction and the like) before scattering back.
#[derive(Debug, Clone)]
pub struct PlaneBlock {
    /// `rows[plane_row(p)]` holds plane `p`; coefficient `i` sits at bit `63-i`.
    rows: [u64; 64],
    /// Number of valid coefficients in this block (1..=64).
    len: usize,
}

impl PlaneBlock {
    /// Gather a block of up to 64 coefficient words into plane-major form.
    pub fn gather(block: &[u64]) -> Self {
        assert!(!block.is_empty() && block.len() <= 64);
        let mut rows = [0u64; 64];
        rows[..block.len()].copy_from_slice(block);
        transpose_64x64(&mut rows);
        Self {
            rows,
            len: block.len(),
        }
    }

    /// Plane `p` of the block as a packed word (coefficient `i` at bit `63-i`).
    #[inline(always)]
    pub fn plane(&self, p: usize) -> u64 {
        self.rows[plane_row(p)]
    }

    /// Scatter the block back into coefficient words.
    pub fn scatter(mut self, block: &mut [u64]) {
        assert_eq!(block.len(), self.len);
        transpose_64x64(&mut self.rows);
        block.copy_from_slice(&self.rows[..self.len]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::BitWriter;

    fn reference_bit(words: &[u64], p: usize, i: usize) -> bool {
        (words[i] >> p) & 1 == 1
    }

    #[test]
    fn transpose_is_involution_and_moves_single_bits() {
        let mut a = [0u64; 64];
        a[5] = 1 << 62; // element (5, 1)
        a[63] = 1; // element (63, 63)
        let orig = a;
        transpose_64x64(&mut a);
        assert_eq!(a[1], 1 << (63 - 5), "element (5,1) -> (1,5)");
        assert_eq!(a[63], 1 << 0, "element (63,63) stays");
        transpose_64x64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (r, c) matrix indices are the point
    fn transpose_matches_naive_on_pseudorandom_matrix() {
        let mut a = [0u64; 64];
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for row in a.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *row = x;
        }
        let orig = a;
        transpose_64x64(&mut a);
        for r in 0..64 {
            for c in 0..64 {
                let got = (a[r] >> (63 - c)) & 1;
                let want = (orig[c] >> (63 - r)) & 1;
                assert_eq!(got, want, "({r},{c})");
            }
        }
    }

    #[test]
    fn slice_planes_matches_bitwriter_exactly() {
        // Cover multiple blocks plus a ragged tail that is not byte-aligned.
        for n in [1usize, 7, 8, 63, 64, 65, 130, 200] {
            let words: Vec<u64> = (0..n)
                .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64) << 40)
                .collect();
            let planes = slice_planes(&words, 64);
            for (p, plane) in planes.iter().enumerate() {
                let mut w = BitWriter::with_capacity_bits(n);
                for i in 0..n {
                    w.write_bit(reference_bit(&words, p, i));
                }
                assert_eq!(plane, &w.into_bytes(), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn plane_block_roundtrips_and_exposes_planes() {
        let words: Vec<u64> = (0..50).map(|i| (i as u64) << (i % 60)).collect();
        let block = PlaneBlock::gather(&words);
        for p in 0..64 {
            let w = block.plane(p);
            for (i, &src) in words.iter().enumerate() {
                assert_eq!(
                    (w >> (63 - i)) & 1,
                    (src >> p) & 1,
                    "plane {p} coefficient {i}"
                );
            }
        }
        let mut out = vec![0u64; 50];
        block.scatter(&mut out);
        assert_eq!(out, words);
    }
}
