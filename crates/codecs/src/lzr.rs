//! LZR: the workspace's zstd stand-in — an LZ77-style match finder followed by a
//! table-driven entropy stage (interleaved rANS, with canonical Huffman kept as
//! a compatibility fallback).
//!
//! The IPComp paper feeds its predictively coded bitplanes (and SZ3 feeds its Huffman
//! output) into zstd, which contributes two things: repeated-pattern elimination and
//! entropy coding. LZR reproduces both roles with a greedy hash-chain LZ77 pass
//! (min match 4, 64 KiB window) whose token stream is then entropy coded. The exact
//! ratios differ from zstd, but the *relative* behaviour the paper argues about —
//! predictive bitplane coding preserving byte-level repetition better than Huffman
//! coding does — is preserved because both effects are still exploited.
//!
//! Token stream format (before the entropy stage):
//! `[literal_len varint][literal bytes][match_len varint][match_dist varint]`
//! repeated; a `match_len` of 0 terminates the stream (and carries no distance).
//!
//! ## Entropy-stage dispatch
//!
//! The container byte after the length varint selects how the body was coded:
//! `0` = stored token stream, `1` = canonical Huffman over tokens (the PR 1
//! stage, still read for version-1 containers), `2` = interleaved rANS over
//! tokens ([`crate::rans`]), `3` = rANS over the *raw input bytes*, `4` = the
//! raw input bytes verbatim. Modes 3 and 4 are chosen when the match finder
//! comes up empty: decode then skips the detokenization pass entirely — the
//! entropy decoder's output (or a straight copy) is the final data. The
//! encoder picks per buffer using exact pre-sized logic: the
//! Huffman size is computed from the histogram without packing a bit, rANS is
//! attempted only when its deterministic estimate can beat both that and the
//! store threshold, and the stored fallback keeps the historical rule that
//! entropy coding must shrink tokens by at least 1/8 (12.5%) to be worth a
//! decode pass — the same speed-for-marginal-ratio policy zstd applies to raw
//! blocks.

use crate::huffman::{
    huffman_decode_bytes_capped, huffman_encode_bytes_under, huffman_encoded_bytes_size,
};
use crate::rans::{rans_decode_bytes_capped, rans_encode_bytes_under};
use crate::varint::{read_varint, write_varint};
use crate::{CodecError, Result};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 16;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 16;

/// Default skip-step escalation shift of the tokenizer's empty-match path:
/// the scan step widens by one byte for every `2^shift` consecutive misses.
/// 5 (one step per 32 misses) skims incompressible stretches — dense
/// low-order bitplanes are essentially random bits — roughly twice as fast
/// as the historical 6, at a ratio cost measured in hundredths of a percent
/// (`BENCH_entropy.json` records the A/B).
const DEFAULT_SKIP_SHIFT: u32 = 5;

/// The historical escalation rate, kept so [`lzr_compress_huffman`] stays
/// byte-identical to the version-1 writer.
const V1_SKIP_SHIFT: u32 = 6;

/// Tokenizer tuning knobs (see [`lzr_compress_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzrOptions {
    /// Skip-step escalation shift of the empty-match path: the scan step
    /// widens by one byte every `2^skip_shift` consecutive misses.
    pub skip_shift: u32,
    /// Match candidates probed per position: `1` keeps the single-head hash
    /// table; `2` adds a one-deep hash chain (the previous head is retained
    /// as a second candidate and the longer match wins). Deeper values clamp
    /// to 2.
    pub match_candidates: u8,
}

impl Default for LzrOptions {
    fn default() -> Self {
        Self {
            skip_shift: DEFAULT_SKIP_SHIFT,
            match_candidates: 1,
        }
    }
}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Length of the match between `input[candidate..]` and `input[i..]`, or 0
/// when the candidate is unusable (absent or beyond the window).
#[inline]
fn match_len_at(input: &[u8], candidate: usize, i: usize) -> usize {
    if candidate == usize::MAX || i - candidate > WINDOW {
        return 0;
    }
    let max_len = (input.len() - i).min(MAX_MATCH);
    let mut l = 0usize;
    while l < max_len && input[candidate + l] == input[i + l] {
        l += 1;
    }
    l
}

/// Produce the raw LZ77 token stream for `input` (no entropy stage).
fn lz_tokenize(input: &[u8], skip_shift: u32, match_candidates: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    // One-deep hash chain: `prev[h]` holds the head displaced by the last
    // insert, giving a second (older) candidate per bucket. Only allocated
    // when the caller asked for it.
    let chained = match_candidates >= 2;
    let mut prev = if chained {
        vec![usize::MAX; 1 << HASH_BITS]
    } else {
        Vec::new()
    };
    let mut literal_start = 0usize;
    let mut i = 0usize;

    // LZ4-style acceleration: every `2^skip_shift` consecutive positions
    // without a match widen the scan step by one byte, so incompressible
    // stretches (dense low-order bitplanes are essentially random bits) are
    // skimmed instead of hashed byte by byte. A hit resets the step to 1.
    let mut misses = 0usize;

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = head[h];
        let older = if chained { prev[h] } else { usize::MAX };
        if chained {
            prev[h] = head[h];
        }
        head[h] = i;

        // Probe the recent head first; the older candidate only wins with a
        // strictly longer match (ties keep the shorter distance, which costs
        // fewer varint bytes).
        let mut match_len = match_len_at(input, candidate, i);
        let mut match_src = candidate;
        if chained && older != candidate {
            let l2 = match_len_at(input, older, i);
            if l2 > match_len {
                match_len = l2;
                match_src = older;
            }
        }

        if match_len >= MIN_MATCH {
            let dist = i - match_src;
            write_varint(&mut out, (i - literal_start) as u64);
            out.extend_from_slice(&input[literal_start..i]);
            write_varint(&mut out, match_len as u64);
            write_varint(&mut out, dist as u64);
            // Insert hash entries for a few positions inside the match so later
            // matches can refer into it, then skip ahead.
            let end = i + match_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < end && j < i + 16 {
                let hj = hash4(&input[j..]);
                if chained {
                    prev[hj] = head[hj];
                }
                head[hj] = j;
                j += 1;
            }
            i = end;
            literal_start = i;
            misses = 0;
        } else {
            misses += 1;
            i += 1 + (misses >> skip_shift);
        }
    }

    // Trailing literals + terminator.
    write_varint(&mut out, (input.len() - literal_start) as u64);
    out.extend_from_slice(&input[literal_start..]);
    write_varint(&mut out, 0); // match_len = 0 terminator
    out
}

/// Reverse of [`lz_tokenize`]. `expected_len` is the declared output size:
/// the expansion is rejected as soon as it would overrun it, so a corrupt
/// match length cannot balloon the output buffer.
fn lz_detokenize(tokens: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(expected_len.min(tokens.len().saturating_mul(8).max(64)));
    let mut pos = 0usize;
    loop {
        let lit_len = read_varint(tokens, &mut pos)? as usize;
        let lits = tokens
            .get(pos..pos.saturating_add(lit_len))
            .ok_or(CodecError::UnexpectedEof)?;
        if lit_len > expected_len - out.len() {
            return Err(CodecError::Corrupt("LZR literals overrun declared length"));
        }
        out.extend_from_slice(lits);
        pos += lit_len;
        let match_len = read_varint(tokens, &mut pos)? as usize;
        if match_len == 0 {
            return Ok(out);
        }
        if match_len > expected_len - out.len() {
            return Err(CodecError::Corrupt("LZR match overruns declared length"));
        }
        let dist = read_varint(tokens, &mut pos)? as usize;
        if dist == 0 || dist > out.len() {
            return Err(CodecError::Corrupt("match distance out of range"));
        }
        let start = out.len() - dist;
        // Bulk copy instead of a per-byte loop. Overlapping matches (dist <
        // match_len, e.g. the dist=1 runs that encode zero-filled bitplanes)
        // are expanded by doubling: each pass copies everything written since
        // `start`, so the copied span grows geometrically.
        let mut remaining = match_len;
        while remaining > 0 {
            let avail = out.len() - start;
            let take = avail.min(remaining);
            out.extend_from_within(start..start + take);
            remaining -= take;
        }
    }
}

/// Entropy-stage selection: `(mode byte, encoded bytes)` for a token stream.
///
/// All three candidates are sized before any expensive work: the store
/// threshold keeps the historical 1/8 rule, Huffman's exact size comes from
/// the histogram alone, and rANS runs only when its estimate can undercut the
/// better of the two (its final size check is exact).
fn entropy_stage(tokens: Vec<u8>) -> (u8, Vec<u8>) {
    let threshold = tokens.len() - tokens.len() / 8;
    let huffman_size = huffman_encoded_bytes_size(&tokens);
    if let Some(encoded) = rans_encode_bytes_under(&tokens, threshold.min(huffman_size)) {
        return (2, encoded);
    }
    if let Some(encoded) = huffman_encode_bytes_under(&tokens, threshold) {
        return (1, encoded);
    }
    (0, tokens)
}

/// Compress a byte buffer with the LZR backend (LZ77 + rANS/Huffman).
///
/// The output is self-describing and starts with the original length so that
/// [`lzr_decompress`] can pre-allocate and validate.
pub fn lzr_compress(input: &[u8]) -> Vec<u8> {
    lzr_compress_accel(input, DEFAULT_SKIP_SHIFT)
}

/// [`lzr_compress`] with an explicit skip-step escalation shift (the scan
/// step of the empty-match path widens every `2^skip_shift` misses).
///
/// Exposed as a tuning/benchmark hook: the throughput-vs-ratio A/B between
/// the historical shift (6) and the current default lives in
/// `BENCH_entropy.json`. Output at any shift decodes with the same reader —
/// the shift only changes which matches the tokenizer finds.
pub fn lzr_compress_accel(input: &[u8], skip_shift: u32) -> Vec<u8> {
    lzr_compress_with(
        input,
        &LzrOptions {
            skip_shift,
            match_candidates: 1,
        },
    )
}

/// [`lzr_compress`] with explicit tokenizer options (skip-step escalation and
/// hash-chain depth). Output under any options decodes with the same reader —
/// the knobs only change which matches the tokenizer finds; the ratio/speed
/// A/B between the single-head table and the 2-candidate chain lives in
/// `BENCH_entropy.json`.
pub fn lzr_compress_with(input: &[u8], options: &LzrOptions) -> Vec<u8> {
    let tokens = lz_tokenize(input, options.skip_shift, options.match_candidates);
    // When matching bought nothing (the token stream is no shorter than the
    // input), drop the token framing: entropy-code the raw bytes if that
    // pays (mode 3), otherwise store them verbatim (mode 4). Either way
    // decode skips detokenization — the entropy decoder's output (or a plain
    // copy) is the final data.
    let (mode, body) = if tokens.len() > input.len() {
        let threshold = input.len() - input.len() / 8;
        match rans_encode_bytes_under(input, threshold.min(huffman_encoded_bytes_size(input))) {
            Some(encoded) => (3u8, encoded),
            None => (4u8, input.to_vec()),
        }
    } else {
        entropy_stage(tokens)
    };
    let mut out = Vec::with_capacity(body.len() + 10);
    write_varint(&mut out, input.len() as u64);
    out.push(mode);
    out.extend_from_slice(&body);
    out
}

/// [`lzr_compress`] restricted to the PR 1 entropy stage (Huffman or store,
/// never rANS) and the PR 1 tokenizer escalation. Byte-identical to the
/// historical version-1 writer; kept so the benchmark harness can measure
/// the chunked rANS pipeline against the exact baseline it replaced.
pub fn lzr_compress_huffman(input: &[u8]) -> Vec<u8> {
    let tokens = lz_tokenize(input, V1_SKIP_SHIFT, 1);
    let entropy = huffman_encode_bytes_under(&tokens, tokens.len() - tokens.len() / 8);
    let mut out = Vec::with_capacity(tokens.len() + 10);
    write_varint(&mut out, input.len() as u64);
    match entropy {
        Some(entropy) => {
            out.push(1);
            out.extend_from_slice(&entropy);
        }
        None => {
            out.push(0);
            out.extend_from_slice(&tokens);
        }
    }
    out
}

/// Decompress a buffer produced by [`lzr_compress`].
///
/// This trusts the declared output length (a corrupt stream can make it
/// allocate up to that much); when decoding untrusted bytes prefer
/// [`lzr_decompress_bounded`], which rejects any stream whose declared length
/// exceeds what the caller knows the output must be.
pub fn lzr_decompress(input: &[u8]) -> Result<Vec<u8>> {
    lzr_decompress_bounded(input, usize::MAX)
}

/// [`lzr_decompress`] with an output-size cap: every allocation on the decode
/// path — token buffer, entropy symbol count, output expansion — is bounded
/// by `max_len`, so a corrupt length field costs a small error, not an OOM.
pub fn lzr_decompress_bounded(input: &[u8], max_len: usize) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let original_len = read_varint(input, &mut pos)? as usize;
    if original_len > max_len {
        return Err(CodecError::Corrupt("LZR declared length exceeds bound"));
    }
    let mode = *input.get(pos).ok_or(CodecError::UnexpectedEof)?;
    pos += 1;
    let body = &input[pos..];
    // The tokenizer never expands its input by more than ~3.3× (literal bytes
    // are bounded by the output, and every match token spends ≥ 4 output
    // bytes to buy at most 11 varint bytes), so any token stream longer than
    // this is corrupt regardless of content.
    let token_cap = original_len.saturating_mul(4).saturating_add(64);
    // Stored-mode bodies are detokenized in place — no defensive copy.
    let decoded;
    let tokens: &[u8] = match mode {
        4 => {
            // Raw stored bytes: the body is the data.
            if body.len() != original_len {
                return Err(CodecError::Corrupt("LZR length mismatch"));
            }
            return Ok(body.to_vec());
        }
        3 => {
            // Raw-byte rANS: the entropy decoder's output is the final data.
            let out = rans_decode_bytes_capped(body, original_len)?;
            if out.len() != original_len {
                return Err(CodecError::Corrupt("LZR length mismatch"));
            }
            return Ok(out);
        }
        2 => {
            decoded = rans_decode_bytes_capped(body, token_cap)?;
            &decoded
        }
        1 => {
            decoded = huffman_decode_bytes_capped(body, token_cap)?;
            &decoded
        }
        0 => body,
        _ => return Err(CodecError::Corrupt("unknown LZR container mode")),
    };
    let out = lz_detokenize(tokens, original_len)?;
    if out.len() != original_len {
        return Err(CodecError::Corrupt("LZR length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&[][..], &[1u8][..], &[1, 2, 3][..]] {
            let enc = lzr_compress(data);
            assert_eq!(lzr_decompress(&enc).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_repetitive_and_compresses() {
        let data: Vec<u8> = b"scientific data reduction "
            .iter()
            .copied()
            .cycle()
            .take(100_000)
            .collect();
        let enc = lzr_compress(&data);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
        assert!(
            enc.len() < data.len() / 10,
            "repetitive data should compress >10x, got {} -> {}",
            data.len(),
            enc.len()
        );
    }

    #[test]
    fn roundtrip_all_zero() {
        let data = vec![0u8; 1 << 18];
        let enc = lzr_compress(&data);
        assert!(enc.len() < 2048);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_random_bytes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let enc = lzr_compress(&data);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
        // Random data cannot shrink, but expansion must stay modest.
        assert!(enc.len() < data.len() + data.len() / 8 + 64);
    }

    #[test]
    fn roundtrip_structured_floats() {
        // Bit patterns of a smooth field: typical compressor intermediate data.
        let values: Vec<f64> = (0..20_000).map(|i| (i as f64 * 0.001).sin()).collect();
        let data = crate::byteio::f64_slice_to_bytes(&values);
        let enc = lzr_compress(&data);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn overlapping_match_copies_correctly() {
        // "aaaaa..." forces dist=1 matches that overlap the output being built.
        let data = vec![b'a'; 1000];
        let enc = lzr_compress(&data);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn compressible_streams_pick_rans() {
        // Mild skew that still dodges long matches: the entropy stage (not the
        // match finder) must be doing the work, and rANS should win it.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let data: Vec<u8> = (0..40_000)
            .map(|_| {
                let r: f64 = rng.gen();
                (r * r * r * 32.0) as u8 ^ (rng.gen::<u8>() & 1)
            })
            .collect();
        let enc = lzr_compress(&data);
        let mut pos = 0usize;
        read_varint(&enc, &mut pos).unwrap();
        assert!(
            enc[pos] == 2 || enc[pos] == 3,
            "skewed input should entropy-code as rANS, got mode {}",
            enc[pos]
        );
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
        // And never larger than the PR 1 Huffman encoding of the same input.
        let huffman = lzr_compress_huffman(&data);
        assert!(
            enc.len() <= huffman.len(),
            "rans {} vs huffman {}",
            enc.len(),
            huffman.len()
        );
    }

    #[test]
    fn huffman_only_writer_matches_v1_modes() {
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 11) as u8).collect();
        let enc = lzr_compress_huffman(&data);
        let mut pos = 0usize;
        read_varint(&enc, &mut pos).unwrap();
        assert!(enc[pos] <= 1, "v1 writer only emits store/Huffman");
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn chained_tokenizer_roundtrips_and_never_decodes_differently() {
        // The 2-candidate chain changes which matches are found, never the
        // format: every stream decodes back to the input.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let mut inputs: Vec<Vec<u8>> = Vec::new();
        inputs.push((0..60_000u32).map(|i| (i % 251) as u8).collect());
        inputs.push((0..50_000).map(|_| rng.gen::<u8>() & 0x1F).collect());
        // Interleaved repeats: two periodic patterns sharing hash buckets, so
        // the recent head is often the worse candidate and the chain pays.
        inputs.push(
            (0..80_000usize)
                .map(|i| {
                    if (i / 997) % 2 == 0 {
                        (i % 13) as u8
                    } else {
                        ((i * 7) % 11) as u8 + 100
                    }
                })
                .collect(),
        );
        for (k, data) in inputs.iter().enumerate() {
            for candidates in [1u8, 2, 3] {
                let opts = LzrOptions {
                    skip_shift: DEFAULT_SKIP_SHIFT,
                    match_candidates: candidates,
                };
                let enc = lzr_compress_with(data, &opts);
                assert_eq!(
                    &lzr_decompress(&enc).unwrap(),
                    data,
                    "input {k} c{candidates}"
                );
            }
        }
    }

    #[test]
    fn chained_tokenizer_finds_longer_matches_on_colliding_patterns() {
        // A long early run, a bucket-colliding interloper, then the run
        // again: the single-head table only sees the interloper; the chain
        // still reaches the full-length original.
        let run: Vec<u8> = (0..4096u32).map(|i| (i % 200) as u8).collect();
        let mut data = run.clone();
        data.extend_from_slice(&run[..8]); // displaces head entries
        data.extend(std::iter::repeat_n(0xEEu8, 64));
        data.extend_from_slice(&run);
        let single = lzr_compress_with(
            &data,
            &LzrOptions {
                skip_shift: DEFAULT_SKIP_SHIFT,
                match_candidates: 1,
            },
        );
        let chained = lzr_compress_with(
            &data,
            &LzrOptions {
                skip_shift: DEFAULT_SKIP_SHIFT,
                match_candidates: 2,
            },
        );
        assert_eq!(lzr_decompress(&single).unwrap(), data);
        assert_eq!(lzr_decompress(&chained).unwrap(), data);
        assert!(
            chained.len() <= single.len(),
            "chain must not lose ratio here: {} vs {}",
            chained.len(),
            single.len()
        );
    }

    #[test]
    fn default_options_match_plain_compress() {
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 97) as u8).collect();
        assert_eq!(
            lzr_compress_with(&data, &LzrOptions::default()),
            lzr_compress(&data)
        );
    }

    #[test]
    fn corrupt_stream_detected() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut enc = lzr_compress(&data);
        let mid = enc.len() / 2;
        enc[mid] ^= 0xFF;
        // Either an error or a wrong-length result; it must not panic.
        if let Ok(out) = lzr_decompress(&enc) {
            assert_ne!(out, data)
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let data = vec![42u8; 10_000];
        let enc = lzr_compress(&data);
        assert!(lzr_decompress(&enc[..4]).is_err());
    }

    #[test]
    fn bounded_decode_rejects_oversized_length_claims() {
        let data = vec![5u8; 4096];
        let enc = lzr_compress(&data);
        assert_eq!(lzr_decompress_bounded(&enc, 4096).unwrap(), data);
        assert!(matches!(
            lzr_decompress_bounded(&enc, 4095),
            Err(CodecError::Corrupt(_))
        ));
        // A forged huge length varint errors instead of allocating.
        let mut forged = Vec::new();
        write_varint(&mut forged, u64::MAX / 2);
        forged.push(0);
        forged.extend_from_slice(&[0, 0]);
        assert!(lzr_decompress_bounded(&forged, 1 << 20).is_err());
    }

    #[test]
    fn corrupt_match_length_cannot_balloon_output() {
        // Hand-built stored-mode stream: declares 100 output bytes but asks a
        // match to expand far beyond them.
        let mut tokens = Vec::new();
        write_varint(&mut tokens, 4);
        tokens.extend_from_slice(&[1, 2, 3, 4]);
        write_varint(&mut tokens, 1 << 40); // absurd match length
        write_varint(&mut tokens, 2);
        let mut stream = Vec::new();
        write_varint(&mut stream, 100);
        stream.push(0);
        stream.extend_from_slice(&tokens);
        assert!(matches!(
            lzr_decompress(&stream),
            Err(CodecError::Corrupt(_))
        ));
    }
}
