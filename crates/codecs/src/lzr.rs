//! LZR: the workspace's zstd stand-in — an LZ77-style match finder followed by a
//! byte-wise canonical Huffman entropy stage.
//!
//! The IPComp paper feeds its predictively coded bitplanes (and SZ3 feeds its Huffman
//! output) into zstd, which contributes two things: repeated-pattern elimination and
//! entropy coding. LZR reproduces both roles with a greedy hash-chain LZ77 pass
//! (min match 4, 64 KiB window) whose token stream is then Huffman coded. The exact
//! ratios differ from zstd, but the *relative* behaviour the paper argues about —
//! predictive bitplane coding preserving byte-level repetition better than Huffman
//! coding does — is preserved because both effects are still exploited.
//!
//! Token stream format (before the entropy stage):
//! `[literal_len varint][literal bytes][match_len varint][match_dist varint]`
//! repeated; a `match_len` of 0 terminates the stream (and carries no distance).

use crate::huffman::{huffman_decode_bytes, huffman_encode_bytes_under};
use crate::varint::{read_varint, write_varint};
use crate::{CodecError, Result};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 16;
const WINDOW: usize = 1 << 16;
const HASH_BITS: u32 = 16;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Produce the raw LZ77 token stream for `input` (no entropy stage).
fn lz_tokenize(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    // LZ4-style acceleration: every 64 consecutive positions without a match
    // widen the scan step by one byte, so incompressible stretches (dense
    // low-order bitplanes are essentially random bits) are skimmed instead of
    // hashed byte by byte. A hit resets the step to 1.
    let mut misses = 0usize;

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = head[h];
        head[h] = i;

        let mut match_len = 0usize;
        if candidate != usize::MAX && i - candidate <= WINDOW {
            let max_len = (input.len() - i).min(MAX_MATCH);
            let mut l = 0usize;
            while l < max_len && input[candidate + l] == input[i + l] {
                l += 1;
            }
            if l >= MIN_MATCH {
                match_len = l;
            }
        }

        if match_len >= MIN_MATCH {
            let dist = i - candidate;
            write_varint(&mut out, (i - literal_start) as u64);
            out.extend_from_slice(&input[literal_start..i]);
            write_varint(&mut out, match_len as u64);
            write_varint(&mut out, dist as u64);
            // Insert hash entries for a few positions inside the match so later
            // matches can refer into it, then skip ahead.
            let end = i + match_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < end && j < i + 16 {
                head[hash4(&input[j..])] = j;
                j += 1;
            }
            i = end;
            literal_start = i;
            misses = 0;
        } else {
            misses += 1;
            i += 1 + (misses >> 6);
        }
    }

    // Trailing literals + terminator.
    write_varint(&mut out, (input.len() - literal_start) as u64);
    out.extend_from_slice(&input[literal_start..]);
    write_varint(&mut out, 0); // match_len = 0 terminator
    out
}

/// Reverse of [`lz_tokenize`].
fn lz_detokenize(tokens: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(tokens.len() * 2);
    let mut pos = 0usize;
    loop {
        let lit_len = read_varint(tokens, &mut pos)? as usize;
        let lits = tokens
            .get(pos..pos + lit_len)
            .ok_or(CodecError::UnexpectedEof)?;
        out.extend_from_slice(lits);
        pos += lit_len;
        let match_len = read_varint(tokens, &mut pos)? as usize;
        if match_len == 0 {
            return Ok(out);
        }
        let dist = read_varint(tokens, &mut pos)? as usize;
        if dist == 0 || dist > out.len() {
            return Err(CodecError::Corrupt("match distance out of range"));
        }
        let start = out.len() - dist;
        // Bulk copy instead of a per-byte loop. Overlapping matches (dist <
        // match_len, e.g. the dist=1 runs that encode zero-filled bitplanes)
        // are expanded by doubling: each pass copies everything written since
        // `start`, so the copied span grows geometrically.
        let mut remaining = match_len;
        while remaining > 0 {
            let avail = out.len() - start;
            let take = avail.min(remaining);
            out.extend_from_within(start..start + take);
            remaining -= take;
        }
    }
}

/// Compress a byte buffer with the LZR backend (LZ77 + Huffman).
///
/// The output is self-describing and starts with the original length so that
/// [`lzr_decompress`] can pre-allocate and validate.
pub fn lzr_compress(input: &[u8]) -> Vec<u8> {
    let tokens = lz_tokenize(input);
    // Fall back to storing tokens raw unless the entropy stage shrinks them by
    // at least 1/8 (12.5%): near-incompressible token streams (dense low-order
    // bitplanes) would otherwise pay a full Huffman decode on every load to
    // save a few bytes — the same speed-for-marginal-ratio policy zstd applies
    // to raw blocks. The exact encoded size is known from the histogram alone,
    // so rejected streams skip the bit-packing pass entirely.
    let entropy = huffman_encode_bytes_under(&tokens, tokens.len() - tokens.len() / 8);
    let mut out = Vec::with_capacity(tokens.len() + 10);
    write_varint(&mut out, input.len() as u64);
    match entropy {
        Some(entropy) => {
            out.push(1);
            out.extend_from_slice(&entropy);
        }
        None => {
            out.push(0);
            out.extend_from_slice(&tokens);
        }
    }
    out
}

/// Decompress a buffer produced by [`lzr_compress`].
pub fn lzr_decompress(input: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let original_len = read_varint(input, &mut pos)? as usize;
    let mode = *input.get(pos).ok_or(CodecError::UnexpectedEof)?;
    pos += 1;
    let body = &input[pos..];
    // Stored-mode bodies are detokenized in place — no defensive copy.
    let decoded;
    let tokens: &[u8] = match mode {
        1 => {
            decoded = huffman_decode_bytes(body)?;
            &decoded
        }
        0 => body,
        _ => return Err(CodecError::Corrupt("unknown LZR container mode")),
    };
    let out = lz_detokenize(tokens)?;
    if out.len() != original_len {
        return Err(CodecError::Corrupt("LZR length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&[][..], &[1u8][..], &[1, 2, 3][..]] {
            let enc = lzr_compress(data);
            assert_eq!(lzr_decompress(&enc).unwrap(), data);
        }
    }

    #[test]
    fn roundtrip_repetitive_and_compresses() {
        let data: Vec<u8> = b"scientific data reduction "
            .iter()
            .copied()
            .cycle()
            .take(100_000)
            .collect();
        let enc = lzr_compress(&data);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
        assert!(
            enc.len() < data.len() / 10,
            "repetitive data should compress >10x, got {} -> {}",
            data.len(),
            enc.len()
        );
    }

    #[test]
    fn roundtrip_all_zero() {
        let data = vec![0u8; 1 << 18];
        let enc = lzr_compress(&data);
        assert!(enc.len() < 2048);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_random_bytes() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let enc = lzr_compress(&data);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
        // Random data cannot shrink, but expansion must stay modest.
        assert!(enc.len() < data.len() + data.len() / 8 + 64);
    }

    #[test]
    fn roundtrip_structured_floats() {
        // Bit patterns of a smooth field: typical compressor intermediate data.
        let values: Vec<f64> = (0..20_000).map(|i| (i as f64 * 0.001).sin()).collect();
        let data = crate::byteio::f64_slice_to_bytes(&values);
        let enc = lzr_compress(&data);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn overlapping_match_copies_correctly() {
        // "aaaaa..." forces dist=1 matches that overlap the output being built.
        let data = vec![b'a'; 1000];
        let enc = lzr_compress(&data);
        assert_eq!(lzr_decompress(&enc).unwrap(), data);
    }

    #[test]
    fn corrupt_stream_detected() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut enc = lzr_compress(&data);
        let mid = enc.len() / 2;
        enc[mid] ^= 0xFF;
        // Either an error or a wrong-length result; it must not panic.
        if let Ok(out) = lzr_decompress(&enc) {
            assert_ne!(out, data)
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let data = vec![42u8; 10_000];
        let enc = lzr_compress(&data);
        assert!(lzr_decompress(&enc[..4]).is_err());
    }
}
