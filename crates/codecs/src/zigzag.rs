//! Zigzag sign folding.
//!
//! The baseline coders (SZ3's Huffman stage, ZFP's exponent handling, header
//! varints) need a dense non-negative representation of signed integers. Zigzag maps
//! `0, -1, 1, -2, 2, …` to `0, 1, 2, 3, 4, …` so that small-magnitude values stay
//! small regardless of sign.

/// Map a signed integer to an unsigned one with interleaved sign.
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_interleave() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(2), 4);
    }

    #[test]
    fn roundtrip() {
        for v in -100_000i64..100_000 {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        for &v in &[i64::MIN, i64::MAX, i64::MIN + 1, i64::MAX - 1] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }
}
