//! Interleaved range asymmetric numeral system (rANS) coding over bytes.
//!
//! This is the workspace's table-driven entropy stage in the FSE/zstd lineage:
//! symbol probabilities are normalized to a 12-bit table
//! ([`SCALE_BITS`]), and four word-renormalized 64-bit rANS states are
//! interleaved so the per-symbol dependency chains of consecutive symbols
//! overlap in the pipeline. Against canonical Huffman (the PR 1 entropy stage)
//! rANS wins on both axes the chunked bitplane pipeline cares about:
//!
//! * **Ratio** — symbols cost fractional bits (`log2(4096/freq)`), not the
//!   integer code lengths Huffman rounds to, which matters for the heavily
//!   skewed token histograms predictive bitplane coding produces.
//! * **Speed** — decode is one table lookup, one multiply, and a branch-free
//!   slot arithmetic step per symbol; there is no bit-buffer shifting by
//!   variable code lengths.
//!
//! The encoder walks the input backwards (rANS is last-in-first-out),
//! collecting renorm words into a `u32` list that is assembled in reverse
//! at the end, so the decoder streams strictly forward. Two
//! implementation choices keep the per-symbol critical path short:
//!
//! * **64-bit states, 32-bit renormalization.** States live in
//!   `[2³¹, 2⁶³)` and refill a whole `u32` at a time. One refill always
//!   suffices, so renormalization is a single well-predicted branch per
//!   symbol — not the classic byte-at-a-time loop whose data-dependent trip
//!   count mispredicts constantly.
//! * **Reciprocal division.** The encoder's `x / freq` uses a precomputed
//!   fixed-point reciprocal (the widening-multiply construction of ryg's
//!   `rans_byte`, scaled from 32- to 64-bit states), exact over the whole
//!   state interval for every legal frequency.
//!
//! ## Stream format
//!
//! ```text
//! varint n            -- number of symbols
//! (if n > 0)
//! varint n_present    -- distinct symbols in the table (1..=256)
//! n_present × { u8 symbol, varint freq }   -- ascending symbols, Σfreq = 4096
//! varint payload_len
//! payload             -- 32 bytes of initial state (4 × u64 BE), then u32 renorm words
//! ```
//!
//! ## Integrity
//!
//! Decoding is hardened against corrupt headers: frequency tables that do not
//! sum to exactly 4096 are rejected, the symbol count can be capped by the
//! caller ([`rans_decode_bytes_capped`]) so a corrupt count cannot force a
//! huge allocation, and after the last symbol all four states must have
//! returned to their initial value with the payload fully consumed — a check
//! that catches virtually every payload bit flip.

use crate::varint::{read_varint, varint_len, write_varint};
use crate::{CodecError, Result};

/// Probabilities are normalized to sum to `1 << SCALE_BITS`.
pub const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the renormalization interval; states live in `[L, L << 32)`.
const RANS_L: u64 = 1 << 31;

/// Per-symbol encoder constants. `x / freq` on the hot path is computed as
/// `(x · rcp_freq) >> rcp_shift` in 128-bit arithmetic — ryg's `rans_byte`
/// reciprocal construction widened from 32- to 64-bit states, exact for
/// `x < 2^63` (the states never exceed `L << 32 = 2^63`).
#[derive(Clone, Copy, Default)]
struct EncSymbol {
    rcp_freq: u64,
    rcp_shift: u32,
    bias: u32,
    cmpl_freq: u32,
    x_max: u64,
}

impl EncSymbol {
    fn new(start: u32, freq: u32) -> Self {
        debug_assert!(freq > 0 && freq <= SCALE);
        let (rcp_freq, rcp_shift, bias) = if freq < 2 {
            // freq = 1: q = x·(2⁶⁴−1) >> 64 = x − 1 for 0 < x < 2⁶⁴, and
            // x + start + SCALE − 1 + (x−1)(SCALE−1) = (x << SCALE_BITS) + start.
            (u64::MAX, 0, start + SCALE - 1)
        } else {
            // shift = ceil(log2 freq); rcp = ceil(2^(shift+63) / freq) fits a
            // u64 because freq > 2^(shift−1).
            let mut shift = 0u32;
            while freq > (1u32 << shift) {
                shift += 1;
            }
            let rcp = (1u128 << (shift + 63)).div_ceil(freq as u128) as u64;
            (rcp, shift - 1, start)
        };
        Self {
            rcp_freq,
            rcp_shift: rcp_shift + 64,
            bias,
            cmpl_freq: SCALE - freq,
            x_max: ((RANS_L >> SCALE_BITS) << 32) * freq as u64,
        }
    }

    #[inline(always)]
    fn encode(&self, x: u64, out: &mut Vec<u8>) -> u64 {
        // One u32 emit always restores `x < x_max` (x < 2^63 and
        // x_max ≥ 2^51), so renormalization is a single branch.
        let mut x = x;
        if x >= self.x_max {
            out.extend_from_slice(&(x as u32).to_le_bytes());
            x >>= 32;
        }
        let q = ((x as u128 * self.rcp_freq as u128) >> self.rcp_shift) as u64;
        x + self.bias as u64 + q * self.cmpl_freq as u64
    }

    /// [`EncSymbol::encode`] pushing the renorm word onto a `u32` word list
    /// instead of a byte buffer. The caller assembles the payload by walking
    /// the list in reverse push order and writing each word big-endian —
    /// which is exactly the byte stream the legacy build-forward-then-
    /// `reverse()` path produced (reversing little-endian bytes of words in
    /// emit order), so the output stays byte-identical while the hot loop
    /// touches only the words actually emitted: no pre-zeroed 4·n scratch
    /// buffer and no whole-payload reversal pass.
    #[inline(always)]
    fn encode_push(&self, x: u64, words: &mut Vec<u32>) -> u64 {
        let mut x = x;
        if x >= self.x_max {
            words.push(x as u32);
            x >>= 32;
        }
        let q = ((x as u128 * self.rcp_freq as u128) >> self.rcp_shift) as u64;
        x + self.bias as u64 + q * self.cmpl_freq as u64
    }
}

/// Byte histogram with the counting loop split over four lanes: a run of
/// one repeated symbol makes the naive `hist[b] += 1` loop a serial chain
/// of store-forwarded increments to one slot, and heavily skewed inputs
/// are exactly what the predictive bitplane stage feeds this coder.
fn histogram(bytes: &[u8]) -> [u64; 256] {
    let mut lanes = [[0u32; 256]; 4];
    let mut it = bytes.chunks_exact(4);
    for q in &mut it {
        lanes[0][q[0] as usize] += 1;
        lanes[1][q[1] as usize] += 1;
        lanes[2][q[2] as usize] += 1;
        lanes[3][q[3] as usize] += 1;
    }
    for &b in it.remainder() {
        lanes[0][b as usize] += 1;
    }
    let mut hist = [0u64; 256];
    for s in 0..256 {
        hist[s] = lanes.iter().map(|l| u64::from(l[s])).sum();
    }
    // u32 lanes cannot overflow: chunk payloads are far below 4 GiB, and
    // the bitplane pipeline never feeds a single slice that large.
    debug_assert!(bytes.len() < u32::MAX as usize);
    hist
}

/// Normalize a byte histogram to frequencies summing to exactly [`SCALE`],
/// with every present symbol keeping a frequency of at least 1. Returns
/// `None` for an empty histogram.
fn normalize_freqs(hist: &[u64; 256]) -> Option<[u32; 256]> {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        return None;
    }
    let mut freqs = [0u32; 256];
    let mut sum = 0u64;
    for s in 0..256 {
        if hist[s] > 0 {
            let f = ((hist[s] as u128 * SCALE as u128) / total as u128) as u32;
            freqs[s] = f.max(1);
            sum += freqs[s] as u64;
        }
    }
    // Fix the rounding drift: steal from (or grant to) the symbols that can
    // best absorb it. Both loops are deterministic (ties break on the lowest
    // symbol) and bounded by the number of present symbols.
    while sum > SCALE as u64 {
        let s = (0..256)
            .filter(|&s| freqs[s] > 1)
            .max_by_key(|&s| freqs[s])
            .expect("sum > SCALE implies a shrinkable frequency");
        freqs[s] -= 1;
        sum -= 1;
    }
    if sum < SCALE as u64 {
        let s = (0..256)
            .max_by_key(|&s| hist[s])
            .expect("non-empty histogram");
        freqs[s] += (SCALE as u64 - sum) as u32;
    }
    Some(freqs)
}

/// `log2(x)` for `x ≥ 1` in Q8 fixed point, *underestimated* by at most
/// 0.086 bits (the linear-in-mantissa approximation). Integer-only so the
/// size estimate it feeds is bit-identical across platforms.
fn log2_q8(x: u32) -> u32 {
    debug_assert!(x >= 1);
    let e = 31 - x.leading_zeros();
    let frac = if e >= 8 {
        (x >> (e - 8)) - 256
    } else {
        (x << (8 - e)) - 256
    };
    (e << 8) + frac
}

/// Exact header length plus a deterministic *over*-estimate of the payload
/// length (the Q8 log underestimates `log2 f`, so the per-symbol bit cost is
/// overestimated), used to skip hopeless encodes early.
fn estimated_size(hist: &[u64; 256], freqs: &[u32; 256], n: usize) -> usize {
    let mut header = varint_len(n as u64);
    let mut n_present = 0u64;
    let mut bits_q8 = 0u64;
    for s in 0..256 {
        if freqs[s] > 0 {
            n_present += 1;
            header += 1 + varint_len(freqs[s] as u64);
            let cost_q8 = (SCALE_BITS << 8) - log2_q8(freqs[s]);
            bits_q8 += hist[s] * cost_q8 as u64;
        }
    }
    header += varint_len(n_present);
    let payload = (bits_q8 as usize).div_ceil(8 * 256) + 32;
    header + varint_len(payload as u64) + payload
}

/// Encode `bytes` with 4-way interleaved rANS into a self-describing buffer.
pub fn rans_encode_bytes(bytes: &[u8]) -> Vec<u8> {
    rans_encode_bytes_under(bytes, usize::MAX).expect("unbounded encode always succeeds")
}

/// Encode `bytes` only if the encoded size ends up strictly smaller than
/// `limit`; returns `None` otherwise. A histogram-only size estimate rejects
/// clearly incompressible input before any encoding work, mirroring
/// [`crate::huffman::huffman_encode_bytes_under`]; the final decision is made
/// on the exact encoded size.
pub fn rans_encode_bytes_under(bytes: &[u8], limit: usize) -> Option<Vec<u8>> {
    let n = bytes.len();
    if n == 0 {
        let mut out = Vec::with_capacity(1);
        write_varint(&mut out, 0);
        return (out.len() < limit).then_some(out);
    }
    let hist = histogram(bytes);
    let freqs = normalize_freqs(&hist).expect("n > 0");
    if limit != usize::MAX {
        // The estimate overshoots the true size by at most ~1.1% + rounding,
        // so anything beyond that margin cannot come in under the limit.
        let est = estimated_size(&hist, &freqs, n);
        if est > limit + limit / 16 + 16 {
            return None;
        }
    }

    // Cumulative starts + encoder tables.
    let mut syms = [EncSymbol::default(); 256];
    let mut start = 0u32;
    for s in 0..256 {
        if freqs[s] > 0 {
            syms[s] = EncSymbol::new(start, freqs[s]);
            start += freqs[s];
        }
    }
    debug_assert_eq!(start, SCALE);

    // Header.
    let mut out = Vec::with_capacity(n / 2 + 64);
    write_varint(&mut out, n as u64);
    let n_present = freqs.iter().filter(|&&f| f > 0).count();
    write_varint(&mut out, n_present as u64);
    for s in 0..256u32 {
        if freqs[s as usize] > 0 {
            out.push(s as u8);
            write_varint(&mut out, freqs[s as usize] as u64);
        }
    }

    // Payload: symbol i is coded by state i & 3, walking from the last
    // symbol to the first; each renorm emit pushes one u32 onto `words`.
    // Compressible input emits far fewer than one word per symbol, so the
    // hot loop only ever touches live words — unlike a pre-sized `4n + 32`
    // byte scratch buffer, whose zeroing memset alone costs ~4× the input
    // size and measurably loses to the legacy grow-as-you-go path. The
    // four states live in locals so their dependency chains stay
    // independent in the pipeline.
    let mut words: Vec<u32> = Vec::with_capacity(n / 2 + 8);
    let mut states = [RANS_L; 4];
    let (main, tail) = bytes.split_at(n & !3);
    // Trailing 0–3 symbols first (they are encoded last-to-first); `main`'s
    // length is a multiple of 4, so global index `main.len() + j` has state
    // `j & 3`.
    for (j, &b) in tail.iter().enumerate().rev() {
        states[j & 3] = syms[b as usize].encode_push(states[j & 3], &mut words);
    }
    let mut x0 = states[0];
    let mut x1 = states[1];
    let mut x2 = states[2];
    let mut x3 = states[3];
    for quad in main.rchunks_exact(4) {
        x3 = syms[quad[3] as usize].encode_push(x3, &mut words);
        x2 = syms[quad[2] as usize].encode_push(x2, &mut words);
        x1 = syms[quad[1] as usize].encode_push(x1, &mut words);
        x0 = syms[quad[0] as usize].encode_push(x0, &mut words);
    }
    // Assemble decoder-forward: the 32-byte state flush (the decoder reads
    // state 0 as 8 big-endian bytes first, then states 1, 2, 3), followed
    // by the renorm words in *reverse* push order, each big-endian.
    let payload_len = 32 + 4 * words.len();
    write_varint(&mut out, payload_len as u64);
    out.reserve(payload_len);
    for x in [x0, x1, x2, x3] {
        out.extend_from_slice(&x.to_be_bytes());
    }
    for &w in words.iter().rev() {
        out.extend_from_slice(&w.to_be_bytes());
    }
    (out.len() < limit).then_some(out)
}

/// The pre-PR-9 encoder: grow-as-you-go payload built in emit order and
/// reversed once at the end. Kept (not wired into any production path) as
/// the baseline of the encode A/B in `bench_entropy` and the byte-identity
/// oracle for [`rans_encode_bytes`]'s reverse-assembled word-list writer.
#[doc(hidden)]
pub fn rans_encode_bytes_legacy(bytes: &[u8]) -> Vec<u8> {
    let n = bytes.len();
    let mut out = Vec::with_capacity(n / 2 + 64);
    write_varint(&mut out, n as u64);
    if n == 0 {
        return out;
    }
    let mut hist = [0u64; 256];
    for &b in bytes {
        hist[b as usize] += 1;
    }
    let freqs = normalize_freqs(&hist).expect("n > 0");
    let mut syms = [EncSymbol::default(); 256];
    let mut start = 0u32;
    for s in 0..256 {
        if freqs[s] > 0 {
            syms[s] = EncSymbol::new(start, freqs[s]);
            start += freqs[s];
        }
    }
    let n_present = freqs.iter().filter(|&&f| f > 0).count();
    write_varint(&mut out, n_present as u64);
    for s in 0..256u32 {
        if freqs[s as usize] > 0 {
            out.push(s as u8);
            write_varint(&mut out, freqs[s as usize] as u64);
        }
    }
    let mut payload = Vec::with_capacity(n / 2 + 40);
    let mut states = [RANS_L; 4];
    let (main, tail) = bytes.split_at(n & !3);
    for (j, &b) in tail.iter().enumerate().rev() {
        states[j & 3] = syms[b as usize].encode(states[j & 3], &mut payload);
    }
    let mut x0 = states[0];
    let mut x1 = states[1];
    let mut x2 = states[2];
    let mut x3 = states[3];
    for quad in main.rchunks_exact(4) {
        x3 = syms[quad[3] as usize].encode(x3, &mut payload);
        x2 = syms[quad[2] as usize].encode(x2, &mut payload);
        x1 = syms[quad[1] as usize].encode(x1, &mut payload);
        x0 = syms[quad[0] as usize].encode(x0, &mut payload);
    }
    for x in [x3, x2, x1, x0] {
        payload.extend_from_slice(&x.to_le_bytes());
    }
    payload.reverse();
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decode a buffer produced by [`rans_encode_bytes`].
///
/// The declared symbol count is not bounded here — callers decoding untrusted
/// bytes should use [`rans_decode_bytes_capped`], since a low-entropy table
/// legitimately lets a tiny payload expand to an arbitrarily large output.
pub fn rans_decode_bytes(buf: &[u8]) -> Result<Vec<u8>> {
    rans_decode_bytes_capped(buf, usize::MAX)
}

/// [`rans_decode_bytes`] that rejects streams declaring more than
/// `max_symbols` symbols before allocating anything, so corrupt headers
/// cannot force an out-of-memory condition.
pub fn rans_decode_bytes_capped(buf: &[u8], max_symbols: usize) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let n = read_varint(buf, &mut pos)? as usize;
    if n > max_symbols {
        return Err(CodecError::Corrupt("rANS symbol count exceeds cap"));
    }
    if n == 0 {
        return Ok(Vec::new());
    }
    let n_present = read_varint(buf, &mut pos)? as usize;
    if n_present == 0 || n_present > 256 {
        return Err(CodecError::Corrupt("invalid rANS table size"));
    }
    // Frequency table → slot-to-symbol map + per-symbol (start, freq).
    let mut freq = [0u32; 256];
    let mut cum = [0u32; 256];
    let mut sym_of_slot = [0u8; SCALE as usize];
    let mut start = 0u32;
    let mut prev_sym: i32 = -1;
    for _ in 0..n_present {
        let sym = *buf.get(pos).ok_or(CodecError::UnexpectedEof)?;
        pos += 1;
        if (sym as i32) <= prev_sym {
            return Err(CodecError::Corrupt("rANS table symbols not ascending"));
        }
        prev_sym = sym as i32;
        let f = read_varint(buf, &mut pos)?;
        if f == 0 || f > SCALE as u64 || start as u64 + f > SCALE as u64 {
            return Err(CodecError::Corrupt("rANS frequency out of range"));
        }
        let f = f as u32;
        freq[sym as usize] = f;
        cum[sym as usize] = start;
        for slot in &mut sym_of_slot[start as usize..(start + f) as usize] {
            *slot = sym;
        }
        start += f;
    }
    if start != SCALE {
        return Err(CodecError::Corrupt("rANS frequencies do not sum to 4096"));
    }
    let payload_len = read_varint(buf, &mut pos)? as usize;
    let payload = buf
        .get(pos..pos.saturating_add(payload_len))
        .ok_or(CodecError::UnexpectedEof)?;
    if payload.len() < 32 {
        return Err(CodecError::UnexpectedEof);
    }
    // One packed entry per slot — `sym | (freq−1) << 8 | (slot − cum) << 20` —
    // so the decode step is a single 16 KiB-table load plus one multiply.
    // `freq − 1` fits 12 bits (4096 only occurs with every slot owned by one
    // symbol), and `slot − cum` is the offset inside the symbol's range.
    let mut slot_tab = [0u32; SCALE as usize];
    for (slot, entry) in slot_tab.iter_mut().enumerate() {
        let sym = sym_of_slot[slot];
        let bias = slot as u32 - cum[sym as usize];
        *entry = sym as u32 | ((freq[sym as usize] - 1) << 8) | (bias << 20);
    }
    let mut x0 = u64::from_be_bytes(payload[0..8].try_into().expect("8 bytes"));
    let mut x1 = u64::from_be_bytes(payload[8..16].try_into().expect("8 bytes"));
    let mut x2 = u64::from_be_bytes(payload[16..24].try_into().expect("8 bytes"));
    let mut x3 = u64::from_be_bytes(payload[24..32].try_into().expect("8 bytes"));
    let mut rp = 32usize;

    let mut out = vec![0u8; n];
    let mask = (SCALE - 1) as u64;

    // Decode transform + renormalization for one state: table load, one
    // multiply, and a single refill branch (the transform keeps `x ≥ 2^19`,
    // so one u32 refill always restores `x ≥ L`).
    macro_rules! step {
        ($x:ident, $read:expr) => {{
            let e = slot_tab[($x & mask) as usize];
            $x = ((((e >> 8) & 0xFFF) + 1) as u64) * ($x >> SCALE_BITS) + (e >> 20) as u64;
            if $x < RANS_L {
                $x = ($x << 32) | $read as u64;
                rp += 4;
            }
            e as u8
        }};
    }

    // Fast path: while ≥ 16 renorm bytes remain, a whole quad runs branch
    // free. The four decode transforms are independent, and each state's
    // refill becomes a speculative (always in-bounds) read plus a
    // conditional-move select — refills are data-dependent and mispredict
    // badly as branches. The output buffer is pre-sized so the stores are
    // plain indexed writes.
    macro_rules! fast_step {
        ($x:ident, $slot:expr) => {{
            let e = slot_tab[($x & mask) as usize];
            $x = ((((e >> 8) & 0xFFF) + 1) as u64) * ($x >> SCALE_BITS) + (e >> 20) as u64;
            out[$slot] = e as u8;
        }};
    }
    macro_rules! fast_renorm {
        ($x:ident) => {{
            let need = $x < RANS_L;
            let w = u32::from_be_bytes(payload[rp..rp + 4].try_into().expect("4 bytes"));
            let refilled = ($x << 32) | w as u64;
            $x = if need { refilled } else { $x };
            rp += 4 * need as usize;
        }};
    }
    let mut i = 0usize;
    while i + 4 <= n && rp + 16 <= payload.len() {
        fast_step!(x0, i);
        fast_step!(x1, i + 1);
        fast_step!(x2, i + 2);
        fast_step!(x3, i + 3);
        fast_renorm!(x0);
        fast_renorm!(x1);
        fast_renorm!(x2);
        fast_renorm!(x3);
        i += 4;
    }
    let read_checked = |rp: usize| -> Result<u32> {
        Ok(u32::from_be_bytes(
            payload
                .get(rp..rp + 4)
                .ok_or(CodecError::UnexpectedEof)?
                .try_into()
                .expect("4 bytes"),
        ))
    };
    while i < n {
        out[i] = match i & 3 {
            0 => step!(x0, read_checked(rp)?),
            1 => step!(x1, read_checked(rp)?),
            2 => step!(x2, read_checked(rp)?),
            _ => step!(x3, read_checked(rp)?),
        };
        i += 1;
    }
    // The encoder started every state at RANS_L and the byte stream must be
    // exactly spent; anything else means the stream was tampered with.
    if x0 != RANS_L || x1 != RANS_L || x2 != RANS_L || x3 != RANS_L || rp != payload.len() {
        return Err(CodecError::Corrupt("rANS stream failed integrity check"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::huffman::{huffman_decode_bytes, huffman_encode_bytes};
    use rand::{Rng, SeedableRng};

    fn roundtrip(data: &[u8]) {
        let enc = rans_encode_bytes(data);
        assert_eq!(rans_decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_edge_cases() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[255]);
        roundtrip(&[7; 1]);
        roundtrip(&[1, 2]);
        roundtrip(&[9; 3]);
    }

    #[test]
    fn roundtrip_single_symbol_run() {
        // freq = 4096 for one symbol: zero bits per symbol, payload is just
        // the four flushed states.
        let data = vec![42u8; 100_000];
        let enc = rans_encode_bytes(&data);
        assert!(
            enc.len() < 48,
            "degenerate run must be ~header-only: {}",
            enc.len()
        );
        assert_eq!(rans_decode_bytes(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_uniform_random() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let data: Vec<u8> = (0..60_000).map(|_| rng.gen()).collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_all_symbols() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        roundtrip(&data);
    }

    #[test]
    fn skewed_distribution_beats_huffman() {
        // 97% zeros: entropy ≈ 0.24 bits/symbol. Huffman floors at 1 bit per
        // symbol; rANS must land well under that.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let data: Vec<u8> = (0..50_000)
            .map(|_| {
                if rng.gen_bool(0.97) {
                    0
                } else {
                    rng.gen_range(1..5)
                }
            })
            .collect();
        let rans = rans_encode_bytes(&data);
        let huff = huffman_encode_bytes(&data);
        assert!(
            rans.len() < huff.len() * 2 / 3,
            "rans {} vs huffman {}",
            rans.len(),
            huff.len()
        );
        assert_eq!(rans_decode_bytes(&rans).unwrap(), data);
    }

    #[test]
    fn encode_under_rejects_incompressible_and_accepts_skewed() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let random: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        assert!(rans_encode_bytes_under(&random, random.len() - random.len() / 8).is_none());

        let skewed = vec![1u8; 10_000];
        let enc = rans_encode_bytes_under(&skewed, 5_000).expect("compressible");
        assert!(enc.len() < 5_000);
        assert_eq!(rans_decode_bytes(&enc).unwrap(), skewed);
    }

    #[test]
    fn truncated_stream_errors() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 17) as u8).collect();
        let enc = rans_encode_bytes(&data);
        for cut in [1, 5, enc.len() / 2, enc.len() - 1] {
            assert!(rans_decode_bytes(&enc[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn payload_bit_flips_are_detected() {
        let data: Vec<u8> = (0..4000u32).map(|i| (i % 7) as u8).collect();
        let enc = rans_encode_bytes(&data);
        let mut flipped_undetected = 0usize;
        for pos in 0..enc.len() {
            let mut bad = enc.clone();
            bad[pos] ^= 0x10;
            match rans_decode_bytes(&bad) {
                Err(_) => {}
                Ok(out) => {
                    // A flip in the symbol-count varint can legally describe a
                    // shorter stream; everything else must either error or
                    // produce different bytes, never panic.
                    if out == data {
                        flipped_undetected += 1;
                    }
                }
            }
        }
        assert_eq!(flipped_undetected, 0, "some corruption decoded identically");
    }

    #[test]
    fn symbol_count_cap_blocks_allocation_bombs() {
        // Degenerate table: one symbol at freq 4096 → a 16-byte stream can
        // claim terabytes of output.
        let mut bomb = Vec::new();
        write_varint(&mut bomb, 1 << 42);
        write_varint(&mut bomb, 1);
        bomb.push(0);
        write_varint(&mut bomb, SCALE as u64);
        write_varint(&mut bomb, 32);
        for _ in 0..4 {
            bomb.extend_from_slice(&RANS_L.to_be_bytes());
        }
        assert!(matches!(
            rans_decode_bytes_capped(&bomb, 1 << 20),
            Err(CodecError::Corrupt(_))
        ));
        // Under the cap the same degenerate stream is legal.
        let n = 1 << 10;
        let data = vec![0u8; n];
        let enc = rans_encode_bytes(&data);
        assert_eq!(rans_decode_bytes_capped(&enc, n).unwrap(), data);
        assert!(rans_decode_bytes_capped(&enc, n - 1).is_err());
    }

    #[test]
    fn bad_tables_rejected() {
        // Frequencies that do not sum to 4096.
        let mut bad = Vec::new();
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 2);
        bad.push(0);
        write_varint(&mut bad, 100);
        bad.push(1);
        write_varint(&mut bad, 100);
        write_varint(&mut bad, 8);
        bad.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            rans_decode_bytes(&bad),
            Err(CodecError::Corrupt(_))
        ));

        // Non-ascending symbols.
        let mut bad = Vec::new();
        write_varint(&mut bad, 4);
        write_varint(&mut bad, 2);
        bad.push(5);
        write_varint(&mut bad, 2048);
        bad.push(5);
        write_varint(&mut bad, 2048);
        write_varint(&mut bad, 8);
        bad.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            rans_decode_bytes(&bad),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn back_to_front_writer_matches_legacy_bytes() {
        // The optimized encoder must be a pure speedup: byte-identical
        // streams to the build-forward-then-reverse baseline on every
        // distribution shape (empty, tails of 1–3, skewed, uniform, runs).
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let mut cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![1, 2],
            vec![9; 3],
            vec![42; 10_000],
            (0..=255u8).cycle().take(10_001).collect(),
        ];
        cases.push((0..30_000).map(|_| rng.gen()).collect());
        cases.push(
            (0..30_000)
                .map(|_| {
                    if rng.gen_bool(0.95) {
                        0
                    } else {
                        rng.gen_range(1..8)
                    }
                })
                .collect(),
        );
        for data in &cases {
            assert_eq!(
                rans_encode_bytes(data),
                rans_encode_bytes_legacy(data),
                "len={}",
                data.len()
            );
        }
    }

    #[test]
    fn deterministic_output() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i * 31 % 200) as u8).collect();
        assert_eq!(rans_encode_bytes(&data), rans_encode_bytes(&data));
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Roundtrip over arbitrary byte vectors, including empty input.
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(proptest::any::<u8>(), 0..2000)) {
            let enc = rans_encode_bytes(&data);
            proptest::prop_assert_eq!(rans_decode_bytes(&enc).unwrap(), data);
        }

        /// Roundtrip equality against the Huffman path on skewed distributions:
        /// both entropy stages must reproduce the identical original bytes.
        #[test]
        fn prop_matches_huffman_roundtrip(
            data in proptest::collection::vec(0u8..4, 0..3000),
            spice in proptest::collection::vec(proptest::any::<u8>(), 0..50),
        ) {
            let mut data = data;
            data.extend_from_slice(&spice);
            let via_rans = rans_decode_bytes(&rans_encode_bytes(&data)).unwrap();
            let via_huffman = huffman_decode_bytes(&huffman_encode_bytes(&data)).unwrap();
            proptest::prop_assert_eq!(&via_rans, &via_huffman);
            proptest::prop_assert_eq!(via_rans, data);
        }

        /// Degenerate single-symbol distributions of every symbol value.
        #[test]
        fn prop_degenerate_runs(sym in proptest::any::<u8>(), len in 0usize..5000) {
            let data = vec![sym; len];
            let enc = rans_encode_bytes(&data);
            proptest::prop_assert_eq!(rans_decode_bytes(&enc).unwrap(), data);
        }
    }
}
