//! Bit-level and lossless coding substrate.
//!
//! The IPComp pipeline (paper Sec. 4) ends every level in a sequence of generic coding
//! stages: quantized integers are mapped to **negabinary**, sliced into bitplanes,
//! predictively XOR-coded, and the resulting bit/byte streams are compressed with a
//! lossless backend (the paper uses zstd; this workspace substitutes the [`lzr`]
//! LZ77+Huffman backend, see DESIGN.md). The SZ3 baseline additionally needs a
//! classical **Huffman** entropy stage over quantization codes.
//!
//! Everything here is self-contained and allocation-conscious:
//!
//! * [`bitstream`] — MSB-first bit writer/reader over byte buffers, with
//!   word-level (`u64`) fast paths for the bitplane coder.
//! * [`bitslice`] — 64×64 bit-matrix transposition for word-parallel bitplane
//!   slicing and scattering.
//! * [`negabinary`] — base(−2) integer representation (paper Sec. 4.4.2).
//! * [`zigzag`] — sign folding used by the baseline coders.
//! * [`varint`] — LEB128 variable-length integers for headers.
//! * [`huffman`] — canonical Huffman coder over `u32` symbols.
//! * [`rans`] — 4-way interleaved byte rANS with 12-bit normalized tables.
//! * [`rle`] — zero-run-length coding for sparse bitplanes.
//! * [`lzr`] — LZ77-style match finder + rANS/Huffman entropy stage (zstd
//!   stand-in).
//! * [`byteio`] — little-endian scalar/slice serialization helpers.

pub mod bitslice;
pub mod bitstream;
pub mod byteio;
pub mod envswitch;
pub mod huffman;
pub mod lzr;
pub mod negabinary;
pub mod rans;
pub mod rle;
pub mod varint;
pub mod zigzag;

pub use bitstream::{BitReader, BitWriter};
pub use envswitch::EnvSwitch;
pub use huffman::{huffman_decode, huffman_encode};
pub use lzr::{lzr_compress, lzr_compress_with, lzr_decompress, LzrOptions};
pub use negabinary::{from_negabinary, to_negabinary};
pub use rans::{rans_decode_bytes, rans_encode_bytes};
pub use rle::{rle_decode, rle_encode};
pub use zigzag::{zigzag_decode, zigzag_encode};

/// Errors produced while decoding compressed byte streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a complete value could be decoded.
    UnexpectedEof,
    /// A header or table contained an invalid value.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of compressed stream"),
            CodecError::Corrupt(msg) => write!(f, "corrupt compressed stream: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience alias for codec results.
pub type Result<T> = std::result::Result<T, CodecError>;
