//! Zero-run-length coding for sparse byte streams.
//!
//! High-order bitplanes of near-zero quantized residuals are almost entirely zero
//! bytes after packing (that is precisely why the paper picks negabinary, Sec. 4.4.2).
//! A cheap zero-run pre-pass ahead of the LZR backend shrinks those blocks at almost
//! no CPU cost.
//!
//! Format: a sequence of `(zero_run: varint, literal_len: varint, literal bytes)`
//! records; decoding stops when the input is exhausted.

use crate::varint::{read_varint, write_varint};
use crate::Result;

/// Encode `input` with zero-run-length coding.
pub fn rle_encode(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 16);
    let mut i = 0usize;
    while i < input.len() {
        // Count run of zero bytes.
        let zero_start = i;
        while i < input.len() && input[i] == 0 {
            i += 1;
        }
        let zero_run = i - zero_start;
        // Count run of literals: stop at a run of >= 4 zeros (shorter zero runs are
        // cheaper to keep as literals than to start a new record).
        let lit_start = i;
        let mut zeros_seen = 0usize;
        while i < input.len() {
            if input[i] == 0 {
                zeros_seen += 1;
                if zeros_seen >= 4 {
                    i -= zeros_seen - 1;
                    break;
                }
            } else {
                zeros_seen = 0;
            }
            i += 1;
        }
        let mut lit_end = i;
        // Trim trailing zeros out of the literal run (they belong to the next record).
        while lit_end > lit_start && input[lit_end - 1] == 0 {
            lit_end -= 1;
        }
        i = lit_end;
        write_varint(&mut out, zero_run as u64);
        write_varint(&mut out, (lit_end - lit_start) as u64);
        out.extend_from_slice(&input[lit_start..lit_end]);
        if lit_end == lit_start && zero_run == 0 {
            // Should be unreachable, but guards against an infinite loop.
            break;
        }
    }
    out
}

/// Decode a buffer produced by [`rle_encode`].
pub fn rle_decode(input: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut pos = 0usize;
    while pos < input.len() {
        let zero_run = read_varint(input, &mut pos)? as usize;
        let lit_len = read_varint(input, &mut pos)? as usize;
        out.resize(out.len() + zero_run, 0);
        let lits = input
            .get(pos..pos.saturating_add(lit_len))
            .ok_or(crate::CodecError::UnexpectedEof)?;
        out.extend_from_slice(lits);
        pos += lit_len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed() {
        let mut data = vec![0u8; 100];
        data.extend_from_slice(&[1, 2, 3, 0, 0, 4, 5]);
        data.extend(vec![0u8; 1000]);
        data.extend_from_slice(&[9; 33]);
        let enc = rle_encode(&data);
        assert_eq!(rle_decode(&enc).unwrap(), data);
        assert!(enc.len() < data.len() / 4);
    }

    #[test]
    fn roundtrip_empty() {
        assert_eq!(rle_decode(&rle_encode(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn roundtrip_all_zeros() {
        let data = vec![0u8; 65536];
        let enc = rle_encode(&data);
        assert!(enc.len() < 10);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_no_zeros() {
        let data: Vec<u8> = (1..=255u8).cycle().take(10_000).collect();
        let enc = rle_encode(&data);
        assert_eq!(rle_decode(&enc).unwrap(), data);
        // Overhead for incompressible data must stay small.
        assert!(enc.len() < data.len() + 64);
    }

    #[test]
    fn roundtrip_alternating() {
        let data: Vec<u8> = (0..10_000)
            .map(|i| if i % 7 == 0 { 0 } else { i as u8 })
            .collect();
        let enc = rle_encode(&data);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn roundtrip_trailing_zeros() {
        let mut data = vec![5u8, 6, 7];
        data.extend(vec![0u8; 512]);
        let enc = rle_encode(&data);
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn truncated_input_errors() {
        let data = vec![1u8; 100];
        let enc = rle_encode(&data);
        assert!(rle_decode(&enc[..enc.len() - 1]).is_err());
    }
}
