//! Lazily initialized process-wide dispatch switches.
//!
//! Several kernels in this workspace are selectable at runtime for A/B
//! benchmarking (`IPC_SCATTER_IMPL`, `IPC_GATHER_IMPL`, `IPC_CASCADE_IMPL`,
//! `IPC_CASCADE_STREAM`, `IPC_DECODE_OVERLAP`). They all share one shape: an
//! atomic byte that starts as "uninitialized", is populated from an
//! environment variable on first read, and can be overridden programmatically
//! at any time. [`EnvSwitch`] is that shape, once.

use std::sync::atomic::{AtomicU8, Ordering};

/// A process-wide `u8` switch initialized from an environment variable on
/// first read and overridable via [`EnvSwitch::force`].
///
/// The value `u8::MAX` is reserved as the "not yet initialized" sentinel;
/// parsers must not return it.
pub struct EnvSwitch {
    cell: AtomicU8,
    env_var: &'static str,
}

impl EnvSwitch {
    /// A switch backed by `env_var`, not yet initialized.
    pub const fn new(env_var: &'static str) -> Self {
        Self {
            cell: AtomicU8::new(u8::MAX),
            env_var,
        }
    }

    /// Override the switch for every subsequent [`EnvSwitch::get`].
    pub fn force(&self, value: u8) {
        debug_assert_ne!(value, u8::MAX, "u8::MAX is the uninitialized sentinel");
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Current value, initializing from the environment on first read.
    /// `parse` maps the variable's value (`None` when unset) to the stored
    /// byte and must not return `u8::MAX`.
    pub fn get(&self, parse: impl FnOnce(Option<&str>) -> u8) -> u8 {
        match self.cell.load(Ordering::Relaxed) {
            u8::MAX => {
                let value = parse(std::env::var(self.env_var).ok().as_deref());
                debug_assert_ne!(value, u8::MAX, "parser returned the sentinel");
                self.cell.store(value, Ordering::Relaxed);
                value
            }
            value => value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_variable_uses_parser_default_and_force_overrides() {
        let switch = EnvSwitch::new("IPC_ENVSWITCH_TEST_UNSET");
        assert_eq!(switch.get(|v| if v.is_some() { 1 } else { 7 }), 7);
        // Initialized: the parser no longer runs.
        assert_eq!(switch.get(|_| unreachable!()), 7);
        switch.force(3);
        assert_eq!(switch.get(|_| unreachable!()), 3);
    }

    #[test]
    fn force_before_first_get_skips_the_environment() {
        // No env mutation here: `set_var` would race `getenv` calls on
        // concurrently running test threads. The parse path is covered by
        // the unset-variable test above.
        let switch = EnvSwitch::new("IPC_ENVSWITCH_TEST_FORCED");
        switch.force(2);
        assert_eq!(switch.get(|_| unreachable!()), 2);
    }
}
