//! Lock-free metric primitives: counters, gauges, and fixed-bucket
//! log-linear histograms.
//!
//! Everything here is plain atomics — recording a sample is a handful of
//! relaxed adds with no locking, allocation, or branching on contended
//! state, so the primitives are safe to put on decode hot paths. With the
//! crate's `enabled` feature off, [`Histogram::record`] compiles to a no-op
//! (and the bucket array is never allocated); [`Counter`] stays live in both
//! modes because one relaxed add is exactly what the ad-hoc statistics
//! counters it replaces already cost.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event/byte counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add `n` (one relaxed add).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n`, returning the previous value (for callers that also use the
    /// counter as an atomic sequence, e.g. request indexing).
    #[inline]
    pub fn fetch_add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (benchmark harness epochs; not a hot-path operation).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (queue depths, residency).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-bucket resolution: 2^4 = 16 log-linear sub-buckets per octave, so a
/// bucket's width is at most 1/16 (6.25%) of its lower bound — percentile
/// estimates carry at most that relative error.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Values `0..SUB` get exact unit buckets; every octave `[2^o, 2^(o+1))` for
/// `o >= SUB_BITS` gets `SUB` equal sub-buckets.
pub(crate) const NBUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = ((v >> (octave - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    ((octave - SUB_BITS) as usize + 1) * SUB + sub
}

/// Inclusive `[lower, upper]` value range of bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        return (idx as u64, idx as u64);
    }
    let octave = (idx / SUB) as u32 + SUB_BITS - 1;
    let sub = (idx % SUB) as u64;
    let width = 1u64 << (octave - SUB_BITS);
    let lower = (1u64 << octave) + sub * width;
    // `width - 1` first: the top bucket's upper bound is exactly u64::MAX,
    // so `lower + width` would overflow.
    (lower, lower + (width - 1))
}

/// A fixed-bucket log-linear histogram of `u64` samples (durations in
/// nanoseconds, byte counts). Recording is three relaxed adds plus two
/// relaxed min/max updates; there are no locks and no allocation after
/// construction. Percentiles are exact to within one bucket width (≤ 6.25%
/// relative) and clamped to the observed min/max.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. Without the `enabled` feature the bucket array is
    /// empty and [`Histogram::record`] is a no-op.
    pub fn new() -> Self {
        let n = if cfg!(feature = "enabled") {
            NBUCKETS
        } else {
            0
        };
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !cfg!(feature = "enabled") || !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time copy for percentile math, merging, and
    /// export. (Consistency is per-field relaxed — exact once concurrent
    /// writers quiesce, which is when snapshots are taken.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Estimated value at quantile `q` in `[0, 1]` (see
    /// [`HistogramSnapshot::percentile`]).
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().percentile(q)
    }

    /// Reset all state to empty (benchmark harness epochs).
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Owned copy of a [`Histogram`]'s state: mergeable, queryable, exportable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket sample counts (empty when the crate is built without
    /// `enabled`).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `floor(q * (count - 1))`, clamped
    /// to the observed `[min, max]`. Within one bucket width (≤ 6.25%
    /// relative) of the exact order statistic; 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                let (_, upper) = bucket_bounds(idx);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold `other`'s samples into this snapshot. Merging snapshots and then
    /// querying is identical to having recorded every sample into one
    /// histogram.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (d, &s) in self.buckets.iter_mut().zip(&other.buckets) {
            *d += s;
        }
    }

    /// Stable JSON object summarizing the distribution — the per-histogram
    /// payload of the registry snapshot schema.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}}}",
            self.count,
            self.sum,
            self.mean(),
            if self.count == 0 { 0 } else { self.min },
            self.max,
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.95),
            self.percentile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_invert() {
        let mut samples = vec![0u64];
        for shift in 0u32..64 {
            let base = 1u64 << shift;
            for off in [0u64, 1, base / 3, base / 2, base - 1] {
                samples.push(base.saturating_add(off));
            }
        }
        samples.push(u64::MAX);
        samples.sort_unstable();
        let mut last = 0usize;
        for &v in &samples {
            let idx = bucket_index(v);
            assert!(idx < NBUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "v={v} idx={idx} last={last}");
            last = idx;
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn percentiles_track_exact_order_statistics() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 500u64), (0.9, 900), (0.99, 990)] {
            let est = h.percentile(q);
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "q={q} est={est} exact={exact}");
        }
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(1.0), 1000);
    }
}
