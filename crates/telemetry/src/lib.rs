//! Unified telemetry for the IPComp retrieval stack.
//!
//! One process-wide registry of lock-free [`Counter`]s, [`Gauge`]s, and
//! log-linear [`Histogram`]s (hot path: one relaxed atomic add), plus
//! lightweight [`trace`] spans with explicit clock injection so simulated
//! benchmarks and wall-clock runs share one schema. Exports are a stable
//! JSON snapshot ([`snapshot_json`]) and a chrome://tracing span dump
//! ([`trace::write_chrome_trace`], auto-enabled by `IPC_TRACE_OUT`).
//!
//! # Switches
//!
//! - **Compile time** — building with `--no-default-features` removes the
//!   `enabled` feature: histograms hold no buckets, spans never read the
//!   clock, and every timed instrument folds to a no-op. Counters stay live
//!   (one relaxed add — the same cost as the ad-hoc atomics they replaced).
//! - **Runtime** — `IPC_TELEMETRY=0` in the environment, or
//!   [`set_enabled`]`(false)`, mutes histograms and spans without a rebuild.
//! - **Tracing** — span *events* are additionally gated on [`trace::tracing`],
//!   switched on by setting `IPC_TRACE_OUT` or [`trace::set_tracing`];
//!   histogram recording does not require tracing.
//!
//! # Clocks
//!
//! Spans time themselves against the process clock ([`now_nanos`]):
//! monotonic wall time by default, or any injected [`Clock`] — e.g. a
//! [`ManualClock`] driven by a store simulation — via [`set_clock`]. Swapping
//! clocks is a test/bench affordance; the hot path pays one relaxed load to
//! detect a custom clock.

mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use trace::{span, span_timed, Span};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Version tag of the JSON snapshot schema (see [`snapshot_json`]).
pub const SNAPSHOT_SCHEMA: &str = "ipc-telemetry-v1";

// ---------------------------------------------------------------------------
// Runtime enable switch
// ---------------------------------------------------------------------------

/// 0 = uninitialised, 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether timed instrumentation (histograms, spans) is live. Always `false`
/// when the crate is built without the `enabled` feature; otherwise defaults
/// to `true` unless `IPC_TELEMETRY=0` is set, and can be flipped at runtime
/// with [`set_enabled`].
#[inline]
pub fn enabled() -> bool {
    if !cfg!(feature = "enabled") {
        return false;
    }
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_enabled(),
    }
}

#[cold]
fn init_enabled() -> bool {
    let on = !matches!(
        std::env::var("IPC_TELEMETRY").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    );
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Override the runtime enable switch (wins over `IPC_TELEMETRY`). A no-op
/// in builds without the `enabled` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Clock injection
// ---------------------------------------------------------------------------

/// A monotonic nanosecond clock that spans time themselves against.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin.
    fn now_nanos(&self) -> u64;
}

/// Monotonic wall time ([`Instant`]) since first use in this process.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

static EPOCH: OnceLock<Instant> = OnceLock::new();

impl Clock for RealClock {
    fn now_nanos(&self) -> u64 {
        let epoch = *EPOCH.get_or_init(Instant::now);
        Instant::now().duration_since(epoch).as_nanos() as u64
    }
}

/// A hand-advanced clock for simulations and deterministic tests. Cloning
/// shares the underlying time, so a store simulation can advance the same
/// clock the spans read.
#[derive(Debug, Default, Clone)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by `nanos`, returning the previous reading.
    pub fn advance(&self, nanos: u64) -> u64 {
        self.0.fetch_add(nanos, Ordering::Relaxed)
    }

    /// Jump to an absolute reading.
    pub fn set(&self, nanos: u64) {
        self.0.store(nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

static HAS_CUSTOM_CLOCK: AtomicBool = AtomicBool::new(false);
static CUSTOM_CLOCK: Mutex<Option<Arc<dyn Clock>>> = Mutex::new(None);

/// Install a custom process clock (e.g. a simulation's [`ManualClock`]), or
/// restore the default wall clock with `None`. Affects span timing globally;
/// intended for single-tenant benches and tests.
pub fn set_clock(clock: Option<Arc<dyn Clock>>) {
    let mut slot = CUSTOM_CLOCK.lock().expect("clock lock");
    HAS_CUSTOM_CLOCK.store(clock.is_some(), Ordering::Release);
    *slot = clock;
}

/// Current reading of the process clock (custom if installed, else
/// monotonic wall time). Returns 0 when telemetry is disabled so callers
/// never pay for a clock read they won't use.
#[inline]
pub fn now_nanos() -> u64 {
    if !enabled() {
        return 0;
    }
    if HAS_CUSTOM_CLOCK.load(Ordering::Acquire) {
        if let Some(clock) = CUSTOM_CLOCK.lock().expect("clock lock").as_ref() {
            return clock.now_nanos();
        }
    }
    RealClock.now_nanos()
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(Mutex::default)
}

/// The process-wide counter named `name`, created on first use. The handle
/// is `'static`: resolve it once (e.g. into a `OnceLock`) and the hot path
/// never touches the registry lock again.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().expect("registry lock");
    reg.counters
        .entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// The process-wide gauge named `name`, created on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry().lock().expect("registry lock");
    reg.gauges
        .entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// The process-wide histogram named `name`, created on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = registry().lock().expect("registry lock");
    reg.histograms
        .entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Zero every registered metric (benchmark harness epochs).
pub fn reset_all() {
    let reg = registry().lock().expect("registry lock");
    for c in reg.counters.values() {
        c.reset();
    }
    for g in reg.gauges.values() {
        g.set(0);
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

/// Escape `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stable JSON snapshot of every registered metric:
///
/// ```json
/// {
///   "schema": "ipc-telemetry-v1",
///   "enabled": true,
///   "counters": {"name": 42},
///   "gauges": {"name": -1},
///   "histograms": {"name": {"count": 9, "sum": 90, "mean": 10.0,
///                            "min": 1, "max": 30,
///                            "p50": 10, "p90": 28, "p95": 29, "p99": 30}}
/// }
/// ```
///
/// Keys are sorted (BTreeMap order) so snapshots diff cleanly; the schema is
/// covered by a stability test and is what the `BENCH_*.json` emitters embed.
pub fn snapshot_json() -> String {
    let reg = registry().lock().expect("registry lock");
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SNAPSHOT_SCHEMA}\",\n"));
    out.push_str(&format!("  \"enabled\": {},\n", enabled()));
    out.push_str("  \"counters\": {");
    let mut first = true;
    for (name, c) in &reg.counters {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", json_escape(name), c.get()));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"gauges\": {");
    first = true;
    for (name, g) in &reg.gauges {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", json_escape(name), g.get()));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
    out.push_str("  \"histograms\": {");
    first = true;
    for (name, h) in &reg.histograms {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    \"{}\": {}",
            json_escape(name),
            h.snapshot().to_json()
        ));
    }
    out.push_str(if first { "}\n" } else { "\n  }\n" });
    out.push('}');
    out
}
