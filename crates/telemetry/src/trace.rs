//! Lightweight trace spans and a chrome://tracing exporter.
//!
//! A [`Span`] is a scope guard: it reads the process clock on creation and
//! again on drop, records the duration into an optional histogram, and — when
//! tracing is switched on — appends a complete ("ph":"X") event to a global
//! in-memory buffer. [`write_chrome_trace`] drains that buffer into a JSON
//! file that loads directly in chrome://tracing or Perfetto.
//!
//! Tracing is off by default; setting the `IPC_TRACE_OUT` environment
//! variable (to the output path) or calling [`set_tracing`]`(true)` turns it
//! on. When both tracing is off and no histogram is attached, a span never
//! reads the clock.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::{enabled, now_nanos, Histogram};

/// Hard cap on buffered trace events; further spans are counted but dropped
/// so an accidentally long traced run cannot exhaust memory.
pub const MAX_TRACE_EVENTS: usize = 1 << 20;

/// One completed span, in chrome trace-event terms.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (static so recording never allocates for it).
    pub name: &'static str,
    /// Event category (layer name: "pipeline", "cascade", "store", ...).
    pub cat: &'static str,
    /// Start timestamp, nanoseconds on the process clock.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording thread (small dense id, not the OS tid).
    pub tid: u64,
    /// Numeric span arguments (tenant id, level, byte counts, ...).
    pub args: Vec<(&'static str, u64)>,
}

/// 0 = uninitialised, 1 = on, 2 = off.
static TRACING: AtomicU8 = AtomicU8::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EVENTS: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();

fn events() -> &'static Mutex<Vec<TraceEvent>> {
    EVENTS.get_or_init(Mutex::default)
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Whether span events are being collected. Defaults to on only when
/// `IPC_TRACE_OUT` is set; flip at runtime with [`set_tracing`]. Always
/// `false` when telemetry is disabled.
#[inline]
pub fn tracing() -> bool {
    if !enabled() {
        return false;
    }
    match TRACING.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => init_tracing(),
    }
}

#[cold]
fn init_tracing() -> bool {
    let on = std::env::var_os("IPC_TRACE_OUT").is_some_and(|v| !v.is_empty());
    TRACING.store(if on { 1 } else { 2 }, Ordering::Relaxed);
    on
}

/// Switch span-event collection on or off (wins over `IPC_TRACE_OUT`).
pub fn set_tracing(on: bool) {
    TRACING.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// A scope guard timing one region of code. Create with [`span`] (trace
/// event only) or [`span_timed`] (trace event + duration histogram); attach
/// numeric context with [`Span::arg`]. The measurement happens on drop.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start: u64,
    hist: Option<&'static Histogram>,
    traced: bool,
    args: Vec<(&'static str, u64)>,
}

impl Span {
    fn new(name: &'static str, cat: &'static str, hist: Option<&'static Histogram>) -> Self {
        let traced = tracing();
        let active = traced || (hist.is_some() && enabled());
        Self {
            name,
            cat,
            start: if active { now_nanos() } else { 0 },
            hist: if enabled() { hist } else { None },
            traced,
            args: Vec::new(),
        }
    }

    /// Attach a numeric argument (shown in the chrome trace viewer).
    pub fn arg(mut self, name: &'static str, value: u64) -> Self {
        self.add_arg(name, value);
        self
    }

    /// Attach a numeric argument to a live span (for values only known
    /// mid-scope, e.g. byte counts computed inside the timed region).
    pub fn add_arg(&mut self, name: &'static str, value: u64) {
        if self.traced {
            self.args.push((name, value));
        }
    }

    /// Whether this span will record anything on drop.
    pub fn is_active(&self) -> bool {
        self.traced || self.hist.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.is_active() {
            return;
        }
        let dur = now_nanos().saturating_sub(self.start);
        if let Some(h) = self.hist {
            h.record(dur);
        }
        if self.traced {
            let ev = TraceEvent {
                name: self.name,
                cat: self.cat,
                ts_ns: self.start,
                dur_ns: dur,
                tid: TID.with(|t| *t),
                args: std::mem::take(&mut self.args),
            };
            let mut buf = events().lock().expect("trace lock");
            if buf.len() < MAX_TRACE_EVENTS {
                buf.push(ev);
            } else {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Start a span that emits a trace event when tracing is on. Costs nothing
/// (no clock read) when tracing is off.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    Span::new(name, cat, None)
}

/// Start a span that records its duration into `hist` whenever telemetry is
/// enabled, and additionally emits a trace event when tracing is on.
#[inline]
pub fn span_timed(cat: &'static str, name: &'static str, hist: &'static Histogram) -> Span {
    Span::new(name, cat, Some(hist))
}

/// Drain and return all buffered trace events (test introspection).
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *events().lock().expect("trace lock"))
}

/// Events dropped after the buffer hit [`MAX_TRACE_EVENTS`].
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Render events as chrome trace-event JSON (the `{"traceEvents": [...]}`
/// wrapper; timestamps in microseconds as the format requires).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let mut args = String::new();
        for (j, (k, v)) in ev.args.iter().enumerate() {
            if j > 0 {
                args.push_str(", ");
            }
            args.push_str(&format!("\"{}\": {}", crate::json_escape(k), v));
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}, \"args\": {{{}}}}}",
            crate::json_escape(ev.name),
            crate::json_escape(ev.cat),
            ev.ts_ns as f64 / 1e3,
            ev.dur_ns as f64 / 1e3,
            ev.tid,
            args,
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Drain the buffered events into a chrome://tracing-format JSON file.
/// Returns the number of events written.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<usize> {
    let drained = take_events();
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json(&drained).as_bytes())?;
    Ok(drained.len())
}

/// If `IPC_TRACE_OUT` names a path, write the buffered trace there and
/// return `(path, events_written)`. Benchmarks and services call this at
/// shutdown so `IPC_TRACE_OUT=trace.json bench ...` "just works".
pub fn flush_env_trace() -> Option<(std::path::PathBuf, usize)> {
    let path = std::env::var_os("IPC_TRACE_OUT")?;
    if path.is_empty() {
        return None;
    }
    let path = std::path::PathBuf::from(path);
    match write_chrome_trace(&path) {
        Ok(n) => Some((path, n)),
        Err(e) => {
            eprintln!(
                "telemetry: failed to write IPC_TRACE_OUT={}: {e}",
                path.display()
            );
            None
        }
    }
}
