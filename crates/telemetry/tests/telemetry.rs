//! Telemetry primitive tests: concurrent correctness under thread fan-out,
//! histogram merge/percentile properties, span nesting with a simulated
//! clock, and snapshot-schema stability.
//!
//! Tests that flip process-global state (the enable switch, the clock, the
//! tracer) serialize on [`GLOBAL`] so the default parallel test runner can't
//! interleave them.

#![cfg(feature = "enabled")]

use std::sync::{Arc, Mutex, MutexGuard};

use ipc_telemetry as telemetry;
use proptest::prelude::*;
use telemetry::{Histogram, HistogramSnapshot, ManualClock};

static GLOBAL: Mutex<()> = Mutex::new(());

/// Take the global-state lock and force telemetry on (the default unless the
/// environment says otherwise, but tests must not depend on the environment).
fn global_on() -> MutexGuard<'static, ()> {
    let guard = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
    telemetry::set_enabled(true);
    telemetry::trace::set_tracing(false);
    telemetry::set_clock(None);
    let _ = telemetry::trace::take_events();
    guard
}

#[test]
fn concurrent_counters_and_histograms_lose_nothing() {
    let _g = global_on();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let c = telemetry::counter("test.fanout.counter");
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    c.reset();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.add(1);
                    h.record(t * PER_THREAD + i + 1);
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS * PER_THREAD);
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.min, 1);
    assert_eq!(snap.max, THREADS * PER_THREAD);
    // Sum of 1..=N.
    let n = THREADS * PER_THREAD;
    assert_eq!(snap.sum, n * (n + 1) / 2);
    assert_eq!(snap.buckets.iter().sum::<u64>(), n);
}

#[test]
fn gauge_tracks_signed_deltas() {
    let _g = global_on();
    let g = telemetry::gauge("test.gauge");
    g.set(0);
    g.add(5);
    g.add(-8);
    assert_eq!(g.get(), -3);
}

#[test]
fn registry_returns_the_same_handle_for_the_same_name() {
    let _g = global_on();
    let a = telemetry::counter("test.same.name") as *const _;
    let b = telemetry::counter("test.same.name") as *const _;
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Percentile estimates stay within one bucket width (6.25% relative,
    /// or ±1 absolute for small values) of the exact order statistic, for
    /// arbitrary sample sets spanning many octaves.
    #[test]
    fn percentiles_bounded_by_bucket_width(
        values in proptest::collection::vec(0u64..1_000_000_000, 1..400),
        qx in 0.0f64..1.0,
    ) {
        let _g = global_on();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = (qx * (sorted.len() - 1) as f64) as usize;
        let exact = sorted[rank];
        let est = h.percentile(qx);
        // The estimate is the bucket's upper bound clamped to [min, max]:
        // never below the exact order statistic's bucket lower bound, and at
        // most one bucket width above it.
        let width = (exact >> 4).max(1);
        prop_assert!(
            est + width >= exact && est <= exact + width,
            "q={qx} exact={exact} est={est} width={width}"
        );
    }

    /// Merging snapshots then querying is identical to recording every
    /// sample into one histogram.
    #[test]
    fn merge_equals_single_histogram(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let _g = global_on();
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = HistogramSnapshot::empty();
        merged.merge(&ha.snapshot());
        merged.merge(&hb.snapshot());
        prop_assert_eq!(merged, hall.snapshot());
    }
}

#[test]
fn span_nesting_with_manual_clock_is_deterministic() {
    let _g = global_on();
    let clock = ManualClock::new();
    telemetry::set_clock(Some(Arc::new(clock.clone())));
    telemetry::trace::set_tracing(true);
    let _ = telemetry::trace::take_events();

    let outer_h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    {
        let _outer = telemetry::span_timed("test", "outer", outer_h).arg("tenant", 7);
        clock.advance(100);
        {
            let _inner = telemetry::span("test", "inner");
            clock.advance(40);
        }
        clock.advance(10);
    }
    telemetry::trace::set_tracing(false);
    telemetry::set_clock(None);

    let events = telemetry::trace::take_events();
    assert_eq!(
        events.iter().map(|e| e.name).collect::<Vec<_>>(),
        vec!["inner", "outer"],
        "spans close inner-first"
    );
    let inner = &events[0];
    let outer = &events[1];
    assert_eq!((inner.ts_ns, inner.dur_ns), (100, 40));
    assert_eq!((outer.ts_ns, outer.dur_ns), (0, 150));
    assert!(
        outer.ts_ns <= inner.ts_ns && inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns,
        "inner span nests within outer"
    );
    assert_eq!(outer.args, vec![("tenant", 7)]);
    // The histogram saw the same deterministic duration.
    let snap = outer_h.snapshot();
    assert_eq!((snap.count, snap.min, snap.max), (1, 150, 150));
}

#[test]
fn spans_without_tracing_still_feed_histograms() {
    let _g = global_on();
    let clock = ManualClock::new();
    telemetry::set_clock(Some(Arc::new(clock.clone())));
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    {
        let _s = telemetry::span_timed("test", "quiet", h);
        clock.advance(25);
    }
    telemetry::set_clock(None);
    assert_eq!(h.snapshot().max, 25);
    assert!(
        telemetry::trace::take_events().is_empty(),
        "no trace events while tracing is off"
    );
}

#[test]
fn disabled_telemetry_records_nothing_but_counters() {
    let _g = global_on();
    telemetry::set_enabled(false);
    let h = Histogram::new();
    h.record(123);
    let c = telemetry::counter("test.disabled.counter");
    c.reset();
    c.add(3);
    {
        let s = telemetry::span("test", "dead");
        assert!(!s.is_active());
    }
    telemetry::set_enabled(true);
    assert_eq!(h.count(), 0, "histograms mute when disabled");
    assert_eq!(c.get(), 3, "counters stay live when disabled");
    assert!(telemetry::trace::take_events().is_empty());
}

#[test]
fn snapshot_schema_is_stable() {
    let _g = global_on();
    telemetry::counter("test.schema.counter").reset();
    telemetry::counter("test.schema.counter").add(42);
    telemetry::gauge("test.schema.gauge").set(-1);
    let h = telemetry::histogram("test.schema.hist");
    h.reset();
    for v in [1u64, 10, 30] {
        h.record(v);
    }
    let json = telemetry::snapshot_json();
    // Top-level shape.
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains(&format!("\"schema\": \"{}\"", telemetry::SNAPSHOT_SCHEMA)));
    assert!(json.contains("\"enabled\": true"));
    for section in ["\"counters\"", "\"gauges\"", "\"histograms\""] {
        assert!(json.contains(section), "missing {section} in {json}");
    }
    // Registered instruments appear with their exact values.
    assert!(json.contains("\"test.schema.counter\": 42"));
    assert!(json.contains("\"test.schema.gauge\": -1"));
    // Histogram payload carries every summary field the benches consume.
    let hist_line = json
        .lines()
        .find(|l| l.contains("test.schema.hist"))
        .expect("histogram line");
    for field in [
        "\"count\": 3",
        "\"sum\": 41",
        "\"mean\":",
        "\"min\": 1",
        "\"max\": 30",
        "\"p50\":",
        "\"p90\":",
        "\"p95\":",
        "\"p99\":",
    ] {
        assert!(hist_line.contains(field), "missing {field} in {hist_line}");
    }
}

#[test]
fn chrome_trace_export_round_trips() {
    let _g = global_on();
    let clock = ManualClock::new();
    telemetry::set_clock(Some(Arc::new(clock.clone())));
    telemetry::trace::set_tracing(true);
    let _ = telemetry::trace::take_events();
    {
        let _s = telemetry::span("test", "export \"quoted\"").arg("bytes", 4096);
        clock.advance(1500);
    }
    telemetry::trace::set_tracing(false);
    telemetry::set_clock(None);

    let events = telemetry::trace::take_events();
    let json = telemetry::trace::chrome_trace_json(&events);
    assert!(json.starts_with("{\"traceEvents\": ["));
    assert!(json.contains("\"ph\": \"X\""));
    assert!(json.contains("\"name\": \"export \\\"quoted\\\"\""));
    assert!(json.contains("\"dur\": 1.500"), "ns→µs conversion: {json}");
    assert!(json.contains("\"bytes\": 4096"));

    // write_chrome_trace drains the buffer to disk.
    telemetry::trace::set_tracing(true);
    {
        let _s = telemetry::span("test", "to-disk");
    }
    telemetry::trace::set_tracing(false);
    let path = std::env::temp_dir().join(format!("ipc_trace_test_{}.json", std::process::id()));
    let n = telemetry::trace::write_chrome_trace(&path).expect("write trace");
    assert_eq!(n, 1);
    let body = std::fs::read_to_string(&path).expect("read trace back");
    assert!(body.contains("\"to-disk\""));
    let _ = std::fs::remove_file(&path);
}
