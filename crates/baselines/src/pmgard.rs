//! PMGARD: progressive retrieval on top of the MGARD decomposition (paper
//! Sec. 6.1.3, after Liang et al. SC'21 and Wu et al. SC'24).
//!
//! The multilevel coefficients produced by [`crate::mgard::decompose`] are encoded
//! per level with the same negabinary bitplane machinery IPComp uses, so a retrieval
//! can load only a subset of planes per level. Because the decomposition is a
//! transform of the original data, the error introduced by skipped planes adds
//! linearly across levels, and a greedy most-error-reduction-per-byte loader picks
//! which planes to fetch for a requested bound or byte budget.

use ipc_tensor::{ArrayD, Shape};
use ipcomp::bitplane::{decode_level, encode_level, EncodedLevel};
use ipcomp::interp::num_levels;
use ipcomp::quantize::{dequantize, quantize};

use crate::mgard::{decompose, level_bound, synthesize};
use crate::{ProgressiveArchive, ProgressiveScheme, Retrieved};

/// The PMGARD progressive compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pmgard;

/// Archive produced by [`Pmgard`]: per-section bitplane-encoded coefficients.
pub struct PmgardArchive {
    shape: Shape,
    /// Per-level quantization bound (uniform across levels).
    eb_level: f64,
    /// Anchor coefficients, always loaded (stored quantized for size accounting).
    anchors: Vec<i64>,
    anchor_bytes: usize,
    /// One encoded section per interpolation level, coarse → fine.
    sections: Vec<EncodedLevel>,
    /// Error amplification of each section's coefficient error at the output.
    amplification: Vec<f64>,
}

impl ProgressiveScheme for Pmgard {
    fn name(&self) -> &'static str {
        "PMGARD"
    }

    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Box<dyn ProgressiveArchive> {
        assert!(
            error_bound.is_finite() && error_bound > 0.0,
            "error bound must be positive"
        );
        let shape = data.shape().clone();
        let levels = num_levels(&shape);
        let ndim = shape.ndim();
        let eb_level = level_bound(error_bound, levels, ndim);
        let (anchors_f, coeffs) = decompose(data);

        let anchors: Vec<i64> = anchors_f.iter().map(|&a| quantize(a, eb_level)).collect();
        let anchor_bytes = anchors.len() * 4 + 64;

        let mut sections = Vec::with_capacity(coeffs.len());
        let mut amplification = Vec::with_capacity(coeffs.len());
        for (idx, level_coeffs) in coeffs.iter().enumerate() {
            let codes: Vec<i64> = level_coeffs
                .iter()
                .map(|&c| quantize(c, eb_level))
                .collect();
            sections.push(encode_level(&codes, 2, true, false));
            // Level number: coarsest first. Multilinear prediction has unit gain, so
            // each skipped-plane error can be amplified at most `ndim` times per
            // remaining level on its way to the finest output.
            let level = levels - idx as u32;
            amplification.push(ndim as f64 * (level as f64));
        }

        Box::new(PmgardArchive {
            shape,
            eb_level,
            anchors,
            anchor_bytes,
            sections,
            amplification,
        })
    }
}

impl PmgardArchive {
    /// Worst-case output error when `discard[idx]` planes are dropped per section.
    fn error_for(&self, discard: &[u8]) -> f64 {
        let mut err = self.eb_level * (self.sections.len() as f64 + 1.0) * self.shape.ndim() as f64;
        for (idx, section) in self.sections.iter().enumerate() {
            let loss = section.trunc_loss[discard[idx] as usize] as f64;
            err += self.amplification[idx] * loss * 2.0 * self.eb_level;
        }
        err
    }

    fn bytes_for(&self, discard: &[u8]) -> usize {
        self.anchor_bytes
            + self
                .sections
                .iter()
                .enumerate()
                .map(|(i, s)| s.loaded_bytes(discard[i]))
                .sum::<usize>()
    }

    /// Greedy plane selection: starting from "discard everything", repeatedly load
    /// the plane with the best error-reduction per byte while `keep_going` allows.
    fn greedy_plan(&self, mut keep_going: impl FnMut(f64, usize) -> bool) -> Vec<u8> {
        let mut discard: Vec<u8> = self.sections.iter().map(|s| s.num_planes).collect();
        loop {
            let current_err = self.error_for(&discard);
            let current_bytes = self.bytes_for(&discard);
            if !keep_going(current_err, current_bytes) {
                return discard;
            }
            // Find the single plane whose loading buys the most error per byte.
            let mut best: Option<(usize, f64)> = None;
            for idx in 0..self.sections.len() {
                if discard[idx] == 0 {
                    continue;
                }
                let mut trial = discard.clone();
                trial[idx] -= 1;
                let gain = current_err - self.error_for(&trial);
                let cost = (self.bytes_for(&trial) - current_bytes).max(1);
                let score = gain / cost as f64;
                if best.map(|(_, s)| score > s).unwrap_or(true) {
                    best = Some((idx, score));
                }
            }
            match best {
                Some((idx, _)) => discard[idx] -= 1,
                None => return discard,
            }
        }
    }

    fn reconstruct(&self, discard: &[u8]) -> Retrieved {
        let anchors_f: Vec<f64> = self
            .anchors
            .iter()
            .map(|&q| dequantize(q, self.eb_level))
            .collect();
        let mut coeffs = Vec::with_capacity(self.sections.len());
        for (idx, section) in self.sections.iter().enumerate() {
            let loaded = section.num_planes - discard[idx];
            let codes = decode_level(section, loaded, 2, true).expect("well-formed section");
            coeffs.push(
                codes
                    .into_iter()
                    .map(|q| dequantize(q, self.eb_level))
                    .collect::<Vec<f64>>(),
            );
        }
        Retrieved {
            data: synthesize(&self.shape, &anchors_f, &coeffs),
            bytes_loaded: self.bytes_for(discard),
            passes: 1,
        }
    }
}

impl ProgressiveArchive for PmgardArchive {
    fn total_bytes(&self) -> usize {
        self.anchor_bytes
            + self
                .sections
                .iter()
                .map(EncodedLevel::payload_bytes)
                .sum::<usize>()
    }

    fn retrieve_error_bound(&self, target: f64) -> Retrieved {
        let discard = self.greedy_plan(|err, _| err > target);
        self.reconstruct(&discard)
    }

    fn retrieve_size_budget(&self, max_bytes: usize) -> Retrieved {
        // Load planes in greedy best-error-reduction-per-byte order, applying a load
        // only if it keeps the total within the budget (skipped planes stay skipped —
        // a cheaper plane elsewhere may still fit).
        let mut discard: Vec<u8> = self.sections.iter().map(|s| s.num_planes).collect();
        loop {
            let current_err = self.error_for(&discard);
            let current_bytes = self.bytes_for(&discard);
            let mut best: Option<(usize, f64)> = None;
            for idx in 0..self.sections.len() {
                if discard[idx] == 0 {
                    continue;
                }
                let mut trial = discard.clone();
                trial[idx] -= 1;
                let trial_bytes = self.bytes_for(&trial);
                if trial_bytes > max_bytes {
                    continue;
                }
                let gain = current_err - self.error_for(&trial);
                let cost = (trial_bytes - current_bytes).max(1);
                let score = gain / cost as f64;
                if best.map(|(_, s)| score > s).unwrap_or(true) {
                    best = Some((idx, score));
                }
            }
            match best {
                Some((idx, _)) => discard[idx] -= 1,
                None => break,
            }
        }
        self.reconstruct(&discard)
    }

    fn retrieve_full(&self) -> Retrieved {
        let discard = vec![0u8; self.sections.len()];
        self.reconstruct(&discard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_metrics::linf_error;

    fn field() -> ArrayD<f64> {
        ArrayD::from_fn(Shape::d3(14, 16, 12), |c| {
            (c[0] as f64 * 0.3).sin() * 2.0 + (c[1] as f64 * 0.2).cos() + c[2] as f64 * 0.04
        })
    }

    #[test]
    fn full_retrieval_respects_bound() {
        let data = field();
        let eb = 1e-5;
        let archive = Pmgard.compress(&data, eb);
        let out = archive.retrieve_full();
        let err = linf_error(data.as_slice(), out.data.as_slice());
        assert!(err <= eb * (1.0 + 1e-9), "err {err}");
    }

    #[test]
    fn coarse_retrieval_loads_less_and_respects_target() {
        let data = field();
        let archive = Pmgard.compress(&data, 1e-7);
        let coarse = archive.retrieve_error_bound(1e-2);
        let full = archive.retrieve_full();
        assert!(coarse.bytes_loaded < full.bytes_loaded);
        let err = linf_error(data.as_slice(), coarse.data.as_slice());
        assert!(err <= 1e-2 * (1.0 + 1e-9), "err {err}");
    }

    #[test]
    fn size_budget_is_respected() {
        let data = field();
        let archive = Pmgard.compress(&data, 1e-7);
        let total = archive.total_bytes();
        let out = archive.retrieve_size_budget(total / 2);
        assert!(out.bytes_loaded <= total / 2 + 64);
    }
}
