//! SZ3: the leading non-progressive interpolation-based compressor (paper
//! Sec. 6.1.3).
//!
//! SZ3 shares IPComp's decorrelation stage — the multilevel interpolation predictor
//! with linear-scale quantization — but encodes the quantization codes with a
//! classical Huffman entropy stage followed by a byte-level lossless pass (zstd in
//! the original; the [`ipc_codecs::lzr`] backend here). It supports only
//! full-fidelity decompression: this is the compressor that SZ3-M and SZ3-R wrap to
//! obtain multi-fidelity and progressive behaviour.

use ipc_codecs::byteio::{read_f64, write_f64};
use ipc_codecs::huffman::{huffman_decode_bytes, huffman_encode_bytes};
use ipc_codecs::varint::{read_varint, write_varint};
use ipc_codecs::{lzr_compress, lzr_decompress, zigzag_decode, zigzag_encode};
use ipc_tensor::{ArrayD, Shape};
use ipcomp::interp::{num_levels, process_anchors, process_level};
use ipcomp::quantize::{dequantize, quantize};
use ipcomp::Interpolation;

use crate::BaseCompressor;

const MAGIC: &[u8; 4] = b"SZ3r";

/// The SZ3 baseline compressor.
#[derive(Debug, Clone, Copy)]
pub struct Sz3 {
    /// Interpolation formula used by the predictor (cubic in the reference
    /// implementation).
    pub interpolation: Interpolation,
}

impl Default for Sz3 {
    fn default() -> Self {
        Self {
            interpolation: Interpolation::Cubic,
        }
    }
}

impl Sz3 {
    /// SZ3 with linear interpolation.
    pub fn linear() -> Self {
        Self {
            interpolation: Interpolation::Linear,
        }
    }
}

impl BaseCompressor for Sz3 {
    fn name(&self) -> &'static str {
        "SZ3"
    }

    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Vec<u8> {
        assert!(
            error_bound.is_finite() && error_bound > 0.0,
            "error bound must be positive"
        );
        let shape = data.shape().clone();
        let orig = data.as_slice();
        let levels = num_levels(&shape);

        // Prediction + quantization: one flat code stream in traversal order.
        let mut codes: Vec<i64> = Vec::with_capacity(orig.len());
        let mut work = vec![0.0f64; shape.len()];
        process_anchors(&shape, &mut work, |off, pred| {
            let q = quantize(orig[off] - pred, error_bound);
            codes.push(q);
            pred + dequantize(q, error_bound)
        });
        for level in (1..=levels).rev() {
            process_level(&shape, level, self.interpolation, &mut work, |off, pred| {
                let q = quantize(orig[off] - pred, error_bound);
                codes.push(q);
                pred + dequantize(q, error_bound)
            });
        }

        // Entropy stage: Huffman over the zigzag-varint byte stream, then the
        // byte-level lossless backend (zstd stand-in), mirroring SZ3's
        // Huffman-then-zstd pipeline.
        let mut raw = Vec::with_capacity(codes.len() * 2);
        for &c in &codes {
            write_varint(&mut raw, zigzag_encode(c));
        }
        let entropy = huffman_encode_bytes(&raw);
        let packed = lzr_compress(&entropy);

        let mut out = Vec::with_capacity(packed.len() + 64);
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, shape.ndim() as u64);
        for &d in shape.dims() {
            write_varint(&mut out, d as u64);
        }
        write_f64(&mut out, error_bound);
        out.push(self.interpolation.id());
        write_varint(&mut out, packed.len() as u64);
        out.extend_from_slice(&packed);
        out
    }

    fn decompress(&self, bytes: &[u8]) -> ArrayD<f64> {
        let mut pos = 0usize;
        assert_eq!(&bytes[0..4], MAGIC, "not an SZ3 stream");
        pos += 4;
        let ndim = read_varint(bytes, &mut pos).expect("ndim") as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(read_varint(bytes, &mut pos).expect("dim") as usize);
        }
        let shape = Shape::new(&dims);
        let error_bound = read_f64(bytes, &mut pos).expect("eb");
        let interpolation = Interpolation::from_id(bytes[pos]).expect("interpolation id");
        pos += 1;
        let packed_len = read_varint(bytes, &mut pos).expect("len") as usize;
        let packed = &bytes[pos..pos + packed_len];

        let entropy = lzr_decompress(packed).expect("lossless stage");
        let raw = huffman_decode_bytes(&entropy).expect("huffman stage");
        let mut rpos = 0usize;
        let mut next_code = || {
            let v = read_varint(&raw, &mut rpos).expect("code");
            zigzag_decode(v)
        };

        let levels = num_levels(&shape);
        let mut work = vec![0.0f64; shape.len()];
        process_anchors(&shape, &mut work, |_, pred| {
            pred + dequantize(next_code(), error_bound)
        });
        for level in (1..=levels).rev() {
            process_level(&shape, level, interpolation, &mut work, |_, pred| {
                pred + dequantize(next_code(), error_bound)
            });
        }
        ArrayD::from_vec(shape, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_metrics::linf_error;

    fn field(shape: Shape) -> ArrayD<f64> {
        ArrayD::from_fn(shape, |c| {
            (c[0] as f64 * 0.23).sin() * 2.0
                + (c.get(1).copied().unwrap_or(0) as f64 * 0.11).cos()
                + c.last().copied().unwrap_or(0) as f64 * 0.02
        })
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        for dims in [vec![200usize], vec![31, 45], vec![18, 22, 26]] {
            let data = field(Shape::new(&dims));
            for eb in [1e-3, 1e-6] {
                let sz3 = Sz3::default();
                let blob = sz3.compress(&data, eb);
                let out = sz3.decompress(&blob);
                let err = linf_error(data.as_slice(), out.as_slice());
                assert!(err <= eb * (1.0 + 1e-9), "dims {dims:?} eb {eb}: {err}");
            }
        }
    }

    #[test]
    fn linear_variant_also_bounded() {
        let data = field(Shape::d3(20, 20, 20));
        let sz3 = Sz3::linear();
        let blob = sz3.compress(&data, 1e-4);
        let out = sz3.decompress(&blob);
        assert!(linf_error(data.as_slice(), out.as_slice()) <= 1e-4 * (1.0 + 1e-9));
    }

    #[test]
    fn smooth_data_compresses() {
        let data = field(Shape::d3(32, 32, 32));
        let blob = Sz3::default().compress(&data, 1e-4 * data.value_range());
        let cr = (data.len() * 8) as f64 / blob.len() as f64;
        assert!(cr > 5.0, "CR {cr}");
    }

    #[test]
    fn looser_bound_smaller_output() {
        let data = field(Shape::d3(24, 24, 24));
        let tight = Sz3::default().compress(&data, 1e-8);
        let loose = Sz3::default().compress(&data, 1e-3);
        assert!(loose.len() < tight.len());
    }

    #[test]
    #[should_panic]
    fn invalid_bound_panics() {
        let data = field(Shape::d2(8, 8));
        let _ = Sz3::default().compress(&data, 0.0);
    }
}
