//! Residual-based progressive wrapper: SZ3-R, ZFP-R, SPERR-R (paper Sec. 6.1.3).
//!
//! The straightforward way to bolt progressiveness onto any error-bounded compressor
//! is to compress the input with a loose bound, then repeatedly compress the
//! remaining residual with ever tighter bounds. Retrieval at fidelity level `k`
//! must load the first `k+1` blocks and run the base decompressor `k+1` times,
//! summing the outputs — the multi-pass cost that IPComp's single-pass design avoids
//! and that Figs. 8–9 of the paper quantify.

use ipc_tensor::ArrayD;

use crate::{
    paper_residual_ladder, BaseCompressor, ProgressiveArchive, ProgressiveScheme, Retrieved,
};

/// Residual-progressive wrapper around a [`BaseCompressor`].
pub struct Residual<C: BaseCompressor> {
    base: C,
    name: &'static str,
    /// Multiplicative factors applied to the finest error bound, sorted from the
    /// loosest (first pass) to `1.0` (last pass).
    ladder_factors: Vec<f64>,
}

impl<C: BaseCompressor> Residual<C> {
    /// Wrap `base` with the paper's 9-step factor-4 ladder (`2^16·eb … eb`).
    pub fn paper(base: C, name: &'static str) -> Self {
        let ladder = paper_residual_ladder(1.0);
        Self {
            base,
            name,
            ladder_factors: ladder,
        }
    }

    /// Wrap `base` with a custom number of residual passes, each a factor of 4 apart
    /// (used by the Fig. 9 residual-count sweep).
    pub fn with_passes(base: C, name: &'static str, passes: usize) -> Self {
        assert!(passes >= 1, "need at least one pass");
        let ladder_factors = (0..passes).rev().map(|i| 4f64.powi(i as i32)).collect();
        Self {
            base,
            name,
            ladder_factors,
        }
    }

    /// Number of residual passes this configuration produces.
    pub fn passes(&self) -> usize {
        self.ladder_factors.len()
    }
}

/// One residual pass: the bound it was compressed with and its blob.
struct Pass {
    bound: f64,
    blob: Vec<u8>,
}

/// Boxed decompressor closure carried by the archive.
type DecompressFn = Box<dyn Fn(&[u8]) -> ArrayD<f64> + Send + Sync>;
/// Archive produced by [`Residual`].
pub struct ResidualArchive {
    passes: Vec<Pass>,
    decompress: DecompressFn,
}

impl<C: BaseCompressor + Clone + 'static> ProgressiveScheme for Residual<C> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Box<dyn ProgressiveArchive> {
        let mut residual = data.clone();
        let mut passes = Vec::with_capacity(self.ladder_factors.len());
        for &factor in &self.ladder_factors {
            let bound = error_bound * factor;
            let blob = self.base.compress(&residual, bound);
            let recon = self.base.decompress(&blob);
            for (r, v) in residual.as_mut_slice().iter_mut().zip(recon.as_slice()) {
                *r -= v;
            }
            passes.push(Pass { bound, blob });
        }
        let base = self.base.clone();
        Box::new(ResidualArchive {
            passes,
            decompress: Box::new(move |bytes| base.decompress(bytes)),
        })
    }
}

impl ResidualArchive {
    /// Sum the reconstructions of the first `count` passes.
    fn accumulate(&self, count: usize) -> Retrieved {
        let count = count.clamp(1, self.passes.len());
        let mut total: Option<ArrayD<f64>> = None;
        let mut bytes = 0usize;
        for pass in &self.passes[..count] {
            bytes += pass.blob.len();
            let recon = (self.decompress)(&pass.blob);
            total = Some(match total {
                None => recon,
                Some(mut acc) => {
                    for (a, v) in acc.as_mut_slice().iter_mut().zip(recon.as_slice()) {
                        *a += v;
                    }
                    acc
                }
            });
        }
        Retrieved {
            data: total.expect("at least one pass"),
            bytes_loaded: bytes,
            passes: count,
        }
    }
}

impl ProgressiveArchive for ResidualArchive {
    fn total_bytes(&self) -> usize {
        self.passes.iter().map(|p| p.blob.len()).sum()
    }

    fn retrieve_error_bound(&self, target: f64) -> Retrieved {
        // Load passes until the last loaded pass's bound is within the target; if no
        // pass is tight enough, everything must be loaded.
        let count = self
            .passes
            .iter()
            .position(|p| p.bound <= target)
            .map(|i| i + 1)
            .unwrap_or(self.passes.len());
        self.accumulate(count)
    }

    fn retrieve_size_budget(&self, max_bytes: usize) -> Retrieved {
        let mut count = 0usize;
        let mut acc = 0usize;
        for pass in &self.passes {
            if acc + pass.blob.len() > max_bytes && count > 0 {
                break;
            }
            acc += pass.blob.len();
            count += 1;
        }
        self.accumulate(count.max(1))
    }

    fn retrieve_full(&self) -> Retrieved {
        self.accumulate(self.passes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sz3::Sz3;
    use ipc_metrics::linf_error;
    use ipc_tensor::Shape;

    fn field() -> ArrayD<f64> {
        ArrayD::from_fn(Shape::d3(16, 18, 20), |c| {
            (c[0] as f64 * 0.3).sin() + (c[1] as f64 * 0.2).cos() * 1.5 + c[2] as f64 * 0.01
        })
    }

    #[test]
    fn full_retrieval_respects_finest_bound() {
        let data = field();
        let eb = 1e-6;
        let scheme = Residual::paper(Sz3::default(), "SZ3-R");
        let archive = scheme.compress(&data, eb);
        let out = archive.retrieve_full();
        let err = linf_error(data.as_slice(), out.data.as_slice());
        assert!(err <= eb * (1.0 + 1e-6), "err {err}");
        assert_eq!(out.passes, 9);
    }

    #[test]
    fn coarse_retrieval_uses_fewer_passes_and_bytes() {
        let data = field();
        let scheme = Residual::paper(Sz3::default(), "SZ3-R");
        let archive = scheme.compress(&data, 1e-7);
        let coarse = archive.retrieve_error_bound(1e-2);
        let fine = archive.retrieve_full();
        assert!(coarse.passes < fine.passes);
        assert!(coarse.bytes_loaded < fine.bytes_loaded);
        let err = linf_error(data.as_slice(), coarse.data.as_slice());
        assert!(err <= 1e-2 * (1.0 + 1e-6), "coarse err {err}");
    }

    #[test]
    fn intermediate_bounds_are_respected_at_each_rung() {
        let data = field();
        let eb = 1e-6;
        let scheme = Residual::with_passes(Sz3::default(), "SZ3-R", 5);
        let archive = scheme.compress(&data, eb);
        for k in 0..5 {
            let bound = eb * 4f64.powi(4 - k as i32);
            let out = archive.retrieve_error_bound(bound);
            let err = linf_error(data.as_slice(), out.data.as_slice());
            assert!(err <= bound * (1.0 + 1e-6), "rung {k}: {err} > {bound}");
            assert_eq!(out.passes, k + 1);
        }
    }

    #[test]
    fn size_budget_loads_within_budget() {
        let data = field();
        let scheme = Residual::paper(Sz3::default(), "SZ3-R");
        let archive = scheme.compress(&data, 1e-7);
        let total = archive.total_bytes();
        let out = archive.retrieve_size_budget(total / 2);
        assert!(out.bytes_loaded <= total / 2 || out.passes == 1);
        assert!(out.passes < 9);
    }

    #[test]
    fn more_passes_cost_more_total_storage() {
        let data = field();
        let few = Residual::with_passes(Sz3::default(), "SZ3-R", 2).compress(&data, 1e-6);
        let many = Residual::with_passes(Sz3::default(), "SZ3-R", 8).compress(&data, 1e-6);
        assert!(many.total_bytes() > few.total_bytes());
    }
}
