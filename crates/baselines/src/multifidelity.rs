//! SZ3-M: the multi-fidelity (but not progressive) wrapper (paper Sec. 6.1.3).
//!
//! SZ3-M simply compresses the input several times with different error bounds and
//! stores all the outputs side by side. A retrieval picks the single output whose
//! bound satisfies the request and decompresses just that one — fast and
//! single-pass, but the archive is the *sum* of all outputs, so its compression
//! ratio is poor, and coarse retrievals cannot be reused when refining (the paper's
//! argument for why multi-fidelity is not progressive).

use ipc_tensor::ArrayD;

use crate::{
    paper_residual_ladder, BaseCompressor, ProgressiveArchive, ProgressiveScheme, Retrieved,
};

/// Multi-fidelity wrapper around a [`BaseCompressor`].
pub struct MultiFidelity<C: BaseCompressor> {
    base: C,
    name: &'static str,
    ladder_factors: Vec<f64>,
}

impl<C: BaseCompressor> MultiFidelity<C> {
    /// Wrap `base` with the paper's 9-bound ladder.
    pub fn paper(base: C, name: &'static str) -> Self {
        Self {
            base,
            name,
            ladder_factors: paper_residual_ladder(1.0),
        }
    }
}

struct Output {
    bound: f64,
    blob: Vec<u8>,
}

/// Boxed decompressor closure carried by the archive.
type DecompressFn = Box<dyn Fn(&[u8]) -> ArrayD<f64> + Send + Sync>;
/// Archive produced by [`MultiFidelity`].
pub struct MultiFidelityArchive {
    outputs: Vec<Output>,
    decompress: DecompressFn,
}

impl<C: BaseCompressor + Clone + 'static> ProgressiveScheme for MultiFidelity<C> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Box<dyn ProgressiveArchive> {
        let outputs = self
            .ladder_factors
            .iter()
            .map(|&factor| {
                let bound = error_bound * factor;
                Output {
                    bound,
                    blob: self.base.compress(data, bound),
                }
            })
            .collect();
        let base = self.base.clone();
        Box::new(MultiFidelityArchive {
            outputs,
            decompress: Box::new(move |bytes| base.decompress(bytes)),
        })
    }
}

impl MultiFidelityArchive {
    fn retrieve_index(&self, idx: usize) -> Retrieved {
        let output = &self.outputs[idx];
        Retrieved {
            data: (self.decompress)(&output.blob),
            bytes_loaded: output.blob.len(),
            passes: 1,
        }
    }
}

impl ProgressiveArchive for MultiFidelityArchive {
    fn total_bytes(&self) -> usize {
        self.outputs.iter().map(|o| o.blob.len()).sum()
    }

    fn retrieve_error_bound(&self, target: f64) -> Retrieved {
        let idx = self
            .outputs
            .iter()
            .position(|o| o.bound <= target)
            .unwrap_or(self.outputs.len() - 1);
        self.retrieve_index(idx)
    }

    fn retrieve_size_budget(&self, max_bytes: usize) -> Retrieved {
        // Outputs are ordered loosest (smallest) to finest (largest); pick the finest
        // one that fits.
        let idx = self
            .outputs
            .iter()
            .rposition(|o| o.blob.len() <= max_bytes)
            .unwrap_or(0);
        self.retrieve_index(idx)
    }

    fn retrieve_full(&self) -> Retrieved {
        self.retrieve_index(self.outputs.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sz3::Sz3;
    use ipc_metrics::linf_error;
    use ipc_tensor::Shape;

    fn field() -> ArrayD<f64> {
        ArrayD::from_fn(Shape::d3(14, 16, 18), |c| {
            (c[0] as f64 * 0.25).sin() * 2.0 + c[1] as f64 * 0.05 + (c[2] as f64 * 0.4).cos()
        })
    }

    #[test]
    fn retrievals_are_single_pass_and_bounded() {
        let data = field();
        let scheme = MultiFidelity::paper(Sz3::default(), "SZ3-M");
        let archive = scheme.compress(&data, 1e-6);
        for target in [1e-1, 1e-3, 1e-6] {
            let out = archive.retrieve_error_bound(target);
            assert_eq!(out.passes, 1);
            let err = linf_error(data.as_slice(), out.data.as_slice());
            assert!(err <= target * (1.0 + 1e-6), "target {target}: {err}");
        }
    }

    #[test]
    fn archive_stores_every_output_so_total_is_large() {
        let data = field();
        let multi = MultiFidelity::paper(Sz3::default(), "SZ3-M").compress(&data, 1e-6);
        let single = Sz3::default().compress(&data, 1e-6);
        assert!(
            multi.total_bytes() > single.len(),
            "multi-fidelity archive must be larger than a single output"
        );
        // But a coarse retrieval loads far less than the archive.
        let coarse = multi.retrieve_error_bound(1e-1);
        assert!(coarse.bytes_loaded * 2 < multi.total_bytes());
    }

    #[test]
    fn size_budget_picks_finest_fitting_output() {
        let data = field();
        let archive = MultiFidelity::paper(Sz3::default(), "SZ3-M").compress(&data, 1e-7);
        let full = archive.retrieve_full();
        let constrained = archive.retrieve_size_budget(full.bytes_loaded / 2);
        assert!(constrained.bytes_loaded <= full.bytes_loaded / 2 || constrained.bytes_loaded == 0);
        let err_full = linf_error(data.as_slice(), full.data.as_slice());
        let err_constrained = linf_error(data.as_slice(), constrained.data.as_slice());
        assert!(err_constrained >= err_full);
    }
}
