//! CDF 9/7 wavelet transform (the decorrelation stage of SPERR).
//!
//! A single-level, separable, lifting-based CDF 9/7 transform with symmetric
//! boundary extension. Lifting makes the inverse exact (each step is individually
//! reversible), which is all the SPERR baseline needs: coefficients are quantized
//! after the forward transform and the inverse reproduces the field up to the
//! quantization error.

use ipc_tensor::{ArrayD, Shape};

/// CDF 9/7 lifting coefficients (Daubechies & Sweldens factorization).
const ALPHA: f64 = -1.586_134_342_059_924;
const BETA: f64 = -0.052_980_118_572_961;
const GAMMA: f64 = 0.882_911_075_530_934;
const DELTA: f64 = 0.443_506_852_043_971;
const KAPPA: f64 = 1.230_174_104_914_001;

/// Mirror an index into `[0, len)` (whole-sample symmetric extension).
#[inline]
fn mirror(i: isize, len: usize) -> usize {
    let len = len as isize;
    let mut i = i;
    if i < 0 {
        i = -i;
    }
    if i >= len {
        i = 2 * (len - 1) - i;
    }
    i.clamp(0, len - 1) as usize
}

/// One lifting step: `line[odd] += w * (line[odd-1] + line[odd+1])` over odd (or
/// even) positions, with mirrored boundaries.
fn lift(line: &mut [f64], start: usize, weight: f64) {
    let n = line.len();
    let mut i = start;
    while i < n {
        let left = line[mirror(i as isize - 1, n)];
        let right = line[mirror(i as isize + 1, n)];
        line[i] += weight * (left + right);
        i += 2;
    }
}

/// Forward CDF 9/7 on one line (in place, interleaved layout).
pub fn forward_line(line: &mut [f64]) {
    if line.len() < 2 {
        return;
    }
    lift(line, 1, ALPHA);
    lift(line, 0, BETA);
    lift(line, 1, GAMMA);
    lift(line, 0, DELTA);
    for (i, v) in line.iter_mut().enumerate() {
        if i % 2 == 0 {
            *v *= KAPPA;
        } else {
            *v /= KAPPA;
        }
    }
}

/// Inverse CDF 9/7 on one line (exact inverse of [`forward_line`]).
pub fn inverse_line(line: &mut [f64]) {
    if line.len() < 2 {
        return;
    }
    for (i, v) in line.iter_mut().enumerate() {
        if i % 2 == 0 {
            *v /= KAPPA;
        } else {
            *v *= KAPPA;
        }
    }
    lift(line, 0, -DELTA);
    lift(line, 1, -GAMMA);
    lift(line, 0, -BETA);
    lift(line, 1, -ALPHA);
}

/// Apply `f` to every line of `data` along `axis`.
fn for_each_line(data: &mut ArrayD<f64>, axis: usize, f: impl Fn(&mut [f64])) {
    let shape: Shape = data.shape().clone();
    let dims = shape.dims().to_vec();
    let strides = shape.strides().to_vec();
    let len = dims[axis];
    let stride = strides[axis];
    // Enumerate line start offsets: all points with coordinate 0 along `axis`.
    let mut starts = Vec::with_capacity(shape.len() / len);
    for off in 0..shape.len() {
        if (off / stride).is_multiple_of(len) {
            starts.push(off);
        }
    }
    let buf = data.as_mut_slice();
    let mut line = vec![0.0f64; len];
    for &s in &starts {
        for (i, v) in line.iter_mut().enumerate() {
            *v = buf[s + i * stride];
        }
        f(&mut line);
        for (i, &v) in line.iter().enumerate() {
            buf[s + i * stride] = v;
        }
    }
}

/// Separable forward transform along every axis.
pub fn forward(data: &mut ArrayD<f64>) {
    for axis in 0..data.shape().ndim() {
        for_each_line(data, axis, forward_line);
    }
}

/// Separable inverse transform (exact inverse of [`forward`]).
pub fn inverse(data: &mut ArrayD<f64>) {
    for axis in (0..data.shape().ndim()).rev() {
        for_each_line(data, axis, inverse_line);
    }
}

/// Upper bound on how much a coefficient-domain L∞ perturbation can grow in the
/// sample domain after the separable inverse transform (per-axis gain measured from
/// the lifting steps, conservatively 2.0 per axis).
pub fn synthesis_gain(ndim: usize) -> f64 {
    4.0f64.powi(ndim as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_roundtrip_even_and_odd_lengths() {
        for n in [2usize, 5, 8, 17, 64, 101] {
            let mut line: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
            let orig = line.clone();
            forward_line(&mut line);
            inverse_line(&mut line);
            for (a, b) in orig.iter().zip(&line) {
                assert!((a - b).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn field_roundtrip_3d() {
        let shape = Shape::d3(9, 12, 7);
        let orig = ArrayD::from_fn(shape.clone(), |c| {
            (c[0] as f64 * 0.4).sin() + (c[1] as f64 * 0.3).cos() + c[2] as f64 * 0.1
        });
        let mut work = orig.clone();
        forward(&mut work);
        inverse(&mut work);
        for (a, b) in orig.as_slice().iter().zip(work.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn smooth_signal_concentrates_energy_in_low_band() {
        // After the forward transform the odd (detail) samples of a smooth line
        // should carry far less energy than the even (approximation) samples.
        let mut line: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin() * 10.0).collect();
        forward_line(&mut line);
        let even_energy: f64 = line.iter().step_by(2).map(|v| v * v).sum();
        let odd_energy: f64 = line.iter().skip(1).step_by(2).map(|v| v * v).sum();
        assert!(
            odd_energy < 0.05 * even_energy,
            "{odd_energy} vs {even_energy}"
        );
    }

    #[test]
    fn mirror_indexing() {
        assert_eq!(mirror(-1, 5), 1);
        assert_eq!(mirror(-2, 5), 2);
        assert_eq!(mirror(5, 5), 3);
        assert_eq!(mirror(6, 5), 2);
        assert_eq!(mirror(3, 5), 3);
    }
}
