//! MGARD: multigrid-based hierarchical decomposition compressor (paper Sec. 6.1.3).
//!
//! MGARD decomposes the field into a hierarchy of multilevel coefficients — each
//! point's deviation from the multilinear interpolation of the next-coarser grid —
//! and quantizes those coefficients with level-aware steps so the accumulated
//! reconstruction error stays inside the user's bound. Unlike SZ3/IPComp the
//! decomposition is a pure *transform* of the original data (predictions are made
//! from original, not quantized, values), which is what PMGARD later exploits for
//! progressive retrieval, but it also forces smaller quantization steps and hence
//! lower compression ratios — the behaviour the paper's Fig. 5 shows.

use ipc_codecs::byteio::{read_f64, write_f64};
use ipc_codecs::huffman::{huffman_decode_bytes, huffman_encode_bytes};
use ipc_codecs::varint::{read_varint, write_varint};
use ipc_codecs::{lzr_compress, lzr_decompress, zigzag_decode, zigzag_encode};
use ipc_tensor::{ArrayD, Shape};
use ipcomp::interp::{num_levels, process_anchors, process_level};
use ipcomp::quantize::{dequantize, quantize};
use ipcomp::Interpolation;

use crate::BaseCompressor;

const MAGIC: &[u8; 4] = b"MGRD";

/// The MGARD baseline compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mgard;

/// Per-level quantization bound so that propagated per-level errors sum to at most
/// the user bound: each of the `L` levels (plus the anchor grid) may amplify its own
/// quantization error by up to `ndim` multilinear prediction applications.
pub(crate) fn level_bound(error_bound: f64, num_levels: u32, ndim: usize) -> f64 {
    error_bound / ((num_levels as f64 + 1.0) * ndim as f64)
}

/// Hierarchical analysis: multilevel coefficients of `data` (anchors first, then
/// levels coarse → fine, each in the predictor's traversal order).
pub(crate) fn decompose(data: &ArrayD<f64>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let shape = data.shape().clone();
    let orig = data.as_slice();
    let levels = num_levels(&shape);
    // The work buffer holds original values: predictions are made from original
    // (not reconstructed) data, which is what makes this a transform.
    let mut work = orig.to_vec();
    let mut anchors = Vec::new();
    process_anchors(&shape, &mut work, |off, pred| {
        anchors.push(orig[off] - pred);
        orig[off]
    });
    let mut coeffs = Vec::with_capacity(levels as usize);
    for level in (1..=levels).rev() {
        let mut c = Vec::new();
        process_level(
            &shape,
            level,
            Interpolation::Linear,
            &mut work,
            |off, pred| {
                c.push(orig[off] - pred);
                orig[off]
            },
        );
        coeffs.push(c);
    }
    (anchors, coeffs)
}

/// Hierarchical synthesis: rebuild a field from (possibly perturbed) coefficients.
pub(crate) fn synthesize(shape: &Shape, anchors: &[f64], coeffs: &[Vec<f64>]) -> ArrayD<f64> {
    let levels = num_levels(shape);
    let mut work = vec![0.0f64; shape.len()];
    let mut a = anchors.iter();
    process_anchors(shape, &mut work, |_, pred| {
        pred + a.next().copied().unwrap_or(0.0)
    });
    for level in (1..=levels).rev() {
        let idx = (levels - level) as usize;
        let mut it = coeffs[idx].iter();
        process_level(shape, level, Interpolation::Linear, &mut work, |_, pred| {
            pred + it.next().copied().unwrap_or(0.0)
        });
    }
    ArrayD::from_vec(shape.clone(), work)
}

impl BaseCompressor for Mgard {
    fn name(&self) -> &'static str {
        "MGARD"
    }

    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Vec<u8> {
        assert!(
            error_bound.is_finite() && error_bound > 0.0,
            "error bound must be positive"
        );
        let shape = data.shape().clone();
        let levels = num_levels(&shape);
        let eb_l = level_bound(error_bound, levels, shape.ndim());
        let (anchors, coeffs) = decompose(data);

        let mut codes: Vec<i64> = Vec::with_capacity(data.len());
        for &a in &anchors {
            codes.push(quantize(a, eb_l));
        }
        for level in &coeffs {
            for &c in level {
                codes.push(quantize(c, eb_l));
            }
        }

        let mut raw = Vec::with_capacity(codes.len() * 2);
        for &c in &codes {
            write_varint(&mut raw, zigzag_encode(c));
        }
        let packed = lzr_compress(&huffman_encode_bytes(&raw));

        let mut out = Vec::with_capacity(packed.len() + 64);
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, shape.ndim() as u64);
        for &d in shape.dims() {
            write_varint(&mut out, d as u64);
        }
        write_f64(&mut out, error_bound);
        write_varint(&mut out, packed.len() as u64);
        out.extend_from_slice(&packed);
        out
    }

    fn decompress(&self, bytes: &[u8]) -> ArrayD<f64> {
        let mut pos = 0usize;
        assert_eq!(&bytes[0..4], MAGIC, "not an MGARD stream");
        pos += 4;
        let ndim = read_varint(bytes, &mut pos).expect("ndim") as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(read_varint(bytes, &mut pos).expect("dim") as usize);
        }
        let shape = Shape::new(&dims);
        let error_bound = read_f64(bytes, &mut pos).expect("eb");
        let packed_len = read_varint(bytes, &mut pos).expect("len") as usize;
        let packed = &bytes[pos..pos + packed_len];
        let raw =
            huffman_decode_bytes(&lzr_decompress(packed).expect("lossless")).expect("huffman");

        let levels = num_levels(&shape);
        let eb_l = level_bound(error_bound, levels, ndim);
        let mut rpos = 0usize;
        let mut next = || {
            dequantize(
                zigzag_decode(read_varint(&raw, &mut rpos).expect("code")),
                eb_l,
            )
        };

        // Rebuild per-section coefficient vectors sized like the analysis produced.
        let anchor_n = ipcomp::interp::anchor_count(&shape);
        let anchors: Vec<f64> = (0..anchor_n).map(|_| next()).collect();
        let mut coeffs = Vec::with_capacity(levels as usize);
        for level in (1..=levels).rev() {
            let n = ipcomp::interp::level_count(&shape, level);
            coeffs.push((0..n).map(|_| next()).collect());
        }
        synthesize(&shape, &anchors, &coeffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_metrics::linf_error;

    fn field(shape: Shape) -> ArrayD<f64> {
        ArrayD::from_fn(shape, |c| {
            (c[0] as f64 * 0.2).sin() * 3.0
                + (c.get(1).copied().unwrap_or(0) as f64 * 0.12).cos()
                + c.last().copied().unwrap_or(0) as f64 * 0.03
        })
    }

    #[test]
    fn decompose_synthesize_is_lossless() {
        let data = field(Shape::d3(11, 13, 9));
        let (anchors, coeffs) = decompose(&data);
        let back = synthesize(data.shape(), &anchors, &coeffs);
        assert!(linf_error(data.as_slice(), back.as_slice()) < 1e-10);
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        for dims in [vec![64usize], vec![21, 35], vec![14, 18, 22]] {
            let data = field(Shape::new(&dims));
            for eb in [1e-2, 1e-5] {
                let blob = Mgard.compress(&data, eb);
                let out = Mgard.decompress(&blob);
                let err = linf_error(data.as_slice(), out.as_slice());
                assert!(err <= eb * (1.0 + 1e-9), "dims {dims:?} eb {eb}: {err}");
            }
        }
    }

    #[test]
    fn ratio_lower_than_sz3_on_turbulence_data() {
        // The paper's motivation for IPComp over PMGARD: MGARD's transform needs
        // finer quantization steps for the same bound, so on realistic broadband
        // (turbulence-like) data SZ3 compresses better.
        let data = ipc_datagen::Dataset::Density.generate(&Shape::d3(24, 32, 32), 7);
        let eb = 1e-4 * data.value_range();
        let mgard = Mgard.compress(&data, eb);
        let sz3 = crate::sz3::Sz3::default().compress(&data, eb);
        assert!(
            sz3.len() < mgard.len(),
            "SZ3 {} should beat MGARD {}",
            sz3.len(),
            mgard.len()
        );
    }
}
