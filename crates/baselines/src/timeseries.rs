//! Independent-per-step baseline for the time-series archive experiments.
//!
//! The natural alternative to `ipcomp::archive`'s cross-timestep residual
//! chains is to compress every snapshot as its own standalone container at
//! the same finest bound. [`IndependentSteps`] is exactly that: it is what
//! the archive's `keyframe_interval = 1` degenerates to, and the reference
//! the `bench_timeseries` acceptance criteria compare against — both for
//! total archive size and for bytes fetched when a step range is retrieved
//! at a coarse fidelity.

use std::sync::Arc;

use ipc_tensor::ArrayD;
use ipcomp::{
    compress, ChunkSource, Config, ContainerMap, IpcompError, MemorySource, ProgressiveDecoder,
    RetrievalRequest,
};

/// Encode-each-step-standalone baseline scheme.
#[derive(Debug, Clone)]
pub struct IndependentSteps {
    finest_bound: f64,
    config: Config,
}

/// One retrieved step plus its byte accounting.
pub struct IndependentRetrieval {
    /// The reconstructed field.
    pub data: ArrayD<f64>,
    /// Container bytes (metadata + payload) the retrieval loaded.
    pub bytes: usize,
    /// The error bound the decoder actually satisfied.
    pub error_bound: f64,
}

/// The per-step containers produced by [`IndependentSteps::compress_sequence`].
pub struct IndependentArchive {
    containers: Vec<Vec<u8>>,
}

impl IndependentSteps {
    /// Baseline at `finest_bound` with the given codec configuration (use the
    /// same `Config` as the archive under test for a fair comparison).
    pub fn new(finest_bound: f64, config: Config) -> Self {
        Self {
            finest_bound,
            config,
        }
    }

    /// Compress every step as an independent container.
    pub fn compress_sequence(
        &self,
        steps: &[ArrayD<f64>],
    ) -> Result<IndependentArchive, IpcompError> {
        let mut containers = Vec::with_capacity(steps.len());
        for field in steps {
            containers.push(compress(field, self.finest_bound, &self.config)?.to_bytes());
        }
        Ok(IndependentArchive { containers })
    }
}

impl IndependentArchive {
    /// Number of steps stored.
    pub fn num_steps(&self) -> usize {
        self.containers.len()
    }

    /// Serialized size of one step's container.
    pub fn container_bytes(&self, step: usize) -> usize {
        self.containers[step].len()
    }

    /// Sum of all per-step container sizes — the denominator of the
    /// archive-size acceptance criterion.
    pub fn total_bytes(&self) -> usize {
        self.containers.iter().map(Vec::len).sum()
    }

    /// The raw container for one step (byte-identity comparisons).
    pub fn container(&self, step: usize) -> &[u8] {
        &self.containers[step]
    }

    /// Retrieve one step at `request` through the planned read path,
    /// counting the bytes a cold fetch of that step costs.
    pub fn retrieve(
        &self,
        step: usize,
        request: RetrievalRequest,
    ) -> Result<IndependentRetrieval, IpcompError> {
        let source: Arc<dyn ChunkSource> =
            Arc::new(MemorySource::new(self.containers[step].clone()));
        let map = Arc::new(ContainerMap::open(&source)?);
        let mut dec = ProgressiveDecoder::from_shared_source(source, map);
        let out = dec.retrieve(request)?;
        Ok(IndependentRetrieval {
            data: out.data,
            bytes: out.bytes_total,
            error_bound: out.error_bound,
        })
    }

    /// Retrieve `range` of steps at `request`, each through its own cold
    /// decoder (no state is shareable across independent containers); returns
    /// the reconstructions and the total bytes fetched.
    pub fn retrieve_range(
        &self,
        range: std::ops::Range<usize>,
        request: RetrievalRequest,
    ) -> Result<(Vec<ArrayD<f64>>, usize), IpcompError> {
        let mut fields = Vec::with_capacity(range.len());
        let mut bytes = 0usize;
        for step in range {
            let r = self.retrieve(step, request)?;
            bytes += r.bytes;
            fields.push(r.data);
        }
        Ok((fields, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_tensor::Shape;

    fn wave(shape: &Shape, t: usize) -> ArrayD<f64> {
        ArrayD::from_fn(shape.clone(), |c| {
            ((c[0] as f64 * 0.4 + t as f64 * 0.3).sin()
                + (c[1] as f64 * 0.25 - t as f64 * 0.2).cos())
                * (1.0 + 0.05 * c[2] as f64)
        })
    }

    #[test]
    fn independent_steps_respect_the_bound_and_count_bytes() {
        let shape = Shape::d3(12, 10, 8);
        let steps: Vec<_> = (0..3).map(|t| wave(&shape, t)).collect();
        let baseline = IndependentSteps::new(1e-5, Config::default());
        let archive = baseline.compress_sequence(&steps).unwrap();
        assert_eq!(archive.num_steps(), 3);
        assert_eq!(
            archive.total_bytes(),
            (0..3).map(|s| archive.container_bytes(s)).sum::<usize>()
        );
        for (t, field) in steps.iter().enumerate() {
            let coarse = archive
                .retrieve(t, RetrievalRequest::ErrorBound(1e-2))
                .unwrap();
            let fine = archive
                .retrieve(t, RetrievalRequest::ErrorBound(1e-5))
                .unwrap();
            assert!(coarse.bytes < fine.bytes);
            for (a, b) in field.as_slice().iter().zip(fine.data.as_slice()) {
                assert!((a - b).abs() <= 1e-5);
            }
        }
    }

    #[test]
    fn range_retrieval_sums_per_step_bytes() {
        let shape = Shape::d3(12, 10, 8);
        let steps: Vec<_> = (0..4).map(|t| wave(&shape, t)).collect();
        let archive = IndependentSteps::new(1e-5, Config::default())
            .compress_sequence(&steps)
            .unwrap();
        let (fields, bytes) = archive
            .retrieve_range(1..3, RetrievalRequest::ErrorBound(1e-3))
            .unwrap();
        assert_eq!(fields.len(), 2);
        let solo: usize = (1..3)
            .map(|s| {
                archive
                    .retrieve(s, RetrievalRequest::ErrorBound(1e-3))
                    .unwrap()
                    .bytes
            })
            .sum();
        assert_eq!(bytes, solo);
    }
}
