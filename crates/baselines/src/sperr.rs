//! SPERR: wavelet-based lossy compressor, used by the paper's speed study (Fig. 8)
//! through its residual-progressive variant SPERR-R.
//!
//! SPERR decorrelates with the CDF 9/7 wavelet and codes the coefficients with a
//! set-partitioning scheme; this re-implementation keeps the wavelet stage
//! ([`crate::wavelet`]) and codes the quantized coefficients through the shared
//! zigzag-varint + LZR backend. Coefficient quantization uses a conservative step
//! derived from the synthesis gain so the reconstruction honours the requested
//! point-wise bound — at the price of ratio and, above all, speed: the whole-domain
//! multi-pass wavelet makes SPERR by far the slowest baseline, matching its role in
//! the paper's Fig. 8.

use ipc_codecs::byteio::{read_f64, write_f64};
use ipc_codecs::varint::{read_varint, write_varint};
use ipc_codecs::{lzr_compress, lzr_decompress, zigzag_decode, zigzag_encode};
use ipc_tensor::{ArrayD, Shape};

use crate::wavelet::{forward, inverse, synthesis_gain};
use crate::BaseCompressor;

const MAGIC: &[u8; 4] = b"SPRR";

/// The SPERR baseline compressor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sperr;

impl BaseCompressor for Sperr {
    fn name(&self) -> &'static str {
        "SPERR"
    }

    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Vec<u8> {
        assert!(
            error_bound.is_finite() && error_bound > 0.0,
            "error bound must be positive"
        );
        let shape = data.shape().clone();
        let step = 2.0 * error_bound / synthesis_gain(shape.ndim());

        let mut work = data.clone();
        forward(&mut work);
        let mut raw = Vec::with_capacity(work.len() * 2);
        for &v in work.as_slice() {
            write_varint(&mut raw, zigzag_encode((v / step).round() as i64));
        }
        let packed = lzr_compress(&raw);

        let mut out = Vec::with_capacity(packed.len() + 64);
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, shape.ndim() as u64);
        for &d in shape.dims() {
            write_varint(&mut out, d as u64);
        }
        write_f64(&mut out, error_bound);
        write_varint(&mut out, packed.len() as u64);
        out.extend_from_slice(&packed);
        out
    }

    fn decompress(&self, bytes: &[u8]) -> ArrayD<f64> {
        let mut pos = 0usize;
        assert_eq!(&bytes[0..4], MAGIC, "not a SPERR stream");
        pos += 4;
        let ndim = read_varint(bytes, &mut pos).expect("ndim") as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(read_varint(bytes, &mut pos).expect("dim") as usize);
        }
        let shape = Shape::new(&dims);
        let error_bound = read_f64(bytes, &mut pos).expect("eb");
        let packed_len = read_varint(bytes, &mut pos).expect("len") as usize;
        let raw = lzr_decompress(&bytes[pos..pos + packed_len]).expect("lossless stage");

        let step = 2.0 * error_bound / synthesis_gain(ndim);
        let mut rpos = 0usize;
        let mut coeffs = Vec::with_capacity(shape.len());
        for _ in 0..shape.len() {
            let q = zigzag_decode(read_varint(&raw, &mut rpos).expect("code"));
            coeffs.push(q as f64 * step);
        }
        let mut out = ArrayD::from_vec(shape, coeffs);
        inverse(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_metrics::linf_error;

    fn field(shape: Shape) -> ArrayD<f64> {
        ArrayD::from_fn(shape, |c| {
            (c[0] as f64 * 0.2).sin() * 2.0
                + (c.get(1).copied().unwrap_or(0) as f64 * 0.1).cos()
                + c.last().copied().unwrap_or(0) as f64 * 0.05
        })
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        for dims in [vec![80usize], vec![21, 27], vec![12, 14, 16]] {
            let data = field(Shape::new(&dims));
            for eb in [1e-2, 1e-4] {
                let blob = Sperr.compress(&data, eb);
                let out = Sperr.decompress(&blob);
                let err = linf_error(data.as_slice(), out.as_slice());
                assert!(err <= eb * (1.0 + 1e-9), "dims {dims:?} eb {eb}: {err}");
            }
        }
    }

    #[test]
    fn residual_wrapper_produces_sperr_r() {
        use crate::residual::Residual;
        use crate::ProgressiveScheme;
        let data = field(Shape::d3(10, 12, 14));
        let scheme = Residual::with_passes(Sperr, "SPERR-R", 4);
        let archive = scheme.compress(&data, 1e-4);
        let out = archive.retrieve_full();
        assert!(linf_error(data.as_slice(), out.data.as_slice()) <= 1e-4 * (1.0 + 1e-6));
        assert_eq!(out.passes, 4);
    }

    #[test]
    fn smooth_data_compresses() {
        let data = field(Shape::d3(24, 24, 24));
        let blob = Sperr.compress(&data, 1e-3 * data.value_range());
        let cr = (data.len() * 8) as f64 / blob.len() as f64;
        assert!(cr > 1.5, "CR {cr}");
    }
}
