//! Baseline scientific lossy compressors used in the IPComp evaluation.
//!
//! The paper compares IPComp against four state-of-the-art progressive schemes
//! (Sec. 6.1.3): **SZ3-M** (multi-fidelity), **SZ3-R** (residual-progressive SZ3),
//! **ZFP-R** (residual-progressive ZFP) and **PMGARD** (progressive MGARD), plus
//! **SPERR-R** in the speed study. None of those C/C++ codebases is linked here —
//! each algorithm's decorrelation + coding pipeline is re-implemented from scratch in
//! Rust (see DESIGN.md §2 for what is simplified and why the relative comparisons are
//! preserved).
//!
//! Two small traits give the benchmark harness a uniform view of every compressor:
//!
//! * [`BaseCompressor`] — one-shot error-bounded compress/decompress (SZ3, ZFP,
//!   MGARD, SPERR).
//! * [`ProgressiveScheme`] / [`ProgressiveArchive`] — compress once, then retrieve at
//!   arbitrary fidelity targets while accounting for the bytes each retrieval loads.
//!   Implemented by IPComp (natively), by the residual wrapper ([`residual`]), by the
//!   multi-output wrapper ([`multifidelity`]) and by progressive MGARD ([`pmgard`]).

pub mod mgard;
pub mod multifidelity;
pub mod pmgard;
pub mod residual;
pub mod sperr;
pub mod sz3;
pub mod timeseries;
pub mod wavelet;
pub mod zfp;

use ipc_tensor::ArrayD;

pub use mgard::Mgard;
pub use multifidelity::MultiFidelity;
pub use pmgard::{Pmgard, PmgardArchive};
pub use residual::{Residual, ResidualArchive};
pub use sperr::Sperr;
pub use sz3::Sz3;
pub use timeseries::{IndependentArchive, IndependentRetrieval, IndependentSteps};
pub use zfp::Zfp;

/// A one-shot error-bounded lossy compressor (decompression always returns full
/// fidelity).
pub trait BaseCompressor: Send + Sync {
    /// Short name used in benchmark tables ("SZ3", "ZFP", …).
    fn name(&self) -> &'static str;
    /// Compress `data` so that every reconstructed value differs from the original by
    /// at most `error_bound`.
    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Vec<u8>;
    /// Decompress a buffer produced by [`BaseCompressor::compress`].
    fn decompress(&self, bytes: &[u8]) -> ArrayD<f64>;
}

/// The result of one progressive retrieval.
#[derive(Debug, Clone)]
pub struct Retrieved {
    /// Reconstructed field.
    pub data: ArrayD<f64>,
    /// Bytes that had to be read from the archive for this retrieval (cumulative for
    /// the fidelity level, not incremental).
    pub bytes_loaded: usize,
    /// Number of decompression passes executed to serve the request (1 for IPComp,
    /// up to the residual-ladder length for SZ3-R/ZFP-R).
    pub passes: usize,
}

/// A compressed artifact supporting multi-fidelity retrieval.
pub trait ProgressiveArchive: Send + Sync {
    /// Total stored size in bytes (what the compression-ratio figures use).
    fn total_bytes(&self) -> usize;
    /// Retrieve a reconstruction whose L∞ error is at most `target` (or the best the
    /// archive can do if `target` is tighter than the compression bound).
    fn retrieve_error_bound(&self, target: f64) -> Retrieved;
    /// Retrieve the best reconstruction that reads at most `max_bytes` from the
    /// archive.
    fn retrieve_size_budget(&self, max_bytes: usize) -> Retrieved;
    /// Full-fidelity reconstruction.
    fn retrieve_full(&self) -> Retrieved;
}

/// A compressor that produces a [`ProgressiveArchive`].
pub trait ProgressiveScheme: Send + Sync {
    /// Short name used in benchmark tables ("IPComp", "SZ3-R", …).
    fn name(&self) -> &'static str;
    /// Compress `data` with the given (absolute) finest error bound.
    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Box<dyn ProgressiveArchive>;
}

// ---------------------------------------------------------------------------
// IPComp adapter: the paper's own compressor viewed through the same traits.
// ---------------------------------------------------------------------------

/// IPComp wrapped as a [`ProgressiveScheme`] for side-by-side evaluation.
#[derive(Default)]
pub struct IpCompScheme {
    /// Compressor configuration.
    pub config: ipcomp::Config,
}

/// Archive produced by [`IpCompScheme`].
pub struct IpCompArchive {
    compressed: ipcomp::Compressed,
}

impl IpCompArchive {
    /// Access the underlying IPComp container.
    pub fn inner(&self) -> &ipcomp::Compressed {
        &self.compressed
    }
}

impl ProgressiveScheme for IpCompScheme {
    fn name(&self) -> &'static str {
        "IPComp"
    }

    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Box<dyn ProgressiveArchive> {
        let compressed =
            ipcomp::compress(data, error_bound, &self.config).expect("valid compression inputs");
        Box::new(IpCompArchive { compressed })
    }
}

impl ProgressiveArchive for IpCompArchive {
    fn total_bytes(&self) -> usize {
        self.compressed.total_bytes()
    }

    fn retrieve_error_bound(&self, target: f64) -> Retrieved {
        let mut dec = ipcomp::ProgressiveDecoder::new(&self.compressed);
        let r = dec
            .retrieve(ipcomp::RetrievalRequest::ErrorBound(target))
            .expect("retrieval of a well-formed container");
        Retrieved {
            data: r.data,
            bytes_loaded: r.bytes_total,
            passes: 1,
        }
    }

    fn retrieve_size_budget(&self, max_bytes: usize) -> Retrieved {
        let mut dec = ipcomp::ProgressiveDecoder::new(&self.compressed);
        let r = dec
            .retrieve(ipcomp::RetrievalRequest::SizeBudget(max_bytes))
            .expect("retrieval of a well-formed container");
        Retrieved {
            data: r.data,
            bytes_loaded: r.bytes_total,
            passes: 1,
        }
    }

    fn retrieve_full(&self) -> Retrieved {
        let mut dec = ipcomp::ProgressiveDecoder::new(&self.compressed);
        let r = dec
            .retrieve(ipcomp::RetrievalRequest::Full)
            .expect("retrieval of a well-formed container");
        Retrieved {
            data: r.data,
            bytes_loaded: r.bytes_total,
            passes: 1,
        }
    }
}

/// The residual error-bound ladder used for SZ3-R / ZFP-R / SPERR-R in the paper's
/// experiments: `2^16·eb, 2^14·eb, …, 2^2·eb, eb` (factor-4 steps, 9 bounds).
pub fn paper_residual_ladder(eb: f64) -> Vec<f64> {
    (0..=8).rev().map(|i| eb * 4f64.powi(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_tensor::Shape;

    #[test]
    fn residual_ladder_matches_paper_configuration() {
        let ladder = paper_residual_ladder(1e-6);
        assert_eq!(ladder.len(), 9);
        assert!((ladder[0] - 65536e-6).abs() < 1e-12);
        assert!((ladder[8] - 1e-6).abs() < 1e-18);
        for w in ladder.windows(2) {
            assert!((w[0] / w[1] - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ipcomp_scheme_roundtrip_through_trait() {
        let field = ArrayD::from_fn(Shape::d3(12, 14, 10), |c| {
            (c[0] as f64 * 0.4).sin() + c[1] as f64 * 0.1 + c[2] as f64 * 0.01
        });
        let scheme = IpCompScheme::default();
        let archive = scheme.compress(&field, 1e-5);
        let full = archive.retrieve_full();
        let err = ipc_metrics::linf_error(field.as_slice(), full.data.as_slice());
        assert!(err <= 1e-5 * (1.0 + 1e-9));
        assert_eq!(full.passes, 1);
        let coarse = archive.retrieve_error_bound(1e-2);
        assert!(coarse.bytes_loaded <= full.bytes_loaded);
    }
}
