//! ZFP: the leading transform-based lossy compressor (paper Sec. 6.1.3), in its
//! fixed-accuracy (error-bounded) mode.
//!
//! ZFP partitions the field into 4^d blocks, decorrelates each block with a small
//! separable orthogonal transform, and codes the transform coefficients. It is the
//! fastest of the baselines because all work is local to a 64-element block, at the
//! price of lower compression ratios than prediction-based compressors on smooth
//! data. This implementation keeps that structure — 4^d blocks, a separable
//! orthonormal 4-point DCT-II transform, per-block coefficient coding — while using
//! the workspace's shared [`ipc_codecs::lzr`] backend for the final byte stream (see
//! DESIGN.md §2).

use ipc_codecs::byteio::{read_f64, write_f64};
use ipc_codecs::varint::{read_varint, write_varint};
use ipc_codecs::{lzr_compress, lzr_decompress, zigzag_decode, zigzag_encode};
use ipc_tensor::{ArrayD, Shape};

use crate::BaseCompressor;

const MAGIC: &[u8; 4] = b"ZFPr";
const BLOCK: usize = 4;

/// The ZFP baseline compressor (fixed-accuracy mode).
#[derive(Debug, Clone, Copy, Default)]
pub struct Zfp;

/// Orthonormal 4-point DCT-II matrix; `M[k][n]` maps sample `n` to coefficient `k`.
fn dct_matrix() -> [[f64; 4]; 4] {
    let mut m = [[0.0; 4]; 4];
    for (k, row) in m.iter_mut().enumerate() {
        for (n, v) in row.iter_mut().enumerate() {
            let c = if k == 0 { 0.5 } else { (0.5f64).sqrt() };
            *v = c * (std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64 / 8.0).cos();
        }
    }
    m
}

/// Worst-case amplification of coefficient-domain error into sample-domain error for
/// one application of the inverse transform (max absolute column sum of the inverse
/// matrix).
fn transform_gain() -> f64 {
    let m = dct_matrix();
    (0..4)
        .map(|n| (0..4).map(|k| m[k][n].abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Apply the transform (or its inverse) along one axis of a 4^d block stored in
/// row-major order with `extent` total elements.
fn transform_axis(block: &mut [f64], dims: usize, axis: usize, inverse: bool) {
    let m = dct_matrix();
    let stride = BLOCK.pow((dims - 1 - axis) as u32);
    let lines = block.len() / BLOCK;
    // Enumerate the starting offset of every line along `axis`.
    let mut starts = Vec::with_capacity(lines);
    for idx in 0..block.len() {
        let coord = (idx / stride) % BLOCK;
        if coord == 0 {
            starts.push(idx);
        }
    }
    let mut tmp = [0.0f64; BLOCK];
    for &s in &starts {
        for (k, t) in tmp.iter_mut().enumerate() {
            let mut acc = 0.0;
            for n in 0..BLOCK {
                let coef = if inverse { m[n][k] } else { m[k][n] };
                acc += coef * block[s + n * stride];
            }
            *t = acc;
        }
        for (n, &t) in tmp.iter().enumerate() {
            block[s + n * stride] = t;
        }
    }
}

fn forward_transform(block: &mut [f64], dims: usize) {
    for axis in 0..dims {
        transform_axis(block, dims, axis, false);
    }
}

fn inverse_transform(block: &mut [f64], dims: usize) {
    for axis in (0..dims).rev() {
        transform_axis(block, dims, axis, true);
    }
}

/// Iterate the block origins covering `shape` (each dimension stepped by 4).
fn block_origins(shape: &Shape) -> Vec<Vec<usize>> {
    let mut origins = vec![vec![]];
    for &d in shape.dims() {
        let mut next = Vec::new();
        for o in &origins {
            let mut start = 0;
            while start < d {
                let mut v = o.clone();
                v.push(start);
                next.push(v);
                start += BLOCK;
            }
        }
        origins = next;
    }
    origins
}

/// Gather a (possibly clamped) 4^d block starting at `origin`.
fn gather_block(data: &ArrayD<f64>, origin: &[usize]) -> Vec<f64> {
    let dims = data.shape().ndim();
    let n = BLOCK.pow(dims as u32);
    let mut block = vec![0.0; n];
    let sizes = data.shape().dims();
    for (i, v) in block.iter_mut().enumerate() {
        let mut rem = i;
        let mut coords = vec![0usize; dims];
        for d in (0..dims).rev() {
            coords[d] = origin[d] + rem % BLOCK;
            // Clamp (edge replication) for partial blocks at the boundary.
            coords[d] = coords[d].min(sizes[d] - 1);
            rem /= BLOCK;
        }
        *v = *data.get(&coords);
    }
    block
}

/// Scatter the valid part of a reconstructed block back into the output array.
fn scatter_block(out: &mut ArrayD<f64>, origin: &[usize], block: &[f64]) {
    let dims = out.shape().ndim();
    let sizes = out.shape().dims().to_vec();
    for (i, &v) in block.iter().enumerate() {
        let mut rem = i;
        let mut coords = vec![0usize; dims];
        let mut valid = true;
        for d in (0..dims).rev() {
            let c = origin[d] + rem % BLOCK;
            if c >= sizes[d] {
                valid = false;
            }
            coords[d] = c.min(sizes[d] - 1);
            rem /= BLOCK;
        }
        if valid {
            *out.get_mut(&coords) = v;
        }
    }
}

impl BaseCompressor for Zfp {
    fn name(&self) -> &'static str {
        "ZFP"
    }

    fn compress(&self, data: &ArrayD<f64>, error_bound: f64) -> Vec<u8> {
        assert!(
            error_bound.is_finite() && error_bound > 0.0,
            "error bound must be positive"
        );
        let shape = data.shape().clone();
        let dims = shape.ndim();
        let gain = transform_gain().powi(dims as i32);
        let step = 2.0 * error_bound / gain;

        let mut codes: Vec<i64> = Vec::with_capacity(shape.len());
        for origin in block_origins(&shape) {
            let mut block = gather_block(data, &origin);
            forward_transform(&mut block, dims);
            for v in &block {
                codes.push((v / step).round() as i64);
            }
        }

        let mut raw = Vec::with_capacity(codes.len() * 2);
        for &c in &codes {
            write_varint(&mut raw, zigzag_encode(c));
        }
        let packed = lzr_compress(&raw);

        let mut out = Vec::with_capacity(packed.len() + 64);
        out.extend_from_slice(MAGIC);
        write_varint(&mut out, dims as u64);
        for &d in shape.dims() {
            write_varint(&mut out, d as u64);
        }
        write_f64(&mut out, error_bound);
        write_varint(&mut out, packed.len() as u64);
        out.extend_from_slice(&packed);
        out
    }

    fn decompress(&self, bytes: &[u8]) -> ArrayD<f64> {
        let mut pos = 0usize;
        assert_eq!(&bytes[0..4], MAGIC, "not a ZFP stream");
        pos += 4;
        let ndim = read_varint(bytes, &mut pos).expect("ndim") as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(read_varint(bytes, &mut pos).expect("dim") as usize);
        }
        let shape = Shape::new(&dims);
        let error_bound = read_f64(bytes, &mut pos).expect("eb");
        let packed_len = read_varint(bytes, &mut pos).expect("len") as usize;
        let packed = &bytes[pos..pos + packed_len];
        let raw = lzr_decompress(packed).expect("lossless stage");

        let gain = transform_gain().powi(ndim as i32);
        let step = 2.0 * error_bound / gain;
        let mut rpos = 0usize;
        let block_len = BLOCK.pow(ndim as u32);
        let mut out = ArrayD::zeros(shape.clone());
        for origin in block_origins(&shape) {
            let mut block = Vec::with_capacity(block_len);
            for _ in 0..block_len {
                let v = zigzag_decode(read_varint(&raw, &mut rpos).expect("code"));
                block.push(v as f64 * step);
            }
            inverse_transform(&mut block, ndim);
            scatter_block(&mut out, &origin, &block);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_metrics::linf_error;

    fn field(shape: Shape) -> ArrayD<f64> {
        ArrayD::from_fn(shape, |c| {
            (c[0] as f64 * 0.3).sin() * 2.0
                + (c.get(1).copied().unwrap_or(0) as f64 * 0.15).cos()
                + c.last().copied().unwrap_or(0) as f64 * 0.02
        })
    }

    #[test]
    fn transform_is_orthonormal() {
        let m = dct_matrix();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = (0..4).map(|n| m[i][n] * m[j][n]).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-12, "rows {i},{j}: {dot}");
            }
        }
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        for dims in 1..=3usize {
            let n = BLOCK.pow(dims as u32);
            let mut block: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin() * 5.0).collect();
            let orig = block.clone();
            forward_transform(&mut block, dims);
            inverse_transform(&mut block, dims);
            for (a, b) in orig.iter().zip(&block) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn roundtrip_respects_error_bound() {
        for dims in [vec![37usize], vec![17, 23], vec![13, 14, 15]] {
            let data = field(Shape::new(&dims));
            for eb in [1e-2, 1e-5] {
                let blob = Zfp.compress(&data, eb);
                let out = Zfp.decompress(&blob);
                let err = linf_error(data.as_slice(), out.as_slice());
                assert!(err <= eb * (1.0 + 1e-9), "dims {dims:?} eb {eb}: {err}");
            }
        }
    }

    #[test]
    fn non_multiple_of_four_shapes_handled() {
        let data = field(Shape::d3(5, 9, 6));
        let blob = Zfp.compress(&data, 1e-4);
        let out = Zfp.decompress(&blob);
        assert_eq!(out.shape(), data.shape());
        assert!(linf_error(data.as_slice(), out.as_slice()) <= 1e-4 * (1.0 + 1e-9));
    }

    #[test]
    fn smooth_data_compresses() {
        let data = field(Shape::d3(32, 32, 32));
        let blob = Zfp.compress(&data, 1e-3 * data.value_range());
        let cr = (data.len() * 8) as f64 / blob.len() as f64;
        assert!(cr > 2.0, "CR {cr}");
    }
}
