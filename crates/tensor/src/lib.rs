//! Minimal N-dimensional strided array substrate for scientific fields.
//!
//! The IPComp paper operates on dense 1D/2D/3D floating point grids (Table 3 of the
//! paper lists six 3-D fields). This crate provides the small amount of array
//! machinery that every compressor in the workspace shares:
//!
//! * [`Shape`] — dimension sizes, row-major strides, linear/multi index conversion.
//! * [`ArrayD`] — an owned dense array of `T` with a [`Shape`].
//! * [`GridIter`] — an odometer-style iterator over a sub-lattice of a grid
//!   (per-dimension `start/step/end` ranges), which is the traversal primitive used by
//!   the multilevel interpolation predictors.
//!
//! The substrate intentionally stays tiny: compressors mostly work on `&[f64]`
//! plus a [`Shape`], so no view/broadcast machinery is needed.

pub mod array;
pub mod grid;
pub mod shape;

pub use array::ArrayD;
pub use grid::{AxisRange, GridIter};
pub use shape::Shape;

/// Maximum number of dimensions supported by the workspace.
///
/// The paper's datasets are all 3-D; we support up to 4-D (e.g. time-varying 3-D
/// fields) which covers every workload in the evaluation plus the extension
/// experiments.
pub const MAX_DIMS: usize = 4;
