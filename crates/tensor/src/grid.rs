//! Sub-lattice traversal.
//!
//! The multilevel interpolation predictor (paper Fig. 3) walks progressively finer
//! sub-lattices of the input grid: at each level it visits points whose coordinate
//! along one dimension is an *odd* multiple of the current stride while coordinates
//! along other dimensions sit on coarser lattices. [`GridIter`] provides exactly that
//! traversal as an odometer over per-dimension [`AxisRange`]s, yielding both the
//! coordinates and the flat row-major offset of every visited point.

use crate::Shape;

/// A strided range `start, start+step, start+2*step, … < end` along one axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AxisRange {
    /// First coordinate visited.
    pub start: usize,
    /// Step between consecutive coordinates (must be ≥ 1).
    pub step: usize,
    /// Exclusive upper bound.
    pub end: usize,
}

impl AxisRange {
    /// A full axis `0..len` with step 1.
    pub fn full(len: usize) -> Self {
        Self {
            start: 0,
            step: 1,
            end: len,
        }
    }

    /// A strided axis `start..end` stepping by `step`.
    pub fn strided(start: usize, step: usize, end: usize) -> Self {
        assert!(step >= 1, "AxisRange step must be >= 1");
        Self { start, step, end }
    }

    /// Number of coordinates visited along this axis.
    pub fn count(&self) -> usize {
        if self.start >= self.end {
            0
        } else {
            (self.end - self.start).div_ceil(self.step)
        }
    }
}

/// Odometer iterator over the Cartesian product of per-dimension [`AxisRange`]s.
///
/// Yields `(coords, flat_offset)` pairs in row-major order of the visited lattice.
///
/// # Examples
///
/// ```
/// use ipc_tensor::{AxisRange, GridIter, Shape};
/// let shape = Shape::d2(4, 4);
/// // Points with even row and odd column.
/// let it = GridIter::new(
///     &shape,
///     vec![AxisRange::strided(0, 2, 4), AxisRange::strided(1, 2, 4)],
/// );
/// let offsets: Vec<usize> = it.map(|(_, off)| off).collect();
/// assert_eq!(offsets, vec![1, 3, 9, 11]);
/// ```
pub struct GridIter {
    strides: Vec<usize>,
    ranges: Vec<AxisRange>,
    current: Vec<usize>,
    offset: usize,
    done: bool,
}

impl GridIter {
    /// Create an iterator over the sub-lattice described by `ranges` inside `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `ranges.len() != shape.ndim()` or any range exceeds its dimension.
    pub fn new(shape: &Shape, ranges: Vec<AxisRange>) -> Self {
        assert_eq!(ranges.len(), shape.ndim(), "one AxisRange per dimension");
        for (i, r) in ranges.iter().enumerate() {
            assert!(
                r.end <= shape.dims()[i],
                "AxisRange end {} exceeds dim {} of size {}",
                r.end,
                i,
                shape.dims()[i]
            );
        }
        let empty = ranges.iter().any(|r| r.count() == 0);
        let current: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        let offset = if empty {
            0
        } else {
            current
                .iter()
                .zip(shape.strides())
                .map(|(&c, &s)| c * s)
                .sum()
        };
        Self {
            strides: shape.strides().to_vec(),
            ranges,
            current,
            offset,
            done: empty,
        }
    }

    /// Total number of lattice points this iterator will visit.
    pub fn total(&self) -> usize {
        self.ranges.iter().map(|r| r.count()).product()
    }
}

impl Iterator for GridIter {
    type Item = (Vec<usize>, usize);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let item = (self.current.clone(), self.offset);
        // Advance the odometer from the last (fastest-varying) dimension.
        let ndim = self.ranges.len();
        let mut dim = ndim;
        loop {
            if dim == 0 {
                self.done = true;
                break;
            }
            dim -= 1;
            let r = self.ranges[dim];
            let next = self.current[dim] + r.step;
            if next < r.end {
                self.current[dim] = next;
                self.offset += r.step * self.strides[dim];
                break;
            } else {
                // Reset this digit and carry.
                self.offset -= (self.current[dim] - r.start) * self.strides[dim];
                self.current[dim] = r.start;
            }
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_visits_everything_in_order() {
        let shape = Shape::d2(3, 4);
        let ranges = vec![AxisRange::full(3), AxisRange::full(4)];
        let visited: Vec<usize> = GridIter::new(&shape, ranges).map(|(_, o)| o).collect();
        assert_eq!(visited, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn strided_sub_lattice() {
        let shape = Shape::d2(4, 4);
        let it = GridIter::new(
            &shape,
            vec![AxisRange::strided(1, 2, 4), AxisRange::strided(0, 2, 4)],
        );
        let offs: Vec<usize> = it.map(|(_, o)| o).collect();
        assert_eq!(offs, vec![4, 6, 12, 14]);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let shape = Shape::d2(4, 4);
        let it = GridIter::new(
            &shape,
            vec![AxisRange::strided(5, 2, 4), AxisRange::full(4)],
        );
        assert_eq!(it.count(), 0);
    }

    #[test]
    fn total_matches_iteration_count() {
        let shape = Shape::d3(5, 6, 7);
        let ranges = vec![
            AxisRange::strided(1, 2, 5),
            AxisRange::strided(0, 3, 6),
            AxisRange::strided(2, 4, 7),
        ];
        let it = GridIter::new(&shape, ranges.clone());
        let total = it.total();
        let n = GridIter::new(&shape, ranges).count();
        assert_eq!(total, n);
        assert_eq!(n, 2 * 2 * 2);
    }

    #[test]
    fn offsets_match_shape_offset_of() {
        let shape = Shape::d3(4, 5, 6);
        let ranges = vec![
            AxisRange::strided(0, 2, 4),
            AxisRange::strided(1, 2, 5),
            AxisRange::strided(0, 3, 6),
        ];
        for (coords, off) in GridIter::new(&shape, ranges) {
            assert_eq!(shape.offset_of(&coords), off);
        }
    }

    #[test]
    fn axis_range_count() {
        assert_eq!(AxisRange::full(10).count(), 10);
        assert_eq!(AxisRange::strided(0, 2, 10).count(), 5);
        assert_eq!(AxisRange::strided(1, 2, 10).count(), 5);
        assert_eq!(AxisRange::strided(1, 2, 2).count(), 1);
        assert_eq!(AxisRange::strided(3, 2, 3).count(), 0);
    }

    #[test]
    fn one_dimensional_traversal() {
        let shape = Shape::d1(9);
        let offs: Vec<usize> = GridIter::new(&shape, vec![AxisRange::strided(1, 2, 9)])
            .map(|(_, o)| o)
            .collect();
        assert_eq!(offs, vec![1, 3, 5, 7]);
    }
}
