//! Owned dense N-dimensional arrays.

use crate::Shape;
use serde::{Deserialize, Serialize};

/// A dense, row-major N-dimensional array of `T`.
///
/// This is the in-memory representation of a scientific field throughout the
/// workspace. Compressors accept `&ArrayD<f64>` (or its flat `&[f64]` plus
/// [`Shape`]) and produce reconstructions of the same shape.
///
/// # Examples
///
/// ```
/// use ipc_tensor::{ArrayD, Shape};
/// let mut a = ArrayD::zeros(Shape::d2(2, 3));
/// a[[1, 2]] = 5.0;
/// assert_eq!(a[[1, 2]], 5.0);
/// assert_eq!(a.as_slice()[5], 5.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrayD<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T: Clone + Default> ArrayD<T> {
    /// Create an array filled with `T::default()`.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.len();
        Self {
            shape,
            data: vec![T::default(); n],
        }
    }

    /// Create an array filled with a constant value.
    pub fn full(shape: Shape, value: T) -> Self {
        let n = shape.len();
        Self {
            shape,
            data: vec![value; n],
        }
    }
}

impl<T> ArrayD<T> {
    /// Wrap an existing flat buffer (row-major) with a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_vec(shape: Shape, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.len()
        );
        Self { shape, data }
    }

    /// Build an array by evaluating `f` at every coordinate.
    pub fn from_fn(shape: Shape, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.len());
        for off in 0..shape.len() {
            let coords = shape.coords_of(off);
            data.push(f(&coords));
        }
        Self { shape, data }
    }

    /// The array's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no elements (never the case for a valid shape).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the array and return its flat buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element at multi-dimensional coordinates.
    #[inline]
    pub fn get(&self, coords: &[usize]) -> &T {
        &self.data[self.shape.offset_of(coords)]
    }

    /// Mutable element at multi-dimensional coordinates.
    #[inline]
    pub fn get_mut(&mut self, coords: &[usize]) -> &mut T {
        let off = self.shape.offset_of(coords);
        &mut self.data[off]
    }

    /// Apply a function to every element, producing a new array of the results.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> ArrayD<U> {
        ArrayD {
            shape: self.shape.clone(),
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl ArrayD<f64> {
    /// Minimum and maximum values (ignoring NaNs); `(0.0, 0.0)` for all-NaN input.
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.data {
            if v.is_nan() {
                continue;
            }
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        if lo > hi {
            (0.0, 0.0)
        } else {
            (lo, hi)
        }
    }

    /// Value range `max - min` (the paper's error bounds are relative to this range).
    pub fn value_range(&self) -> f64 {
        let (lo, hi) = self.min_max();
        hi - lo
    }
}

impl<T, const N: usize> std::ops::Index<[usize; N]> for ArrayD<T> {
    type Output = T;
    #[inline]
    fn index(&self, coords: [usize; N]) -> &T {
        self.get(&coords)
    }
}

impl<T, const N: usize> std::ops::IndexMut<[usize; N]> for ArrayD<T> {
    #[inline]
    fn index_mut(&mut self, coords: [usize; N]) -> &mut T {
        self.get_mut(&coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z: ArrayD<f64> = ArrayD::zeros(Shape::d2(3, 4));
        assert_eq!(z.len(), 12);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = ArrayD::full(Shape::d1(5), 7i32);
        assert!(f.as_slice().iter().all(|&v| v == 7));
    }

    #[test]
    fn from_vec_and_index() {
        let a = ArrayD::from_vec(Shape::d2(2, 3), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a[[0, 0]], 0);
        assert_eq!(a[[1, 2]], 5);
        assert_eq!(*a.get(&[1, 0]), 3);
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let _ = ArrayD::from_vec(Shape::d2(2, 3), vec![1, 2, 3]);
    }

    #[test]
    fn from_fn_evaluates_coordinates() {
        let a = ArrayD::from_fn(Shape::d2(3, 3), |c| (c[0] * 10 + c[1]) as i64);
        assert_eq!(a[[2, 1]], 21);
        assert_eq!(a[[0, 2]], 2);
    }

    #[test]
    fn index_mut_writes() {
        let mut a = ArrayD::zeros(Shape::d3(2, 2, 2));
        a[[1, 1, 1]] = 9.5;
        assert_eq!(a.as_slice()[7], 9.5);
    }

    #[test]
    fn min_max_and_range() {
        let a = ArrayD::from_vec(Shape::d1(5), vec![-2.0, 0.0, 3.5, 1.0, -0.5]);
        assert_eq!(a.min_max(), (-2.0, 3.5));
        assert_eq!(a.value_range(), 5.5);
    }

    #[test]
    fn min_max_ignores_nan() {
        let a = ArrayD::from_vec(Shape::d1(3), vec![f64::NAN, 1.0, 2.0]);
        assert_eq!(a.min_max(), (1.0, 2.0));
    }

    #[test]
    fn map_preserves_shape() {
        let a = ArrayD::from_vec(Shape::d2(2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let b = a.map(|v| v * 2.0);
        assert_eq!(b.shape(), a.shape());
        assert_eq!(b.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }
}
