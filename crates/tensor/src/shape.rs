//! Dimension bookkeeping: sizes, row-major strides, and index conversions.

use crate::MAX_DIMS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a dense, row-major N-dimensional array.
///
/// A `Shape` owns the dimension sizes and pre-computes the row-major strides so that
/// multi-dimensional coordinates can be converted to flat offsets (and back) cheaply.
///
/// # Examples
///
/// ```
/// use ipc_tensor::Shape;
/// let s = Shape::new(&[4, 6, 8]);
/// assert_eq!(s.len(), 4 * 6 * 8);
/// assert_eq!(s.strides(), &[48, 8, 1]);
/// assert_eq!(s.offset_of(&[1, 2, 3]), 48 + 16 + 3);
/// assert_eq!(s.coords_of(67), vec![1, 2, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
    strides: Vec<usize>,
}

impl Shape {
    /// Create a shape from dimension sizes (row-major / C order).
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, has more than [`MAX_DIMS`] entries, or contains a
    /// zero-sized dimension.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "Shape must have at least one dimension");
        assert!(
            dims.len() <= MAX_DIMS,
            "Shape supports at most {MAX_DIMS} dimensions, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "Shape dimensions must be non-zero: {dims:?}"
        );
        let mut strides = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * dims[i + 1];
        }
        Self {
            dims: dims.to_vec(),
            strides,
        }
    }

    /// Convenience constructor for a 1-D shape.
    pub fn d1(n: usize) -> Self {
        Self::new(&[n])
    }

    /// Convenience constructor for a 2-D shape.
    pub fn d2(n0: usize, n1: usize) -> Self {
        Self::new(&[n0, n1])
    }

    /// Convenience constructor for a 3-D shape.
    pub fn d3(n0: usize, n1: usize, n2: usize) -> Self {
        Self::new(&[n0, n1, n2])
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True if the shape contains no elements (never the case for a valid `Shape`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest dimension size. Drives the number of interpolation levels.
    pub fn max_dim(&self) -> usize {
        *self.dims.iter().max().expect("non-empty shape")
    }

    /// Flat row-major offset of multi-dimensional coordinates.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `coords` has the wrong rank or is out of bounds.
    #[inline]
    pub fn offset_of(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.ndim(), "coordinate rank mismatch");
        let mut off = 0usize;
        for (i, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.dims[i], "coordinate {c} out of bounds in dim {i}");
            off += c * self.strides[i];
        }
        off
    }

    /// Multi-dimensional coordinates of a flat row-major offset.
    #[inline]
    pub fn coords_of(&self, mut offset: usize) -> Vec<usize> {
        debug_assert!(offset < self.len(), "offset out of bounds");
        let mut coords = vec![0usize; self.ndim()];
        for (coord, &stride) in coords.iter_mut().zip(&self.strides) {
            *coord = offset / stride;
            offset %= stride;
        }
        coords
    }

    /// True when `coords` lies inside the shape.
    #[inline]
    pub fn contains(&self, coords: &[usize]) -> bool {
        coords.len() == self.ndim() && coords.iter().zip(&self.dims).all(|(&c, &d)| c < d)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), &[12, 4, 1]);
        assert_eq!(s.len(), 24);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.max_dim(), 4);
    }

    #[test]
    fn offset_roundtrip_all_coords() {
        let s = Shape::new(&[3, 4, 5]);
        for off in 0..s.len() {
            let c = s.coords_of(off);
            assert_eq!(s.offset_of(&c), off);
        }
    }

    #[test]
    fn one_dimensional() {
        let s = Shape::d1(17);
        assert_eq!(s.strides(), &[1]);
        assert_eq!(s.offset_of(&[13]), 13);
        assert_eq!(s.coords_of(13), vec![13]);
    }

    #[test]
    fn two_dimensional_helpers() {
        let s = Shape::d2(5, 7);
        assert_eq!(s.dims(), &[5, 7]);
        assert_eq!(s.offset_of(&[2, 3]), 2 * 7 + 3);
    }

    #[test]
    fn contains_checks_bounds() {
        let s = Shape::d3(2, 2, 2);
        assert!(s.contains(&[1, 1, 1]));
        assert!(!s.contains(&[2, 0, 0]));
        assert!(!s.contains(&[0, 0]));
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        let _ = Shape::new(&[4, 0, 3]);
    }

    #[test]
    #[should_panic]
    fn too_many_dims_rejected() {
        let _ = Shape::new(&[2, 2, 2, 2, 2]);
    }

    #[test]
    fn display_formats_dimensions() {
        assert_eq!(format!("{}", Shape::d3(256, 384, 384)), "256x384x384");
    }
}
