//! Fidelity and efficiency metrics for scientific lossy compression.
//!
//! These are the five metrics the paper defines in Sec. 3.1.1 — compression ratio,
//! bitrate, decompression error (L∞), error bound compliance, and PSNR — plus the
//! Shannon entropy estimator used by Table 2 and the bit-level entropy of bitplanes.

pub mod entropy;
pub mod error;

pub use entropy::{bit_entropy, shannon_entropy};
pub use error::{linf_error, max_rel_error, mse, psnr, ErrorStats};

/// Compression ratio: original size divided by compressed size.
///
/// Sizes are in bytes. Returns `f64::INFINITY` for an empty compressed buffer.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    if compressed_bytes == 0 {
        f64::INFINITY
    } else {
        original_bytes as f64 / compressed_bytes as f64
    }
}

/// Bitrate: average number of stored bits per scalar value.
pub fn bitrate(compressed_bytes: usize, num_elements: usize) -> f64 {
    if num_elements == 0 {
        0.0
    } else {
        compressed_bytes as f64 * 8.0 / num_elements as f64
    }
}

/// Convert a bitrate budget back to a byte budget for `num_elements` scalars.
pub fn bytes_for_bitrate(bitrate: f64, num_elements: usize) -> usize {
    ((bitrate * num_elements as f64) / 8.0).floor() as usize
}

/// Throughput in MB/s given a payload size in bytes and elapsed seconds.
pub fn throughput_mbps(bytes: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        f64::INFINITY
    } else {
        bytes as f64 / 1e6 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_ratio_basic() {
        assert_eq!(compression_ratio(1000, 100), 10.0);
        assert_eq!(compression_ratio(1000, 0), f64::INFINITY);
    }

    #[test]
    fn bitrate_inverse_of_ratio() {
        // 64-bit doubles at CR 16 => 4 bits per value.
        let n = 1024usize;
        let compressed = n * 8 / 16;
        assert!((bitrate(compressed, n) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_for_bitrate_roundtrip() {
        let n = 100_000usize;
        let budget = bytes_for_bitrate(2.0, n);
        assert_eq!(budget, 25_000);
        assert!((bitrate(budget, n) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_simple() {
        assert_eq!(throughput_mbps(10_000_000, 2.0), 5.0);
        assert_eq!(throughput_mbps(1, 0.0), f64::INFINITY);
    }
}
