//! Point-wise and aggregate error metrics between original and reconstructed fields.

/// Maximum absolute point-wise difference (the paper's L∞ decompression error).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn linf_error(original: &[f64], reconstructed: &[f64]) -> f64 {
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    original
        .iter()
        .zip(reconstructed)
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0, f64::max)
}

/// Mean squared error.
pub fn mse(original: &[f64], reconstructed: &[f64]) -> f64 {
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    if original.is_empty() {
        return 0.0;
    }
    original
        .iter()
        .zip(reconstructed)
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f64>()
        / original.len() as f64
}

/// Peak signal-to-noise ratio as defined in the paper:
/// `20·log10((max(x) − min(x)) / sqrt(MSE))`.
///
/// Returns `f64::INFINITY` for an exact reconstruction.
pub fn psnr(original: &[f64], reconstructed: &[f64]) -> f64 {
    let m = mse(original, reconstructed);
    if m == 0.0 {
        return f64::INFINITY;
    }
    let (lo, hi) = min_max(original);
    let range = hi - lo;
    if range == 0.0 {
        return f64::NEG_INFINITY;
    }
    20.0 * (range / m.sqrt()).log10()
}

/// Maximum point-wise error normalized by the original value range.
pub fn max_rel_error(original: &[f64], reconstructed: &[f64]) -> f64 {
    let (lo, hi) = min_max(original);
    let range = hi - lo;
    if range == 0.0 {
        return 0.0;
    }
    linf_error(original, reconstructed) / range
}

fn min_max(values: &[f64]) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        if v.is_nan() {
            continue;
        }
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (0.0, 0.0)
    } else {
        (lo, hi)
    }
}

/// Bundle of the error metrics reported by the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Maximum point-wise absolute error.
    pub linf: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Peak signal-to-noise ratio in dB.
    pub psnr: f64,
    /// L∞ normalized by the original value range.
    pub rel_linf: f64,
}

impl ErrorStats {
    /// Compute every metric in one pass pair.
    pub fn compute(original: &[f64], reconstructed: &[f64]) -> Self {
        Self {
            linf: linf_error(original, reconstructed),
            mse: mse(original, reconstructed),
            psnr: psnr(original, reconstructed),
            rel_linf: max_rel_error(original, reconstructed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reconstruction() {
        let x = vec![1.0, 2.0, 3.0, -4.0];
        assert_eq!(linf_error(&x, &x), 0.0);
        assert_eq!(mse(&x, &x), 0.0);
        assert_eq!(psnr(&x, &x), f64::INFINITY);
        assert_eq!(max_rel_error(&x, &x), 0.0);
    }

    #[test]
    fn linf_picks_worst_point() {
        let x = vec![0.0, 0.0, 0.0];
        let y = vec![0.1, -0.5, 0.2];
        assert_eq!(linf_error(&x, &y), 0.5);
    }

    #[test]
    fn mse_average_of_squares() {
        let x = vec![0.0, 0.0];
        let y = vec![1.0, -3.0];
        assert_eq!(mse(&x, &y), (1.0 + 9.0) / 2.0);
    }

    #[test]
    fn psnr_matches_manual_computation() {
        let x = vec![0.0, 10.0];
        let y = vec![0.1, 10.0];
        // range = 10, mse = 0.005, psnr = 20*log10(10/sqrt(0.005))
        let expected = 20.0 * (10.0 / (0.005f64).sqrt()).log10();
        assert!((psnr(&x, &y) - expected).abs() < 1e-12);
    }

    #[test]
    fn psnr_increases_with_fidelity() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let coarse: Vec<f64> = x.iter().map(|v| v + 1.0).collect();
        let fine: Vec<f64> = x.iter().map(|v| v + 0.01).collect();
        assert!(psnr(&x, &fine) > psnr(&x, &coarse));
    }

    #[test]
    fn relative_error_normalizes_by_range() {
        let x = vec![0.0, 100.0];
        let y = vec![1.0, 100.0];
        assert!((max_rel_error(&x, &y) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn stats_bundle_consistent() {
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let y: Vec<f64> = x.iter().map(|v| v + 1e-3).collect();
        let s = ErrorStats::compute(&x, &y);
        assert!((s.linf - 1e-3).abs() < 1e-12);
        assert!((s.mse - 1e-6).abs() < 1e-12);
        assert!(s.psnr > 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = linf_error(&[1.0], &[1.0, 2.0]);
    }
}
