//! Shannon entropy estimators.
//!
//! Table 2 of the paper reports the per-bit entropy of bitplanes before and after
//! predictive coding; lower entropy means the downstream lossless stage can shrink the
//! plane further. [`bit_entropy`] reproduces that measurement and
//! [`shannon_entropy`] is the general symbol-level estimator used by the coding
//! ablation.

use std::collections::HashMap;
use std::hash::Hash;

/// Shannon entropy (bits per symbol) of a symbol sequence.
pub fn shannon_entropy<T: Eq + Hash>(symbols: &[T]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<&T, u64> = HashMap::new();
    for s in symbols {
        *counts.entry(s).or_insert(0) += 1;
    }
    let n = symbols.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Entropy (bits per bit) of a binary sequence given the count of ones and the total
/// length. This is the quantity reported in the paper's Table 2.
pub fn bit_entropy(ones: usize, total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let p1 = ones as f64 / total as f64;
    let p0 = 1.0 - p1;
    let mut h = 0.0;
    if p1 > 0.0 {
        h -= p1 * p1.log2();
    }
    if p0 > 0.0 {
        h -= p0 * p0.log2();
    }
    h
}

/// Entropy (bits per bit) of a packed bit buffer containing `total_bits` valid bits.
pub fn packed_bit_entropy(bytes: &[u8], total_bits: usize) -> f64 {
    let mut ones = 0usize;
    let mut counted = 0usize;
    'outer: for &b in bytes {
        for i in (0..8).rev() {
            if counted >= total_bits {
                break 'outer;
            }
            ones += ((b >> i) & 1) as usize;
            counted += 1;
        }
    }
    bit_entropy(ones, total_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bits_have_entropy_one() {
        assert!((bit_entropy(500, 1000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_bits_have_entropy_zero() {
        assert_eq!(bit_entropy(0, 1000), 0.0);
        assert_eq!(bit_entropy(1000, 1000), 0.0);
        assert_eq!(bit_entropy(0, 0), 0.0);
    }

    #[test]
    fn skew_reduces_entropy() {
        assert!(bit_entropy(100, 1000) < bit_entropy(300, 1000));
        assert!(bit_entropy(300, 1000) < bit_entropy(500, 1000));
    }

    #[test]
    fn shannon_uniform_alphabet() {
        let symbols: Vec<u32> = (0..4096u32).map(|i| i % 16).collect();
        assert!((shannon_entropy(&symbols) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn shannon_single_symbol_zero() {
        let symbols = vec![7u8; 100];
        assert_eq!(shannon_entropy(&symbols), 0.0);
        assert_eq!(shannon_entropy::<u8>(&[]), 0.0);
    }

    #[test]
    fn packed_bits_match_unpacked_count() {
        // 0b1010_1010 repeated: exactly half ones.
        let bytes = vec![0b1010_1010u8; 64];
        assert!((packed_bit_entropy(&bytes, 512) - 1.0).abs() < 1e-12);
        // Only count the first 4 bits of the first byte: 1,0,1,0 -> entropy 1.
        assert!((packed_bit_entropy(&bytes, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn packed_bits_all_zero() {
        let bytes = vec![0u8; 16];
        assert_eq!(packed_bit_entropy(&bytes, 128), 0.0);
    }
}
