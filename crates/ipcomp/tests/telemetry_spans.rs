//! One traced retrieve produces the full span tree the chrome://tracing
//! workflow relies on: fetch/entropy/scatter stage spans and cascade passes,
//! all nested inside the root retrieve span.

#![cfg(feature = "telemetry")]

use ipc_tensor::{ArrayD, Shape};
use ipcomp::compressor::compress;
use ipcomp::config::Config;
use ipcomp::progressive::{ProgressiveDecoder, RetrievalRequest};

#[test]
fn traced_retrieve_emits_all_stage_spans() {
    let shape = Shape::d3(24, 18, 20);
    let data = ArrayD::from_fn(shape, |c| {
        (c[0] as f64 * 0.21).sin() * 3.0 + (c[1] as f64 * 0.13).cos() * 2.0 + c[2] as f64 * 0.05
    });
    let c = compress(&data, 1e-6, &Config::default()).unwrap();

    let source = ipcomp::source::MemorySource::new(c.to_bytes());

    ipc_telemetry::set_enabled(true);
    ipc_telemetry::trace::set_tracing(true);
    let _ = ipc_telemetry::trace::take_events();
    let mut dec = ProgressiveDecoder::from_source(&source).unwrap();
    dec.retrieve(RetrievalRequest::Full).unwrap();
    ipc_telemetry::trace::set_tracing(false);
    let events = ipc_telemetry::trace::take_events();

    for name in ["fetch", "entropy", "scatter", "cascade.pass", "retrieve"] {
        assert!(
            events.iter().any(|e| e.name == name),
            "missing span {name:?} in {:?}",
            events.iter().map(|e| e.name).collect::<Vec<_>>()
        );
    }

    // Every stage span nests inside the root retrieve span (one clock for
    // all threads, so interval containment holds across the rayon pool).
    let root = events.iter().find(|e| e.name == "retrieve").unwrap();
    for e in &events {
        assert!(
            e.ts_ns >= root.ts_ns && e.ts_ns + e.dur_ns <= root.ts_ns + root.dur_ns,
            "span {} [{}, {}] escapes retrieve [{}, {}]",
            e.name,
            e.ts_ns,
            e.ts_ns + e.dur_ns,
            root.ts_ns,
            root.ts_ns + root.dur_ns
        );
    }

    // The stage byte counts surfaced as span args and counters.
    let fetch = events.iter().find(|e| e.name == "fetch").unwrap();
    assert!(
        fetch.args.iter().any(|&(k, v)| k == "bytes" && v > 0),
        "fetch span carries a byte count: {:?}",
        fetch.args
    );
    assert!(ipcomp::obs::metrics().retrieves.get() >= 1);
    assert!(ipcomp::obs::metrics().fetch_bytes.get() > 0);

    // And the dump is valid chrome trace-event JSON.
    let json = ipc_telemetry::trace::chrome_trace_json(&events);
    assert!(json.starts_with("{\"traceEvents\": ["));
    assert!(json.contains("\"cat\": \"cascade\""));
}
