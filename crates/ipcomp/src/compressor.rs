//! Compression entry points.

use ipc_tensor::ArrayD;
use rayon::prelude::*;

use crate::bitplane::{encode_level_precincts, encode_level_with, EncodeOptions, EncodedLevel};
use crate::config::Config;
use crate::container::{encode_anchors, Compressed, Header, MAX_PRECINCTS};
use crate::error::{IpcompError, Result};
use crate::interp::{num_levels, process_anchors, process_level};
use crate::precinct::PrecinctGrid;
use crate::progressive::{ProgressiveDecoder, RetrievalRequest};
use crate::quantize::{dequantize, quantize};

/// Compress a field with an **absolute** point-wise error bound.
///
/// This runs the full IPComp pipeline of the paper: multilevel interpolation
/// prediction, linear-scale quantization, and predictive negabinary bitplane coding
/// into independently loadable blocks.
///
/// # Errors
///
/// Returns [`IpcompError::InvalidInput`] if the error bound is not positive and
/// finite.
pub fn compress(data: &ArrayD<f64>, error_bound: f64, config: &Config) -> Result<Compressed> {
    if !(error_bound.is_finite() && error_bound > 0.0) {
        return Err(IpcompError::InvalidInput(format!(
            "error bound must be positive and finite, got {error_bound}"
        )));
    }
    if data.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(IpcompError::InvalidInput(
            "input contains non-finite values".into(),
        ));
    }
    if !config.chunk_bytes.is_multiple_of(8) {
        return Err(IpcompError::InvalidInput(format!(
            "chunk_bytes must be a multiple of 8 (64-coefficient transpose alignment), got {}",
            config.chunk_bytes
        )));
    }
    let precinct_grid = match &config.precincts {
        Some(extents) => {
            let grid = PrecinctGrid::new(data.shape().dims(), &extents[..])?;
            if grid.num_precincts() as u64 > MAX_PRECINCTS {
                return Err(IpcompError::InvalidInput(format!(
                    "precinct grid has {} precincts (max {MAX_PRECINCTS})",
                    grid.num_precincts()
                )));
            }
            Some(grid)
        }
        None => None,
    };
    let shape = data.shape().clone();
    let orig = data.as_slice();
    let levels = num_levels(&shape);
    let eb = error_bound;

    // Prediction + quantization pass. The work buffer always holds the values the
    // decompressor will see, so predictions are made from lossy data exactly as they
    // will be at decompression time (paper Sec. 4.2.2).
    let mut work = vec![0.0f64; shape.len()];
    let mut anchor_codes: Vec<i64> = Vec::new();
    process_anchors(&shape, &mut work, |off, pred| {
        let q = quantize(orig[off] - pred, eb);
        anchor_codes.push(q);
        pred + dequantize(q, eb)
    });

    let mut level_codes: Vec<Vec<i64>> = Vec::with_capacity(levels as usize);
    for level in (1..=levels).rev() {
        let mut codes = Vec::new();
        process_level(
            &shape,
            level,
            config.interpolation,
            &mut work,
            |off, pred| {
                let q = quantize(orig[off] - pred, eb);
                codes.push(q);
                pred + dequantize(q, eb)
            },
        );
        level_codes.push(codes);
    }

    // Entropy / bitplane stage — independent per level, so it can run in parallel.
    let opts = EncodeOptions {
        chunk_bytes: config.chunk_bytes,
        ..EncodeOptions::default()
    };
    // `level_codes[idx]` holds interpolation level `levels - idx` (coarsest
    // first); the v3 path permutes each level to precinct-major order before
    // encoding, cutting chunks on precinct boundaries.
    let jobs: Vec<(u32, &Vec<i64>)> = level_codes
        .iter()
        .enumerate()
        .map(|(idx, codes)| (levels - idx as u32, codes))
        .collect();
    let encode = |&(level, codes): &(u32, &Vec<i64>)| -> EncodedLevel {
        match &precinct_grid {
            Some(grid) => {
                let layout = grid.level_permutation(&shape, level);
                let permuted = layout.to_precinct_order(codes);
                encode_level_precincts(
                    &permuted,
                    config.prefix_bits,
                    config.predictive_coding,
                    config.parallel_encoding,
                    opts,
                    &layout.spans,
                )
            }
            None => encode_level_with(
                codes,
                config.prefix_bits,
                config.predictive_coding,
                config.parallel_encoding,
                opts,
            ),
        }
    };
    let encoded_levels: Vec<EncodedLevel> = if config.parallel_encoding {
        jobs.par_iter().map(encode).collect()
    } else {
        jobs.iter().map(encode).collect()
    };

    let progressive_levels = config.progressive_levels.unwrap_or(levels).clamp(0, levels);

    Ok(Compressed {
        header: Header {
            dims: shape.dims().to_vec(),
            error_bound: eb,
            interpolation: config.interpolation,
            num_levels: levels,
            progressive_levels,
            prefix_bits: config.prefix_bits,
            predictive_coding: config.predictive_coding,
            value_range: data.value_range(),
            precincts: config
                .precincts
                .as_ref()
                .map(|e| e[..shape.dims().len()].to_vec()),
        },
        anchors: encode_anchors(&anchor_codes),
        levels: encoded_levels,
    })
}

/// Compress with an error bound **relative** to the field's value range
/// (`eb = rel_bound · (max − min)`), the convention used throughout the paper's
/// evaluation (e.g. `1e-6` and `1e-9` in Fig. 5).
pub fn compress_rel(data: &ArrayD<f64>, rel_bound: f64, config: &Config) -> Result<Compressed> {
    let range = data.value_range();
    if range == 0.0 {
        // A constant field: any positive bound works; pick the relative bound itself.
        return compress(data, rel_bound.max(f64::MIN_POSITIVE), config);
    }
    compress(data, rel_bound * range, config)
}

impl Compressed {
    /// Full-fidelity decompression (all bitplanes), returning the reconstructed
    /// field. Progressive retrieval goes through [`ProgressiveDecoder`] instead.
    pub fn decompress(&self) -> Result<ArrayD<f64>> {
        let mut dec = ProgressiveDecoder::new(self);
        Ok(dec.retrieve(RetrievalRequest::Full)?.data)
    }

    /// Compression ratio achieved against an uncompressed f64 representation.
    pub fn compression_ratio(&self) -> f64 {
        let original = self.header.num_elements() * std::mem::size_of::<f64>();
        original as f64 / self.total_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Interpolation;
    use ipc_metrics::linf_error;
    use ipc_tensor::Shape;

    fn smooth_field(shape: Shape) -> ArrayD<f64> {
        ArrayD::from_fn(shape, |c| {
            (c[0] as f64 * 0.2).sin()
                + (c.get(1).copied().unwrap_or(0) as f64 * 0.1).cos() * 2.0
                + c.last().copied().unwrap_or(0) as f64 * 0.01
        })
    }

    #[test]
    fn roundtrip_respects_error_bound_1d_2d_3d() {
        for dims in [vec![100usize], vec![33, 57], vec![20, 24, 28]] {
            let data = smooth_field(Shape::new(&dims));
            for eb in [1e-3, 1e-6] {
                let c = compress(&data, eb, &Config::default()).unwrap();
                let out = c.decompress().unwrap();
                let err = linf_error(data.as_slice(), out.as_slice());
                assert!(err <= eb * (1.0 + 1e-9), "dims {dims:?} eb {eb}: err {err}");
            }
        }
    }

    #[test]
    fn linear_and_cubic_both_bounded() {
        let data = smooth_field(Shape::d3(17, 19, 23));
        for interp in [Interpolation::Linear, Interpolation::Cubic] {
            let cfg = Config {
                interpolation: interp,
                ..Config::default()
            };
            let c = compress(&data, 1e-5, &cfg).unwrap();
            let out = c.decompress().unwrap();
            assert!(linf_error(data.as_slice(), out.as_slice()) <= 1e-5 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_field(Shape::d3(32, 32, 32));
        let c = compress_rel(&data, 1e-4, &Config::default()).unwrap();
        assert!(
            c.compression_ratio() > 5.0,
            "expected CR > 5, got {}",
            c.compression_ratio()
        );
    }

    #[test]
    fn tighter_bounds_compress_less() {
        let data = smooth_field(Shape::d3(24, 24, 24));
        let loose = compress_rel(&data, 1e-3, &Config::default()).unwrap();
        let tight = compress_rel(&data, 1e-8, &Config::default()).unwrap();
        assert!(loose.compression_ratio() > tight.compression_ratio());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let data = smooth_field(Shape::d2(10, 10));
        assert!(compress(&data, 0.0, &Config::default()).is_err());
        assert!(compress(&data, f64::NAN, &Config::default()).is_err());
        let mut bad = data.clone();
        bad.as_mut_slice()[5] = f64::INFINITY;
        assert!(compress(&bad, 1e-6, &Config::default()).is_err());
    }

    #[test]
    fn constant_field_roundtrips() {
        let data = ArrayD::full(Shape::d3(8, 8, 8), 3.25);
        let c = compress_rel(&data, 1e-6, &Config::default()).unwrap();
        let out = c.decompress().unwrap();
        assert!(linf_error(data.as_slice(), out.as_slice()) < 1e-6);
        // A constant field should compress extremely well (the container header and
        // level metadata are the only remaining cost on a 4 KiB input).
        assert!(c.compression_ratio() > 25.0, "CR {}", c.compression_ratio());
    }

    #[test]
    fn serialization_preserves_decompression() {
        let data = smooth_field(Shape::d3(16, 18, 14));
        let c = compress(&data, 1e-6, &Config::default()).unwrap();
        let bytes = c.to_bytes();
        let back = Compressed::from_bytes(&bytes).unwrap();
        let a = c.decompress().unwrap();
        let b = back.decompress().unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn parallel_and_serial_compression_agree() {
        let data = smooth_field(Shape::d3(20, 20, 20));
        let serial = compress(
            &data,
            1e-6,
            &Config {
                parallel_encoding: false,
                ..Config::default()
            },
        )
        .unwrap();
        let parallel = compress(
            &data,
            1e-6,
            &Config {
                parallel_encoding: true,
                ..Config::default()
            },
        )
        .unwrap();
        assert_eq!(serial.to_bytes(), parallel.to_bytes());
    }
}
