//! Byte-range access to container storage.
//!
//! The version-2 container makes every `(level, plane, chunk)` triple
//! addressable from metadata alone; this module supplies the read side of
//! that bargain: a [`ChunkSource`] yields arbitrary byte ranges of one
//! serialized container, so retrieval can fetch exactly the chunk ranges a
//! plan needs instead of materializing the whole archive first.
//!
//! The trait is deliberately tiny — `len` plus a *batched* `read_ranges` —
//! because batching is where storage backends differ: an in-memory slice
//! answers each range for free, a file turns them into `pread`s, and an
//! object store wants adjacent ranges merged into as few GETs as possible.
//! Wrappers that coalesce, cache, or simulate remote latency live in the
//! `ipc_store` crate and compose through this same trait; the decoder only
//! ever issues per-chunk ranges and lets the source stack decide how they
//! hit the wire.
//!
//! Buffers travel as [`Bytes`] — a cheaply sliceable reference into shared
//! storage — so an in-memory backend and every cache layer above it stay
//! zero-copy.

use std::ops::Range;
use std::sync::Arc;

use crate::error::{IpcompError, Result};

/// One contiguous byte range of a serialized container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByteRange {
    /// Absolute offset of the first byte.
    pub offset: u64,
    /// Number of bytes.
    pub len: usize,
}

impl ByteRange {
    /// Construct a range from offset and length.
    pub fn new(offset: u64, len: usize) -> Self {
        Self { offset, len }
    }

    /// One past the last byte of the range.
    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }
}

/// A cheaply cloneable, sliceable view into shared immutable bytes.
///
/// Sources return `Bytes` so that slicing a coalesced read back into
/// per-chunk buffers (and handing cache hits to several sessions at once)
/// never copies payload.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    range: Range<usize>,
}

impl Bytes {
    /// Wrap an owned buffer (one allocation hand-off, no further copies).
    pub fn from_vec(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let range = 0..data.len();
        Self { data, range }
    }

    /// Wrap shared storage in full.
    pub fn from_arc(data: Arc<[u8]>) -> Self {
        let range = 0..data.len();
        Self { data, range }
    }

    /// A sub-view of this buffer (zero-copy).
    ///
    /// # Panics
    ///
    /// Panics if `sub` is out of bounds — callers slice with ranges they
    /// computed from this buffer's own length.
    pub fn slice(&self, sub: Range<usize>) -> Bytes {
        assert!(
            sub.start <= sub.end && sub.end <= self.len(),
            "slice bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            range: (self.range.start + sub.start)..(self.range.start + sub.end),
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Size of the shared backing allocation this view keeps alive. A cache
    /// that retains small slices of large coalesced reads can use this to
    /// decide when storing the view would pin far more memory than it
    /// accounts for.
    pub fn backing_len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.range.clone()]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Ranged read access to one serialized container.
///
/// Implementations must be shareable across threads (decode fans out over
/// rayon) and should answer each requested range with **exactly** `range.len`
/// bytes; consumers re-validate through [`read_ranges_exact`] so a
/// misbehaving backend surfaces as a bounded [`IpcompError`], never a panic
/// or an over-read.
pub trait ChunkSource: Send + Sync {
    /// Total size of the container in bytes.
    fn len(&self) -> u64;

    /// Whether the container is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the given byte ranges; the result has one buffer per requested
    /// range, in request order.
    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>>;

    /// Convenience wrapper for a single range.
    fn read_range(&self, range: ByteRange) -> Result<Bytes> {
        let mut bufs = self.read_ranges(std::slice::from_ref(&range))?;
        bufs.pop()
            .ok_or(IpcompError::CorruptContainer("source returned no buffer"))
    }
}

impl<S: ChunkSource + ?Sized> ChunkSource for Arc<S> {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        (**self).read_ranges(ranges)
    }
}

impl<S: ChunkSource + ?Sized> ChunkSource for &S {
    fn len(&self) -> u64 {
        (**self).len()
    }
    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        (**self).read_ranges(ranges)
    }
}

/// Fetch `ranges` and verify every buffer has exactly the requested length.
///
/// All container-decoding paths go through this, so a backend that returns a
/// short (or long) read — a truncated object, a failing simulated store —
/// produces a clean [`IpcompError::CorruptContainer`] instead of feeding the
/// entropy decoders undersized buffers.
pub fn read_ranges_exact(source: &dyn ChunkSource, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
    let bufs = source.read_ranges(ranges)?;
    if bufs.len() != ranges.len() {
        return Err(IpcompError::CorruptContainer(
            "source returned wrong buffer count",
        ));
    }
    for (buf, range) in bufs.iter().zip(ranges) {
        if buf.len() != range.len {
            return Err(IpcompError::CorruptContainer("source returned short read"));
        }
    }
    Ok(bufs)
}

/// In-memory [`ChunkSource`] over a fully resident serialized container.
///
/// Every read is a zero-copy [`Bytes`] view of the shared buffer, so this
/// backend preserves the cost profile of the historical slice-based API while
/// exercising the exact code paths remote backends use.
#[derive(Clone)]
pub struct MemorySource {
    data: Arc<[u8]>,
}

impl MemorySource {
    /// Take ownership of a serialized container.
    pub fn new(data: Vec<u8>) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Share an already-`Arc`ed container.
    pub fn from_arc(data: Arc<[u8]>) -> Self {
        Self { data }
    }
}

impl From<Vec<u8>> for MemorySource {
    fn from(v: Vec<u8>) -> Self {
        MemorySource::new(v)
    }
}

impl ChunkSource for MemorySource {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }

    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        let mut out = Vec::with_capacity(ranges.len());
        for r in ranges {
            if r.end() > self.data.len() as u64 {
                return Err(IpcompError::CorruptContainer(
                    "byte range beyond end of source",
                ));
            }
            out.push(
                Bytes::from_arc(Arc::clone(&self.data)).slice(r.offset as usize..r.end() as usize),
            );
        }
        Ok(out)
    }
}

/// A fixed byte window of a parent source, exposed as a [`ChunkSource`] of
/// its own.
///
/// The archive container (format v4) embeds one standard per-step container
/// after another; an `OffsetSource` makes each embedded container addressable
/// with container-local offsets, so [`crate::ContainerMap`] and the
/// progressive decoder work on it unchanged. Reads translate to
/// parent-absolute offsets before they hit the parent, which means any cache
/// or coalescing layer *below* the window still sees one shared key space —
/// exactly what lets consecutive-step retrievals deduplicate the chunks they
/// have in common.
#[derive(Clone)]
pub struct OffsetSource<S> {
    inner: S,
    offset: u64,
    len: u64,
}

impl<S: ChunkSource> OffsetSource<S> {
    /// View `len` bytes of `inner` starting at `offset`.
    ///
    /// Fails if the window exceeds the parent, so a corrupt archive
    /// directory surfaces here instead of as an out-of-bounds read later.
    pub fn new(inner: S, offset: u64, len: u64) -> Result<Self> {
        if offset.checked_add(len).is_none_or(|end| end > inner.len()) {
            return Err(IpcompError::CorruptContainer(
                "window beyond end of parent source",
            ));
        }
        Ok(Self { inner, offset, len })
    }

    /// Absolute offset of the window within the parent source.
    pub fn base_offset(&self) -> u64 {
        self.offset
    }
}

impl<S: ChunkSource> ChunkSource for OffsetSource<S> {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        let mut shifted = Vec::with_capacity(ranges.len());
        for r in ranges {
            if r.end() > self.len {
                return Err(IpcompError::CorruptContainer(
                    "byte range beyond end of window",
                ));
            }
            shifted.push(ByteRange::new(self.offset + r.offset, r.len));
        }
        self.inner.read_ranges(&shifted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slicing_is_zero_copy_and_bounded() {
        let b = Bytes::from_vec((0u8..32).collect());
        assert_eq!(b.len(), 32);
        let mid = b.slice(8..16);
        assert_eq!(&mid[..], &(8u8..16).collect::<Vec<_>>()[..]);
        let inner = mid.slice(2..4);
        assert_eq!(&inner[..], &[10, 11]);
    }

    #[test]
    #[should_panic(expected = "slice bounds")]
    fn bytes_out_of_range_slice_panics() {
        let b = Bytes::from_vec(vec![0; 4]);
        let _ = b.slice(2..6);
    }

    #[test]
    fn memory_source_reads_exact_ranges() {
        let data: Vec<u8> = (0..=255).collect();
        let src = MemorySource::new(data.clone());
        assert_eq!(src.len(), 256);
        let bufs = src
            .read_ranges(&[
                ByteRange::new(0, 4),
                ByteRange::new(250, 6),
                ByteRange::new(7, 0),
            ])
            .unwrap();
        assert_eq!(&bufs[0][..], &data[0..4]);
        assert_eq!(&bufs[1][..], &data[250..256]);
        assert!(bufs[2].is_empty());
    }

    #[test]
    fn memory_source_rejects_out_of_bounds() {
        let src = MemorySource::new(vec![0; 16]);
        assert!(src.read_ranges(&[ByteRange::new(10, 7)]).is_err());
        assert!(src.read_range(ByteRange::new(17, 0)).is_err());
    }

    #[test]
    fn read_ranges_exact_flags_short_reads() {
        struct Short;
        impl ChunkSource for Short {
            fn len(&self) -> u64 {
                100
            }
            fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
                Ok(ranges
                    .iter()
                    .map(|r| Bytes::from_vec(vec![0; r.len / 2]))
                    .collect())
            }
        }
        let err = read_ranges_exact(&Short, &[ByteRange::new(0, 8)]).unwrap_err();
        assert!(matches!(err, IpcompError::CorruptContainer(_)));
    }
}
