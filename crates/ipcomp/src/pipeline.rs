//! Staged decode pipeline: **fetch → entropy-decode → scatter**.
//!
//! Every read path of the decoder — fully resident slices, ranged sources,
//! bulk retrievals, and region streaming — is built from the same three
//! [`DecodeStage`] implementations:
//!
//! 1. [`FetchStage`] resolves one chunk region to its compressed chunk
//!    payloads: a borrow for resident levels, one batched
//!    [`ChunkSource::read_ranges`] call (which the source stack is free to
//!    coalesce, cache, or simulate) for ranged levels.
//! 2. [`EntropyStage`] entropy-decodes each compressed chunk into packed
//!    plane bytes, validating every decoded size against the region
//!    geometry so corrupt input surfaces as a bounded error before any
//!    accumulator is touched.
//! 3. [`ScatterStage`] undoes the predictive coding and scatters the packed
//!    bytes into the negabinary accumulators through the plane-count
//!    specialized kernels of [`ipc_codecs::bitslice`].
//!
//! [`RegionPipeline`] drives the stages pull-style with a one-region
//! prefetch: while region `k` is entropy-decoded and scattered on the
//! calling thread, region `k + 1`'s chunk ranges are fetched on a scoped
//! worker thread. The double buffer bounds memory at two regions, and
//! because the scatter stage runs only after the whole region
//! entropy-decodes, the per-region rollback semantics of the serial decoder
//! are preserved exactly. For resident levels (fetch is a borrow) the
//! prefetch thread is skipped entirely.
//!
//! Fetch/compute overlap grows with backend latency: against a remote store
//! the pipeline hides up to `min(fetch, decode)` of every interior region.
//! The overlap can be disabled process-wide (`IPC_DECODE_OVERLAP=0` or
//! [`set_fetch_overlap`]) for deterministic A/B measurements; decoded bits
//! are identical either way.

use std::ops::Range;

use ipc_codecs::bitslice;
use ipc_codecs::EnvSwitch;

use crate::bitplane::{decode_chunk_bytes, EncodedLevel, RegionScheme};
use crate::container::LevelMap;
use crate::error::{IpcompError, Result};
use crate::source::{read_ranges_exact, ByteRange, Bytes, ChunkSource};

/// Process-wide fetch-overlap switch.
static FETCH_OVERLAP: EnvSwitch = EnvSwitch::new("IPC_DECODE_OVERLAP");

/// Enable or disable the prefetch worker thread (benchmark A/B harnesses and
/// environments where spawning is undesirable). Decoded output is identical
/// either way; only the fetch/compute overlap changes.
pub fn set_fetch_overlap(enabled: bool) {
    FETCH_OVERLAP.force(enabled as u8);
}

/// Whether [`RegionPipeline`] overlaps region `k + 1`'s fetch with region
/// `k`'s decode (default true; `IPC_DECODE_OVERLAP=0` disables).
pub fn fetch_overlap() -> bool {
    FETCH_OVERLAP.get(|env| (env != Some("0")) as u8) != 0
}

/// One stage of the decode pipeline: a pure transform from a region index
/// plus the previous stage's output to this stage's output. Stages are
/// stateless given their configuration, so a driver may run them from
/// multiple threads (`&self`) and in any region order.
pub trait DecodeStage<In> {
    /// What the stage produces for one region.
    type Output;
    /// Process one region.
    fn process(&self, region: usize, input: In) -> Result<Self::Output>;
    /// Stage name for diagnostics and per-stage benchmark reports.
    fn name(&self) -> &'static str;
}

/// Compressed chunks of one region, one per streamed plane (ascending plane
/// index). Resident levels lend their buffers; ranged levels hand over the
/// fetched [`Bytes`].
pub enum FetchedRegion<'a> {
    /// Chunk payloads borrowed from an in-memory [`EncodedLevel`].
    Borrowed(Vec<&'a [u8]>),
    /// Chunk payloads fetched through a [`ChunkSource`].
    Fetched(Vec<Bytes>),
}

impl FetchedRegion<'_> {
    /// Number of chunks (= planes being streamed).
    pub fn len(&self) -> usize {
        match self {
            FetchedRegion::Borrowed(v) => v.len(),
            FetchedRegion::Fetched(v) => v.len(),
        }
    }

    /// Whether the region holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compressed bytes of chunk `i`.
    pub fn chunk(&self, i: usize) -> &[u8] {
        match self {
            FetchedRegion::Borrowed(v) => v[i],
            FetchedRegion::Fetched(v) => &v[i],
        }
    }
}

/// Stage 1: resolve a region to its compressed chunk payloads.
pub enum FetchStage<'a> {
    /// All chunks resident in memory; fetching is a borrow.
    Resident {
        /// The in-memory level.
        level: &'a EncodedLevel,
        /// First plane being streamed.
        plane_lo: u8,
        /// One past the last plane being streamed.
        plane_hi: u8,
    },
    /// Chunks addressed via the container's metadata index and fetched
    /// through a [`ChunkSource`] — one batched `read_ranges` per region.
    Ranged {
        /// The metadata-only chunk index.
        level: &'a LevelMap,
        /// Where the container's bytes live.
        source: &'a dyn ChunkSource,
        /// First plane being streamed.
        plane_lo: u8,
        /// One past the last plane being streamed.
        plane_hi: u8,
    },
}

impl<'a> FetchStage<'a> {
    /// Whether running this stage on a worker thread can overlap real work
    /// (resident fetches are borrows — there is nothing to hide).
    pub fn supports_prefetch(&self) -> bool {
        matches!(self, FetchStage::Ranged { .. })
    }

    /// Compressed bytes region `k` reads across the streamed planes.
    pub fn region_compressed_bytes(&self, k: usize) -> usize {
        match self {
            FetchStage::Resident {
                level,
                plane_lo,
                plane_hi,
            } => (*plane_lo..*plane_hi)
                .map(|p| level.planes[p as usize].chunks[k].len())
                .sum(),
            FetchStage::Ranged {
                level,
                plane_lo,
                plane_hi,
                ..
            } => (*plane_lo..*plane_hi).map(|p| level.chunk_size(p, k)).sum(),
        }
    }
}

impl<'a> DecodeStage<()> for FetchStage<'a> {
    type Output = FetchedRegion<'a>;

    fn process(&self, region: usize, _input: ()) -> Result<FetchedRegion<'a>> {
        let m = crate::obs::metrics();
        let mut span = ipc_telemetry::span_timed("pipeline", "fetch", m.fetch_ns);
        span.add_arg("region", region as u64);
        let out = match self {
            FetchStage::Resident {
                level,
                plane_lo,
                plane_hi,
            } => FetchedRegion::Borrowed(
                (*plane_lo..*plane_hi)
                    .map(|p| level.planes[p as usize].chunks[region].as_slice())
                    .collect(),
            ),
            FetchStage::Ranged {
                level,
                source,
                plane_lo,
                plane_hi,
            } => {
                let ranges: Vec<ByteRange> = (*plane_lo..*plane_hi)
                    .map(|p| level.chunk_range(p, region))
                    .collect();
                FetchedRegion::Fetched(read_ranges_exact(*source, &ranges)?)
            }
        };
        let bytes: u64 = (0..out.len()).map(|i| out.chunk(i).len() as u64).sum();
        m.fetch_bytes.add(bytes);
        span.add_arg("bytes", bytes);
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "fetch"
    }
}

/// Stage 2: entropy-decode one region's compressed chunks into packed plane
/// bytes, validating each decoded length against the region geometry.
pub struct EntropyStage {
    scheme: RegionScheme,
}

impl EntropyStage {
    /// Entropy stage over one level's region scheme (a [`crate::bitplane::ChunkGrid`]
    /// converts implicitly for the uniform layouts).
    pub fn new(scheme: impl Into<RegionScheme>) -> Self {
        Self {
            scheme: scheme.into(),
        }
    }

    /// Decode a single compressed chunk of region `k` (the unit the bulk
    /// decoder fans out across the rayon pool).
    pub fn decode_chunk(&self, region: usize, compressed: &[u8]) -> Result<Vec<u8>> {
        decode_chunk_bytes(compressed, self.scheme.region_byte_range(region).len())
    }
}

impl<'a> DecodeStage<FetchedRegion<'a>> for EntropyStage {
    type Output = Vec<Vec<u8>>;

    fn process(&self, region: usize, input: FetchedRegion<'a>) -> Result<Vec<Vec<u8>>> {
        let m = crate::obs::metrics();
        let mut span = ipc_telemetry::span_timed("pipeline", "entropy", m.entropy_ns);
        span.add_arg("region", region as u64);
        let out: Vec<Vec<u8>> = (0..input.len())
            .map(|i| self.decode_chunk(region, input.chunk(i)))
            .collect::<Result<_>>()?;
        let bytes: u64 = out.iter().map(|c| c.len() as u64).sum();
        m.entropy_bytes.add(bytes);
        span.add_arg("bytes", bytes);
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "entropy"
    }
}

/// Stage 3: undo the predictive coding and scatter one region's packed plane
/// bytes into its slice of the accumulators, through the plane-count
/// specialized kernels.
pub struct ScatterStage {
    scheme: RegionScheme,
    num_planes: u8,
    plane_lo: u8,
    plane_hi: u8,
    prefix_bits: u8,
    predictive: bool,
}

impl ScatterStage {
    /// Scatter stage for planes `[plane_lo, plane_hi)` of a level with
    /// `num_planes` significant planes.
    pub fn new(
        scheme: impl Into<RegionScheme>,
        num_planes: u8,
        plane_lo: u8,
        plane_hi: u8,
        prefix_bits: u8,
        predictive: bool,
    ) -> Self {
        Self {
            scheme: scheme.into(),
            num_planes,
            plane_lo,
            plane_hi,
            prefix_bits,
            predictive,
        }
    }

    /// Undo the prediction as whole-plane XORs over the packed byte streams,
    /// top-down so every more significant plane is already raw when it is
    /// XOR-ed in. Prefix planes at or above `plane_hi` live in the
    /// accumulators (zero on a fresh decode where `plane_hi == num_planes`,
    /// since planes past the significant range are zero by construction);
    /// they are extracted once with the few-planes gather kernel — at most
    /// `prefix_bits` planes, so the shift + movemask sweep beats a full
    /// per-block transpose.
    fn undo_prediction(&self, chunks: &mut [Vec<u8>], region_len: usize, acc_region: &[u64]) {
        let plane_lo = self.plane_lo as usize;
        let plane_hi = self.plane_hi as usize;
        let prefix_bits = self.prefix_bits as usize;
        let prefix_top = (plane_hi + prefix_bits).min(64);
        let acc_prefix: Vec<Vec<u64>> = if self.plane_hi < self.num_planes {
            bitslice::gather_plane_words(acc_region, plane_hi, prefix_top - plane_hi)
        } else {
            Vec::new()
        };
        for p in (plane_lo..plane_hi).rev() {
            for j in 1..=prefix_bits {
                let q = p + j;
                if q >= 64 {
                    break;
                }
                if q < plane_hi {
                    // Already undone this call: split_at_mut gives the borrow.
                    let (lo_half, hi_half) = chunks.split_at_mut(q - plane_lo);
                    let dst = &mut lo_half[p - plane_lo][..region_len];
                    let src = &hi_half[0][..region_len];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d ^= s;
                    }
                } else if q - plane_hi < acc_prefix.len() {
                    let src = &acc_prefix[q - plane_hi];
                    let dst = &mut chunks[p - plane_lo];
                    xor_words_into_bytes(&mut dst[..region_len], src);
                }
                // Planes past both ranges are zero: nothing to XOR.
            }
        }
    }
}

impl<'a> DecodeStage<(Vec<Vec<u8>>, &'a mut [u64])> for ScatterStage {
    type Output = ();

    fn process(&self, region: usize, input: (Vec<Vec<u8>>, &'a mut [u64])) -> Result<()> {
        let mut span =
            ipc_telemetry::span_timed("pipeline", "scatter", crate::obs::metrics().scatter_ns);
        span.add_arg("region", region as u64);
        let (mut chunks, acc_region) = input;
        let region_len = self.scheme.region_byte_range(region).len();
        if self.predictive && self.prefix_bits > 0 {
            self.undo_prediction(&mut chunks, region_len, acc_region);
        }
        // Scatter the raw planes into the accumulators, OR-ed on top of
        // whatever planes are already loaded, via the kernel matching the
        // live plane count.
        let refs: Vec<&[u8]> = chunks.iter().map(|c| &c[..region_len]).collect();
        bitslice::scatter_planes(&refs, self.plane_lo as usize, acc_region);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "scatter"
    }
}

/// XOR packed MSB-first plane words into a packed plane byte stream in place.
fn xor_words_into_bytes(dst: &mut [u8], src: &[u64]) {
    let mut chunks = dst.chunks_exact_mut(8);
    let mut words = src.iter();
    for (chunk, &w) in (&mut chunks).zip(&mut words) {
        let cur = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        chunk.copy_from_slice(&(cur ^ w).to_be_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let w = words.next().copied().unwrap_or(0).to_be_bytes();
        for (d, s) in rem.iter_mut().zip(w.iter()) {
            *d ^= s;
        }
    }
}

/// Run `work` on the calling thread while `fetch` runs on a scoped worker
/// thread, returning both results. A panic on the worker is resumed on the
/// caller. This is the one place the pipeline's fetch/compute overlap
/// touches threads; both the region-lookahead driver below and the
/// level-lookahead bulk path in `progressive` go through it.
pub fn overlap_fetch<T, U>(fetch: impl FnOnce() -> T + Send, work: impl FnOnce() -> U) -> (U, T)
where
    T: Send,
{
    std::thread::scope(|s| {
        let handle = s.spawn(fetch);
        let out = work();
        let fetched = match handle.join() {
            Ok(res) => res,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (out, fetched)
    })
}

/// Pull-based pipeline driver over one level's chunk regions.
///
/// Each [`RegionPipeline::decode_next`] call completes one region through
/// entropy + scatter while the *next* region's chunks are fetched on a
/// scoped worker thread (ranged backings only). Regions complete in
/// coefficient order; a failed region leaves its accumulator slice untouched
/// and the stream positioned to retry it.
pub struct RegionPipeline<'a> {
    fetch: FetchStage<'a>,
    entropy: EntropyStage,
    scatter: ScatterStage,
    scheme: RegionScheme,
    plane_lo: u8,
    plane_hi: u8,
    next_region: usize,
    prefetched: Option<(usize, Result<FetchedRegion<'a>>)>,
}

impl<'a> RegionPipeline<'a> {
    /// Compose a pipeline from its stages. The caller has already validated
    /// the plane range and accumulator geometry (see
    /// `bitplane::check_plane_range`).
    pub fn new(
        fetch: FetchStage<'a>,
        scheme: impl Into<RegionScheme>,
        num_planes: u8,
        plane_lo: u8,
        plane_hi: u8,
        prefix_bits: u8,
        predictive: bool,
    ) -> Self {
        let scheme = scheme.into();
        Self {
            fetch,
            entropy: EntropyStage::new(scheme.clone()),
            scatter: ScatterStage::new(
                scheme.clone(),
                num_planes,
                plane_lo,
                plane_hi,
                prefix_bits,
                predictive,
            ),
            scheme,
            plane_lo,
            plane_hi,
            next_region: 0,
            prefetched: None,
        }
    }

    /// Total number of chunk regions this pipeline will produce.
    pub fn num_regions(&self) -> usize {
        if self.plane_lo == self.plane_hi || self.scheme.n_values() == 0 {
            0
        } else {
            self.scheme.num_regions()
        }
    }

    /// Compressed bytes the `k`-th region reads across the streamed planes.
    pub fn region_compressed_bytes(&self, k: usize) -> usize {
        self.fetch.region_compressed_bytes(k)
    }

    /// Decode the next region into the matching slice of `acc` (the full
    /// level accumulator). Returns the coefficient range completed, or
    /// `None` when the stream is exhausted.
    pub fn decode_next(&mut self, acc: &mut [u64]) -> Result<Option<Range<usize>>> {
        self.decode_next_with(acc, |_, _| {})
    }

    /// [`RegionPipeline::decode_next`] with a post-scatter hook: on success,
    /// `after_scatter(coeffs, acc_region)` runs with the region's completed
    /// coefficient range and its final accumulator slice — *inside* the
    /// fetch-overlap window, so consumer work (progress reporting, streaming
    /// reconstruction) hides under region `k + 1`'s in-flight fetch instead
    /// of running after the join.
    pub fn decode_next_with(
        &mut self,
        acc: &mut [u64],
        after_scatter: impl FnOnce(Range<usize>, &[u64]),
    ) -> Result<Option<Range<usize>>> {
        if acc.len() != self.scheme.n_values() {
            return Err(IpcompError::InvalidInput(
                "accumulator length changed mid-stream".into(),
            ));
        }
        let n_regions = self.num_regions();
        if self.next_region >= n_regions {
            return Ok(None);
        }
        let k = self.next_region;
        let fetched = match self.prefetched.take() {
            Some((idx, res)) if idx == k => res?,
            other => {
                self.prefetched = other;
                self.fetch.process(k, ())?
            }
        };
        let coeffs = self.scheme.region_coeff_range(k);
        let acc_region = &mut acc[coeffs.clone()];
        let next = k + 1;
        if next < n_regions
            && self.prefetched.is_none()
            && self.fetch.supports_prefetch()
            && fetch_overlap()
        {
            // Overlap: region k's entropy + scatter + consumer hook on this
            // thread, region k + 1's fetch on a scoped worker. The worker
            // only borrows the fetch stage, so a decode failure still stores
            // the prefetch result for the (possible) retry of the *next*
            // region.
            let fetch = &self.fetch;
            let entropy = &self.entropy;
            let scatter = &self.scatter;
            let region_coeffs = coeffs.clone();
            let (work, pre) = overlap_fetch(
                move || fetch.process(next, ()),
                || {
                    entropy
                        .process(k, fetched)
                        .and_then(|chunks| scatter.process(k, (chunks, &mut *acc_region)))
                        .map(|()| after_scatter(region_coeffs, acc_region))
                },
            );
            self.prefetched = Some((next, pre));
            work?;
        } else {
            let chunks = self.entropy.process(k, fetched)?;
            self.scatter.process(k, (chunks, &mut *acc_region))?;
            after_scatter(coeffs.clone(), acc_region);
        }
        self.next_region += 1;
        Ok(Some(coeffs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitplane::{encode_level_with, EncodeOptions};

    fn sample_codes(n: usize) -> Vec<i64> {
        (0..n)
            .map(|i| {
                let x = (i as i64).wrapping_mul(0x9E37) % 5000;
                if i % 2 == 0 {
                    x
                } else {
                    -x
                }
            })
            .collect()
    }

    #[test]
    fn stages_compose_to_the_bulk_decoder() {
        let codes = sample_codes(3000);
        let opts = EncodeOptions {
            chunk_bytes: 64,
            ..EncodeOptions::default()
        };
        let enc = encode_level_with(&codes, 2, true, false, opts);
        let hi = enc.num_planes;

        let mut bulk = vec![0u64; enc.n_values];
        crate::bitplane::decode_planes_into(&enc, 0, hi, 2, true, &mut bulk).unwrap();

        let fetch = FetchStage::Resident {
            level: &enc,
            plane_lo: 0,
            plane_hi: hi,
        };
        let entropy = EntropyStage::new(enc.grid());
        let scatter = ScatterStage::new(enc.grid(), enc.num_planes, 0, hi, 2, true);
        let mut acc = vec![0u64; enc.n_values];
        for k in 0..enc.grid().num_regions() {
            let region = fetch.process(k, ()).unwrap();
            let chunks = entropy.process(k, region).unwrap();
            let coeffs = enc.grid().region_coeff_range(k);
            scatter.process(k, (chunks, &mut acc[coeffs])).unwrap();
        }
        assert_eq!(acc, bulk);
    }

    #[test]
    fn stage_names_are_stable() {
        let codes = sample_codes(100);
        let enc = encode_level_with(&codes, 2, true, false, EncodeOptions::default());
        let fetch = FetchStage::Resident {
            level: &enc,
            plane_lo: 0,
            plane_hi: enc.num_planes,
        };
        assert_eq!(DecodeStage::name(&fetch), "fetch");
        assert_eq!(EntropyStage::new(enc.grid()).name(), "entropy");
        assert_eq!(
            ScatterStage::new(enc.grid(), enc.num_planes, 0, enc.num_planes, 2, true).name(),
            "scatter"
        );
    }

    #[test]
    fn overlap_toggle_roundtrips() {
        let before = fetch_overlap();
        set_fetch_overlap(false);
        assert!(!fetch_overlap());
        set_fetch_overlap(true);
        assert!(fetch_overlap());
        set_fetch_overlap(before);
    }
}
