//! # IPComp — interpolation based progressive lossy compression
//!
//! A from-scratch Rust implementation of *IPComp: Interpolation Based Progressive
//! Lossy Compression for Scientific Applications* (HPDC 2025). IPComp compresses
//! dense floating-point scientific fields with a strict point-wise error bound and —
//! unlike classic error-bounded compressors — lets the reader retrieve a coarse
//! approximation cheaply and then *refine it incrementally* by loading additional
//! bitplane blocks, without ever re-reading or re-decompressing what was already
//! loaded.
//!
//! ## Pipeline
//!
//! 1. **Interpolation predictor** ([`interp`]): the grid is split into orthogonal
//!    levels by a shrinking stride; each point is predicted by linear or cubic
//!    interpolation from the already-reconstructed coarser lattice (paper Sec. 4.1).
//! 2. **Quantizer** ([`quantize`]): prediction residuals are quantized to integers
//!    with a user-chosen absolute error bound.
//! 3. **Predictive negabinary bitplane coder** ([`bitplane`]): per level, the codes
//!    are converted to negabinary, sliced into bitplanes, XOR-predicted from their
//!    two more-significant neighbours, and each plane is compressed into an
//!    independently loadable block (paper Sec. 4.3–4.4).
//! 4. **Optimized data loader** ([`optimizer`]): a knapsack dynamic program selects
//!    the minimum set of plane blocks for a requested error bound, or the
//!    minimum-error set for a byte/bitrate budget (paper Sec. 5).
//! 5. **Progressive decoder** ([`progressive`]): Algorithm 1 reconstructs from
//!    scratch in a single pass; Algorithm 2 refines an existing reconstruction from
//!    newly loaded planes only. Every read path decodes through the staged
//!    **fetch → entropy → scatter** pipeline ([`pipeline`]), which prefetches the
//!    next chunk region (and, on bulk ranged retrievals, the next level) while the
//!    current one decodes, and scatters through plane-count-specialized kernels.
//!
//! ## Quick start
//!
//! ```
//! use ipc_tensor::{ArrayD, Shape};
//! use ipcomp::{compress, Config, ProgressiveDecoder, RetrievalRequest};
//!
//! // A small synthetic 3-D field.
//! let field = ArrayD::from_fn(Shape::d3(16, 16, 16), |c| {
//!     (c[0] as f64 * 0.3).sin() + (c[1] as f64 * 0.2).cos() + c[2] as f64 * 0.01
//! });
//!
//! // Compress once with a tight error bound.
//! let compressed = compress(&field, 1e-6, &Config::default()).unwrap();
//!
//! // Retrieve progressively: coarse first, then refine.
//! let mut decoder = ProgressiveDecoder::new(&compressed);
//! let coarse = decoder.retrieve(RetrievalRequest::ErrorBound(1e-2)).unwrap();
//! let fine = decoder.retrieve(RetrievalRequest::ErrorBound(1e-5)).unwrap();
//! assert!(fine.bytes_total > coarse.bytes_total);
//! assert!(fine.error_bound <= 1e-5);
//! ```

pub mod archive;
pub mod bitplane;
pub mod cascade;
pub mod compressor;
pub mod config;
pub mod container;
pub mod error;
pub mod interp;
pub mod obs;
pub mod optimizer;
pub mod pipeline;
pub mod precinct;
pub mod progressive;
pub mod quantize;
pub mod source;

pub use archive::{
    composition_reference, ArchiveBuilder, ArchiveConfig, ArchiveEntry, ArchiveMap, ArchiveOutcome,
    ArchiveReader, ArchiveRequest, StepKind, StepPlan, StepProgress, StepRetrieval,
    VERSION_ARCHIVE,
};
pub use cascade::{
    cascade_avx2_available, cascade_impl, cascade_parallel, cascade_streaming, cascade_threads,
    force_cascade_impl, force_cascade_threads, set_cascade_parallel, set_cascade_streaming,
    CascadeEngine, CascadeImpl, CascadeProgress, CascadeState, LevelState,
};
pub use compressor::{compress, compress_rel};
pub use config::{Config, Interpolation};
pub use container::{Compressed, ContainerMap, Header, LevelMap};
pub use error::{IpcompError, Result};
pub use optimizer::{
    plan_for_bitrate, plan_for_bytes, plan_for_error_bound, plan_full, LoadPlan, PlanInput,
    RoiScopedInput,
};
pub use precinct::{roi_precinct_masks, LevelPrecincts, PrecinctGrid, RoiBox};
pub use progressive::{
    ProgressiveDecoder, Retrieval, RetrievalRequest, StreamEvent, StreamProgress,
};
pub use source::{read_ranges_exact, ByteRange, Bytes, ChunkSource, MemorySource, OffsetSource};
