//! Compressor configuration.

use serde::{Deserialize, Serialize};

/// Interpolation formula used by the multilevel predictor (paper Sec. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Interpolation {
    /// Two-point average: `y_i = (x_{i-s} + x_{i+s}) / 2`. `L∞(P) = 1`.
    Linear,
    /// Four-point cubic spline:
    /// `y_i = -1/16·x_{i-3s} + 9/16·x_{i-s} + 9/16·x_{i+s} - 1/16·x_{i+3s}`.
    /// `L∞(P) = 1.25`.
    #[default]
    Cubic,
}

impl Interpolation {
    /// The operator's L∞ norm, used by the optimizer's error-propagation bound
    /// (Theorem 1: p = 1 for linear, p = 1.25 for cubic).
    pub fn linf_norm(&self) -> f64 {
        match self {
            Interpolation::Linear => 1.0,
            Interpolation::Cubic => 1.25,
        }
    }

    /// Stable on-disk identifier.
    pub fn id(&self) -> u8 {
        match self {
            Interpolation::Linear => 0,
            Interpolation::Cubic => 1,
        }
    }

    /// Inverse of [`Interpolation::id`].
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(Interpolation::Linear),
            1 => Some(Interpolation::Cubic),
            _ => None,
        }
    }
}

/// Configuration of the IPComp compressor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Interpolation formula for the multilevel predictor.
    pub interpolation: Interpolation,
    /// Number of finest levels encoded progressively as bitplanes (`L_p` in
    /// Algorithm 1). Coarser levels (and the anchor grid) are always loaded in full;
    /// they hold a negligible fraction of the data but seed the prediction. `None`
    /// means "all levels progressive".
    pub progressive_levels: Option<u32>,
    /// Apply the 2-bit-prefix predictive XOR coding to bitplanes before the lossless
    /// backend (paper Sec. 4.4.1). Disabling it is only useful for the ablation
    /// study.
    pub predictive_coding: bool,
    /// Number of prefix bits used by the predictive coder (paper Table 2 evaluates
    /// 1–3; 2 is the default and the best performer).
    pub prefix_bits: u8,
    /// Run per-level bitplane encoding on the rayon thread pool.
    pub parallel_encoding: bool,
    /// Packed plane bytes per entropy chunk (must be a multiple of 8).
    /// Smaller chunks stream and parallelize at finer granularity for a small
    /// ratio cost; `0` stores one monolithic block per plane, the version-1
    /// layout.
    pub chunk_bytes: usize,
    /// Spatial precinct extents (per dimension, in domain coordinates).
    /// `Some` switches the container to the version-3 layout: every level's
    /// coefficients are stored precinct-major and entropy chunks are cut on
    /// precinct boundaries, enabling region-of-interest retrieval that only
    /// touches the chunks intersecting a bounding box (plus the cascade
    /// halo). Only the first `ndim` entries are used; each must be ≥ 1.
    /// `None` (default) keeps the byte-granular version-2 chunk layout.
    pub precincts: Option<[usize; ipc_tensor::MAX_DIMS]>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            interpolation: Interpolation::Cubic,
            progressive_levels: None,
            predictive_coding: true,
            prefix_bits: 2,
            parallel_encoding: true,
            chunk_bytes: crate::bitplane::CHUNK_BYTES,
            precincts: None,
        }
    }
}

impl Config {
    /// Default configuration with linear interpolation.
    pub fn linear() -> Self {
        Self {
            interpolation: Interpolation::Linear,
            ..Self::default()
        }
    }

    /// Default configuration with cubic interpolation.
    pub fn cubic() -> Self {
        Self::default()
    }

    /// Default configuration with a spatial precinct grid (version-3 layout).
    /// `extents` gives the precinct size along each dimension; missing
    /// trailing dimensions reuse the last extent given.
    pub fn with_precincts(extents: &[usize]) -> Self {
        assert!(
            !extents.is_empty() && extents.len() <= ipc_tensor::MAX_DIMS,
            "between 1 and {} precinct extents required",
            ipc_tensor::MAX_DIMS
        );
        let last = *extents.last().expect("non-empty");
        let mut e = [last; ipc_tensor::MAX_DIMS];
        e[..extents.len()].copy_from_slice(extents);
        Self {
            precincts: Some(e),
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_norms_match_paper() {
        assert_eq!(Interpolation::Linear.linf_norm(), 1.0);
        assert_eq!(Interpolation::Cubic.linf_norm(), 1.25);
    }

    #[test]
    fn interpolation_id_roundtrip() {
        for m in [Interpolation::Linear, Interpolation::Cubic] {
            assert_eq!(Interpolation::from_id(m.id()), Some(m));
        }
        assert_eq!(Interpolation::from_id(99), None);
    }

    #[test]
    fn default_config_uses_cubic_and_two_prefix_bits() {
        let c = Config::default();
        assert_eq!(c.interpolation, Interpolation::Cubic);
        assert_eq!(c.prefix_bits, 2);
        assert!(c.predictive_coding);
    }
}
