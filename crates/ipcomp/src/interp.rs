//! Multilevel interpolation predictor (paper Sec. 4.1 and Fig. 3).
//!
//! The input grid is partitioned into orthogonal levels by a shrinking stride: level
//! `l` (1 = finest) owns the points that lie on the `2^(l-1)` lattice but not on the
//! `2^l` lattice, and the *anchor* points (all coordinates multiples of `2^L`) seed
//! the whole cascade and are predicted from zero (Algorithm 1, line 2).
//!
//! Within a level the predictor sweeps the dimensions in order; along the active
//! dimension each target (at an odd multiple of the stride) is interpolated from its
//! already-known neighbours at `±stride` (linear) or `±stride, ±3·stride` (cubic),
//! falling back to lower-order formulas at the domain boundary. Compression and
//! decompression share the exact same traversal through [`process_level`] /
//! [`process_anchors`]; only the per-point closure differs, which is what guarantees
//! that the decompressor reproduces the compressor's predictions bit for bit.

use crate::config::Interpolation;
use ipc_tensor::{AxisRange, GridIter, Shape};

/// Number of interpolation levels for a shape: `ceil(log2(max_dim))`, at least 1.
pub fn num_levels(shape: &Shape) -> u32 {
    let max_dim = shape.max_dim();
    if max_dim <= 2 {
        1
    } else {
        (usize::BITS - (max_dim - 1).leading_zeros()).max(1)
    }
}

/// Stride of a level: `2^(level-1)`.
pub fn level_stride(level: u32) -> usize {
    1usize << (level - 1)
}

/// Number of points owned by the anchor grid (stride `2^L` in every dimension).
pub fn anchor_count(shape: &Shape) -> usize {
    let stride = level_stride(num_levels(shape) + 1);
    shape.dims().iter().map(|&d| (d - 1) / stride + 1).product()
}

/// Number of points owned by level `level` (i.e. predicted during that level).
pub fn level_count(shape: &Shape, level: u32) -> usize {
    let mut count = 0usize;
    for_each_level_pass(shape, level_stride(level), |_, ranges| {
        count += GridIter::new(shape, ranges).total();
    });
    count
}

/// Invoke `f` with the active dimension and per-dimension axis ranges of every
/// dimension pass of a level. This is the single source of the level traversal
/// geometry, shared by [`process_level`], [`level_count`], and the streaming
/// cascade engine ([`crate::cascade`]).
pub(crate) fn for_each_level_pass(
    shape: &Shape,
    stride: usize,
    mut f: impl FnMut(usize, Vec<AxisRange>),
) {
    let dims = shape.dims();
    let ndim = dims.len();
    for d in 0..ndim {
        if stride >= dims[d] {
            // No odd multiple of `stride` fits in this dimension.
            continue;
        }
        let mut ranges = Vec::with_capacity(ndim);
        for (e, &len) in dims.iter().enumerate() {
            let range = if e < d {
                // Dimensions already swept in this level: full `stride` lattice.
                AxisRange::strided(0, stride, len)
            } else if e == d {
                // Active dimension: odd multiples of `stride`.
                AxisRange::strided(stride, 2 * stride, len)
            } else {
                // Dimensions not yet swept: still on the coarser `2·stride` lattice.
                AxisRange::strided(0, 2 * stride, len)
            };
            ranges.push(range);
        }
        f(d, ranges);
    }
}

/// The per-dimension axis ranges of the anchor lattice (all coordinates
/// multiples of the anchor stride).
pub(crate) fn anchor_ranges(shape: &Shape) -> Vec<AxisRange> {
    let stride = level_stride(num_levels(shape) + 1);
    shape
        .dims()
        .iter()
        .map(|&len| AxisRange::strided(0, stride, len))
        .collect()
}

/// Compute the interpolation prediction for a target point.
///
/// `offset` is the flat index of the target, `coord` its coordinate along the active
/// dimension `d`, `dim_len`/`dim_stride` the size and flat stride of that dimension,
/// and `work` the buffer holding already-reconstructed values.
#[inline]
pub(crate) fn predict_point(
    work: &[f64],
    offset: usize,
    coord: usize,
    dim_len: usize,
    dim_stride: usize,
    stride: usize,
    method: Interpolation,
) -> f64 {
    predict_point_read(
        |i| work[i],
        offset,
        coord,
        dim_len,
        dim_stride,
        stride,
        method,
    )
}

/// [`predict_point`] with the buffer access abstracted behind `read`: the
/// single source of truth for the boundary-fallback semantics, shared with
/// the cascade engine's raw-pointer run kernels ([`crate::cascade`], whose
/// concurrent sub-pass rows cannot hold an aliased `&[f64]`). The operation
/// order is identical, so both forms produce the same bits.
#[inline]
pub(crate) fn predict_point_read(
    read: impl Fn(usize) -> f64,
    offset: usize,
    coord: usize,
    dim_len: usize,
    dim_stride: usize,
    stride: usize,
    method: Interpolation,
) -> f64 {
    let prev = read(offset - stride * dim_stride);
    let has_next = coord + stride < dim_len;
    if !has_next {
        // Boundary: only the previous neighbour exists.
        return prev;
    }
    let next = read(offset + stride * dim_stride);
    match method {
        Interpolation::Linear => 0.5 * (prev + next),
        Interpolation::Cubic => {
            let has_prev3 = coord >= 3 * stride;
            let has_next3 = coord + 3 * stride < dim_len;
            if has_prev3 && has_next3 {
                let prev3 = read(offset - 3 * stride * dim_stride);
                let next3 = read(offset + 3 * stride * dim_stride);
                -0.0625 * prev3 + 0.5625 * prev + 0.5625 * next - 0.0625 * next3
            } else {
                0.5 * (prev + next)
            }
        }
    }
}

/// One innermost-dimension run of a sub-lattice sweep: `count` points starting
/// at flat offset `base`, `step` elements apart. The active-dimension
/// coordinate of point `t` is `coord + t · coord_step` (`coord_step` is zero
/// when the active dimension is not the innermost, so the whole run shares one
/// coordinate and therefore one boundary case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SweepRun {
    /// Flat offset of the first point.
    pub base: usize,
    /// Number of points in the run.
    pub count: usize,
    /// Element step between consecutive points.
    pub step: usize,
    /// Active-dimension coordinate of the first point.
    pub coord: usize,
    /// Active-dimension coordinate increment per point (0 unless the active
    /// dimension is the innermost).
    pub coord_step: usize,
}

/// Row-major traversal of the sub-lattice described by `ranges`, invoking `f`
/// once per innermost run. Runs arrive in exactly the order their points are
/// visited by `GridIter::new(shape, ranges)`; concatenating them point by
/// point reproduces that iteration.
///
/// This is the core of the hot loop of both compression and decompression:
/// where the generic [`GridIter`] pays a coordinate-vector clone and an
/// odometer carry chain per point, this sweep specializes the innermost
/// dimension to a direct strided run and only advances the odometer across the
/// outer dimensions once per run — and it exposes whole runs so the cascade
/// engine ([`crate::cascade`]) can hand them to vectorized kernels.
pub(crate) fn sweep_runs(
    strides: &[usize],
    ranges: &[AxisRange],
    d: usize,
    mut f: impl FnMut(SweepRun),
) {
    if ranges.iter().any(|r| r.count() == 0) {
        return;
    }
    let last = ranges.len() - 1;
    let inner = ranges[last];
    let inner_count = inner.count();
    let inner_step = inner.step * strides[last];
    // Odometer state over the outer dimensions; `base` already includes the
    // inner dimension's start offset.
    let mut coords: Vec<usize> = ranges[..last].iter().map(|r| r.start).collect();
    let mut base: usize = coords
        .iter()
        .zip(strides)
        .map(|(&c, &s)| c * s)
        .sum::<usize>()
        + inner.start * strides[last];
    loop {
        let (coord, coord_step) = if d == last {
            // The active dimension is the innermost: its coordinate advances
            // with the run.
            (inner.start, inner.step)
        } else {
            // The active coordinate is constant along the innermost run.
            (coords[d], 0)
        };
        f(SweepRun {
            base,
            count: inner_count,
            step: inner_step,
            coord,
            coord_step,
        });
        // Advance the outer odometer (row-major: dimension `last-1` fastest).
        let mut dim = last;
        loop {
            if dim == 0 {
                return;
            }
            dim -= 1;
            let r = ranges[dim];
            let next = coords[dim] + r.step;
            if next < r.end {
                coords[dim] = next;
                base += r.step * strides[dim];
                break;
            }
            base -= (coords[dim] - r.start) * strides[dim];
            coords[dim] = r.start;
        }
    }
}

/// Per-point form of [`sweep_runs`]: `visit(offset, coord_d)` for every point.
fn sweep_ranges(
    strides: &[usize],
    ranges: &[AxisRange],
    d: usize,
    mut visit: impl FnMut(usize, usize),
) {
    sweep_runs(strides, ranges, d, |run| {
        let mut offset = run.base;
        let mut coord = run.coord;
        for _ in 0..run.count {
            visit(offset, coord);
            offset += run.step;
            coord += run.coord_step;
        }
    });
}

/// Visit every anchor point (all coordinates multiples of the anchor stride) in
/// deterministic row-major order. For each anchor, `f(offset, prediction)` is called
/// with a prediction of `0.0` and must return the value to store into `work[offset]`.
pub fn process_anchors(shape: &Shape, work: &mut [f64], mut f: impl FnMut(usize, f64) -> f64) {
    let ranges = anchor_ranges(shape);
    sweep_ranges(shape.strides(), &ranges, 0, |offset, _| {
        work[offset] = f(offset, 0.0);
    });
}

/// Visit every target point of `level` in deterministic order. For each target,
/// the prediction is computed from `work` and `f(offset, prediction)` is called; its
/// return value is stored into `work[offset]` before the traversal moves on (so later
/// targets in the same level see reconstructed values, exactly as in decompression).
pub fn process_level(
    shape: &Shape,
    level: u32,
    method: Interpolation,
    work: &mut [f64],
    mut f: impl FnMut(usize, f64) -> f64,
) {
    let stride = level_stride(level);
    let dims = shape.dims().to_vec();
    let strides = shape.strides().to_vec();
    for_each_level_pass(shape, stride, |d, ranges| {
        sweep_ranges(&strides, &ranges, d, |offset, coord_d| {
            let pred = predict_point(work, offset, coord_d, dims[d], strides[d], stride, method);
            let new = f(offset, pred);
            work[offset] = new;
        });
    });
}

/// Total number of points across anchors and all levels — must equal `shape.len()`.
///
/// Exposed for tests and for container sanity checks.
pub fn total_points(shape: &Shape) -> usize {
    let levels = num_levels(shape);
    let mut total = anchor_count(shape);
    for l in 1..=levels {
        total += level_count(shape, l);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_tensor::ArrayD;

    #[test]
    fn level_count_partition_is_exact() {
        for dims in [
            vec![16usize],
            vec![17],
            vec![8, 8],
            vec![7, 13],
            vec![16, 20, 20],
            vec![5, 9, 33],
            vec![2, 2, 2],
            vec![1, 50, 3],
        ] {
            let shape = Shape::new(&dims);
            assert_eq!(
                total_points(&shape),
                shape.len(),
                "partition mismatch for {dims:?}"
            );
        }
    }

    #[test]
    fn every_point_visited_exactly_once() {
        let shape = Shape::d3(9, 12, 7);
        let mut visits = vec![0u32; shape.len()];
        let mut work = vec![0.0; shape.len()];
        process_anchors(&shape, &mut work, |off, _| {
            visits[off] += 1;
            0.0
        });
        for level in (1..=num_levels(&shape)).rev() {
            process_level(&shape, level, Interpolation::Linear, &mut work, |off, _| {
                visits[off] += 1;
                0.0
            });
        }
        assert!(visits.iter().all(|&v| v == 1), "visits: {visits:?}");
    }

    #[test]
    fn sweep_ranges_matches_grid_iter_order() {
        // The specialized run sweep must visit exactly the offsets GridIter
        // yields, in the same order, with the right active-dimension coordinate.
        for dims in [vec![9usize], vec![5, 8], vec![4, 7, 6], vec![3, 2, 5, 4]] {
            let shape = Shape::new(&dims);
            let ndim = dims.len();
            for d in 0..ndim {
                let ranges: Vec<AxisRange> = dims
                    .iter()
                    .enumerate()
                    .map(|(e, &len)| {
                        if e == d {
                            AxisRange::strided(1, 2, len)
                        } else {
                            AxisRange::strided(0, 2, len)
                        }
                    })
                    .collect();
                let mut got: Vec<(usize, usize)> = Vec::new();
                sweep_ranges(shape.strides(), &ranges, d, |off, coord| {
                    got.push((off, coord));
                });
                let want: Vec<(usize, usize)> = GridIter::new(&shape, ranges)
                    .map(|(coords, off)| (off, coords[d]))
                    .collect();
                assert_eq!(got, want, "dims {dims:?} active dim {d}");
            }
        }
    }

    #[test]
    fn num_levels_grows_with_dimension() {
        assert_eq!(num_levels(&Shape::d1(2)), 1);
        assert_eq!(num_levels(&Shape::d1(3)), 2);
        assert_eq!(num_levels(&Shape::d1(4)), 2);
        assert_eq!(num_levels(&Shape::d1(5)), 3);
        assert_eq!(num_levels(&Shape::d1(9)), 4);
        assert_eq!(num_levels(&Shape::d1(1024)), 10);
        assert_eq!(num_levels(&Shape::d3(256, 384, 384)), 9);
    }

    #[test]
    fn linear_ramp_has_zero_interior_residuals() {
        // A perfectly linear field is predicted exactly by linear interpolation away
        // from boundary fallbacks, so residuals there must vanish.
        let shape = Shape::d2(17, 17);
        let field = ArrayD::from_fn(shape.clone(), |c| c[0] as f64 + 2.0 * c[1] as f64);
        let orig = field.as_slice().to_vec();
        let mut work = orig.clone();
        let mut nonzero = 0usize;
        let mut interior = 0usize;
        process_anchors(&shape, &mut work, |off, _| orig[off]);
        for level in (1..=num_levels(&shape)).rev() {
            process_level(
                &shape,
                level,
                Interpolation::Linear,
                &mut work,
                |off, pred| {
                    let resid = orig[off] - pred;
                    if resid.abs() > 1e-12 {
                        nonzero += 1;
                    }
                    interior += 1;
                    orig[off]
                },
            );
        }
        assert!(interior > 0);
        // Only boundary-fallback targets may have nonzero residuals; they are a thin
        // O(n^(d-1)/n) fraction of the 17x17 grid.
        assert!(
            (nonzero as f64) < 0.30 * interior as f64,
            "nonzero {nonzero} of {interior}"
        );
    }

    #[test]
    fn cubic_reproduces_cubic_polynomial_in_interior() {
        let shape = Shape::d1(33);
        let poly = |x: f64| 0.5 * x * x * x - 2.0 * x * x + 3.0 * x - 7.0;
        let orig: Vec<f64> = (0..33).map(|i| poly(i as f64)).collect();
        let mut work = orig.clone();
        process_anchors(&shape, &mut work, |off, _| orig[off]);
        // Only check the finest level where all four cubic neighbours exist away from
        // boundaries.
        let mut max_err = 0.0f64;
        for level in (1..=num_levels(&shape)).rev() {
            process_level(
                &shape,
                level,
                Interpolation::Cubic,
                &mut work,
                |off, pred| {
                    if level == 1 && off >= 3 && off + 3 < 33 {
                        max_err = max_err.max((orig[off] - pred).abs());
                    }
                    orig[off]
                },
            );
        }
        assert!(max_err < 1e-9, "cubic interior error {max_err}");
    }

    #[test]
    fn reconstruction_matches_when_residuals_are_exact() {
        // Feeding back `pred + residual` with exact residuals reproduces the input.
        let shape = Shape::d3(6, 11, 5);
        let field = ArrayD::from_fn(shape.clone(), |c| {
            (c[0] as f64 * 0.7).sin() + (c[1] as f64 * 0.3).cos() + c[2] as f64
        });
        let orig = field.as_slice().to_vec();

        // Compression pass: record residuals in traversal order.
        let mut residuals = Vec::new();
        let mut work = vec![0.0; shape.len()];
        process_anchors(&shape, &mut work, |off, pred| {
            residuals.push(orig[off] - pred);
            orig[off]
        });
        for level in (1..=num_levels(&shape)).rev() {
            process_level(
                &shape,
                level,
                Interpolation::Cubic,
                &mut work,
                |off, pred| {
                    residuals.push(orig[off] - pred);
                    orig[off]
                },
            );
        }

        // Decompression pass: replay residuals in the same order.
        let mut replay = residuals.into_iter();
        let mut out = vec![0.0; shape.len()];
        process_anchors(&shape, &mut out, |_, pred| pred + replay.next().unwrap());
        for level in (1..=num_levels(&shape)).rev() {
            process_level(&shape, level, Interpolation::Cubic, &mut out, |_, pred| {
                pred + replay.next().unwrap()
            });
        }
        for (a, b) in orig.iter().zip(&out) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn anchor_count_small_relative_to_grid() {
        let shape = Shape::d3(64, 96, 96);
        assert!(anchor_count(&shape) * 100 < shape.len());
    }
}
