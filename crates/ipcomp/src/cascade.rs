//! Streaming SIMD reconstruction engine: the level-streamed interpolation
//! cascade that turns decoded bitplane accumulators into a field.
//!
//! Historically the decoder ran the reconstruction as a monolithic sweep
//! *after* every plane had been fetched and scattered: dequantize each level's
//! accumulators into a residual buffer, then replay [`process_level`] with a
//! per-point closure pulling residuals off an iterator. After the PR 4 decode
//! pipeline cut the read path to a few milliseconds, that batch sweep was the
//! dominant cost of a full retrieval (ROADMAP's top hot spot).
//!
//! [`CascadeEngine`] restructures the reconstruction around two ideas:
//!
//! 1. **Level streaming.** The interpolation cascade consumes levels coarsest
//!    first — exactly the order the decode pipeline produces them — and each
//!    level's pass only reads lattice points finalized by earlier passes. So
//!    the engine runs level `k`'s interpolation as soon as level `k`'s
//!    coefficients are scattered, while the finer levels (the finest holds
//!    7/8 of the bytes in 3-D) are still fetching and entropy-decoding. A
//!    [`CascadeState`] tracks per-level readiness, so levels may be handed
//!    over in any order; passes are applied in cascade order as their
//!    predecessors complete. Streaming raises the fetch/compute overlap
//!    ceiling of the staged pipeline: against a slow backend, reconstruction
//!    compute now hides under the next level's fetch instead of running after
//!    the last byte lands.
//! 2. **Fused SIMD passes.** A pass consumes quantization codes directly —
//!    dequantization (`code · 2eb`) is fused into the interpolation kernel,
//!    so the field is touched once per level instead of once per stage, and
//!    no per-level residual `f64` buffer is materialized. The kernels operate
//!    on whole innermost runs ([`crate::interp`]'s sweep geometry): each run
//!    splits into a branchy head/tail (domain-boundary fallbacks, evaluated
//!    point-wise exactly like [`crate::interp::predict_point`]) and a
//!    branchless interior. The interior has an AVX2 variant (runtime-detected
//!    behind the `simd` feature, same conventions as
//!    [`ipc_codecs::bitslice`]): stride-2 deinterleaved loads, the cubic or
//!    linear stencil evaluated with scalar operation order (mul/add/sub, no
//!    FMA), and interleaved stores — so SIMD output is bit-identical to the
//!    portable kernels, which are always compiled and are the only path on
//!    other architectures or under `--no-default-features`.
//!
//! The implementation is selectable process-wide via `IPC_CASCADE_IMPL`
//! (`auto` / `portable` / `reference`) or [`force_cascade_impl`], mirroring
//! `IPC_SCATTER_IMPL`: `reference` routes every pass through the historical
//! closure-driven [`process_level`] formulation, kept as the A/B baseline and
//! correctness oracle. All three produce bit-identical fields.
//!
//! Level streaming itself can be disabled (`IPC_CASCADE_STREAM=0` or
//! [`set_cascade_streaming`]) to force the historical decode-everything-then-
//! reconstruct schedule for benchmarks; decoded bits are identical either
//! way, only wall-clock overlap changes.
//!
//! **Multi-core execution.** Within one dimension sub-pass every target point
//! sits at an *odd* multiple of the stride along the active dimension, while
//! every value the predictor reads (`±stride`, `±3·stride` along that
//! dimension) sits at an *even* multiple — finalized by an earlier pass and
//! never written by this one. The sub-pass's innermost runs are therefore
//! mutually independent, and [`CascadeEngine`] fans them out across scoped
//! worker threads in contiguous chunks, each thread replaying its runs in the
//! serial traversal order with the serial kernels — so the parallel schedule
//! is bit-identical to the serial one by construction, not by tolerance.
//! The thread count follows [`rayon::current_num_threads`] (so
//! `RAYON_NUM_THREADS` bounds it, and passes already running inside a rayon
//! worker stay serial instead of oversubscribing); `IPC_CASCADE_PAR=0` or
//! [`set_cascade_parallel`] is the kill switch. To shorten the critical tail,
//! the finest level's last sub-pass is additionally slab-split along its
//! outermost non-singleton dimension at construction time, so its early slabs
//! stream behind in-flight fetches instead of waiting for the level's final
//! region.

use ipc_codecs::negabinary::from_negabinary;
use ipc_codecs::EnvSwitch;
use ipc_tensor::Shape;

use crate::config::Interpolation;
use crate::interp::{
    for_each_level_pass, level_stride, num_levels, predict_point_read, process_anchors,
    process_level, sweep_runs, SweepRun,
};

// ---- process-wide dispatch switches ----------------------------------------

/// Which implementation the cascade kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CascadeImpl {
    /// Pick per pass: AVX2 interior kernels when the CPU has them, otherwise
    /// the portable run kernels.
    Auto = 0,
    /// The pre-cascade formulation: [`process_level`] with a per-point
    /// closure pulling dequantized residuals off an iterator. Kept selectable
    /// for A/B benchmarking and as the correctness oracle.
    Reference = 1,
    /// The portable run kernels, never AVX2 (regardless of CPU).
    Portable = 2,
}

/// Process-wide kernel override, settable via [`force_cascade_impl`] or the
/// `IPC_CASCADE_IMPL` environment variable (`auto` / `reference` /
/// `portable`), mirroring `IPC_SCATTER_IMPL`.
static CASCADE_IMPL: EnvSwitch = EnvSwitch::new("IPC_CASCADE_IMPL");

/// Force every subsequent cascade pass onto one implementation (benchmark A/B
/// harnesses; reconstructed fields are bit-identical either way).
pub fn force_cascade_impl(which: CascadeImpl) {
    CASCADE_IMPL.force(which as u8);
}

/// The implementation cascade passes currently dispatch to.
pub fn cascade_impl() -> CascadeImpl {
    match CASCADE_IMPL.get(|env| match env {
        Some("reference") => CascadeImpl::Reference as u8,
        Some("portable") => CascadeImpl::Portable as u8,
        _ => CascadeImpl::Auto as u8,
    }) {
        1 => CascadeImpl::Reference,
        2 => CascadeImpl::Portable,
        _ => CascadeImpl::Auto,
    }
}

/// Whether the AVX2 cascade kernels are compiled in and supported by this CPU.
pub fn cascade_avx2_available() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Process-wide level-streaming switch.
static CASCADE_STREAM: EnvSwitch = EnvSwitch::new("IPC_CASCADE_STREAM");

/// Enable or disable level-streamed reconstruction (benchmark A/B harnesses).
/// When disabled, the decoder loads every level before running any
/// interpolation pass — the historical schedule. Reconstructed bits are
/// identical either way.
pub fn set_cascade_streaming(enabled: bool) {
    CASCADE_STREAM.force(enabled as u8);
}

/// Whether the decoder interleaves interpolation passes with level loading
/// (default true; `IPC_CASCADE_STREAM=0` disables).
pub fn cascade_streaming() -> bool {
    CASCADE_STREAM.get(|env| (env != Some("0")) as u8) != 0
}

/// Process-wide sub-pass parallelism switch.
static CASCADE_PAR: EnvSwitch = EnvSwitch::new("IPC_CASCADE_PAR");

/// Enable or disable multi-threaded sub-pass execution (the `IPC_CASCADE_PAR`
/// kill switch). Runs within a dimension sub-pass are independent and each
/// run keeps its serial scalar operation order, so reconstructed bits are
/// identical for every thread count.
pub fn set_cascade_parallel(enabled: bool) {
    CASCADE_PAR.force(enabled as u8);
}

/// Whether sub-passes may fan their runs out across worker threads
/// (default true; `IPC_CASCADE_PAR=0` disables).
pub fn cascade_parallel() -> bool {
    CASCADE_PAR.get(|env| (env != Some("0")) as u8) != 0
}

/// Test/bench hook: pin the worker-thread count a parallel sub-pass splits
/// into, overriding the [`rayon::current_num_threads`] default. `None`
/// restores the default. Exists so bit-identity suites can exercise the
/// concurrent schedule deterministically even on a 1-CPU host.
pub fn force_cascade_threads(n: Option<usize>) {
    CASCADE_FORCE_THREADS.store(n.unwrap_or(0), std::sync::atomic::Ordering::Relaxed);
}

static CASCADE_FORCE_THREADS: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);

/// Worker threads the next sub-pass would split across: 1 when parallelism is
/// switched off or the pass is already inside a rayon worker (the `StoreServer`
/// session fan-out), else the forced override or the rayon pool width.
///
/// The pool width is clamped to `available_parallelism()`: the cascade is
/// CPU-bound, so oversubscribing a host (e.g. `RAYON_NUM_THREADS=8` on one
/// core) only buys context-switch overhead. `force_cascade_threads` bypasses
/// the clamp so correctness tests can exercise the parallel schedule anywhere.
pub fn cascade_threads() -> usize {
    if !cascade_parallel() {
        return 1;
    }
    match CASCADE_FORCE_THREADS.load(std::sync::atomic::Ordering::Relaxed) {
        0 => rayon::current_num_threads().min(hardware_threads()),
        n => n,
    }
}

/// Cached `available_parallelism()` (queried once; it is a syscall and
/// `cascade_threads` runs once per sub-pass).
fn hardware_threads() -> usize {
    static HW: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Below this many points a sub-pass runs serially: thread spawn/join costs
/// more than the sweep itself (coarse levels are a few hundred points).
const PAR_MIN_POINTS: usize = 1 << 12;

/// Slabs the finest level's last sub-pass is split into (bounded by the
/// split dimension's extent).
const TAIL_SLABS: usize = 8;

// ---- bulk residual extraction ----------------------------------------------

/// Negabinary-decode a level's accumulators into quantization codes (the
/// values the cascade consumes). One tight xor/subtract pass the compiler
/// auto-vectorizes; the `· 2eb` dequantization half is fused into the
/// interpolation kernels so no per-level `f64` residual buffer exists.
pub fn residual_codes(acc: &[u64]) -> Vec<i64> {
    acc.iter().map(|&w| from_negabinary(w)).collect()
}

/// Codes newly contributed by a refinement step: the negabinary-decoded
/// accumulators minus the pre-load snapshot. Same fused-dequantize contract
/// as [`residual_codes`].
pub fn delta_codes(acc: &[u64], before: &[i64]) -> Vec<i64> {
    acc.iter()
        .zip(before)
        .map(|(&w, &b)| from_negabinary(w) - b)
        .collect()
}

// ---- per-level readiness ----------------------------------------------------

/// Lifecycle of one container level inside a [`CascadeEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelState {
    /// Coefficients not yet handed to the engine.
    Pending,
    /// Coefficients received, waiting for a coarser level's pass.
    Ready,
    /// Interpolation pass applied; the level's lattice is final.
    Applied,
}

/// Per-level readiness tracker: levels may be handed over in any order, and
/// the engine applies each level's pass exactly once, in cascade (coarsest
/// first) order, as soon as all coarser levels are applied.
#[derive(Debug, Clone)]
pub struct CascadeState {
    states: Vec<LevelState>,
    applied: usize,
}

impl CascadeState {
    fn new(n_levels: usize) -> Self {
        Self {
            states: vec![LevelState::Pending; n_levels],
            applied: 0,
        }
    }

    /// Per-level states, coarsest level first.
    pub fn levels(&self) -> &[LevelState] {
        &self.states
    }

    /// Number of levels whose pass has run.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Whether every level's pass has run.
    pub fn is_complete(&self) -> bool {
        self.applied == self.states.len()
    }
}

/// Progress report emitted when a level's interpolation pass completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CascadeProgress {
    /// Index into the container's level list (coarsest level first).
    pub level_idx: usize,
    /// Interpolation level the pass covered (`num_levels` = coarsest, 1 =
    /// finest; stride `2^(level-1)`).
    pub interp_level: u32,
    /// Grid points predicted (and finalized) by this pass.
    pub points: usize,
    /// Levels applied so far, including this one.
    pub levels_applied: usize,
    /// Total levels the cascade will apply.
    pub levels_total: usize,
}

// ---- the engine -------------------------------------------------------------

/// Streaming interpolation-cascade engine over one field reconstruction.
///
/// Lifecycle: [`CascadeEngine::new`], then exactly one of
/// [`seed_anchors`](CascadeEngine::seed_anchors) (initial reconstruction) or
/// [`seed_zero`](CascadeEngine::seed_zero) (refinement delta cascade), then
/// per container level either
///
/// * [`level_ready`](CascadeEngine::level_ready) with the level's complete
///   quantization codes (values for an initial reconstruction, deltas for a
///   refinement; an empty vector means "all zero" and runs prediction-only
///   passes), or
/// * [`level_codes_arrived`](CascadeEngine::level_codes_arrived) with
///   traversal-order code prefixes as chunk regions land, then
///   [`level_complete`](CascadeEngine::level_complete) — the streaming form.
///
/// Codes arrive in the level's traversal order, which is the concatenation of
/// its dimension sub-passes — so each sub-pass consumes a contiguous, known
/// code range and can run as soon as the arrived prefix covers it (and all
/// coarser levels are applied). That is what lets the finest level's early
/// sub-passes overlap the fetch of its own remaining regions, on top of the
/// coarse levels overlapping the finer levels' fetches entirely. Levels may
/// be handed over in any order; parked codes apply once their predecessors
/// complete. When [`CascadeState::is_complete`],
/// [`into_field`](CascadeEngine::into_field) yields the reconstruction.
pub struct CascadeEngine {
    shape: Shape,
    method: Interpolation,
    /// `2 · error_bound`: multiplying a code by this dequantizes it with the
    /// exact rounding of [`crate::quantize::dequantize`] (scaling by 2.0 is
    /// exact, so the product rounds once either way).
    two_eb: f64,
    levels: u32,
    /// Kernel implementation, captured at construction.
    which: CascadeImpl,
    avx2: bool,
    work: Vec<f64>,
    state: CascadeState,
    slots: Vec<LevelSlot>,
    /// Per level, its dimension sub-passes in traversal order.
    geoms: Vec<Vec<SubPass>>,
}

/// One dimension pass of one level: the sweep geometry plus the contiguous
/// code range it consumes.
struct SubPass {
    d: usize,
    ranges: Vec<ipc_tensor::AxisRange>,
    /// First code (traversal position within the level) this pass consumes.
    start: usize,
    /// Codes (= points) this pass consumes.
    count: usize,
}

/// Arrival/application state of one level.
#[derive(Default)]
struct LevelSlot {
    /// Codes arrived so far, from traversal position 0.
    buf: Vec<i64>,
    /// Sub-passes applied so far.
    subs_applied: usize,
    /// All codes arrived ([`CascadeEngine::level_complete`] called).
    complete: bool,
    /// All-zero level: prediction-only passes, no codes.
    zero: bool,
}

impl CascadeEngine {
    /// Engine over `shape` with `num_levels(shape)` cascade levels, bound to
    /// the process-wide [`cascade_impl`] at construction.
    pub fn new(shape: Shape, method: Interpolation, error_bound: f64) -> Self {
        let levels = num_levels(&shape);
        let work = vec![0.0f64; shape.len()];
        let which = cascade_impl();
        let avx2 = which == CascadeImpl::Auto && cascade_avx2_available();
        let geoms = (0..levels)
            .map(|idx| {
                let stride = level_stride(levels - idx);
                let mut subs = Vec::new();
                let mut start = 0usize;
                for_each_level_pass(&shape, stride, |d, ranges| {
                    let count = ipc_tensor::GridIter::new(&shape, ranges.clone()).total();
                    subs.push(SubPass {
                        d,
                        ranges,
                        start,
                        count,
                    });
                    start += count;
                });
                if idx + 1 == levels {
                    // The finest level holds most of the field's points, and
                    // its last sub-pass is the whole cascade's tail: it used
                    // to wait for the level's final streamed region. Slabbing
                    // it lets earlier slabs run behind in-flight fetches.
                    slab_split_last(&mut subs);
                }
                subs
            })
            .collect();
        Self {
            shape,
            method,
            two_eb: 2.0 * error_bound,
            levels,
            which,
            avx2,
            work,
            state: CascadeState::new(levels as usize),
            slots: (0..levels).map(|_| LevelSlot::default()).collect(),
            geoms,
        }
    }

    /// Number of cascade levels (container level `idx` maps to interpolation
    /// level `levels - idx`).
    pub fn num_levels(&self) -> u32 {
        self.levels
    }

    /// Per-level readiness.
    pub fn state(&self) -> &CascadeState {
        &self.state
    }

    /// Sub-passes applied and total for a level (observability: a level's
    /// early sub-passes run while its remaining codes are still arriving).
    pub fn subpasses_applied(&self, idx: usize) -> (usize, usize) {
        (self.slots[idx].subs_applied, self.geoms[idx].len())
    }

    /// The field under reconstruction (final once the state is complete).
    pub fn field(&self) -> &[f64] {
        &self.work
    }

    /// Consume the engine, yielding the reconstructed field.
    pub fn into_field(self) -> Vec<f64> {
        debug_assert!(self.state.is_complete(), "cascade incomplete");
        self.work
    }

    /// Seed the anchor lattice from quantization codes (Algorithm 1's
    /// zero-predicted anchors); missing codes read as zero.
    pub fn seed_anchors(&mut self, codes: &[i64]) {
        let two_eb = self.two_eb;
        let mut it = codes.iter();
        process_anchors(&self.shape, &mut self.work, |_, pred| {
            pred + it.next().map_or(0.0, |&c| c as f64 * two_eb)
        });
    }

    /// Seed an all-zero anchor lattice (Algorithm 2's delta cascade: the
    /// cascade is linear in the residuals, so a delta field propagates
    /// through the same passes from zero anchors).
    pub fn seed_zero(&mut self) {
        process_anchors(&self.shape, &mut self.work, |_, _| 0.0);
    }

    /// Hand container level `idx` (coarsest first) to the engine with its
    /// complete quantization codes — values on an initial reconstruction,
    /// deltas on a refinement, or an empty vector for an all-zero
    /// (prediction-only) level. Runs this level's passes immediately when
    /// every coarser level is applied (and then any finer levels that were
    /// parked waiting), or parks the codes otherwise. Returns one progress
    /// entry per level fully applied.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, was already handed over, or received
    /// streamed prefixes (use [`CascadeEngine::level_complete`] then).
    pub fn level_ready(&mut self, idx: usize, codes: Vec<i64>) -> Vec<CascadeProgress> {
        assert!(idx < self.levels as usize, "level index out of range");
        let slot = &mut self.slots[idx];
        assert!(
            !slot.complete && slot.buf.is_empty() && !slot.zero,
            "level {idx} handed to the cascade twice"
        );
        if codes.is_empty() {
            slot.zero = true;
        } else {
            slot.buf = codes;
        }
        self.finish_arrival(idx)
    }

    /// Append newly decoded codes for level `idx`, in traversal order — the
    /// streaming form, fed as chunk regions land. Any dimension sub-passes
    /// the arrived prefix now covers run immediately (once all coarser
    /// levels are applied); the rest wait for more codes. Returns one
    /// progress entry per level fully applied (parked finer levels may
    /// complete when their blocker does).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, the level was already completed, or
    /// more codes arrive than the level has points.
    pub fn level_codes_arrived(&mut self, idx: usize, new_codes: &[i64]) -> Vec<CascadeProgress> {
        self.arrive(idx, |buf| buf.extend_from_slice(new_codes))
    }

    /// Streaming arrival straight from a decoder's accumulator slice: the
    /// bulk dequantize stage-1 (negabinary decode, minus the refinement
    /// snapshot when given) is fused into the buffer append, so the codes
    /// are written exactly once. Semantics otherwise match
    /// [`CascadeEngine::level_codes_arrived`].
    pub fn level_span_arrived(
        &mut self,
        idx: usize,
        acc_span: &[u64],
        before_span: Option<&[i64]>,
    ) -> Vec<CascadeProgress> {
        self.arrive(idx, |buf| match before_span {
            None => buf.extend(acc_span.iter().map(|&w| from_negabinary(w))),
            Some(b) => buf.extend(
                acc_span
                    .iter()
                    .zip(b)
                    .map(|(&w, &x)| from_negabinary(w) - x),
            ),
        })
    }

    fn arrive(&mut self, idx: usize, append: impl FnOnce(&mut Vec<i64>)) -> Vec<CascadeProgress> {
        assert!(idx < self.levels as usize, "level index out of range");
        let slot = &mut self.slots[idx];
        assert!(
            !slot.complete && !slot.zero,
            "codes arrived after level {idx} completed"
        );
        append(&mut slot.buf);
        let total = self.level_points(idx);
        assert!(
            self.slots[idx].buf.len() <= total,
            "level {idx} received more codes than its {total} points"
        );
        self.advance()
    }

    /// Mark a streamed level's codes complete. Returns one progress entry
    /// per level fully applied.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range, the level was already completed, or
    /// the arrived codes do not cover the level (an empty arrival is the
    /// all-zero level, as in [`CascadeEngine::level_ready`]).
    pub fn level_complete(&mut self, idx: usize) -> Vec<CascadeProgress> {
        assert!(idx < self.levels as usize, "level index out of range");
        let total = self.level_points(idx);
        let slot = &mut self.slots[idx];
        assert!(!slot.complete, "level {idx} handed to the cascade twice");
        if slot.buf.is_empty() && !slot.zero {
            slot.zero = true;
        }
        assert!(
            slot.zero || slot.buf.len() == total,
            "level {idx} completed with {} of {total} codes",
            slot.buf.len()
        );
        self.finish_arrival(idx)
    }

    /// Total points (= codes) of a level.
    fn level_points(&self, idx: usize) -> usize {
        self.geoms[idx].iter().map(|s| s.count).sum()
    }

    fn finish_arrival(&mut self, idx: usize) -> Vec<CascadeProgress> {
        let slot = &mut self.slots[idx];
        slot.complete = true;
        if self.state.states[idx] == LevelState::Pending {
            self.state.states[idx] = LevelState::Ready;
        }
        self.advance()
    }

    /// Apply every sub-pass whose codes are available, in cascade order,
    /// reporting levels that became fully applied.
    fn advance(&mut self) -> Vec<CascadeProgress> {
        let mut out = Vec::new();
        while (self.state.applied) < self.levels as usize {
            let idx = self.state.applied;
            let interp_level = self.levels - idx as u32;
            let n_subs = self.geoms[idx].len();
            if self.which == CascadeImpl::Reference {
                // The closure formulation runs whole levels only; streamed
                // prefixes buffer until completion.
                if !self.slots[idx].complete {
                    break;
                }
                let codes = std::mem::take(&mut self.slots[idx].buf);
                self.reference_pass(interp_level, &codes);
                self.slots[idx].subs_applied = n_subs;
            } else {
                loop {
                    let slot = &self.slots[idx];
                    if slot.subs_applied >= n_subs {
                        break;
                    }
                    let sub = &self.geoms[idx][slot.subs_applied];
                    if !slot.zero && slot.buf.len() < sub.start + sub.count {
                        break;
                    }
                    self.apply_subpass(interp_level, idx, slot.subs_applied);
                    self.slots[idx].subs_applied += 1;
                }
                let slot = &mut self.slots[idx];
                if !(slot.complete && slot.subs_applied == n_subs) {
                    break;
                }
                slot.buf = Vec::new();
            }
            self.state.states[idx] = LevelState::Applied;
            self.state.applied += 1;
            out.push(CascadeProgress {
                level_idx: idx,
                interp_level,
                points: self.level_points(idx),
                levels_applied: self.state.applied,
                levels_total: self.levels as usize,
            });
        }
        out
    }

    /// Run one dimension sub-pass of a level through the run kernels,
    /// fanning independent runs out across worker threads when the pass is
    /// large enough (see the module docs for why runs never alias).
    fn apply_subpass(&mut self, interp_level: u32, idx: usize, sub_idx: usize) {
        let mut span = ipc_telemetry::span_timed(
            "cascade",
            "cascade.pass",
            crate::obs::metrics().cascade_pass_ns,
        );
        span.add_arg("level", interp_level as u64);
        span.add_arg("dim", sub_idx as u64);
        let stride = level_stride(interp_level);
        let sub = &self.geoms[idx][sub_idx];
        let field = FieldPtr {
            ptr: self.work.as_mut_ptr(),
            len: self.work.len(),
        };
        let slot = &self.slots[idx];
        let codes: &[i64] = if slot.zero {
            &[]
        } else {
            &slot.buf[sub.start..sub.start + sub.count]
        };
        let dims = self.shape.dims();
        let strides = self.shape.strides();
        let ctx = RunCtx {
            field,
            codes,
            ci: 0,
            two_eb: self.two_eb,
            method: self.method,
            stride,
            dim_stride: strides[sub.d],
            dim_len: dims[sub.d],
            inner_len: *dims.last().unwrap(),
            avx2: self.avx2,
        };
        let threads = cascade_threads();
        let forced = CASCADE_FORCE_THREADS.load(std::sync::atomic::Ordering::Relaxed) != 0;
        // A pinned thread count skips the size gate so bit-identity suites
        // can drive the concurrent schedule through arbitrarily small and
        // ragged geometries.
        if threads > 1 && (forced || sub.count >= PAR_MIN_POINTS) {
            // Materialize the runs with their code offsets (the serial sweep
            // order, so offsets are a deterministic prefix sum) and hand each
            // worker a contiguous chunk to replay with the serial kernels.
            let mut runs: Vec<(SweepRun, usize)> = Vec::new();
            let mut off = 0usize;
            sweep_runs(strides, &sub.ranges, sub.d, |run| {
                runs.push((run, off));
                off += run.count;
            });
            debug_assert_eq!(off, sub.count);
            if runs.len() >= 2 {
                let chunks = threads.min(runs.len());
                span.add_arg("threads", chunks as u64);
                let chunk_len = runs.len().div_ceil(chunks);
                let mut parts = runs.chunks(chunk_len);
                let first = parts.next().unwrap();
                std::thread::scope(|scope| {
                    for part in parts {
                        let ctx = ctx.clone();
                        scope.spawn(move || run_chunk(ctx, part));
                    }
                    // The caller thread takes the first chunk instead of
                    // idling on the join.
                    run_chunk(ctx, first);
                });
                return;
            }
        }
        span.add_arg("threads", 1);
        let mut ctx = ctx;
        sweep_runs(strides, &sub.ranges, sub.d, |run| ctx.do_run(run));
        debug_assert!(
            codes.is_empty() || ctx.ci == codes.len(),
            "sub-pass consumed {} of {} codes",
            ctx.ci,
            codes.len()
        );
    }

    /// The historical formulation: [`process_level`] with a closure pulling
    /// dequantized codes off an iterator (the PR 4 batch reconstruction's
    /// inner loop). Oracle and A/B baseline for the run kernels.
    fn reference_pass(&mut self, interp_level: u32, codes: &[i64]) {
        let mut span = ipc_telemetry::span_timed(
            "cascade",
            "cascade.pass",
            crate::obs::metrics().cascade_pass_ns,
        );
        span.add_arg("level", interp_level as u64);
        if codes.is_empty() {
            process_level(
                &self.shape,
                interp_level,
                self.method,
                &mut self.work,
                |_, pred| pred,
            );
        } else {
            let two_eb = self.two_eb;
            let mut it = codes.iter();
            process_level(
                &self.shape,
                interp_level,
                self.method,
                &mut self.work,
                |_, pred| pred + it.next().map_or(0.0, |&c| c as f64 * two_eb),
            );
        }
    }
}

/// Split a level's last sub-pass into up to [`TAIL_SLABS`] contiguous slabs
/// along the outermost dimension with more than one coordinate (all
/// dimensions before it being singleton guarantees each slab's points form a
/// contiguous range of the traversal, so the slabs' code ranges partition the
/// original sub-pass's exactly). Slabs keep the original traversal order, so
/// reconstruction bits are unchanged; 1-D and degenerate geometries are left
/// alone.
fn slab_split_last(subs: &mut Vec<SubPass>) {
    let Some(last) = subs.pop() else { return };
    let inner = last.ranges.len() - 1;
    // First non-singleton dimension before the innermost run dimension; every
    // dimension before it has exactly one coordinate (sub-passes never have
    // empty ranges), so traversal order is "for each coordinate of j: the
    // full inner block".
    let Some(j) = (0..inner).find(|&j| last.ranges[j].count() > 1) else {
        subs.push(last);
        return;
    };
    let r = last.ranges[j];
    let n = r.count();
    let slabs = TAIL_SLABS.min(n);
    debug_assert!(slabs >= 2);
    // Points per coordinate of dimension j.
    let per: usize = last
        .ranges
        .iter()
        .enumerate()
        .filter(|&(e, _)| e != j)
        .map(|(_, r)| r.count())
        .product();
    let mut start = last.start;
    for s in 0..slabs {
        let k0 = s * n / slabs;
        let k1 = (s + 1) * n / slabs;
        if k0 == k1 {
            continue;
        }
        let mut ranges = last.ranges.clone();
        ranges[j] = ipc_tensor::AxisRange::strided(
            r.start + k0 * r.step,
            r.step,
            (r.start + k1 * r.step).min(r.end),
        );
        debug_assert_eq!(ranges[j].count(), k1 - k0);
        let count = (k1 - k0) * per;
        subs.push(SubPass {
            d: last.d,
            ranges,
            start,
            count,
        });
        start += count;
    }
    debug_assert_eq!(start, last.start + last.count);
}

// ---- run kernels ------------------------------------------------------------

/// Raw element view of the shared reconstruction buffer, the form the run
/// kernels use so independent runs of one sub-pass can execute on different
/// threads. Within a sub-pass, every written element is a target point (odd
/// multiple of the stride along the active dimension) visited by exactly one
/// run, and every read element is an even multiple finalized by an earlier
/// pass — so concurrent kernels never touch the same element and a shared
/// `&mut [f64]` would over-claim. Bounds are still debug-asserted per access.
#[derive(Clone, Copy)]
struct FieldPtr {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: every access goes through `get`/`set` (or the AVX2 spans, whose
// disjointness is argued at the call sites); the engine only constructs one
// `FieldPtr` per sub-pass, over runs proven non-aliasing.
unsafe impl Send for FieldPtr {}
unsafe impl Sync for FieldPtr {}

impl FieldPtr {
    #[inline(always)]
    fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        // SAFETY: `i` is in bounds (asserted above in debug; the sweep
        // geometry guarantees it structurally).
        unsafe { *self.ptr.add(i) }
    }

    #[inline(always)]
    fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        // SAFETY: as in `get`; `i` is a target point owned by this run.
        unsafe { *self.ptr.add(i) = v }
    }
}

/// Replay a contiguous chunk of a sub-pass's runs on one worker thread, in
/// the serial traversal order, with each run's code cursor pinned to its
/// serial offset — the parallel schedule is a permutation of whole runs, and
/// within a run the scalar operation order is untouched.
fn run_chunk(mut ctx: RunCtx<'_>, chunk: &[(SweepRun, usize)]) {
    for &(run, off) in chunk {
        ctx.ci = off;
        ctx.do_run(run);
    }
}

/// Shared context of every run kernel in one dimension pass.
#[derive(Clone)]
struct RunCtx<'a> {
    field: FieldPtr,
    /// Quantization codes in traversal order; empty = all-zero residuals.
    codes: &'a [i64],
    /// Next code to consume.
    ci: usize,
    two_eb: f64,
    method: Interpolation,
    stride: usize,
    dim_stride: usize,
    dim_len: usize,
    /// Extent of the innermost dimension (the run direction of every
    /// AVX2-eligible span); bounds the vector write window to the run's row.
    inner_len: usize,
    avx2: bool,
}

impl RunCtx<'_> {
    /// Dequantized residual of traversal position `ci + t` (0 when the level
    /// streams no codes).
    #[inline(always)]
    fn resid(&self, t: usize) -> f64 {
        if self.codes.is_empty() {
            0.0
        } else {
            self.codes[self.ci + t] as f64 * self.two_eb
        }
    }

    /// Whether this run's points carry residuals (empty-code passes are
    /// prediction-only, matching the reference's `|_, pred| pred` closure —
    /// no `+ 0.0` is applied, so even `-0.0` predictions round-trip).
    #[inline(always)]
    fn with_resid(&self) -> bool {
        !self.codes.is_empty()
    }

    /// Evaluate points `[t0, t1)` of a run with the fully general (branchy)
    /// reference predictor — the head/tail points where domain-boundary
    /// fallbacks apply.
    fn scalar_span(&mut self, run: &SweepRun, t0: usize, t1: usize) {
        let with_resid = self.with_resid();
        for t in t0..t1 {
            let offset = run.base + t * run.step;
            let coord = run.coord + t * run.coord_step;
            let pred = predict_point_read(
                |i| self.field.get(i),
                offset,
                coord,
                self.dim_len,
                self.dim_stride,
                self.stride,
                self.method,
            );
            self.field.set(
                offset,
                if with_resid {
                    pred + self.resid(t)
                } else {
                    pred
                },
            );
        }
    }

    /// Process one innermost run of the active dimension pass.
    fn do_run(&mut self, run: SweepRun) {
        if run.count == 0 {
            return;
        }
        let s = self.stride;
        if run.coord_step != 0 {
            // The active dimension is the innermost: boundary cases vary
            // along the run. Head/tail fall back to the branchy reference;
            // the interior is uniform (full cubic, or full linear).
            debug_assert_eq!(self.dim_stride, 1);
            debug_assert_eq!(run.coord, s);
            debug_assert_eq!(run.coord_step, 2 * s);
            // Points with an existing +stride neighbour: coord s(2t+1)+s < len.
            let t_next = self
                .dim_len
                .div_ceil(2 * s)
                .saturating_sub(1)
                .min(run.count);
            match self.method {
                Interpolation::Linear => {
                    self.interior_linear(run.base, t_next, run.step, s);
                    self.scalar_span(&run, t_next, run.count);
                }
                Interpolation::Cubic => {
                    // Full-cubic interior: coord ≥ 3s (t ≥ 1) and coord+3s < len.
                    let t_hi = self
                        .dim_len
                        .div_ceil(2 * s)
                        .saturating_sub(2)
                        .min(run.count);
                    let t_lo = 1.min(t_hi);
                    self.scalar_span(&run, 0, t_lo);
                    self.interior_cubic(run.base + t_lo * run.step, t_lo, t_hi - t_lo, run.step, s);
                    self.scalar_span(&run, t_hi.max(t_lo), run.count);
                }
            }
        } else {
            // The active coordinate is constant along the run: one boundary
            // case for every point.
            let nd = s * self.dim_stride;
            let has_next = run.coord + s < self.dim_len;
            if !has_next {
                // Boundary: copy the previous neighbour (plus residual).
                self.interior_prev(run.base, run.count, run.step, nd);
            } else if self.method == Interpolation::Cubic
                && run.coord >= 3 * s
                && run.coord + 3 * s < self.dim_len
            {
                self.interior_cubic(run.base, 0, run.count, run.step, nd);
            } else {
                self.interior_linear(run.base, run.count, run.step, nd);
            }
        }
        self.ci += if self.with_resid() { run.count } else { 0 };
    }

    /// Exclusive bound for an AVX2 span's 8-element write window: the end of
    /// the run's own innermost row. AVX2-eligible spans start at inner
    /// coordinate 0, so the row occupies `[base, base + inner_len)`; capping
    /// the vector window there keeps a concurrent sub-pass's threads from
    /// re-writing (with unchanged values) the first element of the next row —
    /// harmless single-threaded, a data race under fan-out. The last ≤3
    /// points of odd-length rows fall to the scalar tail, which is
    /// bit-identical.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[inline(always)]
    fn row_cap(&self, base: usize) -> usize {
        base + self.inner_len
    }

    /// Uniform prev-copy span: `work[o] = work[o - nd] (+ resid)`.
    fn interior_prev(&mut self, base: usize, count: usize, step: usize, nd: usize) {
        let with_resid = self.with_resid();
        for t in 0..count {
            let o = base + t * step;
            let pred = self.field.get(o - nd);
            self.field.set(
                o,
                if with_resid {
                    pred + self.resid(t)
                } else {
                    pred
                },
            );
        }
    }

    /// Uniform linear span over `count` points starting at `base`: neighbours
    /// at `±nd`. `t0` is this span's first traversal position *within the
    /// run* — points before it were handled by the caller.
    fn interior_linear(&mut self, base: usize, count: usize, step: usize, nd: usize) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if self.avx2 && step == 2 && nd > 1 && count >= 4 {
            // SAFETY: AVX2 support was verified by the dispatcher; the span
            // is a uniform full-linear interior, and the write window is
            // capped to this run's row.
            let done = unsafe {
                avx2::linear_span(
                    self.field,
                    base,
                    count,
                    nd,
                    self.row_cap(base),
                    self.codes,
                    self.ci,
                    self.two_eb,
                )
            };
            self.linear_tail(base + done * step, done, count - done, step, nd);
            return;
        }
        self.linear_tail(base, 0, count, step, nd);
    }

    /// Portable (auto-vectorizable) linear body.
    fn linear_tail(&mut self, base: usize, t0: usize, count: usize, step: usize, nd: usize) {
        let with_resid = self.with_resid();
        for t in 0..count {
            let o = base + t * step;
            let pred = 0.5 * (self.field.get(o - nd) + self.field.get(o + nd));
            self.field.set(
                o,
                if with_resid {
                    pred + self.resid(t0 + t)
                } else {
                    pred
                },
            );
        }
    }

    /// Uniform full-cubic span over `count` points starting at `base`:
    /// neighbours at `±nd` and `±3·nd`; `t0` as in [`Self::interior_linear`].
    fn interior_cubic(&mut self, base: usize, t0: usize, count: usize, step: usize, nd: usize) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if self.avx2 && step == 2 && nd > 1 && count >= 4 {
            // SAFETY: AVX2 support was verified by the dispatcher; the span
            // is a uniform full-cubic interior, and the write window is
            // capped to this run's row.
            let done = unsafe {
                avx2::cubic_span(
                    self.field,
                    base,
                    count,
                    nd,
                    self.row_cap(base),
                    self.codes,
                    self.ci + t0,
                    self.two_eb,
                )
            };
            self.cubic_tail(base + done * step, t0 + done, count - done, step, nd);
            return;
        }
        self.cubic_tail(base, t0, count, step, nd);
    }

    /// Portable (auto-vectorizable) cubic body; operation order matches
    /// [`crate::interp::predict_point`] exactly.
    fn cubic_tail(&mut self, base: usize, t0: usize, count: usize, step: usize, nd: usize) {
        let with_resid = self.with_resid();
        for t in 0..count {
            let o = base + t * step;
            let prev3 = self.field.get(o - 3 * nd);
            let prev = self.field.get(o - nd);
            let next = self.field.get(o + nd);
            let next3 = self.field.get(o + 3 * nd);
            let pred = -0.0625 * prev3 + 0.5625 * prev + 0.5625 * next - 0.0625 * next3;
            self.field.set(
                o,
                if with_resid {
                    pred + self.resid(t0 + t)
                } else {
                    pred
                },
            );
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    //! AVX2 interiors for stride-2 runs (the finest level — 7/8 of a 3-D
    //! field — sweeps every pass with a 2-element step). Targets and each
    //! neighbour lattice are deinterleaved with `shuffle_pd`/`permute4x64_pd`
    //! from two contiguous loads, the stencil is evaluated with the exact
    //! scalar operation order (multiplies and adds/subtracts in sequence — no
    //! FMA, so results are bit-identical to the portable kernels), and the
    //! four results are re-interleaved with the untouched odd lane values for
    //! a pair of contiguous stores.
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Deinterleaved load: `[p[0], p[2], p[4], p[6]]`.
    ///
    /// # Safety
    ///
    /// `p .. p+8` must be in bounds.
    #[inline(always)]
    unsafe fn deint2(p: *const f64) -> __m256d {
        let v0 = _mm256_loadu_pd(p);
        let v1 = _mm256_loadu_pd(p.add(4));
        // [p0, p4, p2, p6] -> lanes (0, 2, 1, 3) -> [p0, p2, p4, p6].
        _mm256_permute4x64_pd(_mm256_shuffle_pd(v0, v1, 0b0000), 0b1101_1000)
    }

    /// Interleaved store of results `r` with the untouched odd-lane values
    /// `odd`: memory becomes `[r0, odd0, r1, odd1, r2, odd2, r3, odd3]`.
    /// The odd values are written back unchanged; they belong to a *later*
    /// sub-pass of the same level and are neither read nor written by any
    /// concurrent run of this one (the callers additionally cap the window to
    /// the run's own row, so the store never crosses into a neighbouring
    /// thread's row).
    ///
    /// # Safety
    ///
    /// `q .. q+8` must be in bounds.
    #[inline(always)]
    unsafe fn store_interleaved(q: *mut f64, r: __m256d, odd: __m256d) {
        let lo = _mm256_unpacklo_pd(r, odd); // [r0, o0, r2, o2]
        let hi = _mm256_unpackhi_pd(r, odd); // [r1, o1, r3, o3]
        _mm256_storeu_pd(q, _mm256_permute2f128_pd(lo, hi, 0x20));
        _mm256_storeu_pd(q.add(4), _mm256_permute2f128_pd(lo, hi, 0x31));
    }

    /// Dequantized residuals for traversal positions `ci .. ci+4` (lane 0
    /// first). `cvtsi2sd`-style scalar conversions keep the exact `as f64`
    /// rounding for any i64 magnitude.
    ///
    /// # Safety
    ///
    /// `codes[ci .. ci+4]` must be in bounds when `codes` is non-empty.
    #[inline(always)]
    unsafe fn resid4(codes: &[i64], ci: usize, two_eb: __m256d) -> __m256d {
        let c = codes.as_ptr().add(ci);
        let f = _mm256_set_pd(
            *c.add(3) as f64,
            *c.add(2) as f64,
            *c.add(1) as f64,
            *c as f64,
        );
        _mm256_mul_pd(f, two_eb)
    }

    /// Linear interior: `work[base + 2t] = 0.5 · (work[o-nd] + work[o+nd])
    /// (+ resid)` for `t` in `0..count`, four points per iteration. Returns
    /// how many points were completed (a scalar tail may remain near the end
    /// of `work`, where the 8-element loads would run out of bounds, or near
    /// the end of an odd-length row, where the 8-wide store would spill one
    /// element into the next row — a race under concurrent runs).
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available, that every point's neighbours
    /// are in bounds (uniform full-linear span), and that `cap` is the
    /// exclusive end of the run's own row.
    #[allow(clippy::too_many_arguments)] // span geometry travels together
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn linear_span(
        field: super::FieldPtr,
        base: usize,
        count: usize,
        nd: usize,
        cap: usize,
        codes: &[i64],
        ci: usize,
        two_eb: f64,
    ) -> usize {
        let len = field.len;
        let half = _mm256_set1_pd(0.5);
        let eb = _mm256_set1_pd(two_eb);
        let with_resid = !codes.is_empty();
        let ptr = field.ptr;
        let mut t = 0usize;
        while t + 4 <= count {
            let o = base + 2 * t;
            // Furthest element any 8-wide load touches: o + nd + 7 (next
            // lattice) or o + 8 (odd lane reload); the store window must
            // also stay within this run's row.
            if o + nd + 8 > len || o + 9 > len || o + 8 > cap {
                break;
            }
            let q = ptr.add(o);
            let prev = deint2(q.sub(nd));
            let next = deint2(q.add(nd));
            let odd = deint2(q.add(1));
            let mut r = _mm256_mul_pd(half, _mm256_add_pd(prev, next));
            if with_resid {
                r = _mm256_add_pd(r, resid4(codes, ci + t, eb));
            }
            store_interleaved(q, r, odd);
            t += 4;
        }
        t
    }

    /// Cubic interior: the four-point stencil with scalar operation order,
    /// four points per iteration. Returns how many points were completed.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available, that every point's neighbours
    /// (`±nd`, `±3nd`) are in bounds (uniform full-cubic span), and that
    /// `cap` is the exclusive end of the run's own row.
    #[allow(clippy::too_many_arguments)] // span geometry travels together
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cubic_span(
        field: super::FieldPtr,
        base: usize,
        count: usize,
        nd: usize,
        cap: usize,
        codes: &[i64],
        ci: usize,
        two_eb: f64,
    ) -> usize {
        let len = field.len;
        let c3 = _mm256_set1_pd(-0.0625);
        let c1 = _mm256_set1_pd(0.5625);
        let c3p = _mm256_set1_pd(0.0625);
        let eb = _mm256_set1_pd(two_eb);
        let with_resid = !codes.is_empty();
        let ptr = field.ptr;
        let mut t = 0usize;
        while t + 4 <= count {
            let o = base + 2 * t;
            if o + 3 * nd + 8 > len || o + 9 > len || o + 8 > cap {
                break;
            }
            let q = ptr.add(o);
            let prev3 = deint2(q.sub(3 * nd));
            let prev = deint2(q.sub(nd));
            let next = deint2(q.add(nd));
            let next3 = deint2(q.add(3 * nd));
            let odd = deint2(q.add(1));
            // -0.0625·prev3 + 0.5625·prev + 0.5625·next - 0.0625·next3, in
            // exactly the scalar association order.
            let mut r = _mm256_mul_pd(c3, prev3);
            r = _mm256_add_pd(r, _mm256_mul_pd(c1, prev));
            r = _mm256_add_pd(r, _mm256_mul_pd(c1, next));
            r = _mm256_sub_pd(r, _mm256_mul_pd(c3p, next3));
            if with_resid {
                r = _mm256_add_pd(r, resid4(codes, ci + t, eb));
            }
            store_interleaved(q, r, odd);
            t += 4;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::level_count;
    use crate::quantize::dequantize;

    /// Serializes tests that flip the process-wide dispatch toggles: the
    /// default harness runs tests on parallel threads, and assertions that
    /// depend on *which* implementation is active (rather than on the
    /// bit-identical outputs) would race otherwise.
    static TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn toggle_guard() -> std::sync::MutexGuard<'static, ()> {
        TOGGLE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
    use ipc_codecs::negabinary::to_negabinary;
    use ipc_tensor::ArrayD;

    /// PR 4's batch reconstruction, verbatim: dequantize every level into a
    /// residual buffer, then closure-driven passes coarsest to finest.
    fn batch_reference(
        shape: &Shape,
        method: Interpolation,
        eb: f64,
        anchors: &[i64],
        level_codes: &[Vec<i64>],
    ) -> Vec<f64> {
        let levels = num_levels(shape);
        assert_eq!(level_codes.len(), levels as usize);
        let residuals: Vec<Vec<f64>> = level_codes
            .iter()
            .map(|codes| codes.iter().map(|&c| dequantize(c, eb)).collect())
            .collect();
        let mut work = vec![0.0f64; shape.len()];
        let mut it = anchors.iter();
        process_anchors(shape, &mut work, |_, pred| {
            pred + it.next().map_or(0.0, |&c| dequantize(c, eb))
        });
        for level in (1..=levels).rev() {
            let idx = (levels - level) as usize;
            if residuals[idx].is_empty() {
                process_level(shape, level, method, &mut work, |_, pred| pred);
            } else {
                let mut it = residuals[idx].iter();
                process_level(shape, level, method, &mut work, |_, pred| {
                    pred + it.next().copied().unwrap_or(0.0)
                });
            }
        }
        work
    }

    fn sample_codes(n: usize, spread: i64, seed: u64) -> Vec<i64> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(seed);
                let m = (h >> 40) as i64 % spread.max(1);
                if h & 1 == 0 {
                    m
                } else {
                    -m
                }
            })
            .collect()
    }

    /// Build per-level code vectors matching a shape's level partition.
    fn codes_for_shape(shape: &Shape, seed: u64) -> (Vec<i64>, Vec<Vec<i64>>) {
        let levels = num_levels(shape);
        let anchors = sample_codes(crate::interp::anchor_count(shape), 1 << 12, seed);
        let per_level: Vec<Vec<i64>> = (0..levels)
            .map(|idx| {
                let level = levels - idx;
                sample_codes(level_count(shape, level), 1 << 10, seed ^ (idx as u64 + 1))
            })
            .collect();
        (anchors, per_level)
    }

    fn run_engine(
        shape: &Shape,
        method: Interpolation,
        eb: f64,
        anchors: &[i64],
        level_codes: &[Vec<i64>],
        which: CascadeImpl,
    ) -> Vec<f64> {
        force_cascade_impl(which);
        let mut engine = CascadeEngine::new(shape.clone(), method, eb);
        engine.seed_anchors(anchors);
        for (idx, codes) in level_codes.iter().enumerate() {
            engine.level_ready(idx, codes.clone());
        }
        force_cascade_impl(CascadeImpl::Auto);
        assert!(engine.state().is_complete());
        engine.into_field()
    }

    #[test]
    fn all_impls_bit_identical_to_batch_reference() {
        let _guard = toggle_guard();
        for dims in [
            vec![1usize],
            vec![2],
            vec![5],
            vec![33],
            vec![9, 12],
            vec![17, 9, 11],
            vec![24, 18, 20],
            vec![3, 2, 5, 4],
            vec![1, 50, 3],
        ] {
            let shape = Shape::new(&dims);
            let (anchors, per_level) = codes_for_shape(&shape, 7);
            for method in [Interpolation::Linear, Interpolation::Cubic] {
                let eb = 1e-4;
                let want = batch_reference(&shape, method, eb, &anchors, &per_level);
                for which in [
                    CascadeImpl::Reference,
                    CascadeImpl::Portable,
                    CascadeImpl::Auto,
                ] {
                    let got = run_engine(&shape, method, eb, &anchors, &per_level, which);
                    assert_eq!(
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "dims {dims:?} method {method:?} impl {which:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_code_levels_match_prediction_only_reference() {
        let _guard = toggle_guard();
        // Zero-residual levels (coarse retrievals, refinement passes) take the
        // prediction-only path; it must agree with the closure formulation on
        // every kernel.
        let shape = Shape::d3(19, 14, 10);
        let (anchors, mut per_level) = codes_for_shape(&shape, 3);
        per_level[1] = Vec::new();
        let last = per_level.len() - 1;
        per_level[last] = Vec::new();
        for method in [Interpolation::Linear, Interpolation::Cubic] {
            let want = batch_reference(&shape, method, 1e-3, &anchors, &per_level);
            for which in [CascadeImpl::Portable, CascadeImpl::Auto] {
                let got = run_engine(&shape, method, 1e-3, &anchors, &per_level, which);
                assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "method {method:?} impl {which:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_order_readiness_applies_in_cascade_order() {
        let _guard = toggle_guard();
        let shape = Shape::d2(17, 13);
        let (anchors, per_level) = codes_for_shape(&shape, 11);
        let want = run_engine(
            &shape,
            Interpolation::Cubic,
            1e-4,
            &anchors,
            &per_level,
            CascadeImpl::Auto,
        );

        let mut engine = CascadeEngine::new(shape.clone(), Interpolation::Cubic, 1e-4);
        engine.seed_anchors(&anchors);
        // Hand levels over finest-first: everything parks until level 0 lands.
        let n = per_level.len();
        for idx in (1..n).rev() {
            let applied = engine.level_ready(idx, per_level[idx].clone());
            assert!(applied.is_empty(), "level {idx} must park");
            assert_eq!(engine.state().levels()[idx], LevelState::Ready);
        }
        let applied = engine.level_ready(0, per_level[0].clone());
        assert_eq!(applied.len(), n, "level 0 must unlock the whole cascade");
        for (i, p) in applied.iter().enumerate() {
            assert_eq!(p.level_idx, i);
            assert_eq!(p.interp_level, (n - i) as u32);
            assert_eq!(p.levels_applied, i + 1);
            assert_eq!(p.levels_total, n);
            assert_eq!(p.points, level_count(&shape, p.interp_level));
        }
        assert!(engine.state().is_complete());
        assert_eq!(engine.into_field(), want);
    }

    #[test]
    fn prefix_streaming_matches_full_handover_and_applies_subpasses_early() {
        let _guard = toggle_guard();
        let shape = Shape::d3(20, 15, 11);
        let (anchors, per_level) = codes_for_shape(&shape, 17);
        for which in [
            CascadeImpl::Portable,
            CascadeImpl::Auto,
            CascadeImpl::Reference,
        ] {
            let want = run_engine(
                &shape,
                Interpolation::Cubic,
                1e-4,
                &anchors,
                &per_level,
                which,
            );

            force_cascade_impl(which);
            let mut engine = CascadeEngine::new(shape.clone(), Interpolation::Cubic, 1e-4);
            force_cascade_impl(CascadeImpl::Auto);
            engine.seed_anchors(&anchors);
            let mut done = Vec::new();
            for (idx, codes) in per_level.iter().enumerate() {
                // Drip the codes in uneven increments, then complete.
                let mut fed = 0usize;
                let mut step = 7usize;
                let mut early_subs = 0usize;
                while fed < codes.len() {
                    let end = (fed + step).min(codes.len());
                    done.extend(engine.level_codes_arrived(idx, &codes[fed..end]));
                    fed = end;
                    step = step * 3 + 1;
                    if fed < codes.len() {
                        // Sub-passes applied strictly before all codes arrive.
                        early_subs = early_subs.max(engine.subpasses_applied(idx).0);
                    }
                }
                if which != CascadeImpl::Reference && idx + 1 == per_level.len() {
                    // The finest level is large enough that its early
                    // sub-passes must run mid-stream (streamed
                    // reconstruction, not just buffering).
                    assert!(
                        early_subs > 0,
                        "level {idx} ({which:?}): no sub-pass ran early"
                    );
                }
                done.extend(engine.level_complete(idx));
            }
            assert!(engine.state().is_complete());
            assert_eq!(done.len(), per_level.len());
            let got = engine.into_field();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{which:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "more codes than")]
    fn overfeeding_codes_panics() {
        let shape = Shape::d1(9);
        let mut engine = CascadeEngine::new(shape.clone(), Interpolation::Linear, 1e-3);
        engine.seed_zero();
        let n = level_count(&shape, num_levels(&shape));
        engine.level_codes_arrived(0, &vec![1i64; n + 1]);
    }

    #[test]
    #[should_panic(expected = "handed to the cascade twice")]
    fn double_handover_panics() {
        let shape = Shape::d1(9);
        let mut engine = CascadeEngine::new(shape, Interpolation::Linear, 1e-3);
        engine.seed_zero();
        engine.level_ready(0, Vec::new());
        engine.level_ready(0, Vec::new());
    }

    #[test]
    fn residual_and_delta_codes_match_scalar_definitions() {
        let codes = sample_codes(513, 1 << 20, 5);
        let acc: Vec<u64> = codes.iter().map(|&c| to_negabinary(c)).collect();
        assert_eq!(residual_codes(&acc), codes);
        let before: Vec<i64> = codes.iter().map(|&c| c / 3).collect();
        let deltas = delta_codes(&acc, &before);
        for ((d, &c), &b) in deltas.iter().zip(&codes).zip(&before) {
            assert_eq!(*d, c - b);
        }
    }

    #[test]
    fn toggles_roundtrip() {
        let _guard = toggle_guard();
        let stream = cascade_streaming();
        set_cascade_streaming(false);
        assert!(!cascade_streaming());
        set_cascade_streaming(true);
        assert!(cascade_streaming());
        set_cascade_streaming(stream);

        force_cascade_impl(CascadeImpl::Portable);
        assert_eq!(cascade_impl(), CascadeImpl::Portable);
        force_cascade_impl(CascadeImpl::Auto);
        assert_eq!(cascade_impl(), CascadeImpl::Auto);

        let par = cascade_parallel();
        set_cascade_parallel(false);
        assert!(!cascade_parallel());
        set_cascade_parallel(true);
        assert!(cascade_parallel());
        set_cascade_parallel(par);
    }

    #[test]
    fn finest_level_last_subpass_is_slab_split() {
        let shape = Shape::d3(24, 18, 20);
        let engine = CascadeEngine::new(shape.clone(), Interpolation::Cubic, 1e-4);
        let finest = engine.geoms.last().unwrap();
        assert!(
            finest.len() > shape.ndim(),
            "finest level's last sub-pass must be slabbed ({} sub-passes)",
            finest.len()
        );
        // The slabs' code ranges partition the level exactly, in order.
        let mut start = 0usize;
        for sub in finest {
            assert_eq!(sub.start, start);
            assert!(sub.count > 0);
            start += sub.count;
        }
        assert_eq!(start, level_count(&shape, 1));
        // Coarser levels keep one sub-pass per swept dimension.
        assert!(engine.geoms[0].len() <= shape.ndim());
        // 1-D geometry has no outer dimension to slab.
        let e1 = CascadeEngine::new(Shape::d1(33), Interpolation::Linear, 1e-3);
        assert_eq!(e1.geoms.last().unwrap().len(), 1);
    }

    #[test]
    fn parallel_schedule_bit_identical_across_thread_counts() {
        let _guard = toggle_guard();
        for dims in [
            vec![1usize],
            vec![2],
            vec![33],
            vec![9, 12],
            vec![24, 18, 20],
            vec![1, 50, 3],
            vec![3, 2, 5, 4],
        ] {
            let shape = Shape::new(&dims);
            let (anchors, per_level) = codes_for_shape(&shape, 23);
            for method in [Interpolation::Linear, Interpolation::Cubic] {
                force_cascade_threads(None);
                let want = run_engine(
                    &shape,
                    method,
                    1e-4,
                    &anchors,
                    &per_level,
                    CascadeImpl::Auto,
                );
                for threads in [2usize, 3, 8] {
                    force_cascade_threads(Some(threads));
                    for which in [
                        CascadeImpl::Portable,
                        CascadeImpl::Auto,
                        CascadeImpl::Reference,
                    ] {
                        let got = run_engine(&shape, method, 1e-4, &anchors, &per_level, which);
                        assert_eq!(
                            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            "dims {dims:?} method {method:?} impl {which:?} threads {threads}"
                        );
                    }
                    force_cascade_threads(None);
                }
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(24))]

        /// Random geometry, method, error bound, and worker-thread count
        /// (1 = the serial schedule): every implementation's cascade is
        /// bit-identical to the batch closure reference.
        #[test]
        fn prop_kernels_bit_identical(
            d0 in 1usize..40,
            d1 in 1usize..16,
            d2 in 1usize..10,
            seed in proptest::prelude::any::<u64>(),
            cubic in proptest::prelude::any::<bool>(),
            eb_exp in 1i32..8,
            threads in 1usize..6,
        ) {
            let _guard = toggle_guard();
            let shape = Shape::new(&[d0, d1, d2]);
            let method = if cubic { Interpolation::Cubic } else { Interpolation::Linear };
            let eb = 10f64.powi(-eb_exp);
            let (anchors, per_level) = codes_for_shape(&shape, seed);
            let want = batch_reference(&shape, method, eb, &anchors, &per_level);
            force_cascade_threads((threads > 1).then_some(threads));
            for which in [CascadeImpl::Portable, CascadeImpl::Auto] {
                let got = run_engine(&shape, method, eb, &anchors, &per_level, which);
                proptest::prop_assert_eq!(
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "impl {:?} threads {}", which, threads
                );
            }
            force_cascade_threads(None);
        }
    }

    /// End-to-end sanity: the engine reproduces a real compression's
    /// reconstruction when fed the compressor's own codes.
    #[test]
    fn engine_reconstructs_compressed_field_within_bound() {
        let shape = Shape::d3(20, 17, 9);
        let data = ArrayD::from_fn(shape.clone(), |c| {
            (c[0] as f64 * 0.3).sin() + (c[1] as f64 * 0.2).cos() * 2.0 + c[2] as f64 * 0.05
        });
        let eb = 1e-6;
        let c = crate::compressor::compress(&data, eb, &crate::config::Config::default()).unwrap();
        let out = c.decompress().unwrap();
        let err = data
            .as_slice()
            .iter()
            .zip(out.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(err <= eb * (1.0 + 1e-9), "err {err}");
    }
}
