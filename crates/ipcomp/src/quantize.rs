//! Linear-scale error-bounded quantization.
//!
//! The prediction residual `y = x − P(x̂)` is mapped to an integer code
//! `q = round(y / (2·eb))`; dequantizing back to `q·2·eb` guarantees the point-wise
//! error `|y − ŷ| ≤ eb` that the whole error analysis of the paper (Sec. 4.2.2)
//! rests on.

/// Quantize a residual with the given error bound. `eb` must be positive.
#[inline]
pub fn quantize(residual: f64, eb: f64) -> i64 {
    debug_assert!(eb > 0.0, "error bound must be positive");
    (residual / (2.0 * eb)).round() as i64
}

/// Dequantize an integer code back to a residual value.
#[inline]
pub fn dequantize(code: i64, eb: f64) -> f64 {
    code as f64 * 2.0 * eb
}

/// Quantize then immediately dequantize — the value the decompressor will see.
#[inline]
pub fn quantize_roundtrip(residual: f64, eb: f64) -> (i64, f64) {
    let q = quantize(residual, eb);
    (q, dequantize(q, eb))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_error_within_bound() {
        let eb = 1e-3;
        for i in -10_000..10_000 {
            let v = i as f64 * 7.3e-4;
            let (_, back) = quantize_roundtrip(v, eb);
            assert!((v - back).abs() <= eb + 1e-15, "v={v}");
        }
    }

    #[test]
    fn zero_residual_is_code_zero() {
        assert_eq!(quantize(0.0, 1e-6), 0);
        assert_eq!(dequantize(0, 1e-6), 0.0);
    }

    #[test]
    fn codes_are_symmetric_in_sign() {
        let eb = 0.5;
        for i in 1..100 {
            let v = i as f64 * 0.37;
            assert_eq!(quantize(v, eb), -quantize(-v, eb));
        }
    }

    #[test]
    fn small_bound_produces_large_codes() {
        let q = quantize(1.0, 1e-9);
        assert_eq!(q, 500_000_000);
        assert!((dequantize(q, 1e-9) - 1.0).abs() <= 1e-9);
    }
}
