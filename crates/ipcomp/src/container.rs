//! Compressed container format.
//!
//! The container is what lands on disk (or in an object store): a small header, the
//! always-loaded anchor block, and — per interpolation level — a metadata record plus
//! one independently addressable block per bitplane (the numbered blocks of the
//! paper's Fig. 2). Retrieval reads the header + anchors + metadata, asks the
//! optimizer which plane blocks to fetch, and loads only those.
//!
//! ## Versions
//!
//! * **v1** (PR 1) — each plane is a single monolithic LZR block, written as
//!   `varint length + bytes` inline with the level metadata. Still read;
//!   decodes byte-identically.
//! * **v2** (current) — planes are split into fixed-size entropy chunks
//!   ([`crate::bitplane::CHUNK_BYTES`] packed bytes each) and the level
//!   metadata carries a **chunk index**: every chunk's compressed size, ahead
//!   of any payload byte. A reader can therefore compute the absolute offset
//!   of any `(level, plane, chunk)` triple from metadata alone and fetch
//!   chunks independently — which is what lets decode fan out evenly over
//!   rayon and stream planes region by region. Payload bytes follow the
//!   metadata of each level, plane-major.
//!
//! Deserialization is hardened: every count and length field is validated
//! against the remaining buffer and the header geometry before any
//! proportional allocation, so corrupt or adversarial containers fail with
//! [`IpcompError`] instead of panicking or ballooning memory.

use ipc_codecs::byteio::{read_bytes, read_f64, read_u32, write_bytes, write_f64, write_u32};
use ipc_codecs::varint::{read_varint, varint_len, write_varint};
use ipc_codecs::{lzr_compress, zigzag_decode, zigzag_encode};

use ipc_tensor::Shape;

use crate::bitplane::{ChunkGrid, EncodedLevel, EncodedPlane, RegionScheme};
use crate::config::Interpolation;
use crate::error::{IpcompError, Result};
use crate::precinct::PrecinctGrid;
use crate::source::{read_ranges_exact, ByteRange, ChunkSource};

/// Magic bytes identifying an IPComp container.
pub const MAGIC: &[u8; 4] = b"IPCP";
/// Container format version written for the byte-granular chunk layout
/// (no precinct grid — the default).
pub const VERSION: u32 = 2;
/// Container format version written when the header carries a precinct grid:
/// levels are stored precinct-major with one entropy chunk per
/// `(plane, precinct)` pair, enabling spatial ROI retrieval.
pub const VERSION_ROI: u32 = 3;
/// Oldest container format version still readable.
pub const MIN_VERSION: u32 = 1;

/// Upper bound on the number of scalar elements a header may declare
/// (2^48 ≈ 280 T elements); anything larger is treated as corrupt before any
/// allocation is attempted.
const MAX_ELEMENTS: u64 = 1 << 48;

/// Upper bound on the number of precincts a version-3 header may declare;
/// caps the per-level span tables a parser allocates before any payload
/// validation can bound them.
pub(crate) const MAX_PRECINCTS: u64 = 1 << 22;

/// Container header: everything needed to plan a retrieval without touching payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Grid dimensions of the original field.
    pub dims: Vec<usize>,
    /// Absolute error bound the data was quantized with.
    pub error_bound: f64,
    /// Interpolation formula used by the predictor.
    pub interpolation: Interpolation,
    /// Number of interpolation levels (level 1 = finest).
    pub num_levels: u32,
    /// Levels `1..=progressive_levels` are bitplane-progressive; coarser levels are
    /// always loaded in full.
    pub progressive_levels: u32,
    /// Prefix bits used by the predictive bitplane coder.
    pub prefix_bits: u8,
    /// Whether predictive coding was applied.
    pub predictive_coding: bool,
    /// Value range (max − min) of the original data, stored for relative-bound
    /// retrievals and PSNR reporting.
    pub value_range: f64,
    /// Spatial precinct extents (one per dimension, in domain coordinates).
    /// `Some` marks the version-3 precinct-major layout; `None` the
    /// byte-granular version-1/2 layouts.
    pub precincts: Option<Vec<usize>>,
}

impl Header {
    /// Reconstruct the [`Shape`] of the original field.
    pub fn shape(&self) -> Shape {
        Shape::new(&self.dims)
    }

    /// Number of scalar elements in the original field.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// The precinct grid of a version-3 container, `None` otherwise.
    pub fn precinct_grid(&self) -> Option<PrecinctGrid> {
        self.precincts
            .as_ref()
            .map(|e| PrecinctGrid::new(&self.dims, e).expect("validated extents"))
    }

    /// Container format version [`Compressed::to_bytes`] writes for this header.
    pub fn version(&self) -> u32 {
        if self.precincts.is_some() {
            VERSION_ROI
        } else {
            VERSION
        }
    }
}

/// A complete IPComp compressed artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Compressed {
    /// Container header.
    pub header: Header,
    /// LZR-compressed zigzag-varint anchor codes (always loaded).
    pub anchors: Vec<u8>,
    /// Per-level bitplane blocks, ordered from the **coarsest** level
    /// (`num_levels`) down to the finest (level 1).
    pub levels: Vec<EncodedLevel>,
}

impl Compressed {
    /// The interpolation level number corresponding to `levels[idx]`.
    pub fn level_number(&self, idx: usize) -> u32 {
        self.header.num_levels - idx as u32
    }

    /// Whether `levels[idx]` participates in progressive (partial-plane) loading.
    pub fn is_progressive(&self, idx: usize) -> bool {
        self.level_number(idx) <= self.header.progressive_levels
    }

    /// Serialized size of one level's metadata record (sizes, loss table, and
    /// the chunk index — everything except payload bytes).
    pub(crate) fn level_metadata_bytes(level: &EncodedLevel) -> usize {
        varint_len(level.n_values as u64)
            + 1
            + level
                .trunc_loss
                .iter()
                .map(|&v| varint_len(v))
                .sum::<usize>()
            + varint_len(level.chunk_bytes as u64)
            + level
                .planes
                .iter()
                .map(|p| {
                    varint_len(p.chunks.len() as u64)
                        + p.chunks
                            .iter()
                            .map(|c| varint_len(c.len() as u64))
                            .sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Bytes that every retrieval must load regardless of fidelity: header, anchors,
    /// and per-level metadata (chunk index + truncation-loss tables). Computed to
    /// mirror [`Compressed::to_bytes`] exactly, so
    /// `base_bytes() + payload_bytes() == to_bytes().len()`.
    pub fn base_bytes(&self) -> usize {
        let header = 4 // magic
            + 4 // version
            + varint_len(self.header.dims.len() as u64)
            + self
                .header
                .dims
                .iter()
                .map(|&d| varint_len(d as u64))
                .sum::<usize>()
            + 8 // error bound
            + 1 // interpolation id
            + 4 // num_levels
            + 4 // progressive_levels
            + 1 // prefix bits
            + 1 // predictive flag
            + 8 // value range
            + self
                .header
                .precincts
                .as_ref()
                .map(|e| e.iter().map(|&x| varint_len(x as u64)).sum::<usize>())
                .unwrap_or(0); // v3 precinct extents
        let anchors = varint_len(self.anchors.len() as u64) + self.anchors.len();
        let levels_header = varint_len(self.levels.len() as u64);
        let metadata: usize = self.levels.iter().map(Self::level_metadata_bytes).sum();
        header + anchors + levels_header + metadata
    }

    /// Total compressed payload bytes (all bitplane blocks of all levels).
    pub fn payload_bytes(&self) -> usize {
        self.levels.iter().map(EncodedLevel::payload_bytes).sum()
    }

    /// Total size of the compressed artifact; equals `to_bytes().len()`.
    pub fn total_bytes(&self) -> usize {
        self.base_bytes() + self.payload_bytes()
    }

    /// Serialize the container to a byte buffer (current format version).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes() + 64);
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, self.header.version());
        write_varint(&mut out, self.header.dims.len() as u64);
        for &d in &self.header.dims {
            write_varint(&mut out, d as u64);
        }
        write_f64(&mut out, self.header.error_bound);
        out.push(self.header.interpolation.id());
        write_u32(&mut out, self.header.num_levels);
        write_u32(&mut out, self.header.progressive_levels);
        out.push(self.header.prefix_bits);
        out.push(self.header.predictive_coding as u8);
        write_f64(&mut out, self.header.value_range);
        if let Some(extents) = &self.header.precincts {
            // v3 only: one extent per dimension, right after the fixed header.
            for &e in extents {
                write_varint(&mut out, e as u64);
            }
        }

        write_bytes(&mut out, &self.anchors);

        write_varint(&mut out, self.levels.len() as u64);
        for level in &self.levels {
            write_varint(&mut out, level.n_values as u64);
            out.push(level.num_planes);
            for &loss in &level.trunc_loss {
                write_varint(&mut out, loss);
            }
            // Chunk index first (all sizes, no payload), then the payload
            // bytes plane-major: a reader can address any chunk from the
            // metadata alone.
            write_varint(&mut out, level.chunk_bytes as u64);
            for plane in &level.planes {
                write_varint(&mut out, plane.chunks.len() as u64);
                for chunk in &plane.chunks {
                    write_varint(&mut out, chunk.len() as u64);
                }
            }
            for plane in &level.planes {
                for chunk in &plane.chunks {
                    out.extend_from_slice(chunk);
                }
            }
        }
        out
    }

    /// Serialize in the legacy **version-1** layout (monolithic planes inline
    /// with the metadata, no chunk index).
    ///
    /// Only containers whose planes hold a single chunk each (encoded with
    /// `chunk_bytes: 0`) can be written this way. Kept for tests and benches
    /// that need real legacy containers to pin the v1 read path — the normal
    /// writer always emits the current version.
    pub fn to_bytes_v1(&self) -> Result<Vec<u8>> {
        if self
            .levels
            .iter()
            .any(|l| l.planes.iter().any(|p| p.chunks.len() != 1))
        {
            return Err(IpcompError::InvalidInput(
                "v1 layout requires monolithic (single-chunk) planes".into(),
            ));
        }
        if self.header.precincts.is_some() {
            return Err(IpcompError::InvalidInput(
                "v1 layout cannot carry a precinct grid".into(),
            ));
        }
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, 1);
        write_varint(&mut out, self.header.dims.len() as u64);
        for &d in &self.header.dims {
            write_varint(&mut out, d as u64);
        }
        write_f64(&mut out, self.header.error_bound);
        out.push(self.header.interpolation.id());
        write_u32(&mut out, self.header.num_levels);
        write_u32(&mut out, self.header.progressive_levels);
        out.push(self.header.prefix_bits);
        out.push(self.header.predictive_coding as u8);
        write_f64(&mut out, self.header.value_range);
        write_bytes(&mut out, &self.anchors);
        write_varint(&mut out, self.levels.len() as u64);
        for level in &self.levels {
            write_varint(&mut out, level.n_values as u64);
            out.push(level.num_planes);
            for &loss in &level.trunc_loss {
                write_varint(&mut out, loss);
            }
            for plane in &level.planes {
                write_bytes(&mut out, &plane.chunks[0]);
            }
        }
        Ok(out)
    }

    /// Deserialize a container produced by [`Compressed::to_bytes`] — either
    /// the current version-2 chunked layout or the original version-1
    /// monolithic layout.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let magic = buf
            .get(0..4)
            .ok_or(IpcompError::CorruptContainer("missing magic"))?;
        if magic != MAGIC {
            return Err(IpcompError::CorruptContainer("bad magic"));
        }
        pos += 4;
        let version = read_u32(buf, &mut pos)?;
        if !(MIN_VERSION..=VERSION_ROI).contains(&version) {
            return Err(IpcompError::CorruptContainer("unsupported version"));
        }
        let ndim = read_varint(buf, &mut pos)? as usize;
        if ndim == 0 || ndim > ipc_tensor::MAX_DIMS {
            return Err(IpcompError::CorruptContainer("invalid dimension count"));
        }
        let mut dims = Vec::with_capacity(ndim);
        let mut elements: u64 = 1;
        for _ in 0..ndim {
            let d = read_varint(buf, &mut pos)?;
            elements = elements.saturating_mul(d.max(1));
            dims.push(d as usize);
        }
        if dims.contains(&0) || elements > MAX_ELEMENTS {
            return Err(IpcompError::CorruptContainer("implausible dimensions"));
        }
        let error_bound = read_f64(buf, &mut pos)?;
        let interp_id = *buf.get(pos).ok_or(IpcompError::CorruptContainer("eof"))?;
        pos += 1;
        let interpolation = Interpolation::from_id(interp_id)
            .ok_or(IpcompError::CorruptContainer("unknown interpolation id"))?;
        let num_levels = read_u32(buf, &mut pos)?;
        let progressive_levels = read_u32(buf, &mut pos)?;
        let prefix_bits = *buf.get(pos).ok_or(IpcompError::CorruptContainer("eof"))?;
        pos += 1;
        let predictive_coding = *buf.get(pos).ok_or(IpcompError::CorruptContainer("eof"))? != 0;
        pos += 1;
        let value_range = read_f64(buf, &mut pos)?;

        let (precincts, grid) = if version == VERSION_ROI {
            let mut extents = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                extents.push(read_varint(buf, &mut pos)? as usize);
            }
            let grid = validate_precincts(&dims, &extents)?;
            (Some(extents), Some(grid))
        } else {
            (None, None)
        };

        let anchors = read_bytes(buf, &mut pos)?.to_vec();

        let n_levels = read_varint(buf, &mut pos)? as usize;
        // Each level record costs at least 3 bytes, so a count outrunning the
        // buffer is corrupt; checking first bounds the preallocation.
        if n_levels > buf.len() {
            return Err(IpcompError::CorruptContainer("implausible level count"));
        }
        // One encoded level per interpolation level, always: the retrieval
        // paths compute `num_levels - idx`, which must never underflow.
        if n_levels != num_levels as usize {
            return Err(IpcompError::CorruptContainer(
                "level list does not match declared level count",
            ));
        }
        let shape = Shape::new(&dims);
        let mut levels = Vec::with_capacity(n_levels);
        for idx in 0..n_levels {
            let n_values = read_varint(buf, &mut pos)?;
            if n_values > elements {
                return Err(IpcompError::CorruptContainer(
                    "level larger than the whole field",
                ));
            }
            let n_values = n_values as usize;
            let num_planes = *buf.get(pos).ok_or(IpcompError::CorruptContainer("eof"))?;
            pos += 1;
            if num_planes > 63 {
                return Err(IpcompError::CorruptContainer("plane count out of range"));
            }
            let mut trunc_loss = Vec::with_capacity(num_planes as usize + 1);
            for _ in 0..=num_planes {
                trunc_loss.push(read_varint(buf, &mut pos)?);
            }
            let precinct_chunks = grid.as_ref().map(PrecinctGrid::num_precincts);
            let (chunk_bytes, planes) = if version == 1 {
                // v1: planes are single `varint length + bytes` blocks.
                let mut planes = Vec::with_capacity(num_planes as usize);
                for _ in 0..num_planes {
                    planes.push(EncodedPlane::monolithic(
                        read_bytes(buf, &mut pos)?.to_vec(),
                    ));
                }
                (0usize, planes)
            } else {
                Self::read_v2_level_blocks(buf, &mut pos, n_values, num_planes, precinct_chunks)?
            };
            let precinct_spans = match &grid {
                Some(g) => Some(level_spans_checked(
                    g,
                    &shape,
                    num_levels - idx as u32,
                    n_values,
                )?),
                None => None,
            };
            levels.push(EncodedLevel {
                n_values,
                num_planes,
                planes,
                trunc_loss,
                chunk_bytes,
                precinct_spans,
            });
        }

        Ok(Self {
            header: Header {
                dims,
                error_bound,
                interpolation,
                num_levels,
                progressive_levels,
                prefix_bits,
                predictive_coding,
                value_range,
                precincts,
            },
            anchors,
            levels,
        })
    }

    /// Parse one v2/v3 level's chunk index and payload into planes.
    fn read_v2_level_blocks(
        buf: &[u8],
        pos: &mut usize,
        n_values: usize,
        num_planes: u8,
        precinct_chunks: Option<usize>,
    ) -> Result<(usize, Vec<EncodedPlane>)> {
        let (chunk_bytes, sizes, _) = {
            let mut cur = SliceIndexCursor { buf, pos };
            parse_v2_chunk_index(&mut cur, n_values, num_planes, precinct_chunks)?
        };
        let mut planes = Vec::with_capacity(num_planes as usize);
        for plane_sizes in sizes {
            let mut chunks = Vec::with_capacity(plane_sizes.len());
            for len in plane_sizes {
                let len = len as usize;
                let chunk =
                    buf.get(*pos..pos.saturating_add(len))
                        .ok_or(IpcompError::CorruptContainer(
                            "chunk payload outruns buffer",
                        ))?;
                *pos += len;
                chunks.push(chunk.to_vec());
            }
            planes.push(EncodedPlane { chunks });
        }
        Ok((chunk_bytes, planes))
    }
}

/// Minimal cursor the shared v2 chunk-index parser reads through, so the
/// fully resident reader (byte slice + position) and the ranged reader
/// ([`MetaCursor`]) validate the exact same grammar and can never drift.
trait IndexCursor {
    fn index_varint(&mut self) -> Result<u64>;
    fn index_remaining(&self) -> u64;
}

struct SliceIndexCursor<'a, 'p> {
    buf: &'a [u8],
    pos: &'p mut usize,
}

impl IndexCursor for SliceIndexCursor<'_, '_> {
    fn index_varint(&mut self) -> Result<u64> {
        Ok(read_varint(self.buf, self.pos)?)
    }
    fn index_remaining(&self) -> u64 {
        (self.buf.len() - (*self.pos).min(self.buf.len())) as u64
    }
}

/// Parse and validate one v2 level's chunk index: chunk span, per-plane
/// chunk counts against the derived grid, and every compressed size. Bounds
/// every count against what remains of the stream before any proportional
/// allocation; individual chunk sizes are capped at `u32::MAX` (far beyond
/// any producible chunk — packed spans are 64 KiB-scale). Returns
/// `(chunk_bytes, sizes[plane][chunk], payload_total)` with the cursor
/// positioned at the level's first payload byte.
fn parse_v2_chunk_index(
    cur: &mut impl IndexCursor,
    n_values: usize,
    num_planes: u8,
    precinct_chunks: Option<usize>,
) -> Result<(usize, Vec<Vec<u32>>, u64)> {
    let chunk_bytes = cur.index_varint()? as usize;
    if chunk_bytes != 0 && !chunk_bytes.is_multiple_of(8) {
        return Err(IpcompError::CorruptContainer("misaligned chunk size"));
    }
    let expected_chunks = if num_planes == 0 {
        0
    } else if let Some(p) = precinct_chunks {
        // v3: one chunk per precinct; the byte-granular span is unused.
        if chunk_bytes != 0 {
            return Err(IpcompError::CorruptContainer(
                "precinct level carries a byte-granular chunk size",
            ));
        }
        p
    } else if chunk_bytes == 0 {
        1
    } else {
        let grid = ChunkGrid {
            n_values,
            chunk_bytes,
        };
        grid.plane_len().div_ceil(chunk_bytes).max(1)
    };
    // The whole index must fit in what's left of the stream (each entry is
    // ≥ 1 byte), before any allocation proportional to it.
    if (num_planes as u64).saturating_mul(expected_chunks as u64) > cur.index_remaining() {
        return Err(IpcompError::CorruptContainer("chunk index outruns buffer"));
    }
    let mut sizes: Vec<Vec<u32>> = Vec::with_capacity(num_planes as usize);
    let mut payload_total: u64 = 0;
    for _ in 0..num_planes {
        let n_chunks = cur.index_varint()? as usize;
        if n_chunks != expected_chunks {
            return Err(IpcompError::CorruptContainer(
                "plane chunk count does not match the level's chunk grid",
            ));
        }
        let mut plane_sizes = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let len = cur.index_varint()?;
            if len > u32::MAX as u64 {
                return Err(IpcompError::CorruptContainer(
                    "chunk payload outruns buffer",
                ));
            }
            payload_total = payload_total.saturating_add(len);
            plane_sizes.push(len as u32);
        }
        sizes.push(plane_sizes);
    }
    if payload_total > cur.index_remaining() {
        return Err(IpcompError::CorruptContainer(
            "chunk payload outruns buffer",
        ));
    }
    Ok((chunk_bytes, sizes, payload_total))
}

/// Validate v3 precinct extents against the header geometry and build the
/// grid. Extents are bounded below (≥ 1) by the grid constructor and the
/// precinct count is capped before any span table is allocated.
fn validate_precincts(dims: &[usize], extents: &[usize]) -> Result<PrecinctGrid> {
    let grid = PrecinctGrid::new(dims, extents)
        .map_err(|_| IpcompError::CorruptContainer("invalid precinct extents"))?;
    if grid.num_precincts() as u64 > MAX_PRECINCTS {
        return Err(IpcompError::CorruptContainer("implausible precinct count"));
    }
    Ok(grid)
}

/// Compute one level's precinct spans and check they partition exactly the
/// declared coefficient count — the cross-check tying the header geometry to
/// each level record.
fn level_spans_checked(
    grid: &PrecinctGrid,
    shape: &Shape,
    level: u32,
    n_values: usize,
) -> Result<Vec<usize>> {
    let spans = grid.level_spans(shape, level);
    if spans.iter().sum::<usize>() != n_values {
        return Err(IpcompError::CorruptContainer(
            "precinct spans do not partition the level",
        ));
    }
    Ok(spans)
}

/// Chunk index of one level inside a serialized container: every chunk's
/// compressed size and absolute byte offset, plus the metadata the decode and
/// planning paths need (`trunc_loss`, plane count, grid geometry) — but no
/// payload bytes.
///
/// Version-1 levels (no chunk index) appear as one whole-payload "chunk" per
/// plane, so a range planner naturally degrades to per-plane reads on legacy
/// containers instead of erroring.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelMap {
    /// Number of coefficients in the level.
    pub n_values: usize,
    /// Number of significant bitplanes.
    pub num_planes: u8,
    /// Worst-case truncation loss per discard count (see
    /// [`EncodedLevel::trunc_loss`]).
    pub trunc_loss: Vec<u64>,
    /// Packed bytes per entropy chunk; `0` for monolithic (v1) planes.
    pub chunk_bytes: usize,
    /// Per-precinct coefficient spans of a version-3 level (chunk `k` of
    /// every plane covers precinct `k`); `None` for byte-granular layouts.
    precinct_spans: Option<Vec<usize>>,
    /// `chunk_sizes[p][k]`: compressed size of chunk `k` of plane `p`.
    chunk_sizes: Vec<Vec<u32>>,
    /// `chunk_offsets[p][k]`: absolute container offset of that chunk.
    chunk_offsets: Vec<Vec<u64>>,
}

impl LevelMap {
    /// The level's chunk-grid geometry.
    pub fn grid(&self) -> ChunkGrid {
        ChunkGrid {
            n_values: self.n_values,
            chunk_bytes: self.chunk_bytes,
        }
    }

    /// The level's region scheme: how plane bytes split into chunks and which
    /// coefficients each chunk covers.
    pub fn scheme(&self) -> RegionScheme {
        match &self.precinct_spans {
            Some(spans) => RegionScheme::precincts(spans),
            None => RegionScheme::Uniform(self.grid()),
        }
    }

    /// Per-precinct coefficient spans of a version-3 level, `None` otherwise.
    pub fn precinct_spans(&self) -> Option<&[usize]> {
        self.precinct_spans.as_deref()
    }

    /// Number of chunks the index records for plane `p`.
    pub fn plane_chunk_count(&self, p: u8) -> usize {
        self.chunk_sizes[p as usize].len()
    }

    /// Compressed size of chunk `k` of plane `p`.
    pub fn chunk_size(&self, p: u8, k: usize) -> usize {
        self.chunk_sizes[p as usize][k] as usize
    }

    /// Absolute byte range of chunk `k` of plane `p` in the container.
    pub fn chunk_range(&self, p: u8, k: usize) -> ByteRange {
        ByteRange::new(
            self.chunk_offsets[p as usize][k],
            self.chunk_sizes[p as usize][k] as usize,
        )
    }

    /// Total compressed size of plane `p`.
    pub fn plane_bytes(&self, p: u8) -> usize {
        self.chunk_sizes[p as usize]
            .iter()
            .map(|&s| s as usize)
            .sum()
    }

    /// Total compressed payload bytes of the level.
    pub fn payload_bytes(&self) -> usize {
        (0..self.num_planes).map(|p| self.plane_bytes(p)).sum()
    }

    /// Byte ranges of every chunk of planes `[plane_lo, plane_hi)`,
    /// plane-major (the container's own payload order, so adjacent entries
    /// are adjacent on disk and coalesce well).
    pub fn plane_ranges(&self, plane_lo: u8, plane_hi: u8) -> Vec<ByteRange> {
        (plane_lo..plane_hi.min(self.num_planes))
            .flat_map(|p| (0..self.plane_chunk_count(p)).map(move |k| self.chunk_range(p, k)))
            .collect()
    }

    /// Fetch the compressed chunks of planes `[plane_lo, plane_hi)` from
    /// `source` and assemble an in-memory [`EncodedLevel`] holding exactly
    /// those planes (planes outside the range keep empty chunk lists, which
    /// the plane-range decoders never touch).
    ///
    /// The fetch is one batched `read_ranges` call in payload order, so a
    /// coalescing source turns it into few contiguous reads.
    pub fn fetch_planes(
        &self,
        source: &dyn ChunkSource,
        plane_lo: u8,
        plane_hi: u8,
    ) -> Result<EncodedLevel> {
        let hi = plane_hi.min(self.num_planes);
        let ranges = self.plane_ranges(plane_lo, hi);
        let obs = crate::obs::metrics();
        let mut span = ipc_telemetry::span_timed("pipeline", "fetch", obs.fetch_ns);
        let bytes: u64 = ranges.iter().map(|r| r.len as u64).sum();
        obs.fetch_bytes.add(bytes);
        span.add_arg("bytes", bytes);
        let bufs = read_ranges_exact(source, &ranges)?;
        drop(span);
        let mut it = bufs.into_iter();
        let planes: Vec<EncodedPlane> = (0..self.num_planes)
            .map(|p| {
                let chunks = if (plane_lo..hi).contains(&p) {
                    (0..self.plane_chunk_count(p))
                        .map(|_| it.next().expect("one buffer per range").to_vec())
                        .collect()
                } else {
                    Vec::new()
                };
                EncodedPlane { chunks }
            })
            .collect();
        Ok(EncodedLevel {
            n_values: self.n_values,
            num_planes: self.num_planes,
            planes,
            trunc_loss: self.trunc_loss.clone(),
            chunk_bytes: self.chunk_bytes,
            precinct_spans: self.precinct_spans.clone(),
        })
    }

    /// Fetch only the chunks of planes `[plane_lo, plane_hi)` whose precinct
    /// is marked in `mask`, assembling an [`EncodedLevel`] whose unfetched
    /// chunks stay empty. The caller must only decode regions it asked for —
    /// the pruned ROI decode path does exactly that. Byte-granular levels
    /// reject the call (region pruning is a precinct-layout capability).
    pub fn fetch_planes_precincts(
        &self,
        source: &dyn ChunkSource,
        plane_lo: u8,
        plane_hi: u8,
        mask: &[bool],
    ) -> Result<EncodedLevel> {
        let spans = self.precinct_spans.as_ref().ok_or_else(|| {
            IpcompError::InvalidInput("precinct fetch on a byte-granular level".into())
        })?;
        if mask.len() != spans.len() {
            return Err(IpcompError::InvalidInput(
                "precinct mask does not match the level's precinct count".into(),
            ));
        }
        let hi = plane_hi.min(self.num_planes);
        // Chunk ids tile a plane's payload back to back, so a run of
        // consecutive masked precincts is one contiguous byte range. Reading
        // per run instead of per chunk keeps the request list proportional to
        // the region's precinct rows, not its precinct count times planes.
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut k = 0;
        while k < mask.len() {
            if mask[k] {
                let k0 = k;
                while k < mask.len() && mask[k] {
                    k += 1;
                }
                runs.push((k0, k));
            } else {
                k += 1;
            }
        }
        let ranges: Vec<ByteRange> = (plane_lo..hi)
            .flat_map(|p| {
                runs.iter().map(move |&(k0, k1)| {
                    let first = self.chunk_range(p, k0);
                    let last = self.chunk_range(p, k1 - 1);
                    ByteRange::new(first.offset, (last.end() - first.offset) as usize)
                })
            })
            .collect();
        let obs = crate::obs::metrics();
        let mut span = ipc_telemetry::span_timed("pipeline", "fetch", obs.fetch_ns);
        let bytes: u64 = ranges.iter().map(|r| r.len as u64).sum();
        obs.fetch_bytes.add(bytes);
        span.add_arg("bytes", bytes);
        let bufs = read_ranges_exact(source, &ranges)?;
        drop(span);
        let mut it = bufs.into_iter();
        let planes: Vec<EncodedPlane> = (0..self.num_planes)
            .map(|p| {
                let chunks = if (plane_lo..hi).contains(&p) {
                    let mut chunks = vec![Vec::new(); mask.len()];
                    for &(k0, k1) in &runs {
                        let buf = it.next().expect("one buffer per run");
                        let base = self.chunk_offsets[p as usize][k0];
                        for (k, chunk) in chunks.iter_mut().enumerate().take(k1).skip(k0) {
                            let r = self.chunk_range(p, k);
                            let at = (r.offset - base) as usize;
                            *chunk = buf[at..at + r.len].to_vec();
                        }
                    }
                    chunks
                } else {
                    Vec::new()
                };
                EncodedPlane { chunks }
            })
            .collect();
        Ok(EncodedLevel {
            n_values: self.n_values,
            num_planes: self.num_planes,
            planes,
            trunc_loss: self.trunc_loss.clone(),
            chunk_bytes: self.chunk_bytes,
            precinct_spans: self.precinct_spans.clone(),
        })
    }
}

/// Buffered forward reader over a [`ChunkSource`], used to parse container
/// metadata with small batched fetches while *skipping* payload bytes
/// entirely — the whole point of opening a container by ranges.
struct MetaCursor<'s> {
    source: &'s dyn ChunkSource,
    len: u64,
    pos: u64,
    buf: Vec<u8>,
    buf_start: u64,
}

/// Granularity of metadata fetches; metadata records are typically a few
/// hundred bytes, so one fetch usually covers a whole level record.
const META_FETCH: usize = 4096;

impl<'s> MetaCursor<'s> {
    fn new(source: &'s dyn ChunkSource) -> Self {
        Self {
            source,
            len: source.len(),
            pos: 0,
            buf: Vec::new(),
            buf_start: 0,
        }
    }

    fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// Buffer at least `want` bytes at the cursor (clamped to EOF) and return
    /// the buffered tail starting at the cursor.
    fn ensure(&mut self, want: usize) -> Result<&[u8]> {
        let have_end = self.buf_start + self.buf.len() as u64;
        let buffered = if self.pos >= self.buf_start && self.pos <= have_end {
            (have_end - self.pos) as usize
        } else {
            0
        };
        let want = want.min(self.remaining() as usize);
        if buffered < want {
            let fetch = want.max(META_FETCH).min(self.remaining() as usize);
            let bytes = self.source.read_range(ByteRange::new(self.pos, fetch))?;
            if bytes.len() != fetch {
                return Err(IpcompError::CorruptContainer("source returned short read"));
            }
            self.buf = bytes.to_vec();
            self.buf_start = self.pos;
        }
        let off = (self.pos - self.buf_start) as usize;
        Ok(&self.buf[off.min(self.buf.len())..])
    }

    fn read_u8(&mut self) -> Result<u8> {
        let b = *self
            .ensure(1)?
            .first()
            .ok_or(IpcompError::CorruptContainer("eof"))?;
        self.pos += 1;
        Ok(b)
    }

    fn read_u32(&mut self) -> Result<u32> {
        let buf = self.ensure(4)?;
        let mut p = 0usize;
        let v = read_u32(buf, &mut p)?;
        self.pos += p as u64;
        Ok(v)
    }

    fn read_f64(&mut self) -> Result<f64> {
        let buf = self.ensure(8)?;
        let mut p = 0usize;
        let v = read_f64(buf, &mut p)?;
        self.pos += p as u64;
        Ok(v)
    }

    fn read_varint(&mut self) -> Result<u64> {
        // A varint spans at most 10 bytes; near EOF the parser sees exactly
        // the remaining bytes and errors cleanly on truncation.
        let buf = self.ensure(10)?;
        let mut p = 0usize;
        let v = read_varint(buf, &mut p)?;
        self.pos += p as u64;
        Ok(v)
    }

    /// Copy `n` bytes out (used for the always-loaded anchor block).
    fn read_exact(&mut self, n: usize) -> Result<Vec<u8>> {
        if (self.remaining() as usize) < n {
            return Err(IpcompError::CorruptContainer("eof"));
        }
        let out = if n <= META_FETCH {
            self.ensure(n)?[..n].to_vec()
        } else {
            let bytes = self.source.read_range(ByteRange::new(self.pos, n))?;
            if bytes.len() != n {
                return Err(IpcompError::CorruptContainer("source returned short read"));
            }
            bytes.to_vec()
        };
        self.pos += n as u64;
        Ok(out)
    }

    /// Advance past `n` payload bytes without fetching them.
    fn skip(&mut self, n: u64) -> Result<()> {
        if n > self.remaining() {
            return Err(IpcompError::CorruptContainer(
                "chunk payload outruns buffer",
            ));
        }
        self.pos += n;
        Ok(())
    }
}

impl IndexCursor for MetaCursor<'_> {
    fn index_varint(&mut self) -> Result<u64> {
        self.read_varint()
    }
    fn index_remaining(&self) -> u64 {
        self.remaining()
    }
}

/// Metadata-only view of one serialized container: header, anchors, and the
/// per-level chunk index with **absolute byte offsets** — everything needed
/// to plan a retrieval and fetch exactly the chunk ranges the plan selects,
/// without ever materializing payload that wasn't asked for.
///
/// Opened over any [`ChunkSource`]; parsing fetches metadata in small batched
/// reads and skips payload byte ranges entirely, so opening a multi-gigabyte
/// remote container costs a handful of small GETs.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerMap {
    /// Container header (same validation as [`Compressed::from_bytes`]).
    pub header: Header,
    /// LZR-compressed anchor codes (always loaded — every reconstruction
    /// needs them, so the map carries them rather than re-fetching).
    pub anchors: Vec<u8>,
    /// Per-level chunk indexes, coarsest level first.
    pub levels: Vec<LevelMap>,
    /// Bytes of the serialized stream that are not plane payload (header,
    /// anchors, metadata records). For version-1 containers this reflects the
    /// *actual* v1 layout, which differs slightly from the v2 re-serialization
    /// accounting [`Compressed::base_bytes`] reports.
    base_bytes: usize,
    /// Total serialized container size.
    total_len: u64,
}

impl ContainerMap {
    /// Bytes every retrieval must load regardless of fidelity.
    pub fn base_bytes(&self) -> usize {
        self.base_bytes
    }

    /// Total compressed payload bytes across all levels.
    pub fn payload_bytes(&self) -> usize {
        self.levels.iter().map(LevelMap::payload_bytes).sum()
    }

    /// Total serialized container size in bytes.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Parse the metadata of a serialized container through ranged reads.
    ///
    /// Applies the same structural validation as [`Compressed::from_bytes`]
    /// — every count is checked against the header geometry and the source
    /// length before any proportional allocation, and every recorded chunk
    /// range is verified to lie inside the source.
    pub fn open(source: &dyn ChunkSource) -> Result<Self> {
        let mut cur = MetaCursor::new(source);
        let magic = cur.read_exact(4)?;
        if magic != MAGIC {
            return Err(IpcompError::CorruptContainer("bad magic"));
        }
        let version = cur.read_u32()?;
        if !(MIN_VERSION..=VERSION_ROI).contains(&version) {
            return Err(IpcompError::CorruptContainer("unsupported version"));
        }
        let ndim = cur.read_varint()? as usize;
        if ndim == 0 || ndim > ipc_tensor::MAX_DIMS {
            return Err(IpcompError::CorruptContainer("invalid dimension count"));
        }
        let mut dims = Vec::with_capacity(ndim);
        let mut elements: u64 = 1;
        for _ in 0..ndim {
            let d = cur.read_varint()?;
            elements = elements.saturating_mul(d.max(1));
            dims.push(d as usize);
        }
        if dims.contains(&0) || elements > MAX_ELEMENTS {
            return Err(IpcompError::CorruptContainer("implausible dimensions"));
        }
        let error_bound = cur.read_f64()?;
        let interpolation = Interpolation::from_id(cur.read_u8()?)
            .ok_or(IpcompError::CorruptContainer("unknown interpolation id"))?;
        let num_levels = cur.read_u32()?;
        let progressive_levels = cur.read_u32()?;
        let prefix_bits = cur.read_u8()?;
        let predictive_coding = cur.read_u8()? != 0;
        let value_range = cur.read_f64()?;

        let (precincts, grid) = if version == VERSION_ROI {
            let mut extents = Vec::with_capacity(ndim);
            for _ in 0..ndim {
                extents.push(cur.read_varint()? as usize);
            }
            let grid = validate_precincts(&dims, &extents)?;
            (Some(extents), Some(grid))
        } else {
            (None, None)
        };

        let anchors_len = cur.read_varint()? as usize;
        if anchors_len as u64 > cur.remaining() {
            return Err(IpcompError::CorruptContainer("eof"));
        }
        let anchors = cur.read_exact(anchors_len)?;

        let n_levels = cur.read_varint()? as usize;
        if n_levels as u64 > cur.len {
            return Err(IpcompError::CorruptContainer("implausible level count"));
        }
        if n_levels != num_levels as usize {
            return Err(IpcompError::CorruptContainer(
                "level list does not match declared level count",
            ));
        }
        let shape = Shape::new(&dims);
        let mut levels = Vec::with_capacity(n_levels);
        let mut payload_total: u64 = 0;
        for idx in 0..n_levels {
            let n_values = cur.read_varint()?;
            if n_values > elements {
                return Err(IpcompError::CorruptContainer(
                    "level larger than the whole field",
                ));
            }
            let n_values = n_values as usize;
            let num_planes = cur.read_u8()?;
            if num_planes > 63 {
                return Err(IpcompError::CorruptContainer("plane count out of range"));
            }
            let mut trunc_loss = Vec::with_capacity(num_planes as usize + 1);
            for _ in 0..=num_planes {
                trunc_loss.push(cur.read_varint()?);
            }
            let precinct_spans = match &grid {
                Some(g) => Some(level_spans_checked(
                    g,
                    &shape,
                    num_levels - idx as u32,
                    n_values,
                )?),
                None => None,
            };
            let level = if version == 1 {
                // v1: planes are inline `varint length + bytes` blocks; each
                // becomes one whole-payload chunk so ranged readers degrade
                // to per-plane reads instead of erroring.
                let mut chunk_sizes = Vec::with_capacity(num_planes as usize);
                let mut chunk_offsets = Vec::with_capacity(num_planes as usize);
                for _ in 0..num_planes {
                    let len = cur.read_varint()?;
                    if len > cur.remaining() {
                        return Err(IpcompError::CorruptContainer(
                            "chunk payload outruns buffer",
                        ));
                    }
                    chunk_sizes.push(vec![len as u32]);
                    chunk_offsets.push(vec![cur.pos]);
                    payload_total += len;
                    cur.skip(len)?;
                }
                LevelMap {
                    n_values,
                    num_planes,
                    trunc_loss,
                    chunk_bytes: 0,
                    precinct_spans,
                    chunk_sizes,
                    chunk_offsets,
                }
            } else {
                Self::open_v2_level(
                    &mut cur,
                    n_values,
                    num_planes,
                    trunc_loss,
                    precinct_spans,
                    &mut payload_total,
                )?
            };
            levels.push(level);
        }

        Ok(Self {
            header: Header {
                dims,
                error_bound,
                interpolation,
                num_levels,
                progressive_levels,
                prefix_bits,
                predictive_coding,
                value_range,
                precincts,
            },
            anchors,
            levels,
            base_bytes: (cur.pos - payload_total) as usize,
            total_len: cur.len,
        })
    }

    /// Parse one v2/v3 level's chunk index and record absolute payload offsets.
    fn open_v2_level(
        cur: &mut MetaCursor<'_>,
        n_values: usize,
        num_planes: u8,
        trunc_loss: Vec<u64>,
        precinct_spans: Option<Vec<usize>>,
        payload_total: &mut u64,
    ) -> Result<LevelMap> {
        let (chunk_bytes, chunk_sizes, level_payload) = parse_v2_chunk_index(
            cur,
            n_values,
            num_planes,
            precinct_spans.as_ref().map(Vec::len),
        )?;
        // Payload follows plane-major; walk the sizes to assign offsets.
        let mut offset = cur.pos;
        let chunk_offsets: Vec<Vec<u64>> = chunk_sizes
            .iter()
            .map(|plane| {
                plane
                    .iter()
                    .map(|&len| {
                        let at = offset;
                        offset += len as u64;
                        at
                    })
                    .collect()
            })
            .collect();
        cur.skip(level_payload)?;
        *payload_total += level_payload;
        Ok(LevelMap {
            n_values,
            num_planes,
            trunc_loss,
            chunk_bytes,
            precinct_spans,
            chunk_sizes,
            chunk_offsets,
        })
    }

    /// Build the map of an in-memory container's **current serialization**
    /// (the byte layout [`Compressed::to_bytes`] produces). Useful to plan
    /// ranged retrievals against a container that is also held in memory, and
    /// as an independent cross-check of [`ContainerMap::open`].
    pub fn from_compressed(c: &Compressed) -> Self {
        let mut pos = c.base_bytes() as u64
            - c.levels
                .iter()
                .map(Compressed::level_metadata_bytes)
                .sum::<usize>() as u64;
        let levels = c
            .levels
            .iter()
            .map(|level| {
                pos += Compressed::level_metadata_bytes(level) as u64;
                let chunk_sizes: Vec<Vec<u32>> = level
                    .planes
                    .iter()
                    .map(|p| p.chunks.iter().map(|ch| ch.len() as u32).collect())
                    .collect();
                let chunk_offsets: Vec<Vec<u64>> = chunk_sizes
                    .iter()
                    .map(|plane| {
                        plane
                            .iter()
                            .map(|&len| {
                                let at = pos;
                                pos += len as u64;
                                at
                            })
                            .collect()
                    })
                    .collect();
                LevelMap {
                    n_values: level.n_values,
                    num_planes: level.num_planes,
                    trunc_loss: level.trunc_loss.clone(),
                    chunk_bytes: level.chunk_bytes,
                    precinct_spans: level.precinct_spans.clone(),
                    chunk_sizes,
                    chunk_offsets,
                }
            })
            .collect();
        Self {
            header: c.header.clone(),
            anchors: c.anchors.clone(),
            levels,
            base_bytes: c.base_bytes(),
            total_len: c.total_bytes() as u64,
        }
    }
}

/// Compress anchor codes (zigzag varints + LZR).
pub fn encode_anchors(codes: &[i64]) -> Vec<u8> {
    let mut raw = Vec::with_capacity(codes.len() * 2);
    write_varint(&mut raw, codes.len() as u64);
    for &c in codes {
        write_varint(&mut raw, zigzag_encode(c));
    }
    lzr_compress(&raw)
}

/// Decode anchor codes produced by [`encode_anchors`]. `max_codes` bounds the
/// result (anchor grids are a small fraction of the field), so corrupt
/// streams cannot force huge allocations.
pub fn decode_anchors_bounded(bytes: &[u8], max_codes: usize) -> Result<Vec<i64>> {
    // Each code costs at least one raw byte (varint), plus the count varint.
    let raw = ipc_codecs::lzr::lzr_decompress_bounded(
        bytes,
        max_codes.saturating_mul(10).saturating_add(10),
    )?;
    let mut pos = 0usize;
    let n = read_varint(&raw, &mut pos)? as usize;
    if n > max_codes || n > raw.len() {
        return Err(IpcompError::CorruptContainer("implausible anchor count"));
    }
    let mut codes = Vec::with_capacity(n);
    for _ in 0..n {
        codes.push(zigzag_decode(read_varint(&raw, &mut pos)?));
    }
    Ok(codes)
}

/// Decode anchor codes produced by [`encode_anchors`] without a caller bound.
pub fn decode_anchors(bytes: &[u8]) -> Result<Vec<i64>> {
    decode_anchors_bounded(bytes, usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitplane::EncodeOptions;

    fn sample_compressed() -> Compressed {
        let codes_a: Vec<i64> = (0..40).map(|i| (i * 7) % 13 - 6).collect();
        let codes_l1: Vec<i64> = (0..500).map(|i| ((i * i) % 97) as i64 - 48).collect();
        let codes_l2: Vec<i64> = (0..100).map(|i| (i % 31) as i64 - 15).collect();
        Compressed {
            header: Header {
                dims: vec![10, 10, 10],
                error_bound: 1e-6,
                interpolation: Interpolation::Cubic,
                num_levels: 2,
                progressive_levels: 2,
                prefix_bits: 2,
                predictive_coding: true,
                value_range: 3.5,
                precincts: None,
            },
            anchors: encode_anchors(&codes_a),
            levels: vec![
                crate::bitplane::encode_level(&codes_l2, 2, true, false),
                crate::bitplane::encode_level(&codes_l1, 2, true, false),
            ],
        }
    }

    /// Same field, but with a tiny chunk size so every plane splits into many
    /// chunks and the index actually has entries to serialize.
    fn sample_compressed_chunked() -> Compressed {
        let mut c = sample_compressed();
        let codes_l1: Vec<i64> = (0..500).map(|i| ((i * i) % 97) as i64 - 48).collect();
        let codes_l2: Vec<i64> = (0..100).map(|i| (i % 31) as i64 - 15).collect();
        let opts = EncodeOptions {
            chunk_bytes: 16,
            ..EncodeOptions::default()
        };
        c.levels = vec![
            crate::bitplane::encode_level_with(&codes_l2, 2, true, false, opts),
            crate::bitplane::encode_level_with(&codes_l1, 2, true, false, opts),
        ];
        c
    }

    #[test]
    fn serialization_roundtrip() {
        for c in [sample_compressed(), sample_compressed_chunked()] {
            let bytes = c.to_bytes();
            let back = Compressed::from_bytes(&bytes).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn size_accounting_matches_serialized_size_exactly() {
        for c in [sample_compressed(), sample_compressed_chunked()] {
            assert_eq!(c.total_bytes(), c.to_bytes().len());
            assert_eq!(c.base_bytes() + c.payload_bytes(), c.to_bytes().len());
        }
    }

    #[test]
    fn anchors_roundtrip() {
        let codes: Vec<i64> = (-2000..2000).map(|i| i * 3).collect();
        let enc = encode_anchors(&codes);
        assert_eq!(decode_anchors(&enc).unwrap(), codes);
        assert_eq!(decode_anchors_bounded(&enc, 4000).unwrap(), codes);
        assert!(decode_anchors_bounded(&enc, 3999).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let c = sample_compressed();
        let mut bytes = c.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Compressed::from_bytes(&bytes),
            Err(IpcompError::CorruptContainer(_))
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let c = sample_compressed();
        let mut bytes = c.to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Compressed::from_bytes(&bytes),
            Err(IpcompError::CorruptContainer("unsupported version"))
        ));
    }

    #[test]
    fn truncated_container_rejected() {
        let c = sample_compressed();
        let bytes = c.to_bytes();
        for cut in [3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(Compressed::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn container_map_open_matches_from_compressed() {
        for c in [sample_compressed(), sample_compressed_chunked()] {
            let bytes = c.to_bytes();
            let source = crate::source::MemorySource::new(bytes.clone());
            let opened = ContainerMap::open(&source).unwrap();
            let derived = ContainerMap::from_compressed(&c);
            assert_eq!(opened, derived);
            assert_eq!(opened.total_len(), bytes.len() as u64);
            assert_eq!(opened.base_bytes(), c.base_bytes());
            assert_eq!(opened.payload_bytes(), c.payload_bytes());
        }
    }

    #[test]
    fn container_map_chunk_ranges_address_exact_payload() {
        let c = sample_compressed_chunked();
        let bytes = c.to_bytes();
        let map = ContainerMap::from_compressed(&c);
        for (level, lmap) in c.levels.iter().zip(&map.levels) {
            for (p, plane) in level.planes.iter().enumerate() {
                for (k, chunk) in plane.chunks.iter().enumerate() {
                    let r = lmap.chunk_range(p as u8, k);
                    assert_eq!(&bytes[r.offset as usize..r.end() as usize], &chunk[..]);
                }
            }
        }
    }

    #[test]
    fn container_map_v1_is_one_whole_payload_range_per_plane() {
        let mut c = sample_compressed();
        // v1 requires monolithic planes; re-encode with chunking disabled.
        let codes_l1: Vec<i64> = (0..500).map(|i| ((i * i) % 97) as i64 - 48).collect();
        let codes_l2: Vec<i64> = (0..100).map(|i| (i % 31) as i64 - 15).collect();
        let opts = EncodeOptions {
            chunk_bytes: 0,
            ..EncodeOptions::default()
        };
        c.levels = vec![
            crate::bitplane::encode_level_with(&codes_l2, 2, true, false, opts),
            crate::bitplane::encode_level_with(&codes_l1, 2, true, false, opts),
        ];
        let v1_bytes = c.to_bytes_v1().unwrap();
        assert_eq!(&v1_bytes[4..8], &1u32.to_le_bytes());
        // The byte reader accepts the legacy stream…
        let parsed = Compressed::from_bytes(&v1_bytes).unwrap();
        assert_eq!(parsed.levels, c.levels);
        // …and the ranged map exposes exactly one whole-payload range per
        // plane, each addressing the plane's compressed bytes.
        let source = crate::source::MemorySource::new(v1_bytes.clone());
        let map = ContainerMap::open(&source).unwrap();
        for (level, lmap) in c.levels.iter().zip(&map.levels) {
            assert_eq!(lmap.chunk_bytes, 0);
            for (p, plane) in level.planes.iter().enumerate() {
                assert_eq!(lmap.plane_chunk_count(p as u8), 1);
                let r = lmap.chunk_range(p as u8, 0);
                assert_eq!(r.len, plane.chunks[0].len());
                assert_eq!(
                    &v1_bytes[r.offset as usize..r.end() as usize],
                    &plane.chunks[0][..]
                );
            }
        }
    }

    #[test]
    fn container_map_rejects_truncated_metadata() {
        let c = sample_compressed();
        let bytes = c.to_bytes();
        // Cut inside the header/metadata region: open() must error, not panic.
        for cut in [3usize, 10, 40, c.base_bytes().saturating_sub(1)] {
            let source = crate::source::MemorySource::new(bytes[..cut.min(bytes.len())].to_vec());
            assert!(ContainerMap::open(&source).is_err(), "cut={cut}");
        }
        // Cut inside the payload: the chunk index outruns the source.
        let source = crate::source::MemorySource::new(bytes[..bytes.len() - 1].to_vec());
        assert!(ContainerMap::open(&source).is_err());
    }

    #[test]
    fn fetch_planes_returns_requested_payload_only() {
        let c = sample_compressed_chunked();
        let bytes = c.to_bytes();
        let source = crate::source::MemorySource::new(bytes);
        let map = ContainerMap::open(&source).unwrap();
        let lmap = &map.levels[1];
        let hi = lmap.num_planes;
        let lo = hi / 2;
        let fetched = lmap.fetch_planes(&source, lo, hi).unwrap();
        assert_eq!(fetched.n_values, lmap.n_values);
        assert_eq!(fetched.num_planes, lmap.num_planes);
        for p in 0..hi {
            if p >= lo {
                assert_eq!(fetched.planes[p as usize], c.levels[1].planes[p as usize]);
            } else {
                assert!(fetched.planes[p as usize].chunks.is_empty());
            }
        }
    }

    #[test]
    fn level_numbering_and_progressive_flags() {
        let c = sample_compressed();
        assert_eq!(c.level_number(0), 2);
        assert_eq!(c.level_number(1), 1);
        assert!(c.is_progressive(0));
        assert!(c.is_progressive(1));
        let mut limited = c.clone();
        limited.header.progressive_levels = 1;
        assert!(!limited.is_progressive(0));
        assert!(limited.is_progressive(1));
    }
}
