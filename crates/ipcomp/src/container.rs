//! Compressed container format.
//!
//! The container is what lands on disk (or in an object store): a small header, the
//! always-loaded anchor block, and — per interpolation level — a metadata record plus
//! one independently addressable block per bitplane (the numbered blocks of the
//! paper's Fig. 2). Retrieval reads the header + anchors + metadata, asks the
//! optimizer which plane blocks to fetch, and loads only those.
//!
//! ## Versions
//!
//! * **v1** (PR 1) — each plane is a single monolithic LZR block, written as
//!   `varint length + bytes` inline with the level metadata. Still read;
//!   decodes byte-identically.
//! * **v2** (current) — planes are split into fixed-size entropy chunks
//!   ([`crate::bitplane::CHUNK_BYTES`] packed bytes each) and the level
//!   metadata carries a **chunk index**: every chunk's compressed size, ahead
//!   of any payload byte. A reader can therefore compute the absolute offset
//!   of any `(level, plane, chunk)` triple from metadata alone and fetch
//!   chunks independently — which is what lets decode fan out evenly over
//!   rayon and stream planes region by region. Payload bytes follow the
//!   metadata of each level, plane-major.
//!
//! Deserialization is hardened: every count and length field is validated
//! against the remaining buffer and the header geometry before any
//! proportional allocation, so corrupt or adversarial containers fail with
//! [`IpcompError`] instead of panicking or ballooning memory.

use ipc_codecs::byteio::{read_bytes, read_f64, read_u32, write_bytes, write_f64, write_u32};
use ipc_codecs::varint::{read_varint, varint_len, write_varint};
use ipc_codecs::{lzr_compress, zigzag_decode, zigzag_encode};

use ipc_tensor::Shape;

use crate::bitplane::{EncodedLevel, EncodedPlane};
use crate::config::Interpolation;
use crate::error::{IpcompError, Result};

/// Magic bytes identifying an IPComp container.
pub const MAGIC: &[u8; 4] = b"IPCP";
/// Current container format version (written by [`Compressed::to_bytes`]).
pub const VERSION: u32 = 2;
/// Oldest container format version still readable.
pub const MIN_VERSION: u32 = 1;

/// Upper bound on the number of scalar elements a header may declare
/// (2^48 ≈ 280 T elements); anything larger is treated as corrupt before any
/// allocation is attempted.
const MAX_ELEMENTS: u64 = 1 << 48;

/// Container header: everything needed to plan a retrieval without touching payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Grid dimensions of the original field.
    pub dims: Vec<usize>,
    /// Absolute error bound the data was quantized with.
    pub error_bound: f64,
    /// Interpolation formula used by the predictor.
    pub interpolation: Interpolation,
    /// Number of interpolation levels (level 1 = finest).
    pub num_levels: u32,
    /// Levels `1..=progressive_levels` are bitplane-progressive; coarser levels are
    /// always loaded in full.
    pub progressive_levels: u32,
    /// Prefix bits used by the predictive bitplane coder.
    pub prefix_bits: u8,
    /// Whether predictive coding was applied.
    pub predictive_coding: bool,
    /// Value range (max − min) of the original data, stored for relative-bound
    /// retrievals and PSNR reporting.
    pub value_range: f64,
}

impl Header {
    /// Reconstruct the [`Shape`] of the original field.
    pub fn shape(&self) -> Shape {
        Shape::new(&self.dims)
    }

    /// Number of scalar elements in the original field.
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }
}

/// A complete IPComp compressed artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Compressed {
    /// Container header.
    pub header: Header,
    /// LZR-compressed zigzag-varint anchor codes (always loaded).
    pub anchors: Vec<u8>,
    /// Per-level bitplane blocks, ordered from the **coarsest** level
    /// (`num_levels`) down to the finest (level 1).
    pub levels: Vec<EncodedLevel>,
}

impl Compressed {
    /// The interpolation level number corresponding to `levels[idx]`.
    pub fn level_number(&self, idx: usize) -> u32 {
        self.header.num_levels - idx as u32
    }

    /// Whether `levels[idx]` participates in progressive (partial-plane) loading.
    pub fn is_progressive(&self, idx: usize) -> bool {
        self.level_number(idx) <= self.header.progressive_levels
    }

    /// Serialized size of one level's metadata record (sizes, loss table, and
    /// the chunk index — everything except payload bytes).
    fn level_metadata_bytes(level: &EncodedLevel) -> usize {
        varint_len(level.n_values as u64)
            + 1
            + level
                .trunc_loss
                .iter()
                .map(|&v| varint_len(v))
                .sum::<usize>()
            + varint_len(level.chunk_bytes as u64)
            + level
                .planes
                .iter()
                .map(|p| {
                    varint_len(p.chunks.len() as u64)
                        + p.chunks
                            .iter()
                            .map(|c| varint_len(c.len() as u64))
                            .sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Bytes that every retrieval must load regardless of fidelity: header, anchors,
    /// and per-level metadata (chunk index + truncation-loss tables). Computed to
    /// mirror [`Compressed::to_bytes`] exactly, so
    /// `base_bytes() + payload_bytes() == to_bytes().len()`.
    pub fn base_bytes(&self) -> usize {
        let header = 4 // magic
            + 4 // version
            + varint_len(self.header.dims.len() as u64)
            + self
                .header
                .dims
                .iter()
                .map(|&d| varint_len(d as u64))
                .sum::<usize>()
            + 8 // error bound
            + 1 // interpolation id
            + 4 // num_levels
            + 4 // progressive_levels
            + 1 // prefix bits
            + 1 // predictive flag
            + 8; // value range
        let anchors = varint_len(self.anchors.len() as u64) + self.anchors.len();
        let levels_header = varint_len(self.levels.len() as u64);
        let metadata: usize = self.levels.iter().map(Self::level_metadata_bytes).sum();
        header + anchors + levels_header + metadata
    }

    /// Total compressed payload bytes (all bitplane blocks of all levels).
    pub fn payload_bytes(&self) -> usize {
        self.levels.iter().map(EncodedLevel::payload_bytes).sum()
    }

    /// Total size of the compressed artifact; equals `to_bytes().len()`.
    pub fn total_bytes(&self) -> usize {
        self.base_bytes() + self.payload_bytes()
    }

    /// Serialize the container to a byte buffer (current format version).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_bytes() + 64);
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, VERSION);
        write_varint(&mut out, self.header.dims.len() as u64);
        for &d in &self.header.dims {
            write_varint(&mut out, d as u64);
        }
        write_f64(&mut out, self.header.error_bound);
        out.push(self.header.interpolation.id());
        write_u32(&mut out, self.header.num_levels);
        write_u32(&mut out, self.header.progressive_levels);
        out.push(self.header.prefix_bits);
        out.push(self.header.predictive_coding as u8);
        write_f64(&mut out, self.header.value_range);

        write_bytes(&mut out, &self.anchors);

        write_varint(&mut out, self.levels.len() as u64);
        for level in &self.levels {
            write_varint(&mut out, level.n_values as u64);
            out.push(level.num_planes);
            for &loss in &level.trunc_loss {
                write_varint(&mut out, loss);
            }
            // Chunk index first (all sizes, no payload), then the payload
            // bytes plane-major: a reader can address any chunk from the
            // metadata alone.
            write_varint(&mut out, level.chunk_bytes as u64);
            for plane in &level.planes {
                write_varint(&mut out, plane.chunks.len() as u64);
                for chunk in &plane.chunks {
                    write_varint(&mut out, chunk.len() as u64);
                }
            }
            for plane in &level.planes {
                for chunk in &plane.chunks {
                    out.extend_from_slice(chunk);
                }
            }
        }
        out
    }

    /// Deserialize a container produced by [`Compressed::to_bytes`] — either
    /// the current version-2 chunked layout or the original version-1
    /// monolithic layout.
    pub fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let magic = buf
            .get(0..4)
            .ok_or(IpcompError::CorruptContainer("missing magic"))?;
        if magic != MAGIC {
            return Err(IpcompError::CorruptContainer("bad magic"));
        }
        pos += 4;
        let version = read_u32(buf, &mut pos)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(IpcompError::CorruptContainer("unsupported version"));
        }
        let ndim = read_varint(buf, &mut pos)? as usize;
        if ndim == 0 || ndim > ipc_tensor::MAX_DIMS {
            return Err(IpcompError::CorruptContainer("invalid dimension count"));
        }
        let mut dims = Vec::with_capacity(ndim);
        let mut elements: u64 = 1;
        for _ in 0..ndim {
            let d = read_varint(buf, &mut pos)?;
            elements = elements.saturating_mul(d.max(1));
            dims.push(d as usize);
        }
        if dims.contains(&0) || elements > MAX_ELEMENTS {
            return Err(IpcompError::CorruptContainer("implausible dimensions"));
        }
        let error_bound = read_f64(buf, &mut pos)?;
        let interp_id = *buf.get(pos).ok_or(IpcompError::CorruptContainer("eof"))?;
        pos += 1;
        let interpolation = Interpolation::from_id(interp_id)
            .ok_or(IpcompError::CorruptContainer("unknown interpolation id"))?;
        let num_levels = read_u32(buf, &mut pos)?;
        let progressive_levels = read_u32(buf, &mut pos)?;
        let prefix_bits = *buf.get(pos).ok_or(IpcompError::CorruptContainer("eof"))?;
        pos += 1;
        let predictive_coding = *buf.get(pos).ok_or(IpcompError::CorruptContainer("eof"))? != 0;
        pos += 1;
        let value_range = read_f64(buf, &mut pos)?;

        let anchors = read_bytes(buf, &mut pos)?.to_vec();

        let n_levels = read_varint(buf, &mut pos)? as usize;
        // Each level record costs at least 3 bytes, so a count outrunning the
        // buffer is corrupt; checking first bounds the preallocation.
        if n_levels > buf.len() {
            return Err(IpcompError::CorruptContainer("implausible level count"));
        }
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let n_values = read_varint(buf, &mut pos)?;
            if n_values > elements {
                return Err(IpcompError::CorruptContainer(
                    "level larger than the whole field",
                ));
            }
            let n_values = n_values as usize;
            let num_planes = *buf.get(pos).ok_or(IpcompError::CorruptContainer("eof"))?;
            pos += 1;
            if num_planes > 63 {
                return Err(IpcompError::CorruptContainer("plane count out of range"));
            }
            let mut trunc_loss = Vec::with_capacity(num_planes as usize + 1);
            for _ in 0..=num_planes {
                trunc_loss.push(read_varint(buf, &mut pos)?);
            }
            let (chunk_bytes, planes) = if version == 1 {
                // v1: planes are single `varint length + bytes` blocks.
                let mut planes = Vec::with_capacity(num_planes as usize);
                for _ in 0..num_planes {
                    planes.push(EncodedPlane::monolithic(
                        read_bytes(buf, &mut pos)?.to_vec(),
                    ));
                }
                (0usize, planes)
            } else {
                Self::read_v2_level_blocks(buf, &mut pos, n_values, num_planes)?
            };
            levels.push(EncodedLevel {
                n_values,
                num_planes,
                planes,
                trunc_loss,
                chunk_bytes,
            });
        }
        // One encoded level per interpolation level, always: the retrieval
        // paths compute `num_levels - idx`, which must never underflow.
        if levels.len() != num_levels as usize {
            return Err(IpcompError::CorruptContainer(
                "level list does not match declared level count",
            ));
        }

        Ok(Self {
            header: Header {
                dims,
                error_bound,
                interpolation,
                num_levels,
                progressive_levels,
                prefix_bits,
                predictive_coding,
                value_range,
            },
            anchors,
            levels,
        })
    }

    /// Parse one v2 level's chunk index and payload into planes.
    fn read_v2_level_blocks(
        buf: &[u8],
        pos: &mut usize,
        n_values: usize,
        num_planes: u8,
    ) -> Result<(usize, Vec<EncodedPlane>)> {
        let chunk_bytes = read_varint(buf, pos)? as usize;
        let plane_len = n_values.div_ceil(8);
        if chunk_bytes != 0 && !chunk_bytes.is_multiple_of(8) {
            return Err(IpcompError::CorruptContainer("misaligned chunk size"));
        }
        let expected_chunks = if num_planes == 0 {
            0
        } else if chunk_bytes == 0 {
            1
        } else {
            plane_len.div_ceil(chunk_bytes).max(1)
        };
        // The whole index must fit in what's left of the buffer (each entry
        // is ≥ 1 byte), before any allocation proportional to it.
        let remaining = buf.len() - (*pos).min(buf.len());
        if (num_planes as usize).saturating_mul(expected_chunks) > remaining {
            return Err(IpcompError::CorruptContainer("chunk index outruns buffer"));
        }
        let mut sizes: Vec<Vec<usize>> = Vec::with_capacity(num_planes as usize);
        let mut payload_total = 0usize;
        for _ in 0..num_planes {
            let n_chunks = read_varint(buf, pos)? as usize;
            if n_chunks != expected_chunks {
                return Err(IpcompError::CorruptContainer(
                    "plane chunk count does not match the level's chunk grid",
                ));
            }
            let mut plane_sizes = Vec::with_capacity(n_chunks);
            for _ in 0..n_chunks {
                let len = read_varint(buf, pos)? as usize;
                payload_total = payload_total.saturating_add(len);
                plane_sizes.push(len);
            }
            sizes.push(plane_sizes);
        }
        if payload_total > buf.len().saturating_sub(*pos) {
            return Err(IpcompError::CorruptContainer(
                "chunk payload outruns buffer",
            ));
        }
        let mut planes = Vec::with_capacity(num_planes as usize);
        for plane_sizes in sizes {
            let mut chunks = Vec::with_capacity(plane_sizes.len());
            for len in plane_sizes {
                let chunk =
                    buf.get(*pos..pos.saturating_add(len))
                        .ok_or(IpcompError::CorruptContainer(
                            "chunk payload outruns buffer",
                        ))?;
                *pos += len;
                chunks.push(chunk.to_vec());
            }
            planes.push(EncodedPlane { chunks });
        }
        Ok((chunk_bytes, planes))
    }
}

/// Compress anchor codes (zigzag varints + LZR).
pub fn encode_anchors(codes: &[i64]) -> Vec<u8> {
    let mut raw = Vec::with_capacity(codes.len() * 2);
    write_varint(&mut raw, codes.len() as u64);
    for &c in codes {
        write_varint(&mut raw, zigzag_encode(c));
    }
    lzr_compress(&raw)
}

/// Decode anchor codes produced by [`encode_anchors`]. `max_codes` bounds the
/// result (anchor grids are a small fraction of the field), so corrupt
/// streams cannot force huge allocations.
pub fn decode_anchors_bounded(bytes: &[u8], max_codes: usize) -> Result<Vec<i64>> {
    // Each code costs at least one raw byte (varint), plus the count varint.
    let raw = ipc_codecs::lzr::lzr_decompress_bounded(
        bytes,
        max_codes.saturating_mul(10).saturating_add(10),
    )?;
    let mut pos = 0usize;
    let n = read_varint(&raw, &mut pos)? as usize;
    if n > max_codes || n > raw.len() {
        return Err(IpcompError::CorruptContainer("implausible anchor count"));
    }
    let mut codes = Vec::with_capacity(n);
    for _ in 0..n {
        codes.push(zigzag_decode(read_varint(&raw, &mut pos)?));
    }
    Ok(codes)
}

/// Decode anchor codes produced by [`encode_anchors`] without a caller bound.
pub fn decode_anchors(bytes: &[u8]) -> Result<Vec<i64>> {
    decode_anchors_bounded(bytes, usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitplane::EncodeOptions;

    fn sample_compressed() -> Compressed {
        let codes_a: Vec<i64> = (0..40).map(|i| (i * 7) % 13 - 6).collect();
        let codes_l1: Vec<i64> = (0..500).map(|i| ((i * i) % 97) as i64 - 48).collect();
        let codes_l2: Vec<i64> = (0..100).map(|i| (i % 31) as i64 - 15).collect();
        Compressed {
            header: Header {
                dims: vec![10, 10, 10],
                error_bound: 1e-6,
                interpolation: Interpolation::Cubic,
                num_levels: 2,
                progressive_levels: 2,
                prefix_bits: 2,
                predictive_coding: true,
                value_range: 3.5,
            },
            anchors: encode_anchors(&codes_a),
            levels: vec![
                crate::bitplane::encode_level(&codes_l2, 2, true, false),
                crate::bitplane::encode_level(&codes_l1, 2, true, false),
            ],
        }
    }

    /// Same field, but with a tiny chunk size so every plane splits into many
    /// chunks and the index actually has entries to serialize.
    fn sample_compressed_chunked() -> Compressed {
        let mut c = sample_compressed();
        let codes_l1: Vec<i64> = (0..500).map(|i| ((i * i) % 97) as i64 - 48).collect();
        let codes_l2: Vec<i64> = (0..100).map(|i| (i % 31) as i64 - 15).collect();
        let opts = EncodeOptions {
            chunk_bytes: 16,
            rans: true,
        };
        c.levels = vec![
            crate::bitplane::encode_level_with(&codes_l2, 2, true, false, opts),
            crate::bitplane::encode_level_with(&codes_l1, 2, true, false, opts),
        ];
        c
    }

    #[test]
    fn serialization_roundtrip() {
        for c in [sample_compressed(), sample_compressed_chunked()] {
            let bytes = c.to_bytes();
            let back = Compressed::from_bytes(&bytes).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn size_accounting_matches_serialized_size_exactly() {
        for c in [sample_compressed(), sample_compressed_chunked()] {
            assert_eq!(c.total_bytes(), c.to_bytes().len());
            assert_eq!(c.base_bytes() + c.payload_bytes(), c.to_bytes().len());
        }
    }

    #[test]
    fn anchors_roundtrip() {
        let codes: Vec<i64> = (-2000..2000).map(|i| i * 3).collect();
        let enc = encode_anchors(&codes);
        assert_eq!(decode_anchors(&enc).unwrap(), codes);
        assert_eq!(decode_anchors_bounded(&enc, 4000).unwrap(), codes);
        assert!(decode_anchors_bounded(&enc, 3999).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let c = sample_compressed();
        let mut bytes = c.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Compressed::from_bytes(&bytes),
            Err(IpcompError::CorruptContainer(_))
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let c = sample_compressed();
        let mut bytes = c.to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Compressed::from_bytes(&bytes),
            Err(IpcompError::CorruptContainer("unsupported version"))
        ));
    }

    #[test]
    fn truncated_container_rejected() {
        let c = sample_compressed();
        let bytes = c.to_bytes();
        for cut in [3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(Compressed::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn level_numbering_and_progressive_flags() {
        let c = sample_compressed();
        assert_eq!(c.level_number(0), 2);
        assert_eq!(c.level_number(1), 1);
        assert!(c.is_progressive(0));
        assert!(c.is_progressive(1));
        let mut limited = c.clone();
        limited.header.progressive_levels = 1;
        assert!(!limited.is_progressive(0));
        assert!(limited.is_progressive(1));
    }
}
