//! Time-series archive container (format version 4): cross-timestep residual
//! encoding with step-spanning progressive retrieval.
//!
//! A scientific archive holds N timesteps × V variables of one domain. The
//! single-snapshot container (versions 1–3) treats each step as an island;
//! this module applies the paper's residual idea *across time*: step `t` is
//! stored either **independent** (a keyframe) or as a **cross-timestep
//! residual** against the reconstruction of its predecessor at a configurable
//! *reference fidelity*. Both flavors reuse the existing encode pipeline
//! unchanged — a step's payload is a standard version-2/3 container over the
//! keyframe field or the residual field — so every per-step capability
//! (progressive planes, ROI precincts, ranged chunk plans) composes with the
//! time axis for free.
//!
//! ## Framing (version 4)
//!
//! ```text
//! magic "IPCP" | version=4 | num_steps u32 | num_vars u32
//! keyframe_interval u32 | reference_bound f64 | finest_bound f64
//! ndim u8 | dims u64 × ndim
//! per variable: name_len u16 | utf8 name
//! directory, step-major: (kind u8 | offset u64 | len u64) × steps × vars
//! payload: the embedded per-step containers, back to back
//! ```
//!
//! The directory lives entirely in the metadata prefix, so [`ArchiveMap`]
//! parses over ranged reads without touching payload, and each embedded
//! container is addressed through an [`OffsetSource`] window — versions 1–3
//! grammar and readers are untouched.
//!
//! ## Determinism and bit-identity
//!
//! The encoder derives each chain base by *decoding its own output* at the
//! reference fidelity (the exact read path the decoder uses), so encoder and
//! decoder arithmetic can never drift: archive retrieval of any step is
//! bit-identical to compressing the same keyframe/residual fields as
//! standalone containers, decoding them with [`ProgressiveDecoder`], and
//! summing the chain by hand. Because each residual is quantized against the
//! *reconstructed* predecessor, reconstruction error never accumulates along
//! a chain: a step retrieved at bound `e` is within `e` of the original
//! field, keyframe or residual alike.
//!
//! ## Rollback
//!
//! [`ArchiveReader`] commits chain state and byte accounting only after a
//! step's loads fully succeed. A failed step load (short read, fault) leaves
//! the reader exactly as it was after the last good step; retrying after the
//! backend heals continues the chain and produces bit-identical output.

use std::sync::Arc;

use ipc_tensor::{ArrayD, Shape};

use crate::config::Config;
use crate::container::{ContainerMap, MAGIC};
use crate::error::{IpcompError, Result};
use crate::precinct::RoiBox;
use crate::progressive::{ProgressiveDecoder, RetrievalRequest, StreamEvent};
use crate::source::{ByteRange, ChunkSource, MemorySource, OffsetSource};

/// Container format version of the time-series archive framing.
pub const VERSION_ARCHIVE: u32 = 4;

/// Bytes fetched per metadata read while parsing an [`ArchiveMap`].
const META_FETCH: usize = 4096;

/// Hard caps mirroring the hardened single-container limits: a corrupt
/// directory fails validation instead of driving huge allocations.
const MAX_STEPS: u64 = 1 << 20;
const MAX_VARS: u64 = 1 << 12;
const MAX_ENTRIES: u64 = 1 << 22;
const MAX_NAME: usize = 4096;
const MAX_ELEMENTS: u64 = 1 << 48;

/// How one step of one variable is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// Independent: the embedded container encodes the field itself.
    Keyframe,
    /// The embedded container encodes `field − base`, where `base` is the
    /// chain reconstruction of the predecessor at the reference fidelity.
    Residual,
}

impl StepKind {
    fn id(self) -> u8 {
        match self {
            StepKind::Keyframe => 0,
            StepKind::Residual => 1,
        }
    }

    fn from_id(id: u8) -> Result<Self> {
        match id {
            0 => Ok(StepKind::Keyframe),
            1 => Ok(StepKind::Residual),
            _ => Err(IpcompError::CorruptContainer("unknown archive step kind")),
        }
    }
}

/// Encoding knobs of a time-series archive.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveConfig {
    /// A keyframe every this many steps (step 0 is always one). `1` makes
    /// every step independent — the degenerate archive that matches
    /// per-step containers exactly.
    pub keyframe_interval: usize,
    /// Fidelity (absolute error bound) at which each chain base is
    /// reconstructed. Must be ≥ `finest_bound`; coarser reference bounds
    /// make chains cheaper to follow but residuals slightly larger.
    pub reference_bound: f64,
    /// Absolute error bound each step's container is encoded with — the
    /// finest fidelity any retrieval can reach.
    pub finest_bound: f64,
    /// Per-step encoder configuration (interpolation, chunking, precincts).
    pub codec: Config,
}

impl ArchiveConfig {
    /// A config with the given bounds and default codec, keyframes every 8
    /// steps.
    pub fn new(finest_bound: f64, reference_bound: f64) -> Self {
        Self {
            keyframe_interval: 8,
            reference_bound,
            finest_bound,
            codec: Config::default(),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.keyframe_interval == 0 {
            return Err(IpcompError::InvalidInput(
                "keyframe_interval must be at least 1".into(),
            ));
        }
        for (name, v) in [
            ("finest_bound", self.finest_bound),
            ("reference_bound", self.reference_bound),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(IpcompError::InvalidInput(format!(
                    "{name} must be positive and finite, got {v}"
                )));
            }
        }
        if self.reference_bound < self.finest_bound {
            return Err(IpcompError::InvalidInput(format!(
                "reference_bound ({}) must be at least finest_bound ({})",
                self.reference_bound, self.finest_bound
            )));
        }
        Ok(())
    }
}

/// One directory entry: where one (step, variable) container lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveEntry {
    /// Keyframe or residual.
    pub kind: StepKind,
    /// Absolute byte offset of the embedded container.
    pub offset: u64,
    /// Serialized length of the embedded container.
    pub len: u64,
}

/// Builds a version-4 archive step by step.
///
/// Feed every timestep's fields (one per variable, fixed order) through
/// [`ArchiveBuilder::push_step`]; the builder keeps each variable's chain
/// base — the reference-fidelity reconstruction of the previous step — and
/// encodes each non-keyframe step as a residual against it, then serializes
/// the whole archive with [`ArchiveBuilder::finish`].
pub struct ArchiveBuilder {
    config: ArchiveConfig,
    shape: Shape,
    variables: Vec<String>,
    /// Chain base per variable: the composed reconstruction of the latest
    /// pushed step at the reference fidelity.
    bases: Vec<Option<ArrayD<f64>>>,
    /// Per step, per variable: kind + serialized embedded container.
    steps: Vec<Vec<(StepKind, Vec<u8>)>>,
}

impl ArchiveBuilder {
    /// Start an archive of `variables` over the fixed domain `shape`.
    pub fn new(variables: Vec<String>, shape: Shape, config: ArchiveConfig) -> Result<Self> {
        config.validate()?;
        if variables.is_empty() || variables.len() as u64 > MAX_VARS {
            return Err(IpcompError::InvalidInput(format!(
                "archive needs 1..={MAX_VARS} variables, got {}",
                variables.len()
            )));
        }
        for name in &variables {
            if name.len() > MAX_NAME {
                return Err(IpcompError::InvalidInput(format!(
                    "variable name exceeds {MAX_NAME} bytes"
                )));
            }
        }
        if shape.is_empty() || shape.len() as u64 > MAX_ELEMENTS {
            return Err(IpcompError::InvalidInput("invalid archive shape".into()));
        }
        let bases = vec![None; variables.len()];
        Ok(Self {
            config,
            shape,
            variables,
            bases,
            steps: Vec::new(),
        })
    }

    /// Number of steps pushed so far.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Append one timestep: `fields[v]` is variable `v`'s snapshot. Returns
    /// the step index. The step is a keyframe when its index is a multiple
    /// of the keyframe interval, a residual against the chain base
    /// otherwise.
    pub fn push_step(&mut self, fields: &[ArrayD<f64>]) -> Result<usize> {
        if fields.len() != self.variables.len() {
            return Err(IpcompError::InvalidInput(format!(
                "expected {} fields, got {}",
                self.variables.len(),
                fields.len()
            )));
        }
        let step = self.steps.len();
        if step as u64 >= MAX_STEPS
            || ((step as u64 + 1) * self.variables.len() as u64) > MAX_ENTRIES
        {
            return Err(IpcompError::InvalidInput(
                "archive step limit reached".into(),
            ));
        }
        let kind = if step.is_multiple_of(self.config.keyframe_interval) {
            StepKind::Keyframe
        } else {
            StepKind::Residual
        };
        let mut encoded = Vec::with_capacity(fields.len());
        for (v, field) in fields.iter().enumerate() {
            if field.shape() != &self.shape {
                return Err(IpcompError::InvalidInput(format!(
                    "variable {v} shape {:?} does not match archive shape {:?}",
                    field.shape().dims(),
                    self.shape.dims()
                )));
            }
            let payload = match kind {
                StepKind::Keyframe => field.clone(),
                StepKind::Residual => {
                    let base = self.bases[v]
                        .as_ref()
                        .expect("residual step always has a predecessor base");
                    sub_fields(field, base)
                }
            };
            let compressed = crate::compressor::compress(
                &payload,
                self.config.finest_bound,
                &self.config.codec,
            )?;
            let bytes = compressed.to_bytes();
            // Derive the chain base through the exact read path the archive
            // decoder uses (serialized bytes → metadata map → progressive
            // retrieve at the reference bound), so encoder and decoder can
            // never disagree on a single bit of the base.
            let delta = decode_reference(&bytes, self.config.reference_bound)?;
            self.bases[v] = Some(match (kind, self.bases[v].take()) {
                (StepKind::Keyframe, _) => delta,
                (StepKind::Residual, Some(base)) => add_fields(&base, &delta),
                (StepKind::Residual, None) => {
                    unreachable!("residual step always has a predecessor base")
                }
            });
            encoded.push((kind, bytes));
        }
        self.steps.push(encoded);
        Ok(step)
    }

    /// Serialize the archive (metadata prefix + embedded containers).
    pub fn finish(self) -> Result<Vec<u8>> {
        if self.steps.is_empty() {
            return Err(IpcompError::InvalidInput(
                "archive needs at least one step".into(),
            ));
        }
        let vars = self.variables.len();
        let steps = self.steps.len();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION_ARCHIVE.to_le_bytes());
        out.extend_from_slice(&(steps as u32).to_le_bytes());
        out.extend_from_slice(&(vars as u32).to_le_bytes());
        out.extend_from_slice(&(self.config.keyframe_interval as u32).to_le_bytes());
        out.extend_from_slice(&self.config.reference_bound.to_le_bytes());
        out.extend_from_slice(&self.config.finest_bound.to_le_bytes());
        out.push(self.shape.ndim() as u8);
        for &d in self.shape.dims() {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for name in &self.variables {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        // Directory: 17 bytes per entry, step-major, offsets assigned in
        // payload order.
        let meta_len = out.len() + steps * vars * 17;
        let mut offset = meta_len as u64;
        for step in &self.steps {
            for (kind, bytes) in step {
                out.push(kind.id());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
                offset += bytes.len() as u64;
            }
        }
        debug_assert_eq!(out.len(), meta_len);
        for step in &self.steps {
            for (_, bytes) in step {
                out.extend_from_slice(bytes);
            }
        }
        Ok(out)
    }
}

/// Decode the serialized container `bytes` at the reference `bound`, through
/// the same map/source path [`ArchiveReader`] uses.
fn decode_reference(bytes: &[u8], bound: f64) -> Result<ArrayD<f64>> {
    let source: Arc<dyn ChunkSource> = Arc::new(MemorySource::new(bytes.to_vec()));
    let map = Arc::new(ContainerMap::open(&source)?);
    let mut dec = ProgressiveDecoder::from_shared_source(source, map);
    Ok(dec.retrieve(RetrievalRequest::ErrorBound(bound))?.data)
}

/// The encode-independent-then-retrieve composition an archive retrieval
/// must be bit-identical to: every step's payload (field or residual) is
/// compressed as its own standalone container, each delta is retrieved at
/// `request` (and at the reference bound for chaining), and residual steps
/// are composed against the reference reconstruction of their predecessor.
///
/// Because a keyframe step's embedded container is byte-identical to the
/// standalone `compress` of the same field, and the codec is deterministic,
/// [`ArchiveReader`] must reproduce this sequence *exactly* — the
/// equivalence tests, the proptest suite, and `bench_timeseries` all assert
/// against it.
pub fn composition_reference(
    fields: &[ArrayD<f64>],
    config: &ArchiveConfig,
    request: RetrievalRequest,
) -> Result<Vec<ArrayD<f64>>> {
    config.validate()?;
    let mut base: Option<ArrayD<f64>> = None;
    let mut out = Vec::with_capacity(fields.len());
    for (t, field) in fields.iter().enumerate() {
        let keyframe = t % config.keyframe_interval == 0;
        let payload = if keyframe {
            field.clone()
        } else {
            sub_fields(field, base.as_ref().expect("step 0 is a keyframe"))
        };
        let c = crate::compress(&payload, config.finest_bound, &config.codec)?;
        let delta_out = ProgressiveDecoder::new(&c).retrieve(request)?.data;
        let delta_ref = ProgressiveDecoder::new(&c)
            .retrieve(RetrievalRequest::ErrorBound(config.reference_bound))?
            .data;
        let (value, next_base) = if keyframe {
            (delta_out, delta_ref)
        } else {
            let b = base.as_ref().expect("step 0 is a keyframe");
            (add_fields(b, &delta_out), add_fields(b, &delta_ref))
        };
        out.push(value);
        base = Some(next_base);
    }
    Ok(out)
}

fn add_fields(a: &ArrayD<f64>, b: &ArrayD<f64>) -> ArrayD<f64> {
    debug_assert_eq!(a.shape(), b.shape());
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x + y)
        .collect();
    ArrayD::from_vec(a.shape().clone(), data)
}

fn sub_fields(a: &ArrayD<f64>, b: &ArrayD<f64>) -> ArrayD<f64> {
    debug_assert_eq!(a.shape(), b.shape());
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x - y)
        .collect();
    ArrayD::from_vec(a.shape().clone(), data)
}

/// Parsed archive metadata: framing header, directory, and one
/// [`ContainerMap`] per embedded step container — everything retrieval
/// planning needs, built from ranged reads over the metadata prefix plus
/// each embedded container's own metadata (payload chunks are never
/// touched).
#[derive(Debug)]
pub struct ArchiveMap {
    num_steps: usize,
    variables: Vec<String>,
    keyframe_interval: usize,
    reference_bound: f64,
    finest_bound: f64,
    dims: Vec<usize>,
    /// Step-major: `entries[step * num_vars + var]`.
    entries: Vec<ArchiveEntry>,
    /// Parallel to `entries`.
    maps: Vec<Arc<ContainerMap>>,
    meta_len: u64,
    total_len: u64,
}

impl ArchiveMap {
    /// Parse an archive's metadata from ranged reads.
    pub fn open(source: &dyn ChunkSource) -> Result<Self> {
        let total_len = source.len();
        let mut cur = MetaReader::new(source, total_len);
        let magic = cur.read_exact(4)?;
        if magic != MAGIC[..] {
            return Err(IpcompError::CorruptContainer("bad magic"));
        }
        let version = cur.read_u32()?;
        if version != VERSION_ARCHIVE {
            return Err(IpcompError::CorruptContainer(
                "not a version-4 archive container",
            ));
        }
        let num_steps = cur.read_u32()? as u64;
        let num_vars = cur.read_u32()? as u64;
        if num_steps == 0 || num_steps > MAX_STEPS {
            return Err(IpcompError::CorruptContainer("implausible step count"));
        }
        if num_vars == 0 || num_vars > MAX_VARS {
            return Err(IpcompError::CorruptContainer("implausible variable count"));
        }
        if num_steps * num_vars > MAX_ENTRIES {
            return Err(IpcompError::CorruptContainer("implausible directory size"));
        }
        let keyframe_interval = cur.read_u32()? as usize;
        if keyframe_interval == 0 {
            return Err(IpcompError::CorruptContainer("zero keyframe interval"));
        }
        let reference_bound = cur.read_f64()?;
        let finest_bound = cur.read_f64()?;
        if !(finest_bound.is_finite()
            && finest_bound > 0.0
            && reference_bound.is_finite()
            && reference_bound >= finest_bound)
        {
            return Err(IpcompError::CorruptContainer("implausible archive bounds"));
        }
        let ndim = cur.read_u8()? as usize;
        if ndim == 0 || ndim > ipc_tensor::MAX_DIMS {
            return Err(IpcompError::CorruptContainer("implausible dimensionality"));
        }
        let mut dims = Vec::with_capacity(ndim);
        let mut elements = 1u64;
        for _ in 0..ndim {
            let d = cur.read_u64()?;
            if d == 0 || d > MAX_ELEMENTS {
                return Err(IpcompError::CorruptContainer("implausible dimension"));
            }
            elements = elements.saturating_mul(d);
            dims.push(d as usize);
        }
        if elements > MAX_ELEMENTS {
            return Err(IpcompError::CorruptContainer("implausible element count"));
        }
        let mut variables = Vec::with_capacity(num_vars as usize);
        for _ in 0..num_vars {
            let len = cur.read_u16()? as usize;
            if len > MAX_NAME {
                return Err(IpcompError::CorruptContainer("implausible variable name"));
            }
            let bytes = cur.read_exact(len)?;
            let name = String::from_utf8(bytes)
                .map_err(|_| IpcompError::CorruptContainer("variable name not utf-8"))?;
            variables.push(name);
        }
        let mut entries = Vec::with_capacity((num_steps * num_vars) as usize);
        for _ in 0..num_steps * num_vars {
            let kind = StepKind::from_id(cur.read_u8()?)?;
            let offset = cur.read_u64()?;
            let len = cur.read_u64()?;
            entries.push(ArchiveEntry { kind, offset, len });
        }
        let meta_len = cur.consumed() as u64;
        for (i, e) in entries.iter().enumerate() {
            if e.offset < meta_len
                || e.len == 0
                || e.offset
                    .checked_add(e.len)
                    .is_none_or(|end| end > total_len)
            {
                return Err(IpcompError::CorruptContainer(
                    "archive entry outside payload region",
                ));
            }
            // Step 0 of every variable must be independent, or no chain has
            // an anchor.
            if i < num_vars as usize && e.kind != StepKind::Keyframe {
                return Err(IpcompError::CorruptContainer(
                    "archive step 0 must be a keyframe",
                ));
            }
        }
        let mut maps = Vec::with_capacity(entries.len());
        for e in &entries {
            let window = OffsetSource::new(source, e.offset, e.len)?;
            let map = ContainerMap::open(&window)?;
            if map.header.dims != dims {
                return Err(IpcompError::CorruptContainer(
                    "embedded container dims disagree with archive header",
                ));
            }
            maps.push(Arc::new(map));
        }
        Ok(Self {
            num_steps: num_steps as usize,
            variables,
            keyframe_interval,
            reference_bound,
            finest_bound,
            dims,
            entries,
            maps,
            meta_len,
            total_len,
        })
    }

    /// Number of timesteps in the archive.
    pub fn num_steps(&self) -> usize {
        self.num_steps
    }

    /// Variable names, in storage order.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// Keyframe cadence the archive was encoded with.
    pub fn keyframe_interval(&self) -> usize {
        self.keyframe_interval
    }

    /// Fidelity the chain bases were derived at.
    pub fn reference_bound(&self) -> f64 {
        self.reference_bound
    }

    /// Error bound every step's container was encoded with.
    pub fn finest_bound(&self) -> f64 {
        self.finest_bound
    }

    /// Domain dimensions shared by every step.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Bytes of the metadata prefix (header + directory).
    pub fn meta_len(&self) -> u64 {
        self.meta_len
    }

    /// Total serialized archive size.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Directory entry of `(step, variable)`.
    pub fn entry(&self, step: usize, variable: usize) -> &ArchiveEntry {
        &self.entries[step * self.variables.len() + variable]
    }

    /// Metadata map of the embedded container at `(step, variable)`.
    pub fn container(&self, step: usize, variable: usize) -> &Arc<ContainerMap> {
        &self.maps[step * self.variables.len() + variable]
    }

    /// The chain anchor of `start`: the nearest keyframe at or before it.
    /// Reconstructing `start` needs exactly the steps `anchor..=start`.
    pub fn chain_anchor(&self, variable: usize, start: usize) -> usize {
        (0..=start)
            .rev()
            .find(|&s| self.entry(s, variable).kind == StepKind::Keyframe)
            .expect("step 0 is always a keyframe")
    }
}

/// Incremental metadata reader: pulls `META_FETCH`-sized blocks on demand so
/// parsing never touches payload bytes.
struct MetaReader<'s> {
    source: &'s dyn ChunkSource,
    total: u64,
    buf: Vec<u8>,
    pos: usize,
}

impl<'s> MetaReader<'s> {
    fn new(source: &'s dyn ChunkSource, total: u64) -> Self {
        Self {
            source,
            total,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn ensure(&mut self, n: usize) -> Result<()> {
        while self.buf.len() < self.pos + n {
            let off = self.buf.len() as u64;
            if off >= self.total {
                return Err(IpcompError::CorruptContainer("archive metadata truncated"));
            }
            let take = META_FETCH.min((self.total - off) as usize);
            let bytes = self.source.read_range(ByteRange::new(off, take))?;
            if bytes.len() != take {
                return Err(IpcompError::CorruptContainer("source returned short read"));
            }
            self.buf.extend_from_slice(&bytes);
        }
        Ok(())
    }

    fn read_exact(&mut self, n: usize) -> Result<Vec<u8>> {
        self.ensure(n)?;
        let out = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(out)
    }

    fn read_u8(&mut self) -> Result<u8> {
        Ok(self.read_exact(1)?[0])
    }

    fn read_u16(&mut self) -> Result<u16> {
        let b = self.read_exact(2)?;
        Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    fn read_u32(&mut self) -> Result<u32> {
        let b = self.read_exact(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn read_u64(&mut self) -> Result<u64> {
        let b = self.read_exact(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn read_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    fn consumed(&self) -> usize {
        self.pos
    }
}

/// A step-spanning retrieval request: one variable, a half-open step range,
/// a fidelity, and an optional spatial window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchiveRequest {
    /// Index into [`ArchiveMap::variables`].
    pub variable: usize,
    /// First step to reconstruct.
    pub start: usize,
    /// One past the last step to reconstruct.
    pub end: usize,
    /// Fidelity each reconstructed step is retrieved at. Must not be the
    /// [`RetrievalRequest::Roi`] variant — spatial scoping goes through
    /// [`ArchiveRequest::roi`] so it applies to the chain too.
    pub fidelity: RetrievalRequest,
    /// When set, every reconstruction (chain bases included) is scoped to
    /// this window; returned arrays have the window's dims.
    pub roi: Option<RoiBox>,
}

impl ArchiveRequest {
    /// A full-domain request over `steps` at `fidelity`.
    pub fn steps(
        variable: usize,
        steps: std::ops::Range<usize>,
        fidelity: RetrievalRequest,
    ) -> Self {
        Self {
            variable,
            start: steps.start,
            end: steps.end,
            fidelity,
            roi: None,
        }
    }

    fn validate(&self, map: &ArchiveMap) -> Result<()> {
        if self.variable >= map.variables.len() {
            return Err(IpcompError::InvalidInput(format!(
                "variable {} out of range ({} variables)",
                self.variable,
                map.variables.len()
            )));
        }
        if self.start >= self.end || self.end > map.num_steps {
            return Err(IpcompError::InvalidInput(format!(
                "step range {}..{} invalid for {}-step archive",
                self.start, self.end, map.num_steps
            )));
        }
        if matches!(self.fidelity, RetrievalRequest::Roi { .. }) {
            return Err(IpcompError::InvalidInput(
                "use ArchiveRequest::roi for spatial scoping".into(),
            ));
        }
        if let Some(roi) = &self.roi {
            roi.validate(&map.dims)?;
        }
        Ok(())
    }
}

/// What one scheduled step contributes to a request (see
/// [`ArchiveReader::step_schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepPlan {
    /// The archive step.
    pub step: usize,
    /// Whether the step's reference-fidelity chain base must be computed
    /// (some later step in the request window is a residual against it).
    pub chain: bool,
    /// Whether the step is part of the requested output range.
    pub output: bool,
}

/// One reconstructed step of an archive retrieval.
#[derive(Debug, Clone)]
pub struct StepRetrieval {
    /// The archive step this reconstruction belongs to.
    pub step: usize,
    /// How the step was stored.
    pub kind: StepKind,
    /// The reconstruction at the requested fidelity (window dims under an
    /// ROI request).
    pub data: ArrayD<f64>,
    /// Archive bytes this step's loads fetched (chain + output).
    pub bytes_step: usize,
    /// Point-wise error bound of `data` against the original field.
    pub error_bound: f64,
}

/// Progress of an archive retrieval, emitted as
/// [`StreamEvent::StepReconstructed`] once per output step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepProgress {
    /// Variable being retrieved.
    pub variable: usize,
    /// The step just reconstructed.
    pub step: usize,
    /// How the step was stored.
    pub kind: StepKind,
    /// Output steps emitted so far for this request (1-based).
    pub steps_done: usize,
    /// Output steps the request spans.
    pub steps_in_request: usize,
    /// Archive bytes this step's loads fetched.
    pub bytes_step: usize,
    /// Cumulative archive bytes the reader has fetched.
    pub bytes_total: usize,
    /// Point-wise error bound of the emitted reconstruction.
    pub error_bound: f64,
}

/// Byte accounting of one archive retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveOutcome {
    /// Output steps reconstructed.
    pub steps: usize,
    /// Archive bytes fetched by this request alone.
    pub bytes_this_request: usize,
    /// Cumulative archive bytes fetched since the reader was created.
    pub bytes_total: usize,
}

/// The committed chain state of one variable.
struct ChainBase {
    step: usize,
    roi: Option<RoiBox>,
    data: ArrayD<f64>,
}

/// Step-spanning progressive reader over a serialized archive.
///
/// Each step decode runs on a fresh [`ProgressiveDecoder`] over the step's
/// [`OffsetSource`] window, so per-step rollback semantics are inherited
/// unchanged; the reader adds the chain composition, per-variable chain
/// caching (a sliding window of consecutive requests re-decodes only the
/// steps it hasn't seen), and per-step commit/rollback of its own state.
pub struct ArchiveReader {
    source: Arc<dyn ChunkSource>,
    map: Arc<ArchiveMap>,
    bases: Vec<Option<ChainBase>>,
    bytes_total: usize,
}

impl ArchiveReader {
    /// Read through `source` with an already-parsed map.
    pub fn new(source: Arc<dyn ChunkSource>, map: Arc<ArchiveMap>) -> Self {
        let bases = (0..map.variables.len()).map(|_| None).collect();
        Self {
            source,
            map,
            bases,
            bytes_total: 0,
        }
    }

    /// Parse the archive's metadata from `source` and open a reader.
    pub fn open(source: Arc<dyn ChunkSource>) -> Result<Self> {
        let map = Arc::new(ArchiveMap::open(&source)?);
        Ok(Self::new(source, map))
    }

    /// The archive's metadata map.
    pub fn map(&self) -> &Arc<ArchiveMap> {
        &self.map
    }

    /// Cumulative archive bytes fetched by this reader.
    pub fn bytes_loaded(&self) -> usize {
        self.bytes_total
    }

    /// The step the cached chain base of `variable` sits at, if any
    /// (diagnostics / tests).
    pub fn chain_cache_step(&self, variable: usize) -> Option<usize> {
        self.bases
            .get(variable)
            .and_then(|b| b.as_ref())
            .map(|b| b.step)
    }

    /// Drop all cached chain bases (e.g. to force a cold re-read).
    pub fn clear_chain_cache(&mut self) {
        for b in &mut self.bases {
            *b = None;
        }
    }

    /// The steps a request will decode, given the current chain cache: the
    /// keyframe-anchored chain prefix (`chain` only), then the output window
    /// (`output`, with `chain` while a later residual still needs the base).
    /// This is what the store planner lowers to byte ranges.
    pub fn step_schedule(&self, request: &ArchiveRequest) -> Result<Vec<StepPlan>> {
        request.validate(&self.map)?;
        let var = request.variable;
        let anchor = self.map.chain_anchor(var, request.start);
        let resume = match &self.bases[var] {
            // A cached base at step b (same spatial scope) lets the chain
            // resume at b+1 — unless a keyframe at or before `start` resets
            // the chain anyway.
            Some(b) if b.roi == request.roi && b.step >= anchor && b.step < request.start => {
                b.step + 1
            }
            _ => anchor,
        };
        Ok((resume..request.end)
            .map(|step| StepPlan {
                step,
                chain: step + 1 < request.end
                    && self.map.entry(step + 1, var).kind == StepKind::Residual,
                output: step >= request.start,
            })
            .collect())
    }

    /// Reconstruct every step of `request`, collecting the results.
    pub fn retrieve_steps(&mut self, request: &ArchiveRequest) -> Result<Vec<StepRetrieval>> {
        let mut out = Vec::with_capacity(request.end.saturating_sub(request.start));
        self.retrieve_steps_streaming_events(request, |_| {}, |s| out.push(s))?;
        Ok(out)
    }

    /// Reconstruct every step of `request`, streaming progress: the output
    /// decodes' own [`StreamEvent::Region`] / [`StreamEvent::LevelReconstructed`]
    /// events are forwarded as they land, one
    /// [`StreamEvent::StepReconstructed`] fires per completed output step,
    /// and each reconstruction is handed to `on_step`.
    ///
    /// State commits per completed step: on failure the reader (chain cache
    /// and byte accounting) is exactly as after the last successful step,
    /// and already-emitted reconstructions remain valid.
    pub fn retrieve_steps_streaming_events(
        &mut self,
        request: &ArchiveRequest,
        mut on_event: impl FnMut(StreamEvent),
        mut on_step: impl FnMut(StepRetrieval),
    ) -> Result<ArchiveOutcome> {
        self.retrieve_steps_impl(request, &mut on_event, &mut on_step)
    }

    fn retrieve_steps_impl(
        &mut self,
        request: &ArchiveRequest,
        on_event: &mut dyn FnMut(StreamEvent),
        on_step: &mut dyn FnMut(StepRetrieval),
    ) -> Result<ArchiveOutcome> {
        let schedule = self.step_schedule(request)?;
        let var = request.variable;
        let metrics = crate::obs::archive_metrics();
        let mut span = ipc_telemetry::span("archive", "retrieve_steps")
            .arg("variable", var as u64)
            .arg("start", request.start as u64)
            .arg("end", request.end as u64)
            .arg("scheduled", schedule.len() as u64);
        let reference = RetrievalRequest::ErrorBound(self.map.reference_bound);
        let first = schedule.first().expect("validated range is non-empty");
        // Resuming mid-chain starts from the cached base; a fresh chain
        // starts at a keyframe and needs none.
        let mut prev: Option<ArrayD<f64>> =
            if first.step > self.map.chain_anchor(var, request.start) {
                metrics.chain_reuse.incr();
                self.bases[var].as_ref().map(|b| b.data.clone())
            } else {
                None
            };
        let steps_in_request = request.end - request.start;
        let mut steps_done = 0usize;
        let mut bytes_request = 0usize;
        for plan in schedule {
            let step_started = ipc_telemetry::now_nanos();
            let entry = *self.map.entry(plan.step, var);
            let cmap = Arc::clone(self.map.container(plan.step, var));
            let window: Arc<dyn ChunkSource> = Arc::new(OffsetSource::new(
                Arc::clone(&self.source),
                entry.offset,
                entry.len,
            )?);
            let mut bytes_step = 0usize;
            // When the requested fidelity *is* the reference fidelity, one
            // decode serves both the output and the chain.
            let shared = plan.chain && plan.output && request.fidelity == reference;

            // Output decode at the requested fidelity, streaming inner events.
            let output = if plan.output {
                let mut dec =
                    ProgressiveDecoder::from_shared_source(Arc::clone(&window), Arc::clone(&cmap));
                let r = match request.roi {
                    Some(bounds) => dec.retrieve_roi(bounds, request.fidelity)?,
                    None => dec.retrieve_streaming_events(request.fidelity, &mut *on_event)?,
                };
                bytes_step += r.bytes_total;
                Some(r)
            } else {
                None
            };
            // Chain decode at the reference fidelity (fresh decoder, so the
            // loaded plane set matches the encoder's base derivation exactly
            // even when the output plan differs).
            let chain_delta = if plan.chain {
                if shared {
                    output.as_ref().map(|r| r.data.clone())
                } else {
                    let mut dec = ProgressiveDecoder::from_shared_source(
                        Arc::clone(&window),
                        Arc::clone(&cmap),
                    );
                    let r = match request.roi {
                        Some(bounds) => dec.retrieve_roi(bounds, reference)?,
                        None => dec.retrieve(reference)?,
                    };
                    bytes_step += r.bytes_total;
                    Some(r.data)
                }
            } else {
                None
            };

            // All loads for this step succeeded — compose, commit, emit.
            let output = match output {
                Some(r) => {
                    let data = compose(entry.kind, prev.as_ref(), &r.data)?;
                    Some((data, r.error_bound))
                }
                None => None,
            };
            if let Some(delta) = chain_delta {
                let base = compose(entry.kind, prev.as_ref(), &delta)?;
                self.bases[var] = Some(ChainBase {
                    step: plan.step,
                    roi: request.roi,
                    data: base.clone(),
                });
                prev = Some(base);
            }
            self.bytes_total += bytes_step;
            bytes_request += bytes_step;
            match entry.kind {
                StepKind::Keyframe => metrics.keyframes.incr(),
                StepKind::Residual => metrics.residuals.incr(),
            }
            metrics.bytes.add(bytes_step as u64);
            metrics
                .step_ns
                .record(ipc_telemetry::now_nanos().saturating_sub(step_started));
            if let Some((data, error_bound)) = output {
                steps_done += 1;
                metrics.steps.incr();
                on_event(StreamEvent::StepReconstructed(StepProgress {
                    variable: var,
                    step: plan.step,
                    kind: entry.kind,
                    steps_done,
                    steps_in_request,
                    bytes_step,
                    bytes_total: self.bytes_total,
                    error_bound,
                }));
                on_step(StepRetrieval {
                    step: plan.step,
                    kind: entry.kind,
                    data,
                    bytes_step,
                    error_bound,
                });
            }
        }
        span.add_arg("bytes", bytes_request as u64);
        drop(span);
        Ok(ArchiveOutcome {
            steps: steps_done,
            bytes_this_request: bytes_request,
            bytes_total: self.bytes_total,
        })
    }
}

/// Compose a decoded delta with the chain base according to the step kind.
fn compose(kind: StepKind, prev: Option<&ArrayD<f64>>, delta: &ArrayD<f64>) -> Result<ArrayD<f64>> {
    match kind {
        StepKind::Keyframe => Ok(delta.clone()),
        StepKind::Residual => {
            let base = prev.ok_or(IpcompError::CorruptContainer(
                "residual step without a chain base",
            ))?;
            if base.shape() != delta.shape() {
                return Err(IpcompError::CorruptContainer(
                    "chain base shape disagrees with step",
                ));
            }
            Ok(add_fields(base, delta))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::compress;

    fn wave(shape: &Shape, t: f64) -> ArrayD<f64> {
        ArrayD::from_fn(shape.clone(), |c| {
            ((c[0] as f64 * 0.31) + t).sin() * 1.5
                + ((c[1] as f64 * 0.22) - 0.5 * t).cos()
                + c.get(2).map_or(0.0, |&z| z as f64 * 0.01)
        })
    }

    fn toy_archive(steps: usize, interval: usize) -> (Vec<ArrayD<f64>>, Vec<u8>, ArchiveConfig) {
        let shape = Shape::d3(12, 10, 8);
        let fields: Vec<ArrayD<f64>> = (0..steps).map(|t| wave(&shape, t as f64 * 0.15)).collect();
        let config = ArchiveConfig {
            keyframe_interval: interval,
            reference_bound: 1e-3,
            finest_bound: 1e-5,
            codec: Config::default(),
        };
        let mut builder = ArchiveBuilder::new(vec!["wave".into()], shape, config.clone()).unwrap();
        for f in &fields {
            builder.push_step(std::slice::from_ref(f)).unwrap();
        }
        (fields, builder.finish().unwrap(), config)
    }

    /// Reference composition from first principles: encode each step's
    /// keyframe/residual field as a standalone container with the public
    /// `compress`, decode with the public decoder, sum by hand.
    fn composition_reference(
        fields: &[ArrayD<f64>],
        config: &ArchiveConfig,
        request: RetrievalRequest,
    ) -> Vec<ArrayD<f64>> {
        super::composition_reference(fields, config, request).unwrap()
    }

    #[test]
    fn archive_roundtrip_is_bit_identical_to_composition() {
        let (fields, bytes, config) = toy_archive(7, 3);
        let request = RetrievalRequest::ErrorBound(1e-4);
        let reference = composition_reference(&fields, &config, request);
        let mut reader = ArchiveReader::open(Arc::new(MemorySource::new(bytes))).unwrap();
        let steps = reader
            .retrieve_steps(&ArchiveRequest::steps(0, 0..7, request))
            .unwrap();
        assert_eq!(steps.len(), 7);
        for (s, want) in steps.iter().zip(&reference) {
            assert_eq!(
                s.data.as_slice(),
                want.as_slice(),
                "step {} diverged from composition reference",
                s.step
            );
            assert!(s.error_bound <= 1e-4 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn mid_range_request_decodes_chain_prefix_silently() {
        let (fields, bytes, config) = toy_archive(8, 4);
        let request = RetrievalRequest::ErrorBound(1e-3);
        let reference = composition_reference(&fields, &config, request);
        let mut reader = ArchiveReader::open(Arc::new(MemorySource::new(bytes))).unwrap();
        let mut seen = Vec::new();
        reader
            .retrieve_steps_streaming_events(
                &ArchiveRequest::steps(0, 6..8, request),
                |_| {},
                |s| seen.push(s),
            )
            .unwrap();
        // Only output steps are emitted, but they match the reference chain.
        assert_eq!(seen.iter().map(|s| s.step).collect::<Vec<_>>(), vec![6, 7]);
        for s in &seen {
            assert_eq!(s.data.as_slice(), reference[s.step].as_slice());
        }
    }

    #[test]
    fn sliding_window_reuses_cached_chain() {
        let (_, bytes, _) = toy_archive(8, 8);
        let request = RetrievalRequest::ErrorBound(1e-3);
        let mut reader = ArchiveReader::open(Arc::new(MemorySource::new(bytes.clone()))).unwrap();
        let first = reader
            .retrieve_steps(&ArchiveRequest::steps(0, 3..5, request))
            .unwrap();
        // Chain base sits at step 3 (step 4 is last and needs no successor).
        assert_eq!(reader.chain_cache_step(0), Some(3));
        let schedule = reader
            .step_schedule(&ArchiveRequest::steps(0, 4..6, request))
            .unwrap();
        assert_eq!(schedule.first().map(|p| p.step), Some(4));
        let second = reader
            .retrieve_steps(&ArchiveRequest::steps(0, 4..6, request))
            .unwrap();
        // The overlapping step decodes identically via the cached chain.
        let mut cold = ArchiveReader::open(Arc::new(MemorySource::new(bytes))).unwrap();
        let cold_steps = cold
            .retrieve_steps(&ArchiveRequest::steps(0, 4..6, request))
            .unwrap();
        assert_eq!(first[1].data.as_slice(), second[0].data.as_slice());
        for (a, b) in second.iter().zip(&cold_steps) {
            assert_eq!(a.data.as_slice(), b.data.as_slice());
        }
    }

    fn toy_roi_archive(steps: usize, interval: usize) -> Vec<u8> {
        let shape = Shape::d3(12, 10, 8);
        let config = ArchiveConfig {
            keyframe_interval: interval,
            reference_bound: 1e-3,
            finest_bound: 1e-5,
            codec: Config::with_precincts(&[6, 5, 4]),
        };
        let mut builder = ArchiveBuilder::new(vec!["wave".into()], shape.clone(), config).unwrap();
        for t in 0..steps {
            let f = wave(&shape, t as f64 * 0.15);
            builder.push_step(std::slice::from_ref(&f)).unwrap();
        }
        builder.finish().unwrap()
    }

    #[test]
    fn roi_retrieval_matches_crop_of_full() {
        let bytes = toy_roi_archive(6, 3);
        let request = RetrievalRequest::ErrorBound(1e-3);
        let mut full = ArchiveReader::open(Arc::new(MemorySource::new(bytes.clone()))).unwrap();
        let full_steps = full
            .retrieve_steps(&ArchiveRequest::steps(0, 2..6, request))
            .unwrap();
        let roi = RoiBox::new(&[3, 2, 1], &[9, 8, 6]);
        let mut scoped = ArchiveReader::open(Arc::new(MemorySource::new(bytes))).unwrap();
        let roi_steps = scoped
            .retrieve_steps(&ArchiveRequest {
                variable: 0,
                start: 2,
                end: 6,
                fidelity: request,
                roi: Some(roi),
            })
            .unwrap();
        for (f, r) in full_steps.iter().zip(&roi_steps) {
            let mut crop = Vec::new();
            for x in 3..9 {
                for y in 2..8 {
                    for z in 1..6 {
                        crop.push(*f.data.get(&[x, y, z]));
                    }
                }
            }
            assert_eq!(r.data.as_slice(), &crop[..], "step {}", f.step);
        }
    }

    #[test]
    fn failed_step_load_rolls_back_exactly() {
        use std::sync::atomic::{AtomicU64, Ordering};

        /// Fails every read once `trip` requests have been served.
        struct TripSource {
            inner: MemorySource,
            served: AtomicU64,
            trip: AtomicU64,
        }
        impl TripSource {
            fn new(bytes: Vec<u8>, trip: u64) -> Self {
                Self {
                    inner: MemorySource::new(bytes),
                    served: AtomicU64::new(0),
                    trip: AtomicU64::new(trip),
                }
            }
            fn heal(&self) {
                self.trip.store(u64::MAX, Ordering::SeqCst);
            }
        }
        impl ChunkSource for TripSource {
            fn len(&self) -> u64 {
                self.inner.len()
            }
            fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<crate::source::Bytes>> {
                if self.served.fetch_add(1, Ordering::SeqCst) >= self.trip.load(Ordering::SeqCst) {
                    return Err(IpcompError::Io("injected fault".into()));
                }
                self.inner.read_ranges(ranges)
            }
        }

        let (_, bytes, _) = toy_archive(8, 8);
        let request = ArchiveRequest::steps(0, 0..8, RetrievalRequest::ErrorBound(1e-3));
        // Count requests of a clean full run, then trip partway through the
        // retrieval (always past map parsing, so open itself succeeds).
        let clean_src = Arc::new(TripSource::new(bytes.clone(), u64::MAX));
        let mut clean =
            ArchiveReader::open(Arc::clone(&clean_src) as Arc<dyn ChunkSource>).unwrap();
        let open_reqs = clean_src.served.load(Ordering::SeqCst);
        let want = clean.retrieve_steps(&request).unwrap();
        let total = clean_src.served.load(Ordering::SeqCst);
        let span = total - open_reqs;
        assert!(span >= 3, "retrieval must issue several requests");

        for trip in [
            open_reqs + span / 3,
            open_reqs + span / 2,
            open_reqs + 2 * span / 3,
        ] {
            let src = Arc::new(TripSource::new(bytes.clone(), trip));
            let mut reader = ArchiveReader::open(Arc::clone(&src) as Arc<dyn ChunkSource>).unwrap();
            let bytes_before_fail = reader.bytes_loaded();
            let cache_before_fail = reader.chain_cache_step(0);
            let err = reader.retrieve_steps(&request);
            if err.is_ok() {
                continue; // map parse consumed enough requests to finish
            }
            // State either advanced whole steps or stayed put — never a
            // partial step.
            assert!(reader.bytes_loaded() >= bytes_before_fail);
            let _ = cache_before_fail;
            // Heal the source and retry: the surviving chain state must
            // produce bit-identical reconstructions.
            src.heal();
            let healed = reader.retrieve_steps(&request).unwrap();
            assert_eq!(healed.len(), want.len());
            for (a, b) in healed.iter().zip(&want) {
                assert_eq!(a.data.as_slice(), b.data.as_slice(), "trip={trip}");
            }
        }
    }

    #[test]
    fn archive_map_rejects_malformed_framing() {
        let (_, bytes, _) = toy_archive(3, 2);
        // v2 container bytes are not an archive.
        let field = wave(&Shape::d3(8, 8, 8), 0.0);
        let v2 = compress(&field, 1e-4, &Config::default())
            .unwrap()
            .to_bytes();
        assert!(ArchiveMap::open(&MemorySource::new(v2)).is_err());
        // Truncations anywhere in the metadata prefix fail cleanly.
        for cut in [0, 3, 9, 20, 40, 60] {
            let t = bytes[..cut.min(bytes.len())].to_vec();
            assert!(
                ArchiveMap::open(&MemorySource::new(t)).is_err(),
                "cut={cut}"
            );
        }
        // A directory entry pointing past the end fails validation.
        let map = ArchiveMap::open(&MemorySource::new(bytes.clone())).unwrap();
        let mut corrupt = bytes.clone();
        let dir_at = map.meta_len() as usize - 3 * 17; // first entry of 3
        corrupt[dir_at + 1..dir_at + 9].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ArchiveMap::open(&MemorySource::new(corrupt)).is_err());
        // Steps must alternate per the directory, step 0 keyframe enforced.
        let mut bad_kind = bytes;
        bad_kind[dir_at] = StepKind::Residual.id();
        assert!(ArchiveMap::open(&MemorySource::new(bad_kind)).is_err());
    }

    #[test]
    fn degenerate_interval_one_archive_matches_independent_containers() {
        let (fields, bytes, config) = toy_archive(4, 1);
        let map = ArchiveMap::open(&MemorySource::new(bytes.clone())).unwrap();
        for (s, field) in fields.iter().enumerate() {
            assert_eq!(map.entry(s, 0).kind, StepKind::Keyframe);
            let independent = compress(field, config.finest_bound, &config.codec)
                .unwrap()
                .to_bytes();
            let e = map.entry(s, 0);
            assert_eq!(
                &bytes[e.offset as usize..(e.offset + e.len) as usize],
                &independent[..],
                "keyframe step {s} must embed the independent container byte-exactly"
            );
        }
    }

    #[test]
    fn multi_variable_chains_are_independent() {
        let shape = Shape::d3(10, 8, 6);
        let config = ArchiveConfig {
            keyframe_interval: 4,
            reference_bound: 1e-3,
            finest_bound: 1e-5,
            codec: Config::default(),
        };
        let a: Vec<ArrayD<f64>> = (0..5).map(|t| wave(&shape, t as f64 * 0.1)).collect();
        let b: Vec<ArrayD<f64>> = (0..5).map(|t| wave(&shape, 2.0 + t as f64 * 0.2)).collect();
        let mut builder =
            ArchiveBuilder::new(vec!["a".into(), "b".into()], shape.clone(), config.clone())
                .unwrap();
        for t in 0..5 {
            builder.push_step(&[a[t].clone(), b[t].clone()]).unwrap();
        }
        let bytes = builder.finish().unwrap();
        let req = RetrievalRequest::ErrorBound(1e-4);
        let ref_a = composition_reference(&a, &config, req);
        let ref_b = composition_reference(&b, &config, req);
        let mut reader = ArchiveReader::open(Arc::new(MemorySource::new(bytes))).unwrap();
        assert_eq!(
            reader.map().variables(),
            &["a".to_string(), "b".to_string()]
        );
        let got_b = reader
            .retrieve_steps(&ArchiveRequest::steps(1, 0..5, req))
            .unwrap();
        let got_a = reader
            .retrieve_steps(&ArchiveRequest::steps(0, 0..5, req))
            .unwrap();
        for t in 0..5 {
            assert_eq!(got_a[t].data.as_slice(), ref_a[t].as_slice());
            assert_eq!(got_b[t].data.as_slice(), ref_b[t].as_slice());
        }
    }
}
