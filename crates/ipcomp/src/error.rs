//! Error types for the IPComp public API.

use ipc_codecs::CodecError;

/// Errors surfaced by compression, serialization, or retrieval.
#[derive(Debug, Clone, PartialEq)]
pub enum IpcompError {
    /// A lossless codec failed while reading a compressed block (corruption or
    /// truncation).
    Codec(CodecError),
    /// The caller supplied inconsistent parameters (e.g. a non-positive error bound).
    InvalidInput(String),
    /// The compressed container is malformed.
    CorruptContainer(&'static str),
    /// A storage backend failed while fetching container bytes (the message is
    /// the stringified I/O error, kept as text so the variant stays `Clone` +
    /// `PartialEq` like the rest of the enum).
    Io(String),
}

impl From<CodecError> for IpcompError {
    fn from(e: CodecError) -> Self {
        IpcompError::Codec(e)
    }
}

impl From<std::io::Error> for IpcompError {
    fn from(e: std::io::Error) -> Self {
        IpcompError::Io(e.to_string())
    }
}

impl std::fmt::Display for IpcompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpcompError::Codec(e) => write!(f, "codec error: {e}"),
            IpcompError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            IpcompError::CorruptContainer(msg) => write!(f, "corrupt container: {msg}"),
            IpcompError::Io(msg) => write!(f, "storage i/o error: {msg}"),
        }
    }
}

impl std::error::Error for IpcompError {}

/// Convenience alias for IPComp results.
pub type Result<T> = std::result::Result<T, IpcompError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_variants() {
        let e = IpcompError::InvalidInput("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = IpcompError::Codec(CodecError::UnexpectedEof);
        assert!(e.to_string().contains("codec"));
        let e = IpcompError::CorruptContainer("magic");
        assert!(e.to_string().contains("magic"));
    }

    #[test]
    fn codec_error_converts() {
        fn inner() -> Result<()> {
            Err(CodecError::UnexpectedEof)?;
            Ok(())
        }
        assert!(matches!(inner(), Err(IpcompError::Codec(_))));
    }
}
