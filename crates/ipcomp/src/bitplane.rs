//! Predictive negabinary bitplane coding (paper Sec. 4.3–4.4).
//!
//! Each level's quantized residuals are mapped to negabinary, sliced into bitplanes
//! (all coefficients' bit `p` form plane `p`), and each plane is compressed into an
//! independently loadable block. Two refinements give the coder its compression
//! ratio:
//!
//! * **Predictive coding** — the bit stored for plane `p` is the XOR of the raw bit
//!   with its `prefix_bits` more-significant neighbours from the same coefficient
//!   (Table 2 of the paper shows 2 prefix bits minimizes entropy). During decoding
//!   the more-significant planes have already been loaded, so the prediction can be
//!   undone plane by plane.
//! * **Negabinary representation** — keeps high-order planes of near-zero residuals
//!   full of zeros and makes plane truncation additive, so skipping low planes simply
//!   subtracts a bounded, pre-computable amount from each coefficient.
//!
//! The per-level metadata records the exact worst-case truncation loss
//! `‖δy_l(b)‖∞` for every possible number of discarded planes `b`, which is what the
//! optimizer (Sec. 5) consumes.

use ipc_codecs::bitstream::{BitReader, BitWriter};
use ipc_codecs::negabinary::{required_bitplanes, to_negabinary, truncation_loss};
use ipc_codecs::{lzr_compress, lzr_decompress};
use rayon::prelude::*;

use crate::error::{IpcompError, Result};

/// One level's residuals encoded as independently loadable bitplane blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedLevel {
    /// Number of coefficients in the level.
    pub n_values: usize,
    /// Number of significant negabinary bitplanes (planes above this are all zero).
    pub num_planes: u8,
    /// Compressed plane blocks; `planes[p]` holds bit `p` of every coefficient
    /// (`p = 0` is the least significant plane).
    pub planes: Vec<Vec<u8>>,
    /// `trunc_loss[b]` = maximum absolute error, in quantization-code units, incurred
    /// by discarding the `b` least significant planes (`b` ranges `0..=num_planes`).
    pub trunc_loss: Vec<u64>,
}

impl EncodedLevel {
    /// Total compressed size of all plane blocks in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.planes.iter().map(Vec::len).sum()
    }

    /// Compressed size of the `b` least significant planes (the bytes *saved* by
    /// discarding them).
    pub fn saved_bytes(&self, b: u8) -> usize {
        self.planes
            .iter()
            .take(b as usize)
            .map(Vec::len)
            .sum()
    }

    /// Compressed size of the planes that remain loaded when `b` planes are
    /// discarded.
    pub fn loaded_bytes(&self, b: u8) -> usize {
        self.payload_bytes() - self.saved_bytes(b)
    }
}

/// XOR of the `prefix_bits` bits immediately above plane `p` in word `nb`.
#[inline]
fn prefix_parity(nb: u64, p: u32, prefix_bits: u8) -> u64 {
    let mut parity = 0u64;
    for k in 1..=prefix_bits as u32 {
        let plane = p + k;
        if plane < 64 {
            parity ^= (nb >> plane) & 1;
        }
    }
    parity
}

/// Encode one level's quantization codes into bitplane blocks.
pub fn encode_level(
    codes: &[i64],
    prefix_bits: u8,
    predictive: bool,
    parallel: bool,
) -> EncodedLevel {
    let nb: Vec<u64> = codes.iter().map(|&c| to_negabinary(c)).collect();
    let num_planes = required_bitplanes(codes).min(63) as u8;

    // Worst-case truncation loss per discard count, in code units. The per-discard
    // maxima are accumulated into a running maximum so the table is monotone: the
    // optimizer then never sees "discarding more planes costs less error", even
    // though individual negabinary words can momentarily cancel when a higher plane
    // is dropped.
    let mut trunc_loss = vec![0u64; num_planes as usize + 1];
    let mut running = 0u64;
    for (b, loss) in trunc_loss.iter_mut().enumerate() {
        if b == 0 {
            continue;
        }
        let exact = nb
            .iter()
            .map(|&w| truncation_loss(w, b as u32).unsigned_abs())
            .max()
            .unwrap_or(0);
        running = running.max(exact);
        *loss = running;
    }

    let encode_plane = |p: u32| -> Vec<u8> {
        let mut writer = BitWriter::with_capacity_bits(nb.len());
        for &w in &nb {
            let raw = (w >> p) & 1;
            let bit = if predictive {
                raw ^ prefix_parity(w, p, prefix_bits)
            } else {
                raw
            };
            writer.write_bit(bit == 1);
        }
        lzr_compress(&writer.into_bytes())
    };

    let planes: Vec<Vec<u8>> = if parallel && nb.len() > 4096 {
        (0..num_planes as u32)
            .into_par_iter()
            .map(encode_plane)
            .collect()
    } else {
        (0..num_planes as u32).map(encode_plane).collect()
    };

    EncodedLevel {
        n_values: codes.len(),
        num_planes,
        planes,
        trunc_loss,
    }
}

/// Decode planes `[plane_lo, plane_hi)` of `level` into the negabinary accumulators
/// `acc` (one `u64` per coefficient).
///
/// Planes must be decoded from the most significant downwards and `acc` must already
/// contain every plane above `plane_hi` (all zeros for a fresh decoder), because the
/// predictive coding is undone using those more significant bits. The newly decoded
/// bits are OR-ed into `acc`.
pub fn decode_planes_into(
    level: &EncodedLevel,
    plane_lo: u8,
    plane_hi: u8,
    prefix_bits: u8,
    predictive: bool,
    acc: &mut [u64],
) -> Result<()> {
    if acc.len() != level.n_values {
        return Err(IpcompError::InvalidInput(format!(
            "accumulator length {} does not match level size {}",
            acc.len(),
            level.n_values
        )));
    }
    if plane_hi > level.num_planes || plane_lo > plane_hi {
        return Err(IpcompError::InvalidInput(format!(
            "invalid plane range {plane_lo}..{plane_hi} for level with {} planes",
            level.num_planes
        )));
    }
    for p in (plane_lo..plane_hi).rev() {
        let packed = lzr_decompress(&level.planes[p as usize])?;
        let mut reader = BitReader::new(&packed);
        for word in acc.iter_mut() {
            let encoded = reader.read_bit()? as u64;
            let raw = if predictive {
                encoded ^ prefix_parity(*word, p as u32, prefix_bits)
            } else {
                encoded
            };
            *word |= raw << p;
        }
    }
    Ok(())
}

/// Decode the top `planes_loaded` planes of a level into quantization codes
/// (convenience wrapper for non-incremental use).
pub fn decode_level(
    level: &EncodedLevel,
    planes_loaded: u8,
    prefix_bits: u8,
    predictive: bool,
) -> Result<Vec<i64>> {
    let mut acc = vec![0u64; level.n_values];
    let lo = level.num_planes - planes_loaded.min(level.num_planes);
    decode_planes_into(level, lo, level.num_planes, prefix_bits, predictive, &mut acc)?;
    Ok(acc
        .into_iter()
        .map(ipc_codecs::negabinary::from_negabinary)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_codecs::negabinary::from_negabinary;
    use rand::{Rng, SeedableRng};

    fn sample_codes(n: usize, spread: i64, seed: u64) -> Vec<i64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Laplacian-ish residual distribution centred at zero, like real
                // prediction residuals.
                let mag = (rng.gen::<f64>().powi(3) * spread as f64) as i64;
                if rng.gen_bool(0.5) {
                    mag
                } else {
                    -mag
                }
            })
            .collect()
    }

    #[test]
    fn full_decode_roundtrip() {
        let codes = sample_codes(5000, 1 << 20, 1);
        for predictive in [true, false] {
            let enc = encode_level(&codes, 2, predictive, false);
            let dec = decode_level(&enc, enc.num_planes, 2, predictive).unwrap();
            assert_eq!(dec, codes);
        }
    }

    #[test]
    fn zero_codes_have_no_planes() {
        let codes = vec![0i64; 1000];
        let enc = encode_level(&codes, 2, true, false);
        assert_eq!(enc.num_planes, 0);
        assert!(enc.planes.is_empty());
        let dec = decode_level(&enc, 0, 2, true).unwrap();
        assert_eq!(dec, codes);
    }

    #[test]
    fn truncated_decode_error_within_metadata_bound() {
        let codes = sample_codes(3000, 1 << 16, 2);
        let enc = encode_level(&codes, 2, true, false);
        for discard in 0..=enc.num_planes {
            let loaded = enc.num_planes - discard;
            let dec = decode_level(&enc, loaded, 2, true).unwrap();
            let max_err = codes
                .iter()
                .zip(&dec)
                .map(|(&a, &b)| (a - b).unsigned_abs())
                .max()
                .unwrap();
            assert!(
                max_err <= enc.trunc_loss[discard as usize],
                "discard={discard}: err {max_err} > bound {}",
                enc.trunc_loss[discard as usize]
            );
        }
    }

    #[test]
    fn trunc_loss_is_monotone() {
        let codes = sample_codes(2000, 1 << 12, 3);
        let enc = encode_level(&codes, 2, true, false);
        for b in 1..enc.trunc_loss.len() {
            assert!(enc.trunc_loss[b] >= enc.trunc_loss[b - 1]);
        }
        assert_eq!(enc.trunc_loss[0], 0);
    }

    #[test]
    fn incremental_decoding_matches_full_decoding() {
        let codes = sample_codes(4000, 1 << 18, 4);
        let enc = encode_level(&codes, 2, true, false);
        // Decode in three chunks: top third, middle, rest.
        let mut acc = vec![0u64; enc.n_values];
        let hi = enc.num_planes;
        let cut1 = hi - hi / 3;
        let cut2 = hi / 3;
        decode_planes_into(&enc, cut1, hi, 2, true, &mut acc).unwrap();
        decode_planes_into(&enc, cut2, cut1, 2, true, &mut acc).unwrap();
        decode_planes_into(&enc, 0, cut2, 2, true, &mut acc).unwrap();
        let dec: Vec<i64> = acc.into_iter().map(from_negabinary).collect();
        assert_eq!(dec, codes);
    }

    #[test]
    fn partial_then_refined_decode_is_additive() {
        let codes = sample_codes(2000, 1 << 14, 5);
        let enc = encode_level(&codes, 2, true, false);
        let hi = enc.num_planes;
        let half = hi / 2;
        let mut acc = vec![0u64; enc.n_values];
        decode_planes_into(&enc, half, hi, 2, true, &mut acc).unwrap();
        let coarse: Vec<i64> = acc.iter().map(|&w| from_negabinary(w)).collect();
        decode_planes_into(&enc, 0, half, 2, true, &mut acc).unwrap();
        let fine: Vec<i64> = acc.iter().map(|&w| from_negabinary(w)).collect();
        // The refinement adds exactly the value of the lower planes.
        for i in 0..codes.len() {
            assert_eq!(fine[i], codes[i]);
            let delta = fine[i] - coarse[i];
            assert!(delta.unsigned_abs() <= enc.trunc_loss[half as usize]);
        }
    }

    #[test]
    fn predictive_coding_reduces_compressed_size_on_smooth_codes() {
        // Smooth residual magnitudes produce correlated bitplanes; predictive coding
        // should not hurt and typically helps.
        let codes: Vec<i64> = (0..20_000)
            .map(|i| ((i as f64 * 0.01).sin() * 1000.0) as i64)
            .collect();
        let with = encode_level(&codes, 2, true, false);
        let without = encode_level(&codes, 2, false, false);
        assert!(
            (with.payload_bytes() as f64) < 1.1 * without.payload_bytes() as f64,
            "predictive {} vs raw {}",
            with.payload_bytes(),
            without.payload_bytes()
        );
    }

    #[test]
    fn parallel_and_serial_encoding_agree() {
        let codes = sample_codes(10_000, 1 << 15, 6);
        let a = encode_level(&codes, 2, true, false);
        let b = encode_level(&codes, 2, true, true);
        assert_eq!(a, b);
    }

    #[test]
    fn size_accounting_is_consistent() {
        let codes = sample_codes(3000, 1 << 10, 7);
        let enc = encode_level(&codes, 2, true, false);
        for b in 0..=enc.num_planes {
            assert_eq!(
                enc.saved_bytes(b) + enc.loaded_bytes(b),
                enc.payload_bytes()
            );
        }
        assert_eq!(enc.saved_bytes(0), 0);
        assert_eq!(enc.loaded_bytes(enc.num_planes), 0);
    }

    #[test]
    fn invalid_plane_range_rejected() {
        let codes = sample_codes(100, 1 << 8, 8);
        let enc = encode_level(&codes, 2, true, false);
        let mut acc = vec![0u64; 100];
        assert!(decode_planes_into(&enc, 0, enc.num_planes + 1, 2, true, &mut acc).is_err());
        let mut short = vec![0u64; 50];
        assert!(decode_planes_into(&enc, 0, enc.num_planes, 2, true, &mut short).is_err());
    }
}
