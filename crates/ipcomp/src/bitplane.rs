//! Predictive negabinary bitplane coding (paper Sec. 4.3–4.4), word-parallel
//! with a chunked entropy pipeline.
//!
//! Each level's quantized residuals are mapped to negabinary, sliced into bitplanes
//! (all coefficients' bit `p` form plane `p`), and each plane is compressed into an
//! independently loadable block. Two refinements give the coder its compression
//! ratio:
//!
//! * **Predictive coding** — the bit stored for plane `p` is the XOR of the raw bit
//!   with its `prefix_bits` more-significant neighbours from the same coefficient
//!   (Table 2 of the paper shows 2 prefix bits minimizes entropy). During decoding
//!   the more-significant planes have already been loaded, so the prediction can be
//!   undone plane by plane.
//! * **Negabinary representation** — keeps high-order planes of near-zero residuals
//!   full of zeros and makes plane truncation additive, so skipping low planes simply
//!   subtracts a bounded, pre-computable amount from each coefficient.
//!
//! # Word-parallel implementation
//!
//! The coder never touches individual bits. It exploits two algebraic facts:
//!
//! 1. **Prediction is linear over GF(2) and shift-invariant.** The encoded bit of
//!    plane `p` is `raw_p ⊕ raw_{p+1} ⊕ … ⊕ raw_{p+prefix_bits}` (planes ≥ 64 read
//!    as zero). Applied to *all* planes of one coefficient word `w` at once, the
//!    entire predicted word is
//!
//!    ```text
//!    enc(w) = w ^ (w >> 1) ^ … ^ (w >> prefix_bits)
//!    ```
//!
//!    because bit `p` of `w >> k` *is* raw plane `p + k`. Prediction therefore
//!    costs `prefix_bits` shift-XORs per coefficient — there is no per-bit
//!    `prefix_parity` anywhere on the encode path. The inverse on decode is the
//!    same identity read plane-wise: `raw_p = enc_p ⊕ raw_{p+1} ⊕ … ⊕
//!    raw_{p+prefix_bits}`, i.e. one whole-plane XOR per prefix bit, applied
//!    top-down so the more significant raw planes are already known.
//! 2. **Plane extraction is a bit-matrix transpose.** Treating 64 consecutive
//!    coefficient words as a 64×64 bit matrix, a Hacker's-Delight transpose
//!    ([`ipc_codecs::bitslice`]) yields all 64 plane words of the block in ~6×64
//!    word operations, and its involution scatters decoded planes back into the
//!    accumulators.
//!
//! # Chunked entropy pipeline
//!
//! The packed bit stream of every plane is split into fixed-size
//! [`CHUNK_BYTES`] chunks and each chunk is entropy-coded *independently*
//! (LZ77 + rANS/Huffman/store, see [`ipc_codecs::lzr`]). Chunking buys three
//! things at a fraction of a percent of ratio:
//!
//! * **Even parallelism** — decode fans out over every `(plane, chunk)` pair,
//!   so the rayon pool sees uniform ~64 KiB work items instead of one lumpy
//!   task per plane (dense low planes cost 10× what sparse high planes do).
//! * **Streaming** — a chunk covers a contiguous coefficient range, and every
//!   plane of a level shares the same chunk grid, so a decoder can fully
//!   reconstruct coefficients `[k·8·CHUNK_BYTES, (k+1)·8·CHUNK_BYTES)` from
//!   just the `k`-th chunk of each loaded plane ([`PlaneStream`]). Memory
//!   stays bounded by the region size, not the level size.
//! * **Addressability** — the version-2 container records every chunk's size
//!   in its metadata, so a remote reader can fetch any chunk without parsing
//!   payload bytes.
//!
//! Prediction stays correct under chunking because it operates per
//! coefficient *across* planes: bit `i` of plane `p` mixes only with bit `i`
//! of planes `p+1..=p+prefix_bits`, all of which live in the same chunk
//! position `i / (8·CHUNK_BYTES)` of their planes.
//!
//! Because the slicing/prediction identities reproduce the scalar definition bit
//! for bit, the *packed plane bytes* are unchanged from the historical coder; the
//! scalar reference (retained under [`scalar`] as a test oracle) shares the
//! chunked entropy stage, so payloads remain byte-identical between the two.
//!
//! Truncation-loss metadata is unaffected by any of this: `trunc_loss` is computed
//! from the *raw* negabinary words before prediction, and prediction permutes only
//! how plane bits are stored, not which planes exist or what discarding them does
//! to a reconstruction.
//!
//! The per-level metadata records the exact worst-case truncation loss
//! `‖δy_l(b)‖∞` for every possible number of discarded planes `b`, which is what the
//! optimizer (Sec. 5) consumes.

use ipc_codecs::bitslice::slice_planes;
use ipc_codecs::negabinary::{required_bitplanes_words, to_negabinary_slice, truncation_loss};
use ipc_codecs::{lzr_compress, CodecError};
use rayon::prelude::*;

use crate::container::LevelMap;
use crate::error::{IpcompError, Result};
use crate::pipeline::{DecodeStage, EntropyStage, FetchStage, RegionPipeline, ScatterStage};
use crate::source::ChunkSource;

/// Minimum number of coefficients before the coder fans work out to rayon.
const PARALLEL_THRESHOLD: usize = 4096;

/// Packed plane bytes covered by one entropy chunk (512 Ki coefficients).
/// Must stay a multiple of 8 so chunk boundaries align with the 64-coefficient
/// transpose blocks.
pub const CHUNK_BYTES: usize = 64 * 1024;

/// Chunk-grid geometry of one level: how its packed plane bytes split into
/// entropy chunks and which coefficients each chunk region covers.
///
/// Both the in-memory [`EncodedLevel`] and the metadata-only
/// [`crate::container::LevelMap`] expose this, so decode paths can be written
/// once against the geometry regardless of where the compressed bytes live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkGrid {
    /// Number of coefficients in the level.
    pub n_values: usize,
    /// Packed bytes per entropy chunk; `0` means whole-plane blocks (the
    /// version-1 layout).
    pub chunk_bytes: usize,
}

impl ChunkGrid {
    /// Length of one packed (uncompressed) plane in bytes.
    pub fn plane_len(&self) -> usize {
        self.n_values.div_ceil(8)
    }

    /// Packed bytes per chunk region: the configured chunk size, or the whole
    /// plane for monolithic (version-1) levels.
    pub fn region_bytes(&self) -> usize {
        if self.chunk_bytes == 0 {
            self.plane_len().max(1)
        } else {
            self.chunk_bytes
        }
    }

    /// Number of chunk regions every plane of this level is split into.
    pub fn num_regions(&self) -> usize {
        self.plane_len().div_ceil(self.region_bytes())
    }

    /// Packed byte range of region `k` within a plane.
    pub fn region_byte_range(&self, k: usize) -> std::ops::Range<usize> {
        let rb = self.region_bytes();
        (k * rb)..((k + 1) * rb).min(self.plane_len())
    }

    /// Coefficient range reconstructed by region `k`.
    pub fn region_coeff_range(&self, k: usize) -> std::ops::Range<usize> {
        let bytes = self.region_byte_range(k);
        (bytes.start * 8)..(bytes.end * 8).min(self.n_values)
    }
}

/// How a level's packed plane bytes split into independently decodable chunk
/// regions, and which coefficients each region covers.
///
/// Version-1/2 containers use a *uniform* byte grid ([`ChunkGrid`]): every
/// region spans `chunk_bytes` packed bytes regardless of where coefficients
/// sit in space. Version-3 containers cut regions on spatial *precinct*
/// boundaries instead: region `k` holds the `spans[k]` coefficients of
/// precinct `k` (in precinct-major container order), packed independently
/// into `spans[k].div_ceil(8)` bytes so every region starts byte-aligned.
/// The decode pipeline is written once against this scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionScheme {
    /// Fixed-size byte regions (version-1/2 layout).
    Uniform(ChunkGrid),
    /// Precinct-aligned regions (version-3 layout).
    Precincts {
        /// Number of coefficients in the level.
        n_values: usize,
        /// Coefficients per precinct, precinct-id order (zero spans allowed).
        spans: Vec<usize>,
        /// Exclusive prefix sums of `spans` (coefficient start per region).
        coeff_starts: Vec<usize>,
        /// Packed-byte start of every region within a plane.
        byte_starts: Vec<usize>,
    },
}

impl RegionScheme {
    /// Build the precinct-aligned scheme from per-precinct coefficient spans.
    pub fn precincts(spans: &[usize]) -> Self {
        let mut coeff_starts = Vec::with_capacity(spans.len());
        let mut byte_starts = Vec::with_capacity(spans.len());
        let (mut coeff, mut byte) = (0usize, 0usize);
        for &s in spans {
            coeff_starts.push(coeff);
            byte_starts.push(byte);
            coeff += s;
            byte += s.div_ceil(8);
        }
        Self::Precincts {
            n_values: coeff,
            spans: spans.to_vec(),
            coeff_starts,
            byte_starts,
        }
    }

    /// Number of coefficients in the level.
    pub fn n_values(&self) -> usize {
        match self {
            RegionScheme::Uniform(g) => g.n_values,
            RegionScheme::Precincts { n_values, .. } => *n_values,
        }
    }

    /// Length of one packed (uncompressed) plane in bytes. Precinct planes
    /// carry up to 7 padding bits per precinct, so this can exceed
    /// `n_values.div_ceil(8)`.
    pub fn plane_len(&self) -> usize {
        match self {
            RegionScheme::Uniform(g) => g.plane_len(),
            RegionScheme::Precincts {
                spans, byte_starts, ..
            } => byte_starts.last().map_or(0, |&b| b) + spans.last().map_or(0, |&s| s.div_ceil(8)),
        }
    }

    /// Number of chunk regions every plane of this level is split into.
    pub fn num_regions(&self) -> usize {
        match self {
            RegionScheme::Uniform(g) => g.num_regions(),
            RegionScheme::Precincts { spans, .. } => spans.len(),
        }
    }

    /// Packed byte range of region `k` within a plane.
    pub fn region_byte_range(&self, k: usize) -> std::ops::Range<usize> {
        match self {
            RegionScheme::Uniform(g) => g.region_byte_range(k),
            RegionScheme::Precincts {
                spans, byte_starts, ..
            } => byte_starts[k]..byte_starts[k] + spans[k].div_ceil(8),
        }
    }

    /// Coefficient range reconstructed by region `k`.
    pub fn region_coeff_range(&self, k: usize) -> std::ops::Range<usize> {
        match self {
            RegionScheme::Uniform(g) => g.region_coeff_range(k),
            RegionScheme::Precincts {
                spans,
                coeff_starts,
                ..
            } => coeff_starts[k]..coeff_starts[k] + spans[k],
        }
    }
}

impl From<ChunkGrid> for RegionScheme {
    fn from(grid: ChunkGrid) -> Self {
        RegionScheme::Uniform(grid)
    }
}

/// One bitplane compressed as independently decodable entropy chunks.
///
/// Chunk `k` covers packed plane bytes `[k·span, (k+1)·span)` where `span` is
/// the owning level's [`EncodedLevel::region_bytes`]. Version-1 containers
/// store a single chunk spanning the whole plane; version-3 containers cut
/// one chunk per spatial precinct instead.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedPlane {
    /// Compressed chunk payloads, in coefficient order.
    pub chunks: Vec<Vec<u8>>,
}

impl EncodedPlane {
    /// Wrap a whole-plane block as a single chunk (the version-1 layout).
    pub fn monolithic(block: Vec<u8>) -> Self {
        Self {
            chunks: vec![block],
        }
    }

    /// Total compressed size of this plane in bytes.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(Vec::len).sum()
    }

    /// Whether the plane holds no compressed bytes at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Tuning knobs for [`encode_level_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOptions {
    /// Packed bytes per entropy chunk; `0` disables chunking and stores one
    /// monolithic block per plane (the version-1 layout). Must be a multiple
    /// of 8 so chunks align with 64-coefficient transpose blocks.
    pub chunk_bytes: usize,
    /// Allow the rANS entropy stage. Disabling restricts the per-chunk
    /// decision to Huffman/store, reproducing the PR 1 byte stream — kept for
    /// the benchmark harness and A/B tests.
    pub rans: bool,
    /// LZ match candidates probed per position by the entropy stage's
    /// tokenizer: `1` (default) keeps the single-head hash table; `2` adds a
    /// one-deep hash chain that trades a little encode speed for ratio on
    /// bucket-colliding data (A/B recorded in `BENCH_entropy.json`).
    pub match_candidates: u8,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        Self {
            chunk_bytes: CHUNK_BYTES,
            rans: true,
            match_candidates: 1,
        }
    }
}

/// One level's residuals encoded as independently loadable bitplane blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedLevel {
    /// Number of coefficients in the level.
    pub n_values: usize,
    /// Number of significant negabinary bitplanes (planes above this are all zero).
    pub num_planes: u8,
    /// Compressed plane blocks; `planes[p]` holds bit `p` of every coefficient
    /// (`p = 0` is the least significant plane).
    pub planes: Vec<EncodedPlane>,
    /// `trunc_loss[b]` = maximum absolute error, in quantization-code units, incurred
    /// by discarding the `b` least significant planes (`b` ranges `0..=num_planes`).
    pub trunc_loss: Vec<u64>,
    /// Packed bytes per entropy chunk; `0` means whole-plane blocks (the
    /// version-1 layout). All planes of a level share the same chunk grid.
    /// Ignored when `precinct_spans` is set.
    pub chunk_bytes: usize,
    /// Per-precinct coefficient spans of the version-3 precinct-major layout;
    /// `None` for the uniform version-1/2 byte grid. When set, the level's
    /// coefficients are stored precinct-major and chunk `k` of every plane
    /// holds precinct `k`'s independently packed bits.
    pub precinct_spans: Option<Vec<usize>>,
}

impl EncodedLevel {
    /// The level's chunk-grid geometry (uniform layouts only; prefer
    /// [`EncodedLevel::scheme`] which also covers precinct layouts).
    pub fn grid(&self) -> ChunkGrid {
        ChunkGrid {
            n_values: self.n_values,
            chunk_bytes: self.chunk_bytes,
        }
    }

    /// The level's region scheme: how plane bytes split into chunks and which
    /// coefficients each chunk covers.
    pub fn scheme(&self) -> RegionScheme {
        match &self.precinct_spans {
            Some(spans) => RegionScheme::precincts(spans),
            None => RegionScheme::Uniform(self.grid()),
        }
    }

    /// Length of one packed (uncompressed) plane in bytes.
    pub fn plane_len(&self) -> usize {
        self.grid().plane_len()
    }

    /// Packed bytes per chunk region: the configured chunk size, or the whole
    /// plane for monolithic (version-1) levels.
    pub fn region_bytes(&self) -> usize {
        self.grid().region_bytes()
    }

    /// Number of chunk regions every plane of this level is split into.
    pub fn num_regions(&self) -> usize {
        self.grid().num_regions()
    }

    /// Packed byte range of region `k` within a plane.
    pub fn region_byte_range(&self, k: usize) -> std::ops::Range<usize> {
        self.grid().region_byte_range(k)
    }

    /// Coefficient range reconstructed by region `k`.
    pub fn region_coeff_range(&self, k: usize) -> std::ops::Range<usize> {
        self.grid().region_coeff_range(k)
    }

    /// Total compressed size of all plane blocks in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.planes.iter().map(EncodedPlane::len).sum()
    }

    /// Compressed size of the `b` least significant planes (the bytes *saved* by
    /// discarding them).
    pub fn saved_bytes(&self, b: u8) -> usize {
        self.planes
            .iter()
            .take(b as usize)
            .map(EncodedPlane::len)
            .sum()
    }

    /// Compressed size of the planes that remain loaded when `b` planes are
    /// discarded.
    pub fn loaded_bytes(&self, b: u8) -> usize {
        self.payload_bytes() - self.saved_bytes(b)
    }
}

/// Apply the GF(2)-linear prediction to every plane of one coefficient word:
/// bit `p` of the result is `raw_p ⊕ raw_{p+1} ⊕ … ⊕ raw_{p+prefix_bits}`.
#[inline(always)]
fn predict_word(w: u64, prefix_bits: u8) -> u64 {
    let mut enc = w;
    for k in 1..=prefix_bits as u32 {
        enc ^= w >> k;
    }
    enc
}

/// Exact (not monotonized) maximum `|truncation_loss|` over `nb` for one
/// discard count `b`, exploiting that negabinary is positional: the loss of
/// dropping the low `b` planes of `w` is exactly
/// `from_negabinary(w & ((1 << b) - 1))` — the signed value of those planes
/// alone. [`truncation_loss_table`] folds these into a running maximum.
fn max_masked_loss(nb: &[u64], b: usize) -> u64 {
    let mask = (1u64 << b) - 1;
    let mut exact = 0u64;
    for &w in nb {
        exact = exact.max(ipc_codecs::negabinary::from_negabinary(w & mask).unsigned_abs());
    }
    debug_assert_eq!(
        exact,
        nb.iter()
            .map(|&w| truncation_loss(w, b as u32).unsigned_abs())
            .max()
            .unwrap_or(0)
    );
    exact
}

/// Bitmask over low-16-bit patterns present in `nb`: word `i` of the result has
/// bit `j` set iff pattern `64·i + j` occurs.
const PATTERN_BITS: usize = 16;

/// Worst-case truncation loss per discard count for a level's negabinary words,
/// in code units; `table[b]` bounds the error of discarding the `b` lowest
/// planes. The per-discard maxima are accumulated into a running maximum so the
/// table is monotone: the optimizer then never sees "discarding more planes
/// costs less error", even though individual negabinary words can momentarily
/// cancel when a higher plane is dropped. Exposed for the benchmark harness;
/// [`encode_level`] calls it internally.
///
/// Two fast paths keep the table exact without one full coefficient pass per
/// plane:
///
/// * **`b ≤ 16`** — the loss depends only on the low 16 bits of each word, so
///   one presence pass over the level replaces up to 16 full passes: per
///   plane the (at most) 65536 distinct patterns are scanned instead of
///   every coefficient. Small levels skip the table — a direct pass is
///   cheaper than initializing 64 Ki pattern slots.
/// * **`b > 16`** — a *single* sweep over the coefficients updates every
///   high discard count at once: negabinary is positional, so the masked
///   value grows incrementally by `±2^i` per set bit `i`, and between set
///   bits `|value|` is constant — already covered by the running maximum.
///   Words whose high bits are all zero contribute nothing beyond `b = 16`
///   (their masked value stops changing) and are skipped outright, which on
///   near-zero-centered residual distributions makes the sweep almost free.
///   Levels with 30+ planes previously paid one full pass *per high plane*.
///
/// # Panics
///
/// Panics if `num_planes > 63` — the container format caps significant planes
/// at 63 (see [`encode_level`]'s `.min(63)` clamp).
pub fn truncation_loss_table(nb: &[u64], num_planes: u8) -> Vec<u64> {
    assert!(
        num_planes <= 63,
        "the container format caps significant planes at 63"
    );
    let n_planes = num_planes as usize;
    let mut trunc_loss = vec![0u64; n_planes + 1];
    if num_planes == 0 {
        return trunc_loss;
    }
    let mut exact = vec![0u64; n_planes + 1];

    // Low planes (b ≤ 16): presence-table scan when the level is large
    // enough to amortize it, direct passes otherwise.
    let low_top = n_planes.min(PATTERN_BITS);
    let use_patterns = nb.len() >= (1 << PATTERN_BITS) && num_planes > 1;
    if use_patterns {
        let mut present = vec![0u64; 1 << (PATTERN_BITS - 6)];
        for &w in nb {
            let pat = (w as usize) & ((1 << PATTERN_BITS) - 1);
            present[pat >> 6] |= 1u64 << (pat & 63);
        }
        for (b, slot) in exact.iter_mut().enumerate().take(low_top + 1).skip(1) {
            let mask = (1u64 << b) - 1;
            let mut best = 0u64;
            for (i, &bits) in present.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let pat = (i * 64 + j) as u64;
                    best = best
                        .max(ipc_codecs::negabinary::from_negabinary(pat & mask).unsigned_abs());
                }
            }
            debug_assert_eq!(best, max_masked_loss(nb, b));
            *slot = best;
        }
    } else {
        for (b, slot) in exact.iter_mut().enumerate().take(low_top + 1).skip(1) {
            *slot = max_masked_loss(nb, b);
        }
    }

    // High planes (b > 16): one sweep, touching only words with live high
    // bits and only the discard counts right after each set bit — every
    // other candidate is constant since the previous one and the running
    // maximum below subsumes it.
    if n_planes > PATTERN_BITS {
        let low_mask = (1u64 << PATTERN_BITS) - 1;
        let live_mask = if n_planes == 64 {
            !low_mask
        } else {
            ((1u64 << n_planes) - 1) & !low_mask
        };
        for &w in nb {
            let mut hi_bits = w & live_mask;
            if hi_bits == 0 {
                continue;
            }
            let mut v = ipc_codecs::negabinary::from_negabinary(w & low_mask);
            while hi_bits != 0 {
                let i = hi_bits.trailing_zeros() as usize;
                hi_bits &= hi_bits - 1;
                v += if i.is_multiple_of(2) {
                    1i64 << i
                } else {
                    -(1i64 << i)
                };
                exact[i + 1] = exact[i + 1].max(v.unsigned_abs());
            }
        }
    }

    let mut running = 0u64;
    for (b, (slot, &e)) in trunc_loss.iter_mut().zip(exact.iter()).enumerate().skip(1) {
        running = running.max(e);
        *slot = running;
        // The sweep records |masked value| only where a word's bits change;
        // the running maximum must land on exactly the monotonized direct
        // table (each skipped candidate equals an earlier recorded one).
        debug_assert!(
            b <= PATTERN_BITS || running >= max_masked_loss(nb, b),
            "b={b}: sweep missed a candidate"
        );
    }
    trunc_loss
}

/// Entropy-code one chunk of packed plane bytes according to the options.
#[inline]
fn compress_chunk(bytes: &[u8], opts: &EncodeOptions) -> Vec<u8> {
    if !opts.rans {
        ipc_codecs::lzr::lzr_compress_huffman(bytes)
    } else if opts.match_candidates > 1 {
        ipc_codecs::lzr_compress_with(
            bytes,
            &ipc_codecs::LzrOptions {
                match_candidates: opts.match_candidates,
                ..ipc_codecs::LzrOptions::default()
            },
        )
    } else {
        lzr_compress(bytes)
    }
}

/// Encode one level's quantization codes into bitplane blocks with explicit
/// chunking/entropy options. [`encode_level`] forwards the defaults.
///
/// # Panics
///
/// Panics if `opts.chunk_bytes` is not a multiple of 8 (chunk boundaries
/// must align with the 64-coefficient transpose blocks). The `Result`-based
/// entry point [`crate::compressor::compress`] validates this up front.
pub fn encode_level_with(
    codes: &[i64],
    prefix_bits: u8,
    predictive: bool,
    parallel: bool,
    opts: EncodeOptions,
) -> EncodedLevel {
    assert!(
        opts.chunk_bytes.is_multiple_of(8),
        "chunk_bytes must be a multiple of 8 to align with transpose blocks"
    );
    let nb = to_negabinary_slice(codes);
    let num_planes = required_bitplanes_words(&nb).min(63) as u8;
    let trunc_loss = truncation_loss_table(&nb, num_planes);

    // Whole-word prediction, then one transpose pass slices every plane at once.
    let predicted: Vec<u64> = if predictive && prefix_bits > 0 {
        nb.iter().map(|&w| predict_word(w, prefix_bits)).collect()
    } else {
        nb
    };
    let plane_bits = slice_planes(&predicted, num_planes as usize);

    let plane_len = codes.len().div_ceil(8);
    let span = if opts.chunk_bytes == 0 {
        plane_len.max(1)
    } else {
        opts.chunk_bytes
    };
    // Fan every (plane, chunk) pair out as one task: uniform ~chunk-sized work
    // items keep the rayon pool balanced even though low planes compress far
    // slower than sparse high planes.
    let tasks: Vec<&[u8]> = plane_bits
        .iter()
        .flat_map(|bits| bits.chunks(span.max(1)))
        .collect();
    let compressed: Vec<Vec<u8>> = if parallel && codes.len() > PARALLEL_THRESHOLD {
        tasks
            .into_par_iter()
            .map(|bytes| compress_chunk(bytes, &opts))
            .collect()
    } else {
        tasks
            .into_iter()
            .map(|bytes| compress_chunk(bytes, &opts))
            .collect()
    };

    let chunks_per_plane = plane_len.div_ceil(span.max(1)).max(1);
    let mut it = compressed.into_iter();
    let planes: Vec<EncodedPlane> = (0..num_planes)
        .map(|_| EncodedPlane {
            chunks: (&mut it).take(chunks_per_plane).collect(),
        })
        .collect();

    EncodedLevel {
        n_values: codes.len(),
        num_planes,
        planes,
        trunc_loss,
        chunk_bytes: opts.chunk_bytes,
        precinct_spans: None,
    }
}

/// Encode one level's quantization codes into bitplane blocks.
///
/// The packed plane bits are byte-identical to the historical bit-at-a-time
/// coder (see [`scalar`]); only the entropy framing (chunked rANS) and the
/// implementation (word-parallel) have evolved.
pub fn encode_level(
    codes: &[i64],
    prefix_bits: u8,
    predictive: bool,
    parallel: bool,
) -> EncodedLevel {
    encode_level_with(
        codes,
        prefix_bits,
        predictive,
        parallel,
        EncodeOptions::default(),
    )
}

/// Encode one level whose `codes` are already in precinct-major container
/// order, cutting one entropy chunk per `(plane, precinct)` pair — the
/// version-3 layout. Each precinct's plane bits are packed *independently*
/// (padded to a byte boundary), so any precinct decodes from just its own
/// chunks; `spans` gives the coefficient count per precinct and must sum to
/// `codes.len()`.
///
/// The plane count and truncation-loss table are computed over the whole
/// level exactly as in [`encode_level_with`] — both are order-invariant, so
/// a version-3 level carries the same optimizer metadata as its version-2
/// encoding of the same codes.
pub fn encode_level_precincts(
    codes: &[i64],
    prefix_bits: u8,
    predictive: bool,
    parallel: bool,
    opts: EncodeOptions,
    spans: &[usize],
) -> EncodedLevel {
    assert_eq!(
        spans.iter().sum::<usize>(),
        codes.len(),
        "precinct spans must partition the level"
    );
    let nb = to_negabinary_slice(codes);
    let num_planes = required_bitplanes_words(&nb).min(63) as u8;
    let trunc_loss = truncation_loss_table(&nb, num_planes);
    let predicted: Vec<u64> = if predictive && prefix_bits > 0 {
        nb.iter().map(|&w| predict_word(w, prefix_bits)).collect()
    } else {
        nb
    };

    // Slice each precinct's coefficient words into its own byte-aligned
    // plane bits, then entropy-code every (plane, precinct) chunk. Empty
    // precincts get zero-byte chunks without touching the entropy coder.
    let starts = crate::precinct::prefix_sums(spans);
    let jobs: Vec<&[u64]> = starts
        .iter()
        .zip(spans)
        .map(|(&start, &span)| &predicted[start..start + span])
        .collect();
    let slice = |words: &[u64]| -> Vec<Vec<u8>> { slice_planes(words, num_planes as usize) };
    let parallel = parallel && codes.len() > PARALLEL_THRESHOLD;
    let sliced: Vec<Vec<Vec<u8>>> = if parallel {
        jobs.into_par_iter().map(slice).collect()
    } else {
        jobs.into_iter().map(slice).collect()
    };
    let tasks: Vec<&[u8]> = (0..num_planes as usize)
        .flat_map(|p| sliced.iter().map(move |pre| pre[p].as_slice()))
        .collect();
    let compress = |bytes: &[u8]| -> Vec<u8> {
        if bytes.is_empty() {
            Vec::new()
        } else {
            compress_chunk(bytes, &opts)
        }
    };
    let compressed: Vec<Vec<u8>> = if parallel {
        tasks.into_par_iter().map(compress).collect()
    } else {
        tasks.into_iter().map(compress).collect()
    };

    let mut it = compressed.into_iter();
    let planes: Vec<EncodedPlane> = (0..num_planes)
        .map(|_| EncodedPlane {
            chunks: (&mut it).take(spans.len()).collect(),
        })
        .collect();
    EncodedLevel {
        n_values: codes.len(),
        num_planes,
        planes,
        trunc_loss,
        chunk_bytes: 0,
        precinct_spans: Some(spans.to_vec()),
    }
}

/// Validate a plane range request against a level's geometry and chunk
/// structure; `plane_chunks` reports how many chunks plane `p` actually holds
/// (from payload vecs or the metadata index, depending on the backing).
pub(crate) fn check_plane_range_with(
    scheme: &RegionScheme,
    num_planes: u8,
    plane_chunks: impl Fn(u8) -> usize,
    plane_lo: u8,
    plane_hi: u8,
    acc_len: usize,
) -> Result<()> {
    if acc_len != scheme.n_values() {
        return Err(IpcompError::InvalidInput(format!(
            "accumulator length {acc_len} does not match level size {}",
            scheme.n_values()
        )));
    }
    if plane_hi > num_planes || plane_lo > plane_hi {
        return Err(IpcompError::InvalidInput(format!(
            "invalid plane range {plane_lo}..{plane_hi} for level with {num_planes} planes"
        )));
    }
    let n_regions = scheme.num_regions();
    for p in plane_lo..plane_hi {
        if plane_chunks(p) != n_regions {
            return Err(IpcompError::CorruptContainer(
                "plane chunk count does not match the level's chunk grid",
            ));
        }
    }
    Ok(())
}

/// Validate a plane range request against an in-memory level.
fn check_plane_range(
    level: &EncodedLevel,
    plane_lo: u8,
    plane_hi: u8,
    acc_len: usize,
) -> Result<()> {
    check_plane_range_with(
        &level.scheme(),
        level.num_planes,
        |p| level.planes[p as usize].chunks.len(),
        plane_lo,
        plane_hi,
        acc_len,
    )
}

/// Entropy-decode one compressed chunk, validating the decoded size against
/// the expected packed region length. Every allocation is bounded by the
/// expected size, so corrupt chunk headers cannot force runaway memory use.
pub(crate) fn decode_chunk_bytes(compressed: &[u8], expected: usize) -> Result<Vec<u8>> {
    if expected == 0 {
        // Empty precincts store zero-byte chunks with no entropy framing.
        return if compressed.is_empty() {
            Ok(Vec::new())
        } else {
            Err(IpcompError::CorruptContainer(
                "empty chunk region carries payload bytes",
            ))
        };
    }
    let packed = ipc_codecs::lzr::lzr_decompress_bounded(compressed, expected)?;
    if packed.len() != expected {
        // The plane reader would run off the end (or past it) mid-stream.
        return Err(IpcompError::Codec(CodecError::UnexpectedEof));
    }
    Ok(packed)
}

/// Entropy-decode chunk `k` of plane `p` of an in-memory level (only the
/// scalar reference decoder still reads whole planes this way; the
/// word-parallel paths go through [`crate::pipeline::EntropyStage`]).
#[cfg(any(test, feature = "reference-scalar"))]
fn decode_chunk(level: &EncodedLevel, p: u8, k: usize) -> Result<Vec<u8>> {
    decode_chunk_bytes(
        &level.planes[p as usize].chunks[k],
        level.region_byte_range(k).len(),
    )
}

/// Decode planes `[plane_lo, plane_hi)` of `level` into the negabinary accumulators
/// `acc` (one `u64` per coefficient).
///
/// Planes must be decoded from the most significant downwards and `acc` must already
/// contain every plane above `plane_hi` (all zeros for a fresh decoder), because the
/// predictive coding is undone using those more significant bits. The newly decoded
/// bits are OR-ed into `acc`.
///
/// Built from the same [`crate::pipeline`] stages as the streaming decoder:
/// the entropy stage fans out across the rayon pool at chunk granularity
/// (every `(plane, chunk)` pair is one task), then the scatter stage runs per
/// chunk region, each region owning its slice of the accumulators. All
/// requested chunks are entropy-decoded before any accumulator is touched, so
/// a corrupt block leaves `acc` unmodified.
pub fn decode_planes_into(
    level: &EncodedLevel,
    plane_lo: u8,
    plane_hi: u8,
    prefix_bits: u8,
    predictive: bool,
    acc: &mut [u64],
) -> Result<()> {
    check_plane_range(level, plane_lo, plane_hi, acc.len())?;
    if plane_lo == plane_hi || level.n_values == 0 {
        return Ok(());
    }
    let scheme = level.scheme();
    let n_regions = scheme.num_regions();
    let n_planes = (plane_hi - plane_lo) as usize;
    let parallel = level.n_values > PARALLEL_THRESHOLD && rayon::current_num_threads() > 1;
    let entropy = EntropyStage::new(scheme.clone());
    let scatter_stage = ScatterStage::new(
        scheme.clone(),
        level.num_planes,
        plane_lo,
        plane_hi,
        prefix_bits,
        predictive,
    );

    // Entropy stage: decode every requested chunk. Tasks are uniform-sized
    // regardless of how compressible each plane is, so the pool stays busy.
    let tasks: Vec<(u8, usize)> = (plane_lo..plane_hi)
        .flat_map(|p| (0..n_regions).map(move |k| (p, k)))
        .collect();
    let decode = |(p, k): (u8, usize)| entropy.decode_chunk(k, &level.planes[p as usize].chunks[k]);
    // One level-scope entropy span: the bulk path fans chunks across the
    // rayon pool, so per-chunk spans would time queueing, not decoding.
    let obs = crate::obs::metrics();
    let mut entropy_span = ipc_telemetry::span_timed("pipeline", "entropy", obs.entropy_ns);
    let decoded: Vec<Result<Vec<u8>>> = if parallel && tasks.len() > 1 {
        tasks.into_par_iter().map(decode).collect()
    } else {
        tasks.into_iter().map(decode).collect()
    };
    // Regroup task results (plane-major) into per-region chunk sets.
    let mut regions: Vec<Vec<Vec<u8>>> = (0..n_regions)
        .map(|_| Vec::with_capacity(n_planes))
        .collect();
    let mut decoded_bytes = 0u64;
    for (t, chunk) in decoded.into_iter().enumerate() {
        let chunk = chunk?;
        decoded_bytes += chunk.len() as u64;
        regions[t % n_regions].push(chunk);
    }
    obs.entropy_bytes.add(decoded_bytes);
    entropy_span.add_arg("bytes", decoded_bytes);
    drop(entropy_span);

    // Scatter stage: per-region prediction undo + kernel-specialized
    // scatter, each region owning its slice of the accumulators.
    type RegionTask<'a> = (usize, Vec<Vec<u8>>, &'a mut [u64]);
    let mut work: Vec<RegionTask<'_>> = Vec::with_capacity(n_regions);
    let mut rest = acc;
    let mut consumed = 0usize;
    for (k, chunks) in regions.into_iter().enumerate() {
        let coeffs = scheme.region_coeff_range(k);
        let (region, tail) = rest.split_at_mut(coeffs.end - consumed);
        work.push((k, chunks, &mut region[coeffs.start - consumed..]));
        consumed = coeffs.end;
        rest = tail;
    }
    let scatter = |(k, chunks, acc_region): (usize, Vec<Vec<u8>>, &mut [u64])| {
        scatter_stage
            .process(k, (chunks, acc_region))
            .expect("scatter stage is infallible after entropy validation");
    };
    if parallel && n_regions > 1 {
        work.into_par_iter().for_each(scatter);
    } else {
        work.into_iter().for_each(scatter);
    }
    Ok(())
}

/// Streaming region-at-a-time decoder over a level's chunk grid — the
/// pull-based driver of the staged decode pipeline ([`crate::pipeline`]).
///
/// Yields the same accumulator contents as [`decode_planes_into`] but decodes
/// one chunk region per call, so peak memory is bounded by
/// `(plane span) × region size` (double-buffered: the region being decoded
/// plus the one being prefetched) instead of the whole level, and callers can
/// interleave consumption with loading (paper Fig. 2's incremental
/// retrieval, now at sub-plane granularity).
///
/// A stream can be backed either by an in-memory [`EncodedLevel`]
/// ([`PlaneStream::new`]) or by a [`ChunkSource`] plus the container's chunk
/// index ([`PlaneStream::from_source`]); the source-backed variant fetches
/// one region's chunk ranges per batched `read_ranges` call — which the
/// source stack is free to coalesce — and *overlaps* region `k + 1`'s fetch
/// with region `k`'s entropy decode and scatter on a scoped worker thread,
/// so backend latency hides behind compute instead of adding to it.
///
/// Atomicity is per region: a corrupt chunk (or a failed fetch) fails that
/// region's call before its accumulator slice is touched, but previously
/// streamed regions remain updated.
pub struct PlaneStream<'a> {
    pipeline: RegionPipeline<'a>,
}

impl<'a> PlaneStream<'a> {
    /// Start streaming planes `[plane_lo, plane_hi)` of `level`; `acc_len`
    /// must be the caller's accumulator length (validated once here).
    pub fn new(
        level: &'a EncodedLevel,
        plane_lo: u8,
        plane_hi: u8,
        prefix_bits: u8,
        predictive: bool,
        acc_len: usize,
    ) -> Result<Self> {
        check_plane_range(level, plane_lo, plane_hi, acc_len)?;
        Ok(Self {
            pipeline: RegionPipeline::new(
                FetchStage::Resident {
                    level,
                    plane_lo,
                    plane_hi,
                },
                level.scheme(),
                level.num_planes,
                plane_lo,
                plane_hi,
                prefix_bits,
                predictive,
            ),
        })
    }

    /// Start streaming planes `[plane_lo, plane_hi)` of a level addressed by
    /// the container chunk index `level`, fetching compressed chunks from
    /// `source` one region at a time with one-region prefetch overlap.
    pub fn from_source(
        level: &'a LevelMap,
        source: &'a dyn ChunkSource,
        plane_lo: u8,
        plane_hi: u8,
        prefix_bits: u8,
        predictive: bool,
        acc_len: usize,
    ) -> Result<Self> {
        check_plane_range_with(
            &level.scheme(),
            level.num_planes,
            |p| level.plane_chunk_count(p),
            plane_lo,
            plane_hi,
            acc_len,
        )?;
        Ok(Self {
            pipeline: RegionPipeline::new(
                FetchStage::Ranged {
                    level,
                    source,
                    plane_lo,
                    plane_hi,
                },
                level.scheme(),
                level.num_planes,
                plane_lo,
                plane_hi,
                prefix_bits,
                predictive,
            ),
        })
    }

    /// Total number of chunk regions this stream will produce.
    pub fn num_regions(&self) -> usize {
        self.pipeline.num_regions()
    }

    /// Compressed bytes the `k`-th region reads across the streamed planes.
    pub fn region_compressed_bytes(&self, k: usize) -> usize {
        self.pipeline.region_compressed_bytes(k)
    }

    /// Decode the next region into the matching slice of `acc` (the full
    /// level accumulator, same as [`decode_planes_into`]'s). Returns the
    /// coefficient range that was completed, or `None` when the stream is
    /// exhausted.
    pub fn decode_next(&mut self, acc: &mut [u64]) -> Result<Option<std::ops::Range<usize>>> {
        self.pipeline.decode_next(acc)
    }

    /// [`PlaneStream::decode_next`] with a post-scatter hook that runs inside
    /// the fetch-overlap window (see
    /// [`crate::pipeline::RegionPipeline::decode_next_with`]): consumer work
    /// on the completed region hides under the next region's in-flight fetch.
    pub fn decode_next_with(
        &mut self,
        acc: &mut [u64],
        after_scatter: impl FnOnce(std::ops::Range<usize>, &[u64]),
    ) -> Result<Option<std::ops::Range<usize>>> {
        self.pipeline.decode_next_with(acc, after_scatter)
    }
}

/// Decode the top `planes_loaded` planes of a level into quantization codes
/// (convenience wrapper for non-incremental use).
pub fn decode_level(
    level: &EncodedLevel,
    planes_loaded: u8,
    prefix_bits: u8,
    predictive: bool,
) -> Result<Vec<i64>> {
    let mut acc = vec![0u64; level.n_values];
    let lo = level.num_planes - planes_loaded.min(level.num_planes);
    decode_planes_into(
        level,
        lo,
        level.num_planes,
        prefix_bits,
        predictive,
        &mut acc,
    )?;
    // Consuming map lets the collect reuse the accumulator's allocation.
    Ok(acc
        .into_iter()
        .map(ipc_codecs::negabinary::from_negabinary)
        .collect())
}

/// Historical bit-at-a-time implementation, kept as the reference oracle for the
/// word-parallel coder: property tests assert byte-identical payloads and decode
/// results, and the benchmark harness measures the speedup against it. The
/// entropy stage (chunking + rANS dispatch) is shared with the word-parallel
/// path, so the comparison isolates the bit-manipulation layer.
#[cfg(any(test, feature = "reference-scalar"))]
pub mod scalar {
    use super::{EncodeOptions, EncodedLevel, EncodedPlane};
    use crate::error::{IpcompError, Result};
    use ipc_codecs::bitstream::{BitReader, BitWriter};
    use ipc_codecs::negabinary::{required_bitplanes, to_negabinary, truncation_loss};

    /// XOR of the `prefix_bits` bits immediately above plane `p` in word `nb`.
    #[inline]
    fn prefix_parity(nb: u64, p: u32, prefix_bits: u8) -> u64 {
        let mut parity = 0u64;
        for k in 1..=prefix_bits as u32 {
            let plane = p + k;
            if plane < 64 {
                parity ^= (nb >> plane) & 1;
            }
        }
        parity
    }

    /// Bit-at-a-time [`super::encode_level_with`].
    pub fn encode_level_with(
        codes: &[i64],
        prefix_bits: u8,
        predictive: bool,
        opts: EncodeOptions,
    ) -> EncodedLevel {
        let nb: Vec<u64> = codes.iter().map(|&c| to_negabinary(c)).collect();
        let num_planes = required_bitplanes(codes).min(63) as u8;
        let trunc_loss = {
            let mut trunc_loss = vec![0u64; num_planes as usize + 1];
            let mut running = 0u64;
            for (b, slot) in trunc_loss.iter_mut().enumerate().skip(1) {
                let exact = nb
                    .iter()
                    .map(|&w| truncation_loss(w, b as u32).unsigned_abs())
                    .max()
                    .unwrap_or(0);
                running = running.max(exact);
                *slot = running;
            }
            trunc_loss
        };

        let plane_len = codes.len().div_ceil(8);
        let span = if opts.chunk_bytes == 0 {
            plane_len.max(1)
        } else {
            opts.chunk_bytes
        };
        let encode_plane = |p: u32| -> EncodedPlane {
            let mut writer = BitWriter::with_capacity_bits(nb.len());
            for &w in &nb {
                let raw = (w >> p) & 1;
                let bit = if predictive {
                    raw ^ prefix_parity(w, p, prefix_bits)
                } else {
                    raw
                };
                writer.write_bit(bit == 1);
            }
            let packed = writer.into_bytes();
            EncodedPlane {
                chunks: packed
                    .chunks(span.max(1))
                    .map(|c| super::compress_chunk(c, &opts))
                    .collect(),
            }
        };
        let planes: Vec<EncodedPlane> = (0..num_planes as u32).map(encode_plane).collect();

        EncodedLevel {
            n_values: codes.len(),
            num_planes,
            planes,
            trunc_loss,
            chunk_bytes: opts.chunk_bytes,
            precinct_spans: None,
        }
    }

    /// Bit-at-a-time [`super::encode_level`].
    pub fn encode_level(codes: &[i64], prefix_bits: u8, predictive: bool) -> EncodedLevel {
        encode_level_with(codes, prefix_bits, predictive, EncodeOptions::default())
    }

    /// Reassemble the full packed byte stream of one plane from its chunks.
    fn unpack_plane(level: &EncodedLevel, p: u8) -> Result<Vec<u8>> {
        let mut packed = Vec::with_capacity(level.plane_len());
        for k in 0..level.planes[p as usize].chunks.len() {
            packed.extend_from_slice(&super::decode_chunk(level, p, k)?);
        }
        Ok(packed)
    }

    /// Bit-at-a-time [`super::decode_planes_into`].
    pub fn decode_planes_into(
        level: &EncodedLevel,
        plane_lo: u8,
        plane_hi: u8,
        prefix_bits: u8,
        predictive: bool,
        acc: &mut [u64],
    ) -> Result<()> {
        if acc.len() != level.n_values {
            return Err(IpcompError::InvalidInput(format!(
                "accumulator length {} does not match level size {}",
                acc.len(),
                level.n_values
            )));
        }
        if plane_hi > level.num_planes || plane_lo > plane_hi {
            return Err(IpcompError::InvalidInput(format!(
                "invalid plane range {plane_lo}..{plane_hi} for level with {} planes",
                level.num_planes
            )));
        }
        for p in (plane_lo..plane_hi).rev() {
            let packed = unpack_plane(level, p)?;
            let mut reader = BitReader::new(&packed);
            for word in acc.iter_mut() {
                let encoded = reader.read_bit()? as u64;
                let raw = if predictive {
                    encoded ^ prefix_parity(*word, p as u32, prefix_bits)
                } else {
                    encoded
                };
                *word |= raw << p;
            }
        }
        Ok(())
    }

    /// Bit-at-a-time [`super::decode_level`].
    pub fn decode_level(
        level: &EncodedLevel,
        planes_loaded: u8,
        prefix_bits: u8,
        predictive: bool,
    ) -> Result<Vec<i64>> {
        let mut acc = vec![0u64; level.n_values];
        let lo = level.num_planes - planes_loaded.min(level.num_planes);
        decode_planes_into(
            level,
            lo,
            level.num_planes,
            prefix_bits,
            predictive,
            &mut acc,
        )?;
        Ok(acc
            .into_iter()
            .map(ipc_codecs::negabinary::from_negabinary)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_codecs::negabinary::from_negabinary;
    use rand::{Rng, SeedableRng};

    fn sample_codes(n: usize, spread: i64, seed: u64) -> Vec<i64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Laplacian-ish residual distribution centred at zero, like real
                // prediction residuals.
                let mag = (rng.gen::<f64>().powi(3) * spread as f64) as i64;
                if rng.gen_bool(0.5) {
                    mag
                } else {
                    -mag
                }
            })
            .collect()
    }

    /// Small chunk size that forces multi-chunk planes on unit-test-sized
    /// levels (must stay a multiple of 8).
    fn tiny_chunks() -> EncodeOptions {
        EncodeOptions {
            chunk_bytes: 64,
            ..EncodeOptions::default()
        }
    }

    #[test]
    fn full_decode_roundtrip() {
        let codes = sample_codes(5000, 1 << 20, 1);
        for predictive in [true, false] {
            let enc = encode_level(&codes, 2, predictive, false);
            let dec = decode_level(&enc, enc.num_planes, 2, predictive).unwrap();
            assert_eq!(dec, codes);
        }
    }

    #[test]
    fn chunked_roundtrip_at_every_chunk_size() {
        let codes = sample_codes(3000, 1 << 18, 21);
        let reference = decode_level(
            &encode_level(&codes, 2, true, false),
            encode_level(&codes, 2, true, false).num_planes,
            2,
            true,
        )
        .unwrap();
        for chunk_bytes in [0usize, 8, 64, 128, 1024, CHUNK_BYTES] {
            let enc = encode_level_with(
                &codes,
                2,
                true,
                false,
                EncodeOptions {
                    chunk_bytes,
                    ..EncodeOptions::default()
                },
            );
            let expected_chunks = if chunk_bytes == 0 {
                1
            } else {
                codes.len().div_ceil(8).div_ceil(chunk_bytes)
            };
            for plane in &enc.planes {
                assert_eq!(
                    plane.chunks.len(),
                    expected_chunks,
                    "chunk_bytes={chunk_bytes}"
                );
            }
            let dec = decode_level(&enc, enc.num_planes, 2, true).unwrap();
            assert_eq!(dec, reference, "chunk_bytes={chunk_bytes}");
        }
    }

    #[test]
    fn chunked_and_monolithic_decode_identically_at_every_depth() {
        let codes = sample_codes(2000, 1 << 16, 22);
        let mono = encode_level_with(
            &codes,
            2,
            true,
            false,
            EncodeOptions {
                chunk_bytes: 0,
                ..EncodeOptions::default()
            },
        );
        let chunked = encode_level_with(&codes, 2, true, false, tiny_chunks());
        assert_eq!(mono.num_planes, chunked.num_planes);
        for loaded in 0..=mono.num_planes {
            let a = decode_level(&mono, loaded, 2, true).unwrap();
            let b = decode_level(&chunked, loaded, 2, true).unwrap();
            assert_eq!(a, b, "loaded={loaded}");
        }
    }

    #[test]
    fn plane_stream_matches_bulk_decode() {
        let codes = sample_codes(4000, 1 << 17, 23);
        let enc = encode_level_with(&codes, 2, true, false, tiny_chunks());
        let hi = enc.num_planes;
        let lo = hi / 3;

        let mut bulk = vec![0u64; enc.n_values];
        decode_planes_into(&enc, lo, hi, 2, true, &mut bulk).unwrap();

        let mut streamed = vec![0u64; enc.n_values];
        let mut stream = PlaneStream::new(&enc, lo, hi, 2, true, streamed.len()).unwrap();
        let mut regions = 0usize;
        let mut last_end = 0usize;
        while let Some(range) = stream.decode_next(&mut streamed).unwrap() {
            // Regions arrive in coefficient order, without gaps.
            assert_eq!(range.start, last_end);
            last_end = range.end;
            regions += 1;
            // Everything up to `range.end` is already final.
            assert_eq!(streamed[..range.end], bulk[..range.end]);
        }
        assert_eq!(last_end, enc.n_values);
        assert_eq!(regions, stream.num_regions());
        assert_eq!(streamed, bulk);
    }

    /// Stream through a ranged source and compare against the in-memory
    /// stream at every region.
    fn assert_source_stream_matches(codes: &[i64], opts: EncodeOptions) {
        let enc = encode_level_with(codes, 2, true, false, opts);
        let compressed = crate::container::Compressed {
            header: crate::container::Header {
                dims: vec![codes.len().max(1)],
                error_bound: 1e-6,
                interpolation: crate::config::Interpolation::Cubic,
                num_levels: 1,
                progressive_levels: 1,
                prefix_bits: 2,
                predictive_coding: true,
                value_range: 1.0,
                precincts: None,
            },
            anchors: Vec::new(),
            levels: vec![enc.clone()],
        };
        let bytes = compressed.to_bytes();
        let source = crate::source::MemorySource::new(bytes);
        let map = crate::container::ContainerMap::open(&source).unwrap();

        let hi = enc.num_planes;
        let mut mem_acc = vec![0u64; enc.n_values];
        let mut mem_stream = PlaneStream::new(&enc, 0, hi, 2, true, mem_acc.len()).unwrap();
        let mut src_acc = vec![0u64; enc.n_values];
        let mut src_stream =
            PlaneStream::from_source(&map.levels[0], &source, 0, hi, 2, true, src_acc.len())
                .unwrap();
        assert_eq!(mem_stream.num_regions(), src_stream.num_regions());
        loop {
            let a = mem_stream.decode_next(&mut mem_acc).unwrap();
            let b = src_stream.decode_next(&mut src_acc).unwrap();
            assert_eq!(a, b);
            assert_eq!(mem_acc, src_acc);
            if a.is_none() {
                break;
            }
        }
        let decoded: Vec<i64> = src_acc.into_iter().map(from_negabinary).collect();
        assert_eq!(decoded, codes);
    }

    #[test]
    fn plane_stream_single_element_level() {
        // A 1-element level has a 1-byte plane: the chunk grid degenerates to
        // one sub-byte region and the transpose path handles a lone word.
        for codes in [vec![5i64], vec![-1i64], vec![0i64]] {
            assert_source_stream_matches(&codes, tiny_chunks());
            assert_source_stream_matches(
                &codes,
                EncodeOptions {
                    chunk_bytes: 0,
                    ..EncodeOptions::default()
                },
            );
        }
    }

    #[test]
    fn plane_stream_chunk_boundary_exactly_at_plane_end() {
        // 64-byte chunks: 512 coefficients end exactly on the first chunk
        // boundary, 1024 exactly on the second — no ragged final chunk.
        for n in [512usize, 1024] {
            let codes = sample_codes(n, 1 << 12, 31);
            let enc = encode_level_with(&codes, 2, true, false, tiny_chunks());
            assert_eq!(enc.plane_len() % enc.region_bytes(), 0);
            let grid = enc.grid();
            let last = grid.num_regions() - 1;
            assert_eq!(grid.region_byte_range(last).end, grid.plane_len());
            assert_eq!(grid.region_coeff_range(last).end, n);
            assert_source_stream_matches(&codes, tiny_chunks());
        }
    }

    #[test]
    fn plane_stream_ragged_final_chunk() {
        // 500 coefficients with 8-byte chunks: the final chunk covers only
        // 60 of the 64 coefficient slots of a full region.
        let codes = sample_codes(500, 1 << 10, 32);
        assert_source_stream_matches(
            &codes,
            EncodeOptions {
                chunk_bytes: 8,
                ..EncodeOptions::default()
            },
        );
    }

    #[test]
    fn plane_stream_truncated_final_chunk_is_bounded_error() {
        let codes = sample_codes(3000, 1 << 14, 33);
        let mut enc = encode_level_with(&codes, 2, true, false, tiny_chunks());
        // Truncate the final chunk of the lowest plane mid-stream.
        let last = enc.planes[0].chunks.len() - 1;
        let chunk = &mut enc.planes[0].chunks[last];
        chunk.truncate(chunk.len().saturating_sub(2).max(1));
        let mut acc = vec![0u64; enc.n_values];
        let mut stream = PlaneStream::new(&enc, 0, enc.num_planes, 2, true, acc.len()).unwrap();
        let mut failed = false;
        let mut completed = 0usize;
        loop {
            match stream.decode_next(&mut acc) {
                Ok(Some(r)) => completed = r.end,
                Ok(None) => break,
                Err(e) => {
                    // Must surface a bounded error, never panic; regions
                    // before the corruption stay decoded.
                    assert!(matches!(
                        e,
                        IpcompError::Codec(_) | IpcompError::CorruptContainer(_)
                    ));
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "truncated chunk must fail the stream");
        assert!(completed < enc.n_values);
    }

    #[test]
    fn plane_stream_region_byte_accounting_covers_payload() {
        let codes = sample_codes(3000, 1 << 14, 24);
        let enc = encode_level_with(&codes, 2, true, false, tiny_chunks());
        let stream = PlaneStream::new(&enc, 0, enc.num_planes, 2, true, codes.len()).unwrap();
        let total: usize = (0..stream.num_regions())
            .map(|k| stream.region_compressed_bytes(k))
            .sum();
        assert_eq!(total, enc.payload_bytes());
    }

    #[test]
    fn zero_codes_have_no_planes() {
        let codes = vec![0i64; 1000];
        let enc = encode_level(&codes, 2, true, false);
        assert_eq!(enc.num_planes, 0);
        assert!(enc.planes.is_empty());
        let dec = decode_level(&enc, 0, 2, true).unwrap();
        assert_eq!(dec, codes);
    }

    #[test]
    fn empty_level_roundtrips() {
        let enc = encode_level(&[], 2, true, false);
        assert_eq!(enc.n_values, 0);
        assert_eq!(enc.num_planes, 0);
        assert_eq!(decode_level(&enc, 0, 2, true).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn truncated_decode_error_within_metadata_bound() {
        let codes = sample_codes(3000, 1 << 16, 2);
        let enc = encode_level(&codes, 2, true, false);
        for discard in 0..=enc.num_planes {
            let loaded = enc.num_planes - discard;
            let dec = decode_level(&enc, loaded, 2, true).unwrap();
            let max_err = codes
                .iter()
                .zip(&dec)
                .map(|(&a, &b)| (a - b).unsigned_abs())
                .max()
                .unwrap();
            assert!(
                max_err <= enc.trunc_loss[discard as usize],
                "discard={discard}: err {max_err} > bound {}",
                enc.trunc_loss[discard as usize]
            );
        }
    }

    #[test]
    fn trunc_loss_high_plane_sweep_matches_direct_reference() {
        // Codes spanning 40+ planes: the single-sweep high-plane path must
        // reproduce the per-plane direct passes exactly, including on levels
        // small enough to skip the pattern table and large enough to use it.
        for n in [100usize, 70_000] {
            let mut codes = sample_codes(n, 1i64 << 40, 77);
            codes[n / 2] = (1i64 << 41) - 12345; // force a deep negabinary word
            codes[n / 3] = -(1i64 << 40) - 7;
            let nb = ipc_codecs::negabinary::to_negabinary_slice(&codes);
            let num_planes = ipc_codecs::negabinary::required_bitplanes_words(&nb).min(63) as u8;
            assert!(num_planes > 30, "test needs a >30-plane level");
            let table = truncation_loss_table(&nb, num_planes);
            let mut running = 0u64;
            for (b, &entry) in table.iter().enumerate().skip(1) {
                running = running.max(max_masked_loss(&nb, b));
                assert_eq!(entry, running, "n={n} b={b}");
            }
        }
    }

    #[test]
    fn trunc_loss_is_monotone() {
        let codes = sample_codes(2000, 1 << 12, 3);
        let enc = encode_level(&codes, 2, true, false);
        for b in 1..enc.trunc_loss.len() {
            assert!(enc.trunc_loss[b] >= enc.trunc_loss[b - 1]);
        }
        assert_eq!(enc.trunc_loss[0], 0);
    }

    #[test]
    fn incremental_decoding_matches_full_decoding() {
        let codes = sample_codes(4000, 1 << 18, 4);
        let enc = encode_level(&codes, 2, true, false);
        // Decode in three chunks: top third, middle, rest.
        let mut acc = vec![0u64; enc.n_values];
        let hi = enc.num_planes;
        let cut1 = hi - hi / 3;
        let cut2 = hi / 3;
        decode_planes_into(&enc, cut1, hi, 2, true, &mut acc).unwrap();
        decode_planes_into(&enc, cut2, cut1, 2, true, &mut acc).unwrap();
        decode_planes_into(&enc, 0, cut2, 2, true, &mut acc).unwrap();
        let dec: Vec<i64> = acc.into_iter().map(from_negabinary).collect();
        assert_eq!(dec, codes);
    }

    #[test]
    fn partial_then_refined_decode_is_additive() {
        let codes = sample_codes(2000, 1 << 14, 5);
        let enc = encode_level(&codes, 2, true, false);
        let hi = enc.num_planes;
        let half = hi / 2;
        let mut acc = vec![0u64; enc.n_values];
        decode_planes_into(&enc, half, hi, 2, true, &mut acc).unwrap();
        let coarse: Vec<i64> = acc.iter().map(|&w| from_negabinary(w)).collect();
        decode_planes_into(&enc, 0, half, 2, true, &mut acc).unwrap();
        let fine: Vec<i64> = acc.iter().map(|&w| from_negabinary(w)).collect();
        // The refinement adds exactly the value of the lower planes.
        for i in 0..codes.len() {
            assert_eq!(fine[i], codes[i]);
            let delta = fine[i] - coarse[i];
            assert!(delta.unsigned_abs() <= enc.trunc_loss[half as usize]);
        }
    }

    #[test]
    fn predictive_coding_reduces_compressed_size_on_smooth_codes() {
        // Smooth residual magnitudes produce correlated bitplanes; predictive coding
        // should not hurt and typically helps.
        let codes: Vec<i64> = (0..20_000)
            .map(|i| ((i as f64 * 0.01).sin() * 1000.0) as i64)
            .collect();
        let with = encode_level(&codes, 2, true, false);
        let without = encode_level(&codes, 2, false, false);
        assert!(
            (with.payload_bytes() as f64) < 1.1 * without.payload_bytes() as f64,
            "predictive {} vs raw {}",
            with.payload_bytes(),
            without.payload_bytes()
        );
    }

    #[test]
    fn parallel_and_serial_encoding_agree() {
        let codes = sample_codes(10_000, 1 << 15, 6);
        let a = encode_level(&codes, 2, true, false);
        let b = encode_level(&codes, 2, true, true);
        assert_eq!(a, b);
    }

    #[test]
    fn size_accounting_is_consistent() {
        let codes = sample_codes(3000, 1 << 10, 7);
        let enc = encode_level(&codes, 2, true, false);
        for b in 0..=enc.num_planes {
            assert_eq!(
                enc.saved_bytes(b) + enc.loaded_bytes(b),
                enc.payload_bytes()
            );
        }
        assert_eq!(enc.saved_bytes(0), 0);
        assert_eq!(enc.loaded_bytes(enc.num_planes), 0);
    }

    #[test]
    fn invalid_plane_range_rejected() {
        let codes = sample_codes(100, 1 << 8, 8);
        let enc = encode_level(&codes, 2, true, false);
        let mut acc = vec![0u64; 100];
        assert!(decode_planes_into(&enc, 0, enc.num_planes + 1, 2, true, &mut acc).is_err());
        let mut short = vec![0u64; 50];
        assert!(decode_planes_into(&enc, 0, enc.num_planes, 2, true, &mut short).is_err());
    }

    #[test]
    fn corrupt_plane_block_errors_without_touching_acc() {
        let codes = sample_codes(900, 1 << 12, 9);
        let mut enc = encode_level(&codes, 2, true, false);
        let top = enc.num_planes as usize - 1;
        enc.planes[top] = EncodedPlane::monolithic(lzr_compress(&[0u8; 4])); // too short for 900 bits
        let mut acc = vec![0u64; 900];
        let err = decode_planes_into(&enc, 0, enc.num_planes, 2, true, &mut acc);
        assert!(err.is_err());
        assert!(
            acc.iter().all(|&w| w == 0),
            "acc must be untouched on error"
        );
    }

    #[test]
    fn mismatched_chunk_grid_rejected() {
        let codes = sample_codes(2000, 1 << 12, 25);
        let mut enc = encode_level_with(&codes, 2, true, false, tiny_chunks());
        // Drop a chunk from one plane: the grid no longer matches.
        enc.planes[0].chunks.pop();
        let mut acc = vec![0u64; 2000];
        assert!(matches!(
            decode_planes_into(&enc, 0, enc.num_planes, 2, true, &mut acc),
            Err(IpcompError::CorruptContainer(_))
        ));
    }

    // ---- word-parallel vs scalar reference oracle ---------------------------

    /// The word-parallel encoder must produce byte-identical payloads to the
    /// bit-at-a-time reference for every prefix width, with and without
    /// prediction — including across chunked entropy layouts.
    #[test]
    fn encoder_is_bit_identical_to_scalar_reference() {
        let codes = sample_codes(3000, 1 << 17, 10);
        for prefix_bits in 0..=4u8 {
            for predictive in [false, true] {
                for opts in [EncodeOptions::default(), tiny_chunks()] {
                    let word = encode_level_with(&codes, prefix_bits, predictive, false, opts);
                    let reference =
                        scalar::encode_level_with(&codes, prefix_bits, predictive, opts);
                    assert_eq!(
                        word, reference,
                        "prefix_bits={prefix_bits} predictive={predictive} opts={opts:?}"
                    );
                }
            }
        }
    }

    /// Same oracle at every truncation depth on the decode side.
    #[test]
    fn decoder_matches_scalar_reference_at_every_depth() {
        let codes = sample_codes(2100, 1 << 15, 11);
        for prefix_bits in [0u8, 2, 4] {
            let enc = encode_level(&codes, prefix_bits, true, false);
            for loaded in 0..=enc.num_planes {
                let word = decode_level(&enc, loaded, prefix_bits, true).unwrap();
                let reference = scalar::decode_level(&enc, loaded, prefix_bits, true).unwrap();
                assert_eq!(word, reference, "prefix_bits={prefix_bits} loaded={loaded}");
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(48))]

        /// Word-parallel encode is byte-identical to the scalar oracle on random
        /// code vectors for all supported prefix widths and random chunk grids.
        #[test]
        fn prop_encode_bit_identical(
            codes in proptest::collection::vec(-1_000_000i64..1_000_000, 0..700),
            prefix_bits in 0u8..=4,
            predictive in proptest::any::<bool>(),
            chunk_step in 0usize..6,
        ) {
            let opts = EncodeOptions {
                chunk_bytes: chunk_step * 24, // 0, 24, 48, ... — multiples of 8
                ..EncodeOptions::default()
            };
            let word = encode_level_with(&codes, prefix_bits, predictive, false, opts);
            let reference = scalar::encode_level_with(&codes, prefix_bits, predictive, opts);
            proptest::prop_assert_eq!(word, reference);
        }

        /// Word-parallel decode agrees with the scalar oracle at a random
        /// truncation depth.
        #[test]
        fn prop_decode_matches_scalar_at_random_depth(
            codes in proptest::collection::vec(-3_000_000i64..3_000_000, 1..600),
            prefix_bits in 0u8..=4,
            depth_seed in proptest::any::<u64>(),
        ) {
            let enc = encode_level(&codes, prefix_bits, true, false);
            let loaded = if enc.num_planes == 0 {
                0
            } else {
                (depth_seed % (enc.num_planes as u64 + 1)) as u8
            };
            let word = decode_level(&enc, loaded, prefix_bits, true).unwrap();
            let reference = scalar::decode_level(&enc, loaded, prefix_bits, true).unwrap();
            proptest::prop_assert_eq!(word, reference);
        }

        /// Incremental refinement through `decode_planes_into` visits planes in
        /// the same order as the scalar reference and lands on identical
        /// accumulators at every split point.
        #[test]
        fn prop_incremental_refine_matches_scalar(
            codes in proptest::collection::vec(-500_000i64..500_000, 1..500),
            prefix_bits in 0u8..=4,
            cut_seed in proptest::any::<u64>(),
        ) {
            let enc = encode_level(&codes, prefix_bits, true, false);
            let hi = enc.num_planes;
            let cut1 = if hi == 0 { 0 } else { (cut_seed % (hi as u64 + 1)) as u8 };
            let cut2 = if cut1 == 0 { 0 } else { ((cut_seed >> 32) % (cut1 as u64 + 1)) as u8 };
            let mut word_acc = vec![0u64; enc.n_values];
            let mut ref_acc = vec![0u64; enc.n_values];
            for (lo, hi) in [(cut1, hi), (cut2, cut1), (0, cut2)] {
                decode_planes_into(&enc, lo, hi, prefix_bits, true, &mut word_acc).unwrap();
                scalar::decode_planes_into(&enc, lo, hi, prefix_bits, true, &mut ref_acc)
                    .unwrap();
                proptest::prop_assert_eq!(&word_acc, &ref_acc, "after planes {}..{}", lo, hi);
            }
            let decoded = ipc_codecs::negabinary::from_negabinary_slice(&word_acc);
            proptest::prop_assert_eq!(decoded, codes);
        }

        /// Chunked streaming decode lands on the same accumulators as bulk
        /// decode for arbitrary plane sub-ranges and chunk sizes.
        #[test]
        fn prop_plane_stream_matches_bulk(
            codes in proptest::collection::vec(-200_000i64..200_000, 1..500),
            chunk_step in 1usize..6,
            range_seed in proptest::any::<u64>(),
        ) {
            let opts = EncodeOptions {
                chunk_bytes: chunk_step * 8,
                ..EncodeOptions::default()
            };
            let enc = encode_level_with(&codes, 2, true, false, opts);
            let hi = enc.num_planes;
            let lo = if hi == 0 { 0 } else { (range_seed % (hi as u64 + 1)) as u8 };
            let mut bulk = vec![0u64; enc.n_values];
            decode_planes_into(&enc, lo, hi, 2, true, &mut bulk).unwrap();
            let mut streamed = vec![0u64; enc.n_values];
            let mut stream = PlaneStream::new(&enc, lo, hi, 2, true, streamed.len()).unwrap();
            while stream.decode_next(&mut streamed).unwrap().is_some() {}
            proptest::prop_assert_eq!(streamed, bulk);
        }
    }
}
