//! Spatial precinct geometry for the version-3 container layout and the ROI
//! read path.
//!
//! A *precinct grid* partitions the domain into axis-aligned sub-bricks of a
//! configurable extent per dimension (the JPEG2000 precinct idea applied to
//! the interpolation lattice). A version-3 container orders every level's
//! coefficients precinct-major — all coefficients of precinct 0 (in canonical
//! traversal order), then precinct 1, … — and cuts entropy chunks exactly on
//! precinct boundaries, so the chunks covering a bounding box can be fetched
//! and decoded without touching the rest of the domain.
//!
//! The module also owns the *halo* arithmetic: reconstructing a region of
//! interest bit-identically requires the interpolation cascade's neighbour
//! reads to land on correct values, which grows the window by the predictor's
//! reach at every level. See [`fetch_window`] / [`pass_window`] for the exact
//! recurrence.

use crate::config::Interpolation;
use crate::container::Header;
use crate::error::{IpcompError, Result};
use crate::interp::{for_each_level_pass, level_stride};
use ipc_tensor::{AxisRange, Shape, MAX_DIMS};

/// An axis-aligned bounding box (half-open, `lo[i] <= x_i < hi[i]`) selecting
/// a region of the domain for retrieval. Dimensions beyond `ndim` are unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoiBox {
    /// Inclusive lower corner per dimension.
    pub lo: [usize; MAX_DIMS],
    /// Exclusive upper corner per dimension.
    pub hi: [usize; MAX_DIMS],
    /// Number of meaningful dimensions.
    pub ndim: usize,
}

impl RoiBox {
    /// Build a box from per-dimension bounds. Panics if `lo`/`hi` lengths
    /// differ or exceed [`MAX_DIMS`].
    pub fn new(lo: &[usize], hi: &[usize]) -> Self {
        assert_eq!(lo.len(), hi.len(), "RoiBox lo/hi rank mismatch");
        assert!(
            lo.len() <= MAX_DIMS,
            "RoiBox supports at most {MAX_DIMS} dims"
        );
        let mut b = Self {
            lo: [0; MAX_DIMS],
            hi: [0; MAX_DIMS],
            ndim: lo.len(),
        };
        b.lo[..lo.len()].copy_from_slice(lo);
        b.hi[..hi.len()].copy_from_slice(hi);
        b
    }

    /// Check the box against the domain: matching rank, non-empty, in bounds.
    pub fn validate(&self, dims: &[usize]) -> Result<()> {
        if self.ndim != dims.len() {
            return Err(IpcompError::InvalidInput(format!(
                "ROI rank {} does not match domain rank {}",
                self.ndim,
                dims.len()
            )));
        }
        for (i, &d) in dims.iter().enumerate() {
            if self.lo[i] >= self.hi[i] || self.hi[i] > d {
                return Err(IpcompError::InvalidInput(format!(
                    "ROI bounds [{}, {}) invalid for dimension {i} of size {d}",
                    self.lo[i], self.hi[i]
                )));
            }
        }
        Ok(())
    }

    /// Size of the box along each dimension.
    pub fn dims(&self) -> Vec<usize> {
        (0..self.ndim).map(|i| self.hi[i] - self.lo[i]).collect()
    }

    /// Number of points inside the box.
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// True when the box selects no points (never the case once validated).
    pub fn is_empty(&self) -> bool {
        (0..self.ndim).any(|i| self.lo[i] >= self.hi[i])
    }
}

/// Neighbour reach of the predictor along the active dimension, in units of
/// the level stride: cubic reads `±3·stride`, linear `±stride`.
pub(crate) fn reach(method: Interpolation) -> usize {
    match method {
        Interpolation::Linear => 1,
        Interpolation::Cubic => 3,
    }
}

/// A per-dimension half-open window `[lo, hi)` clamped to the domain.
pub(crate) type Window = Vec<(usize, usize)>;

fn expand(roi: &RoiBox, dims: &[usize], halo: impl Fn(usize) -> usize) -> Window {
    (0..roi.ndim)
        .map(|i| {
            let h = halo(i);
            (roi.lo[i].saturating_sub(h), (roi.hi[i] + h).min(dims[i]))
        })
        .collect()
}

/// The window of level-`level` lattice points whose codes an ROI decode must
/// fetch: the ROI expanded by `reach·(stride−1)` in every dimension plus a
/// further `reach·stride` in every dimension *after the first swept one* —
/// the first sub-pass of a level reads its not-yet-swept dimensions on the
/// coarser `2·stride` lattice, so their halo is one level wider.
pub(crate) fn fetch_window(
    roi: &RoiBox,
    dims: &[usize],
    method: Interpolation,
    level: u32,
) -> Window {
    let r = reach(method);
    let s = level_stride(level);
    expand(roi, dims, |i| r * (s - 1) + if i > 0 { r * s } else { 0 })
}

/// The window a dimension sub-pass `d` of level `level` must *compute* so
/// that every later pass (same level, later dimension, or any finer level)
/// reads only correct values: `reach·(stride−1)` everywhere plus
/// `reach·stride` along dimensions not yet swept by this level.
pub(crate) fn pass_window(
    roi: &RoiBox,
    dims: &[usize],
    method: Interpolation,
    level: u32,
    d: usize,
) -> Window {
    let r = reach(method);
    let s = level_stride(level);
    expand(roi, dims, |i| r * (s - 1) + if i > d { r * s } else { 0 })
}

/// Per-level precinct fetch masks of an ROI retrieval: `masks[idx][k]` is
/// true iff precinct `k` intersects container level entry `idx`'s fetch
/// window (the box plus the cascade's cross-level ancestor halo). This is the
/// single source of truth for *which chunks an ROI touches* — the decoder
/// fetches by it and the store planner lowers byte ranges from it, so the two
/// can never disagree.
///
/// # Errors
///
/// [`IpcompError::InvalidInput`] if the box is invalid for the container's
/// domain or the container has no precinct grid (pre-v3 layout).
pub fn roi_precinct_masks(header: &Header, bounds: &RoiBox) -> Result<Vec<Vec<bool>>> {
    bounds.validate(&header.dims)?;
    let grid = header.precinct_grid().ok_or_else(|| {
        IpcompError::InvalidInput(
            "ROI retrieval requires the precinct-partitioned (version-3) container layout".into(),
        )
    })?;
    Ok((0..header.num_levels)
        .map(|idx| {
            let w = fetch_window(
                bounds,
                &header.dims,
                header.interpolation,
                header.num_levels - idx,
            );
            grid.intersecting(&w)
        })
        .collect())
}

/// Clip each [`AxisRange`] of a lattice sweep to a window, preserving the
/// lattice phase: the clipped range starts at the first on-lattice coordinate
/// `>= window.lo` and ends at `min(end, window.hi)`.
pub(crate) fn clip_ranges(ranges: &[AxisRange], window: &[(usize, usize)]) -> Vec<AxisRange> {
    ranges
        .iter()
        .zip(window)
        .map(|(r, &(lo, hi))| {
            let start = if lo > r.start {
                r.start + (lo - r.start).div_ceil(r.step) * r.step
            } else {
                r.start
            };
            AxisRange::strided(start, r.step, r.end.min(hi))
        })
        .collect()
}

/// The spatial precinct grid of a version-3 container: one partition of the
/// *domain* shared by every level, so a precinct id means the same brick of
/// space at every resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecinctGrid {
    dims: Vec<usize>,
    extents: Vec<usize>,
    counts: Vec<usize>,
}

impl PrecinctGrid {
    /// Build the grid over a domain. Every extent must be at least 1; extents
    /// larger than the dimension collapse to a single precinct along it.
    pub fn new(dims: &[usize], extents: &[usize]) -> Result<Self> {
        if extents.len() < dims.len() || extents[..dims.len()].contains(&0) {
            return Err(IpcompError::InvalidInput(format!(
                "precinct extents {extents:?} invalid for domain {dims:?}"
            )));
        }
        let extents: Vec<usize> = extents[..dims.len()].to_vec();
        let counts = dims
            .iter()
            .zip(&extents)
            .map(|(&d, &e)| d.div_ceil(e))
            .collect();
        Ok(Self {
            dims: dims.to_vec(),
            extents,
            counts,
        })
    }

    /// Per-dimension precinct extents.
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Number of precincts along each dimension.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of precincts (identical for every level).
    pub fn num_precincts(&self) -> usize {
        self.counts.iter().product()
    }

    /// Row-major precinct id of a domain coordinate.
    #[inline]
    pub fn precinct_of(&self, coords: &[usize]) -> usize {
        let mut id = 0usize;
        for ((&c, &count), &extent) in coords.iter().zip(&self.counts).zip(&self.extents) {
            id = id * count + c / extent;
        }
        id
    }

    /// Domain bounding box `[lo, hi)` of a precinct (clamped to the domain).
    pub fn precinct_box(&self, id: usize) -> (Vec<usize>, Vec<usize>) {
        let ndim = self.dims.len();
        let mut rem = id;
        let mut cell = vec![0usize; ndim];
        for i in (0..ndim).rev() {
            cell[i] = rem % self.counts[i];
            rem /= self.counts[i];
        }
        let lo: Vec<usize> = (0..ndim).map(|i| cell[i] * self.extents[i]).collect();
        let hi: Vec<usize> = (0..ndim)
            .map(|i| ((cell[i] + 1) * self.extents[i]).min(self.dims[i]))
            .collect();
        (lo, hi)
    }

    /// Mask over precinct ids: true where the precinct's box intersects the
    /// half-open window.
    pub(crate) fn intersecting(&self, window: &[(usize, usize)]) -> Vec<bool> {
        let ndim = self.dims.len();
        // Per-dimension range of intersecting precinct cells.
        let cell_ranges: Vec<(usize, usize)> = (0..ndim)
            .map(|i| {
                let (lo, hi) = window[i];
                if lo >= hi {
                    return (0, 0);
                }
                (lo / self.extents[i], ((hi - 1) / self.extents[i]) + 1)
            })
            .collect();
        let mut mask = vec![false; self.num_precincts()];
        let mut cell: Vec<usize> = cell_ranges.iter().map(|&(l, _)| l).collect();
        if cell_ranges.iter().any(|&(l, h)| l >= h) {
            return mask;
        }
        loop {
            let mut id = 0usize;
            for (&count, &c) in self.counts.iter().zip(&cell) {
                id = id * count + c;
            }
            mask[id] = true;
            let mut dim = ndim;
            loop {
                if dim == 0 {
                    return mask;
                }
                dim -= 1;
                cell[dim] += 1;
                if cell[dim] < cell_ranges[dim].1 {
                    break;
                }
                cell[dim] = cell_ranges[dim].0;
            }
        }
    }

    /// Number of level-`level` lattice points inside each precinct, in
    /// precinct-id order. These are the coefficient spans of the level's
    /// precinct-major layout; empty precincts (common at coarse levels) get a
    /// zero span and a zero-byte chunk per plane.
    pub fn level_spans(&self, shape: &Shape, level: u32) -> Vec<usize> {
        let ndim = self.dims.len();
        let mut spans = vec![0usize; self.num_precincts()];
        let stride = level_stride(level);
        for_each_level_pass(shape, stride, |_, ranges| {
            // A precinct's span factorizes into per-dimension lattice-point
            // counts, so one count vector per dimension covers every
            // precinct — the id odometer below just multiplies them out.
            let counts: Vec<Vec<usize>> = (0..ndim)
                .map(|i| {
                    (0..self.counts[i])
                        .map(|c| {
                            let lo = c * self.extents[i];
                            let hi = ((c + 1) * self.extents[i]).min(self.dims[i]);
                            clip_count(&ranges[i], lo, hi)
                        })
                        .collect()
                })
                .collect();
            let mut cell = vec![0usize; ndim];
            for span in spans.iter_mut() {
                let mut n = 1usize;
                for i in 0..ndim {
                    n *= counts[i][cell[i]];
                }
                *span += n;
                let mut d = ndim;
                while d > 0 {
                    d -= 1;
                    cell[d] += 1;
                    if cell[d] < self.counts[d] {
                        break;
                    }
                    cell[d] = 0;
                }
            }
        });
        spans
    }

    /// The permutation from precinct-major order to canonical traversal order
    /// of a level: `to_canonical[i]` is the canonical position of the `i`-th
    /// coefficient of the precinct-major layout. Within a precinct,
    /// coefficients keep their canonical relative order, so the map is the
    /// stable bucket sort of the canonical sweep by precinct id.
    pub fn level_permutation(&self, shape: &Shape, level: u32) -> LevelPrecincts {
        let spans = self.level_spans(shape, level);
        let total: usize = spans.iter().sum();
        let mut cursor = prefix_sums(&spans);
        let mut to_canonical = vec![0u32; total];
        let mut pos = 0u32;
        for_each_canonical_point(shape, level, |coords, _| {
            let p = self.precinct_of(coords);
            to_canonical[cursor[p]] = pos;
            cursor[p] += 1;
            pos += 1;
        });
        LevelPrecincts {
            spans,
            to_canonical,
        }
    }
}

/// Number of coordinates of a strided range inside `[lo, hi)`.
fn clip_count(r: &AxisRange, lo: usize, hi: usize) -> usize {
    let start = if lo > r.start {
        r.start + (lo - r.start).div_ceil(r.step) * r.step
    } else {
        r.start
    };
    let end = r.end.min(hi);
    if start >= end {
        0
    } else {
        (end - start).div_ceil(r.step)
    }
}

/// Exclusive prefix sums of `spans` (the start offset of every precinct).
pub(crate) fn prefix_sums(spans: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(spans.len());
    let mut acc = 0usize;
    for &s in spans {
        out.push(acc);
        acc += s;
    }
    out
}

/// Precinct layout of one level: coefficient spans per precinct and the
/// precinct-major → canonical-order permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelPrecincts {
    /// Level coefficients per precinct (precinct-id order).
    pub spans: Vec<usize>,
    /// `to_canonical[i]` = canonical traversal position of precinct-major
    /// coefficient `i`.
    pub to_canonical: Vec<u32>,
}

impl LevelPrecincts {
    /// Reorder canonical-order per-coefficient values into precinct-major
    /// container order.
    pub fn to_precinct_order<T: Copy>(&self, canonical: &[T]) -> Vec<T> {
        self.to_canonical
            .iter()
            .map(|&c| canonical[c as usize])
            .collect()
    }

    /// Reorder precinct-major container-order values back into canonical
    /// traversal order.
    pub fn to_canonical_order<T: Copy + Default>(&self, precinct: &[T]) -> Vec<T> {
        let mut out = vec![T::default(); precinct.len()];
        for (i, &c) in self.to_canonical.iter().enumerate() {
            out[c as usize] = precinct[i];
        }
        out
    }
}

/// Visit every level-`level` lattice point in canonical traversal order
/// (sub-pass-major, row-major within a sub-pass) with its coordinates and
/// flat offset — the order the compressor records codes in.
pub(crate) fn for_each_canonical_point(
    shape: &Shape,
    level: u32,
    mut f: impl FnMut(&[usize], usize),
) {
    let strides = shape.strides().to_vec();
    for_each_level_pass(shape, level_stride(level), |_, ranges| {
        if ranges.iter().any(|r| r.count() == 0) {
            return;
        }
        let ndim = ranges.len();
        let mut coords: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        let mut offset: usize = coords.iter().zip(&strides).map(|(&c, &s)| c * s).sum();
        loop {
            f(&coords, offset);
            let mut dim = ndim;
            loop {
                if dim == 0 {
                    return;
                }
                dim -= 1;
                let r = ranges[dim];
                let next = coords[dim] + r.step;
                if next < r.end {
                    coords[dim] = next;
                    offset += r.step * strides[dim];
                    break;
                }
                offset -= (coords[dim] - r.start) * strides[dim];
                coords[dim] = r.start;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{level_count, num_levels};
    use ipc_tensor::GridIter;

    #[test]
    fn grid_counts_and_boxes() {
        let g = PrecinctGrid::new(&[20, 16], &[8, 8]).unwrap();
        assert_eq!(g.counts(), &[3, 2]);
        assert_eq!(g.num_precincts(), 6);
        let (lo, hi) = g.precinct_box(4); // cell (2, 0)
        assert_eq!(lo, vec![16, 0]);
        assert_eq!(hi, vec![20, 8]); // clamped to dim 20
        assert_eq!(g.precinct_of(&[17, 3]), 4);
        assert_eq!(g.precinct_of(&[0, 0]), 0);
        assert_eq!(g.precinct_of(&[19, 15]), 5);
    }

    #[test]
    fn spans_partition_every_level() {
        for dims in [vec![17usize], vec![20, 16], vec![9, 12, 7]] {
            let shape = Shape::new(&dims);
            let extents: Vec<usize> = dims.iter().map(|&d| (d / 3).max(1)).collect();
            let g = PrecinctGrid::new(&dims, &extents).unwrap();
            for level in 1..=num_levels(&shape) {
                let spans = g.level_spans(&shape, level);
                assert_eq!(
                    spans.iter().sum::<usize>(),
                    level_count(&shape, level),
                    "dims {dims:?} level {level}"
                );
            }
        }
    }

    #[test]
    fn permutation_is_a_bijection_grouped_by_precinct() {
        let shape = Shape::d2(13, 11);
        let g = PrecinctGrid::new(&[13, 11], &[4, 4]).unwrap();
        for level in 1..=num_levels(&shape) {
            let lp = g.level_permutation(&shape, level);
            let n = lp.to_canonical.len();
            assert_eq!(n, level_count(&shape, level));
            let mut seen = vec![false; n];
            for &c in &lp.to_canonical {
                assert!(!seen[c as usize]);
                seen[c as usize] = true;
            }
            // Round trip through both reorderings is the identity.
            let vals: Vec<u32> = (0..n as u32).collect();
            let pre = lp.to_precinct_order(&vals);
            assert_eq!(lp.to_canonical_order(&pre), vals);
            // Every precinct's slice holds exactly the canonical points whose
            // coordinates fall in that precinct, in canonical order.
            let starts = prefix_sums(&lp.spans);
            let mut by_point: Vec<usize> = Vec::new();
            for_each_canonical_point(&shape, level, |coords, _| {
                by_point.push(g.precinct_of(coords));
            });
            for (p, (&start, &span)) in starts.iter().zip(&lp.spans).enumerate() {
                let slice = &lp.to_canonical[start..start + span];
                assert!(slice.windows(2).all(|w| w[0] < w[1]), "stable order");
                for &c in slice {
                    assert_eq!(by_point[c as usize], p);
                }
            }
        }
    }

    #[test]
    fn canonical_walk_matches_grid_iter() {
        let shape = Shape::d3(6, 9, 5);
        for level in 1..=num_levels(&shape) {
            let mut got: Vec<(Vec<usize>, usize)> = Vec::new();
            for_each_canonical_point(&shape, level, |c, o| got.push((c.to_vec(), o)));
            let mut want: Vec<(Vec<usize>, usize)> = Vec::new();
            for_each_level_pass(&shape, level_stride(level), |_, ranges| {
                want.extend(GridIter::new(&shape, ranges));
            });
            assert_eq!(got, want, "level {level}");
        }
    }

    #[test]
    fn intersection_mask_matches_boxes() {
        let g = PrecinctGrid::new(&[32, 24], &[8, 8]).unwrap();
        let mask = g.intersecting(&[(5, 9), (0, 24)]);
        for (id, &m) in mask.iter().enumerate() {
            let (lo, hi) = g.precinct_box(id);
            let hit = lo[0] < 9 && hi[0] > 5;
            assert_eq!(m, hit, "precinct {id}");
        }
        // Empty window hits nothing.
        assert!(g.intersecting(&[(4, 4), (0, 24)]).iter().all(|&m| !m));
    }

    #[test]
    fn clip_preserves_lattice_phase() {
        let r = AxisRange::strided(3, 4, 40);
        let c = clip_ranges(&[r], &[(6, 30)]);
        assert_eq!(c[0], AxisRange::strided(7, 4, 30));
        let c = clip_ranges(&[r], &[(0, 40)]);
        assert_eq!(c[0], r);
        let c = clip_ranges(&[r], &[(8, 8)]);
        assert_eq!(c[0].count(), 0);
    }

    #[test]
    fn roi_box_validation() {
        let b = RoiBox::new(&[2, 3], &[5, 7]);
        assert!(b.validate(&[10, 10]).is_ok());
        assert_eq!(b.dims(), vec![3, 4]);
        assert_eq!(b.len(), 12);
        assert!(b.validate(&[10]).is_err());
        assert!(b.validate(&[4, 10]).is_err());
        assert!(RoiBox::new(&[3, 3], &[3, 7]).validate(&[10, 10]).is_err());
    }

    #[test]
    fn windows_clamp_to_domain() {
        let roi = RoiBox::new(&[0, 100], &[16, 116]);
        let dims = [128usize, 128];
        let w = fetch_window(&roi, &dims, Interpolation::Cubic, 2);
        // stride 2, reach 3: halo = 3*(2-1) = 3 along dim 0, +3*2 along dim 1.
        assert_eq!(w[0], (0, 19));
        assert_eq!(w[1], (91, 125));
        let w = pass_window(&roi, &dims, Interpolation::Cubic, 1, 0);
        // stride 1: 0 along swept dims <= 0, reach along dim 1.
        assert_eq!(w[0], (0, 16));
        assert_eq!(w[1], (97, 119));
        let w = pass_window(&roi, &dims, Interpolation::Cubic, 1, 1);
        assert_eq!(w, vec![(0, 16), (100, 116)]);
    }
}
