//! Registry handles for the decode stack's instrumentation.
//!
//! One lazily-resolved bundle of `'static` telemetry handles, so the hot
//! paths (per-region stage calls, per-level cascade passes) never touch the
//! registry lock — they pay one `OnceLock` load plus whatever the instrument
//! itself costs (nothing when telemetry is disabled or compiled out).

use std::sync::OnceLock;

use ipc_telemetry::{Counter, Histogram};

/// Handles for every metric the ipcomp layer records.
pub struct DecodeMetrics {
    /// Per-region fetch-stage duration (ns).
    pub fetch_ns: &'static Histogram,
    /// Compressed bytes resolved by the fetch stage.
    pub fetch_bytes: &'static Counter,
    /// Per-region entropy-stage duration (ns).
    pub entropy_ns: &'static Histogram,
    /// Packed plane bytes produced by the entropy stage.
    pub entropy_bytes: &'static Counter,
    /// Per-region scatter-stage duration (ns).
    pub scatter_ns: &'static Histogram,
    /// Per-dimension cascade sub-pass duration (ns).
    pub cascade_pass_ns: &'static Histogram,
    /// End-to-end retrieve duration (ns), bulk and streaming alike.
    pub retrieve_ns: &'static Histogram,
    /// Retrieval requests completed.
    pub retrieves: &'static Counter,
    /// Compressed payload bytes consumed by completed retrievals.
    pub retrieve_bytes: &'static Counter,
}

/// The process-wide ipcomp metric bundle.
pub fn metrics() -> &'static DecodeMetrics {
    static METRICS: OnceLock<DecodeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| DecodeMetrics {
        fetch_ns: ipc_telemetry::histogram("ipcomp.pipeline.fetch_ns"),
        fetch_bytes: ipc_telemetry::counter("ipcomp.pipeline.fetch_bytes"),
        entropy_ns: ipc_telemetry::histogram("ipcomp.pipeline.entropy_ns"),
        entropy_bytes: ipc_telemetry::counter("ipcomp.pipeline.entropy_bytes"),
        scatter_ns: ipc_telemetry::histogram("ipcomp.pipeline.scatter_ns"),
        cascade_pass_ns: ipc_telemetry::histogram("ipcomp.cascade.pass_ns"),
        retrieve_ns: ipc_telemetry::histogram("ipcomp.retrieve.ns"),
        retrieves: ipc_telemetry::counter("ipcomp.retrieve.requests"),
        retrieve_bytes: ipc_telemetry::counter("ipcomp.retrieve.bytes"),
    })
}

/// Handles for the time-series archive layer's metrics.
pub struct ArchiveMetrics {
    /// Output timesteps reconstructed and emitted.
    pub steps: &'static Counter,
    /// Keyframe step decodes (output or chain).
    pub keyframes: &'static Counter,
    /// Residual step decodes (output or chain).
    pub residuals: &'static Counter,
    /// Requests that resumed from a cached chain base instead of re-decoding
    /// the keyframe prefix.
    pub chain_reuse: &'static Counter,
    /// Archive bytes fetched across all step decodes.
    pub bytes: &'static Counter,
    /// Per-step wall time (decode + chain composition), ns.
    pub step_ns: &'static Histogram,
}

/// The process-wide archive metric bundle.
pub fn archive_metrics() -> &'static ArchiveMetrics {
    static METRICS: OnceLock<ArchiveMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ArchiveMetrics {
        steps: ipc_telemetry::counter("ipcomp.archive.steps"),
        keyframes: ipc_telemetry::counter("ipcomp.archive.keyframes"),
        residuals: ipc_telemetry::counter("ipcomp.archive.residuals"),
        chain_reuse: ipc_telemetry::counter("ipcomp.archive.chain_reuse"),
        bytes: ipc_telemetry::counter("ipcomp.archive.bytes"),
        step_ns: ipc_telemetry::histogram("ipcomp.archive.step_ns"),
    })
}
