//! Optimized data loading (paper Sec. 5).
//!
//! Given the per-level plane sizes and the pre-computed truncation losses stored in
//! the container metadata, the optimizer picks how many bitplanes to *discard* per
//! level so that either
//!
//! * **error-bound mode** — the loaded volume is minimized while the worst-case
//!   reconstruction error (Theorem 1: `Σ p^(l-1)·‖δy_l‖∞ + eb`) stays below the
//!   requested bound, or
//! * **bitrate / size mode** — the worst-case error is minimized while the loaded
//!   volume stays below the requested byte budget.
//!
//! Both modes are knapsack problems over (level, discard-count) options and share one
//! dynamic program with the error or size axis discretized to [`ERROR_BINS`] buckets,
//! mirroring the paper's `[128, 1023]` normalized-error grid. Discretization always
//! rounds *up* the constrained quantity, so the produced plan never violates the
//! user's constraint.

use crate::container::{Compressed, ContainerMap, Header};
use crate::error::{IpcompError, Result};

/// Number of discretization buckets used by the knapsack DP.
pub const ERROR_BINS: usize = 1024;

/// Everything the retrieval planner needs to know about a container:
/// header geometry, per-level plane counts, truncation-loss tables, and
/// compressed plane sizes. Implemented by the fully resident [`Compressed`]
/// and by the metadata-only [`ContainerMap`], so plans can be computed
/// without a single payload byte in memory.
///
/// Method names carry a `plan_` prefix to stay clear of the implementors'
/// inherent methods.
pub trait PlanInput {
    /// Container header.
    fn plan_header(&self) -> &Header;
    /// Number of encoded level entries.
    fn plan_num_level_entries(&self) -> usize;
    /// Significant bitplanes of level entry `idx`.
    fn plan_num_planes(&self, idx: usize) -> u8;
    /// Truncation-loss table of level entry `idx` (`0..=num_planes` entries).
    fn plan_trunc_loss(&self, idx: usize) -> &[u64];
    /// Compressed bytes of plane `p` of level entry `idx`.
    fn plan_plane_bytes(&self, idx: usize, p: u8) -> usize;
    /// Bytes every retrieval loads regardless of fidelity (header, anchors,
    /// metadata).
    fn plan_base_bytes(&self) -> usize;

    /// Interpolation level number of entry `idx` (coarsest first).
    fn plan_level_number(&self, idx: usize) -> u32 {
        self.plan_header().num_levels - idx as u32
    }

    /// Whether entry `idx` participates in progressive loading.
    fn plan_is_progressive(&self, idx: usize) -> bool {
        self.plan_level_number(idx) <= self.plan_header().progressive_levels
    }

    /// Total compressed payload bytes of entry `idx`.
    fn plan_level_payload_bytes(&self, idx: usize) -> usize {
        (0..self.plan_num_planes(idx))
            .map(|p| self.plan_plane_bytes(idx, p))
            .sum()
    }

    /// Compressed bytes of the planes that stay loaded when `discard` planes
    /// are dropped from entry `idx`.
    fn plan_loaded_bytes(&self, idx: usize, discard: u8) -> usize {
        (discard..self.plan_num_planes(idx))
            .map(|p| self.plan_plane_bytes(idx, p))
            .sum()
    }
}

impl PlanInput for Compressed {
    fn plan_header(&self) -> &Header {
        &self.header
    }
    fn plan_num_level_entries(&self) -> usize {
        self.levels.len()
    }
    fn plan_num_planes(&self, idx: usize) -> u8 {
        self.levels[idx].num_planes
    }
    fn plan_trunc_loss(&self, idx: usize) -> &[u64] {
        &self.levels[idx].trunc_loss
    }
    fn plan_plane_bytes(&self, idx: usize, p: u8) -> usize {
        self.levels[idx].planes[p as usize].len()
    }
    fn plan_base_bytes(&self) -> usize {
        self.base_bytes()
    }
}

/// A [`PlanInput`] view of a container restricted to a spatial region: every
/// plane's byte cost is replaced by the bytes of the chunks whose precincts
/// the region's halo windows intersect, so budget-constrained plans spend
/// their byte budget on what an ROI retrieval actually fetches. The error
/// side is unchanged — truncation loss is a per-level property of the codes,
/// and the optimizer's per-region accounting only re-scopes the cost axis.
pub struct RoiScopedInput<'a> {
    inner: &'a dyn PlanInput,
    /// `plane_bytes[idx][p]`: masked compressed bytes of plane `p` of level
    /// entry `idx`.
    plane_bytes: Vec<Vec<usize>>,
}

impl<'a> RoiScopedInput<'a> {
    /// Wrap a plan input with region-scoped per-plane byte costs
    /// (`plane_bytes[idx][p]`, one entry per significant plane per level).
    pub fn new(inner: &'a dyn PlanInput, plane_bytes: Vec<Vec<usize>>) -> Self {
        Self { inner, plane_bytes }
    }
}

impl PlanInput for RoiScopedInput<'_> {
    fn plan_header(&self) -> &Header {
        self.inner.plan_header()
    }
    fn plan_num_level_entries(&self) -> usize {
        self.inner.plan_num_level_entries()
    }
    fn plan_num_planes(&self, idx: usize) -> u8 {
        self.inner.plan_num_planes(idx)
    }
    fn plan_trunc_loss(&self, idx: usize) -> &[u64] {
        self.inner.plan_trunc_loss(idx)
    }
    fn plan_plane_bytes(&self, idx: usize, p: u8) -> usize {
        self.plane_bytes[idx][p as usize]
    }
    fn plan_base_bytes(&self) -> usize {
        self.inner.plan_base_bytes()
    }
}

impl PlanInput for ContainerMap {
    fn plan_header(&self) -> &Header {
        &self.header
    }
    fn plan_num_level_entries(&self) -> usize {
        self.levels.len()
    }
    fn plan_num_planes(&self, idx: usize) -> u8 {
        self.levels[idx].num_planes
    }
    fn plan_trunc_loss(&self, idx: usize) -> &[u64] {
        &self.levels[idx].trunc_loss
    }
    fn plan_plane_bytes(&self, idx: usize, p: u8) -> usize {
        self.levels[idx].plane_bytes(p)
    }
    fn plan_base_bytes(&self) -> usize {
        self.base_bytes()
    }
}

/// A retrieval plan: how many bitplanes to load per level and what it costs.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPlan {
    /// For each entry of `Compressed::levels` (coarsest → finest), the number of
    /// bitplanes to load, counted from the most significant plane down.
    pub planes_loaded: Vec<u8>,
    /// Upper bound on the *additional* reconstruction error introduced by the
    /// discarded planes (on top of the quantization bound `eb`).
    pub extra_error_bound: f64,
    /// Bitplane payload bytes this plan loads (excludes header/anchors/metadata).
    pub payload_bytes: usize,
}

impl LoadPlan {
    /// Total bytes a retrieval with this plan reads, including the always-loaded
    /// base (header, anchors, metadata).
    pub fn total_bytes<C: PlanInput + ?Sized>(&self, compressed: &C) -> usize {
        compressed.plan_base_bytes() + self.payload_bytes
    }

    /// Upper bound on the total reconstruction error of this plan.
    pub fn error_bound<C: PlanInput + ?Sized>(&self, compressed: &C) -> f64 {
        compressed.plan_header().error_bound + self.extra_error_bound
    }

    /// Element-wise maximum of two plans (used to keep retrieval monotone).
    pub fn union(&self, other: &LoadPlan) -> LoadPlan {
        let planes_loaded: Vec<u8> = self
            .planes_loaded
            .iter()
            .zip(&other.planes_loaded)
            .map(|(&a, &b)| a.max(b))
            .collect();
        LoadPlan {
            planes_loaded,
            extra_error_bound: self.extra_error_bound.min(other.extra_error_bound),
            payload_bytes: 0, // recomputed by callers that care; kept cheap here
        }
    }
}

/// Error amplification factor applied to the truncation loss of a level before it
/// reaches the finest output.
///
/// The paper's Theorem 1 uses `p^(level-1)` (one prediction application per level,
/// `p = L∞(P)`). Our predictor — like SZ3's — additionally reuses same-level points
/// across the dimension sweeps inside a level, and unlike quantization error the
/// truncation loss of *every* coefficient sits near the same magnitude once a plane
/// is dropped, so in the L∞ norm that intra-level chaining is actually realized
/// (empirically the delivered error exceeds the Theorem 1 bound by ~2× on 3-D data
/// when it is ignored). To keep the retrieval guarantee sound we bound the chaining
/// too: with `d` dimensions, one level multiplies incoming error by at most
/// `q = p^d` and adds its own loss amplified by at most `s = 1 + p + … + p^(d-1)`,
/// giving `amplification(level) = s · q^(level-1)`. For linear interpolation this
/// reduces to `d·1`; for cubic it is modestly conservative, which costs a little
/// extra loaded data but never violates the user's requested bound.
pub(crate) fn amplification<C: PlanInput + ?Sized>(compressed: &C, idx: usize) -> f64 {
    let level = compressed.plan_level_number(idx);
    let p = compressed.plan_header().interpolation.linf_norm();
    let d = compressed.plan_header().dims.len() as i32;
    let q = p.powi(d);
    let s: f64 = (0..d).map(|i| p.powi(i)).sum();
    s * q.powi(level as i32 - 1)
}

/// Worst-case data-space error contributed by level `idx` when `discard` planes are
/// dropped.
pub(crate) fn level_error<C: PlanInput + ?Sized>(compressed: &C, idx: usize, discard: u8) -> f64 {
    let loss_codes = compressed.plan_trunc_loss(idx)[discard as usize] as f64;
    amplification(compressed, idx) * loss_codes * 2.0 * compressed.plan_header().error_bound
}

/// Plan that loads every bitplane of every level (classic full-fidelity
/// decompression).
pub fn plan_full<C: PlanInput + ?Sized>(compressed: &C) -> LoadPlan {
    let n = compressed.plan_num_level_entries();
    let planes_loaded: Vec<u8> = (0..n).map(|idx| compressed.plan_num_planes(idx)).collect();
    let payload_bytes = (0..n)
        .map(|idx| compressed.plan_level_payload_bytes(idx))
        .sum();
    LoadPlan {
        planes_loaded,
        extra_error_bound: 0.0,
        payload_bytes,
    }
}

/// Options available for one level: for each allowed discard count, the error it
/// introduces and the bytes it loads/saves.
struct LevelOptions {
    /// (discard, error, loaded_bytes)
    options: Vec<(u8, f64, usize)>,
}

fn level_options<C: PlanInput + ?Sized>(compressed: &C, idx: usize) -> LevelOptions {
    if !compressed.plan_is_progressive(idx) {
        return LevelOptions {
            options: vec![(0, 0.0, compressed.plan_loaded_bytes(idx, 0))],
        };
    }
    let options = (0..=compressed.plan_num_planes(idx))
        .map(|d| {
            (
                d,
                level_error(compressed, idx, d),
                compressed.plan_loaded_bytes(idx, d),
            )
        })
        .collect();
    LevelOptions { options }
}

/// Error-bound mode: minimize loaded bytes subject to
/// `eb + Σ level_error ≤ target_error`.
///
/// If `target_error < eb` the bound cannot be met by any plan; the full plan is
/// returned (its error is the tightest achievable).
pub fn plan_for_error_bound<C: PlanInput + ?Sized>(
    compressed: &C,
    target_error: f64,
) -> Result<LoadPlan> {
    if !(target_error.is_finite() && target_error > 0.0) {
        return Err(IpcompError::InvalidInput(format!(
            "retrieval error bound must be positive and finite, got {target_error}"
        )));
    }
    let eb = compressed.plan_header().error_bound;
    let slack = target_error - eb;
    if slack <= 0.0 {
        return Ok(plan_full(compressed));
    }

    let n_levels = compressed.plan_num_level_entries();
    let bin = slack / (ERROR_BINS - 1) as f64;
    let discretize = |err: f64| -> Option<usize> {
        if err <= 0.0 {
            Some(0)
        } else {
            let d = (err / bin).ceil() as usize;
            (d < ERROR_BINS).then_some(d)
        }
    };

    // dp[e] = max saved bytes with total discretized error <= e.
    let mut dp = vec![0i64; ERROR_BINS];
    let mut choices: Vec<Vec<u8>> = Vec::with_capacity(n_levels);
    for idx in 0..n_levels {
        let opts = level_options(compressed, idx);
        let payload = compressed.plan_level_payload_bytes(idx) as i64;
        let mut new_dp = vec![i64::MIN; ERROR_BINS];
        let mut choice = vec![0u8; ERROR_BINS];
        for (discard, err, loaded) in &opts.options {
            let Some(d) = discretize(*err) else { continue };
            let saved = payload - *loaded as i64;
            for e in d..ERROR_BINS {
                let candidate = dp[e - d] + saved;
                if candidate > new_dp[e] {
                    new_dp[e] = candidate;
                    choice[e] = *discard;
                }
            }
        }
        // Make dp[e] monotone (a looser error budget can't do worse).
        for e in 1..ERROR_BINS {
            if new_dp[e] < new_dp[e - 1] {
                new_dp[e] = new_dp[e - 1];
                choice[e] = choice[e - 1];
            }
        }
        dp = new_dp;
        choices.push(choice);
    }

    // Walk the choices back from the full budget.
    let mut planes_loaded = vec![0u8; n_levels];
    let mut extra_error = 0.0;
    let mut payload_bytes = 0usize;
    let mut budget = ERROR_BINS - 1;
    for idx in (0..n_levels).rev() {
        let discard = choices[idx][budget];
        planes_loaded[idx] = compressed.plan_num_planes(idx) - discard;
        let err = level_error(compressed, idx, discard);
        extra_error += err;
        payload_bytes += compressed.plan_loaded_bytes(idx, discard);
        let d = if err <= 0.0 {
            0
        } else {
            (err / bin).ceil() as usize
        };
        budget = budget.saturating_sub(d);
    }

    Ok(LoadPlan {
        planes_loaded,
        extra_error_bound: extra_error,
        payload_bytes,
    })
}

/// Size / bitrate mode: minimize worst-case error subject to
/// `base_bytes + Σ loaded_bytes ≤ max_total_bytes`.
///
/// Non-progressive levels, the header, anchors, and metadata are always loaded even
/// if they exceed the budget (nothing can be reconstructed without them).
pub fn plan_for_bytes<C: PlanInput + ?Sized>(
    compressed: &C,
    max_total_bytes: usize,
) -> Result<LoadPlan> {
    let n_levels = compressed.plan_num_level_entries();
    // Mandatory bytes: base plus non-progressive levels' full payload.
    let mandatory: usize = compressed.plan_base_bytes()
        + (0..n_levels)
            .filter(|&i| !compressed.plan_is_progressive(i))
            .map(|i| compressed.plan_level_payload_bytes(i))
            .sum::<usize>();
    let budget = max_total_bytes.saturating_sub(mandatory);

    // Degenerate budget: nothing beyond the mandatory loads fits, so every
    // progressive level discards all of its planes.
    if budget == 0 {
        let mut planes_loaded = vec![0u8; n_levels];
        let mut extra_error = 0.0;
        let mut payload_bytes = 0usize;
        for (idx, loaded) in planes_loaded.iter_mut().enumerate() {
            let num_planes = compressed.plan_num_planes(idx);
            if compressed.plan_is_progressive(idx) {
                *loaded = 0;
                extra_error += level_error(compressed, idx, num_planes);
            } else {
                *loaded = num_planes;
                payload_bytes += compressed.plan_level_payload_bytes(idx);
            }
        }
        return Ok(LoadPlan {
            planes_loaded,
            extra_error_bound: extra_error,
            payload_bytes,
        });
    }

    let bin = budget as f64 / (ERROR_BINS - 1) as f64;
    let discretize = |bytes: usize| -> Option<usize> {
        let d = (bytes as f64 / bin).ceil() as usize;
        (d < ERROR_BINS).then_some(d)
    };

    // dp[s] = min extra error with total discretized progressive payload <= s.
    let mut dp = vec![0.0f64; ERROR_BINS];
    let mut choices: Vec<Vec<u8>> = Vec::with_capacity(n_levels);
    for idx in 0..n_levels {
        let opts = level_options(compressed, idx);
        let mut new_dp = vec![f64::INFINITY; ERROR_BINS];
        let mut choice = vec![u8::MAX; ERROR_BINS];
        let progressive = compressed.plan_is_progressive(idx);
        for (discard, err, loaded) in &opts.options {
            // Non-progressive levels are paid for in `mandatory`, not the budget.
            let cost = if progressive { *loaded } else { 0 };
            let Some(d) = discretize(cost) else { continue };
            for s in d..ERROR_BINS {
                let candidate = dp[s - d] + err;
                if candidate < new_dp[s] {
                    new_dp[s] = candidate;
                    choice[s] = *discard;
                }
            }
        }
        // Every level always has the "discard everything" option at cost 0, so the
        // DP never dead-ends for progressive levels; non-progressive levels have a
        // single zero-cost option.
        for s in 1..ERROR_BINS {
            if new_dp[s] > new_dp[s - 1] {
                new_dp[s] = new_dp[s - 1];
                choice[s] = choice[s - 1];
            }
        }
        if choice.iter().all(|&c| c == u8::MAX) {
            return Err(IpcompError::InvalidInput(
                "size budget too small to satisfy mandatory level loads".into(),
            ));
        }
        dp = new_dp;
        choices.push(choice);
    }

    let mut planes_loaded = vec![0u8; n_levels];
    let mut extra_error = 0.0;
    let mut payload_bytes = 0usize;
    let mut remaining = ERROR_BINS - 1;
    for idx in (0..n_levels).rev() {
        let discard = choices[idx][remaining];
        planes_loaded[idx] = compressed.plan_num_planes(idx) - discard;
        extra_error += level_error(compressed, idx, discard);
        let loaded = compressed.plan_loaded_bytes(idx, discard);
        payload_bytes += loaded;
        let cost = if compressed.plan_is_progressive(idx) {
            (loaded as f64 / bin).ceil() as usize
        } else {
            0
        };
        remaining = remaining.saturating_sub(cost);
    }

    Ok(LoadPlan {
        planes_loaded,
        extra_error_bound: extra_error,
        payload_bytes,
    })
}

/// Resolve a [`RetrievalRequest`](crate::progressive::RetrievalRequest) into
/// a loading plan. The single dispatch point shared by the decoder's
/// `plan()` and the range planner, so a request always lowers to the same
/// planes no matter which layer asks.
pub fn plan_for_request<C: PlanInput + ?Sized>(
    compressed: &C,
    request: crate::progressive::RetrievalRequest,
) -> Result<LoadPlan> {
    use crate::progressive::RetrievalRequest;
    match request {
        RetrievalRequest::Full => Ok(plan_full(compressed)),
        RetrievalRequest::ErrorBound(eb) => plan_for_error_bound(compressed, eb),
        RetrievalRequest::RelErrorBound(rel) => {
            if !(rel.is_finite() && rel > 0.0) {
                return Err(IpcompError::InvalidInput(format!(
                    "relative bound must be positive, got {rel}"
                )));
            }
            plan_for_error_bound(compressed, rel * compressed.plan_header().value_range)
        }
        RetrievalRequest::Bitrate(b) => plan_for_bitrate(compressed, b),
        RetrievalRequest::SizeBudget(bytes) => plan_for_bytes(compressed, bytes),
        // The bounding box scopes which chunks are *fetched*, not which
        // planes are loaded: planning against the full container keeps the
        // plane selection identical to a full-domain retrieval at the same
        // bound, which is what makes ROI output bit-identical to
        // full-decode-then-crop.
        RetrievalRequest::Roi { error_bound, .. } => plan_for_error_bound(compressed, error_bound),
    }
}

/// Bitrate mode: like [`plan_for_bytes`] with the budget expressed in bits per
/// scalar value of the original field.
pub fn plan_for_bitrate<C: PlanInput + ?Sized>(compressed: &C, bitrate: f64) -> Result<LoadPlan> {
    if !(bitrate.is_finite() && bitrate > 0.0) {
        return Err(IpcompError::InvalidInput(format!(
            "bitrate must be positive and finite, got {bitrate}"
        )));
    }
    let bytes = (bitrate * compressed.plan_header().num_elements() as f64 / 8.0).floor() as usize;
    plan_for_bytes(compressed, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::compress;
    use crate::config::Config;
    use ipc_tensor::{ArrayD, Shape};

    fn toy_compressed() -> Compressed {
        let shape = Shape::d3(20, 20, 20);
        let field = ArrayD::from_fn(shape, |c| {
            (c[0] as f64 * 0.31).sin() * 2.0 + (c[1] as f64 * 0.17).cos() + c[2] as f64 * 0.05
        });
        compress(&field, 1e-6, &Config::default()).unwrap()
    }

    #[test]
    fn full_plan_loads_everything() {
        let c = toy_compressed();
        let plan = plan_full(&c);
        assert_eq!(plan.payload_bytes, c.payload_bytes());
        assert_eq!(plan.extra_error_bound, 0.0);
        for (idx, &p) in plan.planes_loaded.iter().enumerate() {
            assert_eq!(p, c.levels[idx].num_planes);
        }
    }

    #[test]
    fn error_bound_mode_loads_less_for_looser_bounds() {
        let c = toy_compressed();
        let tight = plan_for_error_bound(&c, 2e-6).unwrap();
        let medium = plan_for_error_bound(&c, 1e-4).unwrap();
        let loose = plan_for_error_bound(&c, 1e-2).unwrap();
        assert!(tight.payload_bytes >= medium.payload_bytes);
        assert!(medium.payload_bytes >= loose.payload_bytes);
        assert!(loose.payload_bytes < plan_full(&c).payload_bytes);
    }

    #[test]
    fn error_bound_mode_respects_constraint() {
        let c = toy_compressed();
        for target in [5e-6, 1e-4, 1e-3, 1e-2] {
            let plan = plan_for_error_bound(&c, target).unwrap();
            assert!(
                plan.error_bound(&c) <= target * (1.0 + 1e-9),
                "target {target}: bound {}",
                plan.error_bound(&c)
            );
        }
    }

    #[test]
    fn error_bound_tighter_than_eb_returns_full_plan() {
        let c = toy_compressed();
        let plan = plan_for_error_bound(&c, 1e-9).unwrap();
        assert_eq!(plan, plan_full(&c));
    }

    #[test]
    fn invalid_targets_rejected() {
        let c = toy_compressed();
        assert!(plan_for_error_bound(&c, -1.0).is_err());
        assert!(plan_for_error_bound(&c, f64::NAN).is_err());
        assert!(plan_for_bitrate(&c, 0.0).is_err());
    }

    #[test]
    fn size_mode_respects_budget() {
        let c = toy_compressed();
        let full = plan_full(&c).total_bytes(&c);
        for frac in [0.3, 0.5, 0.8] {
            let budget = (full as f64 * frac) as usize;
            let plan = plan_for_bytes(&c, budget).unwrap();
            assert!(
                plan.total_bytes(&c) <= budget.max(c.base_bytes()),
                "frac {frac}: {} > {budget}",
                plan.total_bytes(&c)
            );
        }
    }

    #[test]
    fn size_mode_error_decreases_with_budget() {
        let c = toy_compressed();
        let full = plan_full(&c).total_bytes(&c);
        let small = plan_for_bytes(&c, full / 4).unwrap();
        let large = plan_for_bytes(&c, full).unwrap();
        assert!(large.extra_error_bound <= small.extra_error_bound);
        assert!(large.payload_bytes >= small.payload_bytes);
    }

    #[test]
    fn bitrate_mode_matches_equivalent_byte_budget() {
        let c = toy_compressed();
        let n = c.header.num_elements();
        let plan_a = plan_for_bitrate(&c, 2.0).unwrap();
        let plan_b = plan_for_bytes(&c, 2 * n / 8).unwrap();
        assert_eq!(plan_a.planes_loaded, plan_b.planes_loaded);
    }

    #[test]
    fn union_takes_elementwise_max() {
        let a = LoadPlan {
            planes_loaded: vec![3, 0, 7],
            extra_error_bound: 0.5,
            payload_bytes: 100,
        };
        let b = LoadPlan {
            planes_loaded: vec![1, 4, 7],
            extra_error_bound: 0.2,
            payload_bytes: 120,
        };
        assert_eq!(a.union(&b).planes_loaded, vec![3, 4, 7]);
        assert_eq!(a.union(&b).extra_error_bound, 0.2);
    }
}
