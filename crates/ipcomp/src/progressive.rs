//! Progressive reconstruction (Algorithms 1 and 2 of the paper).
//!
//! [`ProgressiveDecoder`] owns the retrieval state for one compressed field: which
//! bitplanes have been loaded per level, the negabinary accumulator of every
//! coefficient, the current reconstruction, and how many bytes have been read so far.
//!
//! * The **first** retrieval runs Algorithm 1: anchors and non-progressive levels are
//!   decoded in full, then each progressive level contributes its loaded planes, and
//!   the interpolation cascade rebuilds the field.
//! * **Subsequent** retrievals run Algorithm 2: only the newly requested planes are
//!   decoded, their dequantized deltas are pushed through the same interpolation
//!   cascade (with zero anchors — the cascade is linear in the residuals), and the
//!   resulting delta field is added onto the existing reconstruction. No previously
//!   loaded block is ever re-read and no previous work is redone.
//!
//! Both algorithms drive the streaming cascade engine ([`crate::cascade`]):
//! each level's interpolation pass runs as soon as that level's planes are
//! decoded and scattered — on ranged bulk retrievals the pass overlaps the
//! *next* level's batched fetch on a scoped worker, and on streaming
//! retrievals [`StreamEvent::LevelReconstructed`] reports each applied pass —
//! instead of one monolithic dequantize + interpolate sweep after the last
//! byte lands. The reconstructed bits are identical either way
//! (`IPC_CASCADE_STREAM=0` forces the historical batch schedule).

use std::sync::Arc;

use ipc_codecs::negabinary::{from_negabinary, from_negabinary_slice};
use ipc_tensor::{ArrayD, AxisRange, Shape};

use crate::bitplane::{decode_planes_into, EncodedLevel, PlaneStream};
use crate::cascade::{self, CascadeEngine, CascadeProgress};
use crate::container::{decode_anchors_bounded, Compressed, ContainerMap, Header};
use crate::error::{IpcompError, Result};
use crate::interp::{
    for_each_level_pass, level_stride, num_levels, predict_point, process_anchors, sweep_runs,
};
use crate::optimizer::{LoadPlan, PlanInput, RoiScopedInput};
use crate::pipeline::{DecodeStage, EntropyStage, FetchStage, ScatterStage};
use crate::precinct::{clip_ranges, pass_window, prefix_sums, LevelPrecincts, RoiBox};
use crate::source::ChunkSource;

/// How much fidelity a retrieval should target (paper Sec. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetrievalRequest {
    /// Reconstruct with point-wise error no larger than this absolute bound.
    ErrorBound(f64),
    /// Reconstruct with point-wise error no larger than `factor · value_range`.
    RelErrorBound(f64),
    /// Load at most this many bits per scalar value (I/O-constrained retrieval).
    Bitrate(f64),
    /// Load at most this many bytes in total.
    SizeBudget(usize),
    /// Load everything (classic full-fidelity decompression).
    Full,
    /// Reconstruct only an axis-aligned region with point-wise error no
    /// larger than this absolute bound, fetching only the chunks whose
    /// precincts intersect the box (plus the cascade halo). Requires the
    /// precinct-partitioned (version-3) container layout; the retrieval's
    /// `data` is the cropped region. Equivalent to
    /// [`ProgressiveDecoder::retrieve_roi`] with
    /// [`RetrievalRequest::ErrorBound`].
    Roi {
        /// The region to reconstruct, in domain coordinates.
        bounds: RoiBox,
        /// Absolute point-wise error bound inside the region.
        error_bound: f64,
    },
}

/// Progress report emitted once per decoded chunk region during a streaming
/// retrieval ([`ProgressiveDecoder::retrieve_streaming`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamProgress {
    /// Index into the container's level list (coarsest level first).
    pub level_idx: usize,
    /// Chunk region just completed within that level.
    pub region: usize,
    /// Total chunk regions the level will stream for this request.
    pub regions_in_level: usize,
    /// Coefficients of the level fully decoded so far (prefix property:
    /// everything below this index is final for the requested fidelity).
    pub coeffs_decoded: usize,
    /// Total coefficients in the level.
    pub coeffs_in_level: usize,
    /// Cumulative container bytes read by the decoder so far.
    pub bytes_total: usize,
}

/// One event of a streaming retrieval
/// ([`ProgressiveDecoder::retrieve_streaming_events`]): decode progress at
/// chunk-region granularity, interleaved with reconstruction progress at
/// cascade-level granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamEvent {
    /// A chunk region finished decoding and scattering.
    Region(StreamProgress),
    /// The cascade applied a level's interpolation pass: every point of that
    /// level (and all coarser lattices) is final at the requested fidelity.
    LevelReconstructed(CascadeProgress),
    /// An archive retrieval finished reconstructing one output timestep
    /// (emitted by [`crate::archive::ArchiveReader`]; never seen on
    /// single-container retrievals).
    StepReconstructed(crate::archive::StepProgress),
}

/// The result of one retrieval step.
#[derive(Debug, Clone)]
pub struct Retrieval {
    /// The reconstructed field at the requested fidelity.
    pub data: ArrayD<f64>,
    /// Bytes read from the container by this retrieval step alone.
    pub bytes_this_request: usize,
    /// Cumulative bytes read since the decoder was created.
    pub bytes_total: usize,
    /// Cumulative retrieval bitrate (bits per original scalar).
    pub bitrate: f64,
    /// Upper bound on the point-wise reconstruction error of `data`.
    pub error_bound: f64,
}

/// Where a [`ProgressiveDecoder`] reads container bytes from.
///
/// The slice variant preserves the historical fully resident API; the source
/// variant addresses payload through the container's chunk index and fetches
/// exactly the chunk ranges each retrieval step needs via a [`ChunkSource`].
#[derive(Clone)]
enum Store<'a> {
    /// Fully resident container (the historical in-memory path).
    Slice(&'a Compressed),
    /// Metadata map plus ranged access to the serialized bytes.
    Source {
        map: Arc<ContainerMap>,
        source: SourceRef<'a>,
    },
}

/// How the decoder holds its chunk source: borrowed for stack-local use, or
/// shared so sessions can own a `'static` decoder.
#[derive(Clone)]
enum SourceRef<'a> {
    Borrowed(&'a dyn ChunkSource),
    Shared(Arc<dyn ChunkSource>),
}

impl SourceRef<'_> {
    fn get(&self) -> &dyn ChunkSource {
        match self {
            SourceRef::Borrowed(s) => *s,
            SourceRef::Shared(s) => s.as_ref(),
        }
    }
}

impl Store<'_> {
    fn header(&self) -> &Header {
        match self {
            Store::Slice(c) => &c.header,
            Store::Source { map, .. } => &map.header,
        }
    }

    fn anchors(&self) -> &[u8] {
        match self {
            Store::Slice(c) => &c.anchors,
            Store::Source { map, .. } => &map.anchors,
        }
    }

    fn base_bytes(&self) -> usize {
        match self {
            Store::Slice(c) => c.base_bytes(),
            Store::Source { map, .. } => map.base_bytes(),
        }
    }

    fn num_level_entries(&self) -> usize {
        match self {
            Store::Slice(c) => c.levels.len(),
            Store::Source { map, .. } => map.levels.len(),
        }
    }

    fn level_n_values(&self, idx: usize) -> usize {
        match self {
            Store::Slice(c) => c.levels[idx].n_values,
            Store::Source { map, .. } => map.levels[idx].n_values,
        }
    }

    fn level_num_planes(&self, idx: usize) -> u8 {
        match self {
            Store::Slice(c) => c.levels[idx].num_planes,
            Store::Source { map, .. } => map.levels[idx].num_planes,
        }
    }

    fn plan_input(&self) -> &dyn PlanInput {
        match self {
            Store::Slice(c) => *c,
            Store::Source { map, .. } => map.as_ref(),
        }
    }

    /// Compressed bytes of every (level, plane) restricted to the masked
    /// precincts — the byte cost an ROI retrieval actually pays.
    fn roi_plane_bytes(&self, masks: &[Vec<bool>]) -> Vec<Vec<usize>> {
        (0..self.num_level_entries())
            .map(|idx| {
                (0..self.level_num_planes(idx))
                    .map(|p| match self {
                        Store::Slice(c) => c.levels[idx].planes[p as usize]
                            .chunks
                            .iter()
                            .zip(&masks[idx])
                            .filter(|&(_, &m)| m)
                            .map(|(ch, _)| ch.len())
                            .sum(),
                        Store::Source { map, .. } => masks[idx]
                            .iter()
                            .enumerate()
                            .filter(|&(_, &m)| m)
                            .map(|(k, _)| map.levels[idx].chunk_size(p, k))
                            .sum(),
                    })
                    .collect()
            })
            .collect()
    }
}

/// Stateful progressive decoder for one compressed field.
pub struct ProgressiveDecoder<'a> {
    store: Store<'a>,
    shape: Shape,
    /// Negabinary accumulators per level (same ordering as the container's levels).
    acc: Vec<Vec<u64>>,
    /// Planes currently loaded per level (counted from the most significant).
    planes_loaded: Vec<u8>,
    /// Current reconstruction, present after the first retrieval.
    recon: Option<Vec<f64>>,
    /// Current error bound of `recon`.
    current_error_bound: f64,
    bytes_total: usize,
    /// Whether the base read (header + anchors + metadata) has been counted.
    /// It is read once per decoder, so a retry after a failed initial
    /// reconstruction must not charge it again.
    base_bytes_counted: bool,
    /// Per-level precinct layouts of a version-3 container, built lazily on
    /// the first full-domain retrieval (ROI retrievals never need the whole
    /// permutation). `None` for byte-granular containers.
    layouts: Option<Vec<LevelPrecincts>>,
}

impl<'a> ProgressiveDecoder<'a> {
    /// Create a decoder with nothing loaded yet over a fully resident
    /// container.
    pub fn new(compressed: &'a Compressed) -> Self {
        Self::with_store(Store::Slice(compressed))
    }

    /// Create a decoder over ranged container storage, reading the metadata
    /// map from the source up front (payload bytes are only fetched as
    /// retrievals request them).
    pub fn from_source(source: &'a dyn ChunkSource) -> Result<Self> {
        let map = Arc::new(ContainerMap::open(source)?);
        Ok(Self::from_source_with_map(source, map))
    }

    /// Like [`ProgressiveDecoder::from_source`] with an already-parsed
    /// metadata map (e.g. shared across many client sessions).
    pub fn from_source_with_map(source: &'a dyn ChunkSource, map: Arc<ContainerMap>) -> Self {
        Self::with_store(Store::Source {
            map,
            source: SourceRef::Borrowed(source),
        })
    }

    /// Like [`ProgressiveDecoder::from_source_with_map`] but owning a shared
    /// handle to the source, producing a `'static` decoder that sessions can
    /// hold without borrowing.
    pub fn from_shared_source(
        source: Arc<dyn ChunkSource>,
        map: Arc<ContainerMap>,
    ) -> ProgressiveDecoder<'static> {
        ProgressiveDecoder::with_store(Store::Source {
            map,
            source: SourceRef::Shared(source),
        })
    }

    fn with_store(store: Store<'a>) -> Self {
        let shape = store.header().shape();
        let n_levels = store.num_level_entries();
        let acc = (0..n_levels)
            .map(|i| vec![0u64; store.level_n_values(i)])
            .collect();
        let planes_loaded = vec![0u8; n_levels];
        Self {
            store,
            shape,
            acc,
            planes_loaded,
            recon: None,
            current_error_bound: f64::INFINITY,
            bytes_total: 0,
            base_bytes_counted: false,
            layouts: None,
        }
    }

    /// Build the per-level precinct permutations of a version-3 container on
    /// first use. A no-op for byte-granular containers and once built. Must
    /// run after the level-geometry validation: the interpolation level of
    /// entry `idx` is `num_levels - idx`.
    fn ensure_layouts(&mut self) {
        if self.layouts.is_some() {
            return;
        }
        let Some(grid) = self.store.header().precinct_grid() else {
            return;
        };
        let levels = num_levels(&self.shape);
        let layouts = (0..self.store.num_level_entries())
            .map(|idx| grid.level_permutation(&self.shape, levels - idx as u32))
            .collect();
        self.layouts = Some(layouts);
    }

    /// Reorder one level's cascade codes from the container's precinct-major
    /// layout into canonical traversal order (the order the cascade engine
    /// consumes). The identity for byte-granular containers and for empty
    /// code vectors (nothing-loaded levels).
    fn canonical_codes(&self, idx: usize, codes: Vec<i64>) -> Vec<i64> {
        match &self.layouts {
            Some(layouts) if !codes.is_empty() => layouts[idx].to_canonical_order(&codes),
            _ => codes,
        }
    }

    /// The metadata map backing a source-based decoder (`None` for the
    /// fully resident slice path).
    pub fn container_map(&self) -> Option<&Arc<ContainerMap>> {
        match &self.store {
            Store::Slice(_) => None,
            Store::Source { map, .. } => Some(map),
        }
    }

    /// Cumulative bytes read so far.
    pub fn bytes_loaded(&self) -> usize {
        self.bytes_total
    }

    /// The current reconstruction, if any retrieval has been performed.
    pub fn current(&self) -> Option<ArrayD<f64>> {
        self.recon
            .as_ref()
            .map(|r| ArrayD::from_vec(self.shape.clone(), r.clone()))
    }

    /// Planes currently loaded per level (coarsest level first).
    pub fn planes_loaded(&self) -> &[u8] {
        &self.planes_loaded
    }

    /// Resolve a request into a loading plan via the optimizer.
    pub fn plan(&self, request: RetrievalRequest) -> Result<LoadPlan> {
        crate::optimizer::plan_for_request(self.store.plan_input(), request)
    }

    /// Retrieve (or refine to) the fidelity described by `request`.
    ///
    /// Retrieval is monotone: if the request asks for less fidelity than what is
    /// already loaded, the current reconstruction is returned unchanged and no data
    /// is read.
    pub fn retrieve(&mut self, request: RetrievalRequest) -> Result<Retrieval> {
        if let RetrievalRequest::Roi {
            bounds,
            error_bound,
        } = request
        {
            return self.retrieve_roi(bounds, RetrievalRequest::ErrorBound(error_bound));
        }
        let plan = self.plan(request)?;
        self.retrieve_with_plan(&plan)
    }

    /// Retrieve (or refine to) the fidelity described by `request`, invoking
    /// `progress` after every decoded chunk region.
    ///
    /// Chunked (version-2) containers stream at entropy-chunk granularity —
    /// 512 Ki coefficients per report — so a caller can surface progress,
    /// meter I/O, or overlap consumption with decoding; version-1 containers
    /// report once per plane. The final reconstruction is identical to
    /// [`ProgressiveDecoder::retrieve`] with the same request. To also
    /// observe reconstruction progress, use
    /// [`ProgressiveDecoder::retrieve_streaming_events`].
    pub fn retrieve_streaming(
        &mut self,
        request: RetrievalRequest,
        mut progress: impl FnMut(StreamProgress),
    ) -> Result<Retrieval> {
        self.retrieve_streaming_events(request, |event| {
            if let StreamEvent::Region(p) = event {
                progress(p);
            }
        })
    }

    /// Retrieve (or refine to) the fidelity described by `request`,
    /// streaming both decode progress (one [`StreamEvent::Region`] per chunk
    /// region) and reconstruction progress (one
    /// [`StreamEvent::LevelReconstructed`] per cascade pass, as soon as the
    /// level's coefficients land — coarse lattices are final while the finest
    /// level is still streaming).
    pub fn retrieve_streaming_events(
        &mut self,
        request: RetrievalRequest,
        mut events: impl FnMut(StreamEvent),
    ) -> Result<Retrieval> {
        if let RetrievalRequest::Roi {
            bounds,
            error_bound,
        } = request
        {
            return self.retrieve_roi_inner(
                bounds,
                RetrievalRequest::ErrorBound(error_bound),
                Some(&mut events),
            );
        }
        let plan = self.plan(request)?;
        self.retrieve_inner(&plan, Some(&mut events))
    }

    /// Retrieve (or refine to) a specific loading plan.
    pub fn retrieve_with_plan(&mut self, plan: &LoadPlan) -> Result<Retrieval> {
        self.retrieve_inner(plan, None)
    }

    /// Reconstruct only the axis-aligned region `bounds` at the fidelity of
    /// `request`, fetching exactly the entropy chunks whose precincts
    /// intersect the region's per-level halo windows.
    ///
    /// Requires a precinct-partitioned (version-3) container. The returned
    /// [`Retrieval::data`] has the region's shape and is bit-identical to
    /// cropping a full-domain retrieval of the same request: fidelity-typed
    /// requests ([`RetrievalRequest::ErrorBound`], `RelErrorBound`, `Full`)
    /// plan against the whole container, so the per-level plane selection is
    /// the one a full retrieval would use. Budget-typed requests
    /// ([`RetrievalRequest::SizeBudget`], and [`RetrievalRequest::Bitrate`]
    /// re-read as bits per *region* scalar) budget only the bytes the region
    /// actually fetches.
    ///
    /// ROI retrievals are stateless with respect to the decoder's
    /// progressive accumulators: they never consume or advance previously
    /// loaded planes, so they interleave freely with full-domain
    /// retrievals. Only the cumulative byte accounting is shared, and a
    /// failed ROI retrieval commits nothing.
    pub fn retrieve_roi(&mut self, bounds: RoiBox, request: RetrievalRequest) -> Result<Retrieval> {
        self.retrieve_roi_inner(bounds, request, None)
    }

    /// Like [`ProgressiveDecoder::retrieve_roi`], reporting one
    /// [`StreamEvent::Region`] per fetched precinct (with `region` counting
    /// fetched precincts and `regions_in_level` their total for the level)
    /// and one [`StreamEvent::LevelReconstructed`] per windowed cascade
    /// pass.
    pub fn retrieve_roi_streaming(
        &mut self,
        bounds: RoiBox,
        request: RetrievalRequest,
        mut events: impl FnMut(StreamEvent),
    ) -> Result<Retrieval> {
        self.retrieve_roi_inner(bounds, request, Some(&mut events))
    }

    fn retrieve_roi_inner(
        &mut self,
        bounds: RoiBox,
        request: RetrievalRequest,
        events: Option<&mut dyn FnMut(StreamEvent)>,
    ) -> Result<Retrieval> {
        let m = crate::obs::metrics();
        let mut span = ipc_telemetry::span_timed("retrieve", "retrieve_roi", m.retrieve_ns);
        let mut noop = |_: StreamEvent| {};
        let events: &mut dyn FnMut(StreamEvent) = match events {
            Some(cb) => cb,
            None => &mut noop,
        };
        if matches!(request, RetrievalRequest::Roi { .. }) {
            return Err(IpcompError::InvalidInput(
                "ROI retrieval cannot nest a second bounding box".into(),
            ));
        }
        let store = self.store.clone();
        let header = store.header().clone();
        let shape = self.shape.clone();
        let dims = shape.dims().to_vec();
        bounds.validate(&dims)?;
        let grid = header.precinct_grid().ok_or_else(|| {
            IpcompError::InvalidInput(
                "ROI retrieval requires the precinct-partitioned (version-3) container layout"
                    .into(),
            )
        })?;
        let n_levels = store.num_level_entries();
        let levels = num_levels(&shape);
        if levels != header.num_levels || n_levels != levels as usize {
            return Err(IpcompError::CorruptContainer(
                "declared level count inconsistent with grid dimensions",
            ));
        }
        for idx in 0..n_levels {
            let expect = crate::interp::level_count(&shape, levels - idx as u32);
            if store.level_n_values(idx) != expect {
                return Err(IpcompError::CorruptContainer(
                    "level size inconsistent with grid dimensions",
                ));
            }
        }
        let method = header.interpolation;

        // The chunks each level must fetch: every precinct intersecting the
        // region expanded by the cascade's cross-level ancestor halo. Shared
        // with the store planner's range lowering.
        let masks = crate::precinct::roi_precinct_masks(&header, &bounds)?;

        // Fidelity-typed requests plan against the full container so the
        // plane selection matches a full-domain retrieval bit for bit;
        // budget-typed requests budget only the bytes the region fetches.
        let plan = match request {
            RetrievalRequest::SizeBudget(bytes) => {
                let scoped = RoiScopedInput::new(store.plan_input(), store.roi_plane_bytes(&masks));
                crate::optimizer::plan_for_bytes(&scoped, bytes)?
            }
            RetrievalRequest::Bitrate(b) => {
                if !(b.is_finite() && b > 0.0) {
                    return Err(IpcompError::InvalidInput(format!(
                        "bitrate must be positive and finite, got {b}"
                    )));
                }
                let scoped = RoiScopedInput::new(store.plan_input(), store.roi_plane_bytes(&masks));
                let bytes = (b * bounds.len() as f64 / 8.0).floor() as usize;
                crate::optimizer::plan_for_bytes(&scoped, bytes)?
            }
            _ => crate::optimizer::plan_for_request(store.plan_input(), request)?,
        };

        let two_eb = 2.0 * header.error_bound;
        let strides = shape.strides().to_vec();
        let mut work = vec![0.0f64; shape.len()];
        let mut codes = vec![0i64; shape.len()];
        let base_add = if self.base_bytes_counted {
            0
        } else {
            store.base_bytes()
        };
        let mut payload_bytes = 0usize;

        // Anchor lattice seed — the same arithmetic the cascade engine uses.
        let anchor_codes = decode_anchors_bounded(store.anchors(), header.num_elements())?;
        {
            let mut it = anchor_codes.iter();
            process_anchors(&shape, &mut work, |_, pred| {
                pred + it.next().map_or(0.0, |&c| c as f64 * two_eb)
            });
        }

        for (idx, mask) in masks.iter().enumerate() {
            let level_no = levels - idx as u32;
            let stride = level_stride(level_no);
            let num_planes = store.level_num_planes(idx);
            let want = plan.planes_loaded[idx].min(num_planes);
            let n_values = store.level_n_values(idx);
            let mut level_has_codes = false;

            if want > 0 && n_values > 0 {
                let lo = num_planes - want;
                // Resolve the level's chunks: resident containers borrow
                // them, ranged stores fetch only the masked precincts in one
                // batched (coalescible) ranged read.
                let owned;
                let level: &EncodedLevel = match &store {
                    Store::Slice(c) => &c.levels[idx],
                    Store::Source { map, source } => {
                        owned = map.levels[idx].fetch_planes_precincts(
                            source.get(),
                            lo,
                            num_planes,
                            mask,
                        )?;
                        &owned
                    }
                };
                let spans =
                    level
                        .precinct_spans
                        .as_deref()
                        .ok_or(IpcompError::CorruptContainer(
                            "precinct container level lacks precinct spans",
                        ))?;
                if spans.len() != grid.num_precincts()
                    || spans != grid.level_spans(&shape, level_no).as_slice()
                {
                    return Err(IpcompError::CorruptContainer(
                        "precinct spans inconsistent with grid geometry",
                    ));
                }
                let mut acc = vec![0u64; n_values];
                let scheme = level.scheme();
                let fetch = FetchStage::Resident {
                    level,
                    plane_lo: lo,
                    plane_hi: num_planes,
                };
                let entropy = EntropyStage::new(scheme.clone());
                let scatter = ScatterStage::new(
                    scheme.clone(),
                    num_planes,
                    lo,
                    num_planes,
                    header.prefix_bits,
                    header.predictive_coding,
                );
                let regions_in_level = mask.iter().filter(|&&m| m).count();
                let mut fetched_regions = 0usize;
                let mut coeffs_decoded = 0usize;
                for (k, &m) in mask.iter().enumerate() {
                    if !m {
                        continue;
                    }
                    if spans[k] > 0 {
                        let compressed = fetch.process(k, ())?;
                        let chunks = entropy.process(k, compressed)?;
                        let range = scheme.region_coeff_range(k);
                        scatter.process(k, (chunks, &mut acc[range]))?;
                    }
                    payload_bytes += fetch.region_compressed_bytes(k);
                    coeffs_decoded += spans[k];
                    events(StreamEvent::Region(StreamProgress {
                        level_idx: idx,
                        region: fetched_regions,
                        regions_in_level,
                        coeffs_decoded,
                        coeffs_in_level: n_values,
                        bytes_total: self.bytes_total + base_add + payload_bytes,
                    }));
                    fetched_regions += 1;
                }

                // Convert each fetched precinct's accumulators to residual
                // codes at their domain offsets: a precinct's slice of the
                // precinct-major layout holds its points in canonical order,
                // which is the canonical sweep clipped to the precinct box.
                let starts = prefix_sums(spans);
                for (k, &m) in mask.iter().enumerate() {
                    if !m || spans[k] == 0 {
                        continue;
                    }
                    let (plo, phi) = grid.precinct_box(k);
                    let window: Vec<(usize, usize)> =
                        plo.iter().zip(&phi).map(|(&a, &b)| (a, b)).collect();
                    let mut i = starts[k];
                    for_each_level_pass(&shape, stride, |d, ranges| {
                        let clipped = clip_ranges(&ranges, &window);
                        sweep_runs(&strides, &clipped, d, |run| {
                            let mut offset = run.base;
                            for _ in 0..run.count {
                                codes[offset] = from_negabinary(acc[i]);
                                i += 1;
                                offset += run.step;
                            }
                        });
                    });
                    debug_assert_eq!(i, starts[k] + spans[k]);
                }
                level_has_codes = true;
            }

            // Windowed interpolation sub-passes: compute exactly the window
            // later passes read, clipped from the full level geometry so the
            // lattice phase (and therefore the arithmetic) matches the
            // engine's full-domain sweep.
            let mut points = 0usize;
            for_each_level_pass(&shape, stride, |d, ranges| {
                let w = pass_window(&bounds, &dims, method, level_no, d);
                let clipped = clip_ranges(&ranges, &w);
                let dim_len = dims[d];
                let dim_stride = strides[d];
                sweep_runs(&strides, &clipped, d, |run| {
                    let mut offset = run.base;
                    let mut coord = run.coord;
                    for _ in 0..run.count {
                        let pred = predict_point(
                            &work, offset, coord, dim_len, dim_stride, stride, method,
                        );
                        let resid = if level_has_codes {
                            codes[offset] as f64 * two_eb
                        } else {
                            0.0
                        };
                        work[offset] = pred + resid;
                        offset += run.step;
                        coord += run.coord_step;
                    }
                    points += run.count;
                });
            });
            events(StreamEvent::LevelReconstructed(CascadeProgress {
                level_idx: idx,
                interp_level: level_no,
                points,
                levels_applied: idx + 1,
                levels_total: n_levels,
            }));
        }

        // Crop the reconstructed window to the requested box.
        let mut out = Vec::with_capacity(bounds.len());
        let unit: Vec<AxisRange> = (0..bounds.ndim)
            .map(|i| AxisRange::strided(bounds.lo[i], 1, bounds.hi[i]))
            .collect();
        sweep_runs(&strides, &unit, 0, |run| {
            let mut offset = run.base;
            for _ in 0..run.count {
                out.push(work[offset]);
                offset += run.step;
            }
        });
        let data = ArrayD::from_vec(Shape::new(&bounds.dims()), out);

        // State commits only on success: an ROI retrieval touches no
        // accumulators, so any failure above leaves the decoder exactly as
        // it was (short-read rollback is the absence of a partial commit).
        self.base_bytes_counted = true;
        self.bytes_total += base_add + payload_bytes;
        let n = header.num_elements();
        m.retrieves.incr();
        m.retrieve_bytes.add((base_add + payload_bytes) as u64);
        span.add_arg("bytes", (base_add + payload_bytes) as u64);
        Ok(Retrieval {
            data,
            bytes_this_request: base_add + payload_bytes,
            bytes_total: self.bytes_total,
            bitrate: self.bytes_total as f64 * 8.0 / n as f64,
            error_bound: header.error_bound + plan.extra_error_bound,
        })
    }

    fn retrieve_inner(
        &mut self,
        plan: &LoadPlan,
        events: Option<&mut dyn FnMut(StreamEvent)>,
    ) -> Result<Retrieval> {
        let m = crate::obs::metrics();
        let mut span = ipc_telemetry::span_timed("retrieve", "retrieve", m.retrieve_ns);
        // Collapse the optional callback to a plain sink: `streaming` keeps
        // the region-streaming path selection the callback's presence implies.
        let mut noop = |_: StreamEvent| {};
        let (events, streaming): (&mut dyn FnMut(StreamEvent), bool) = match events {
            Some(cb) => (cb, true),
            None => (&mut noop, false),
        };
        let n_levels = self.store.num_level_entries();
        if plan.planes_loaded.len() != n_levels {
            return Err(IpcompError::InvalidInput(
                "plan does not match the container's level count".into(),
            ));
        }
        let bytes_before = self.bytes_total;
        let initial = self.recon.is_none();
        let header = self.store.header().clone();
        let shape = self.shape.clone();
        let levels = num_levels(&shape);
        if initial {
            // The cascade maps container level `idx` to interpolation level
            // `num_levels - idx`; a container whose declared level count
            // disagrees with its own grid geometry (possible only through
            // corruption — the compressor derives both from the shape) would
            // underflow that mapping.
            if levels != header.num_levels || n_levels != levels as usize {
                return Err(IpcompError::CorruptContainer(
                    "declared level count inconsistent with grid dimensions",
                ));
            }
            // The cascade kernels index each level's codes by traversal
            // position, so every level's coefficient count must match the
            // grid's level partition exactly (the compressor derives both
            // from the shape; a mismatch is container corruption).
            for idx in 0..n_levels {
                let expect = crate::interp::level_count(&shape, levels - idx as u32);
                if self.store.level_n_values(idx) != expect {
                    return Err(IpcompError::CorruptContainer(
                        "level size inconsistent with grid dimensions",
                    ));
                }
            }
        }
        // Version-3 containers store each level precinct-major; the cascade
        // consumes canonical traversal order, so the permutations must be
        // ready before any codes are fed. (Runs after the geometry checks —
        // an initial retrieval validates them above, and a refinement implies
        // a successful initial retrieval already did.)
        self.ensure_layouts();

        // Per-level work items: (idx, lo, hi, want), coarsest level first.
        // Planes are counted from the most significant: having `have` planes
        // means [num_planes-have, num_planes) present.
        let mut works: Vec<(usize, u8, u8, u8)> = Vec::new();
        for idx in 0..n_levels {
            let num_planes = self.store.level_num_planes(idx);
            let want = plan.planes_loaded[idx].min(num_planes);
            let have = self.planes_loaded[idx];
            if want > have {
                works.push((idx, num_planes - want, num_planes - have, want));
            }
        }
        if !initial && works.is_empty() {
            // Nothing new requested — retrieval is monotone.
            let data = ArrayD::from_vec(
                shape,
                self.recon.as_ref().expect("reconstruction present").clone(),
            );
            let n = header.num_elements();
            m.retrieves.incr();
            span.add_arg("bytes", 0);
            return Ok(Retrieval {
                data,
                bytes_this_request: 0,
                bytes_total: self.bytes_total,
                bitrate: self.bytes_total as f64 * 8.0 / n as f64,
                error_bound: self.current_error_bound,
            });
        }

        // Algorithm 1 seeds the cascade with the anchor codes; Algorithm 2
        // propagates deltas from zero anchors (the cascade is linear in the
        // residuals) and adds the delta field onto the reconstruction.
        let mut engine =
            CascadeEngine::new(shape.clone(), header.interpolation, header.error_bound);
        if initial {
            // Base data: header + anchors + metadata are always read — but
            // only once per decoder, even across retries of a failed initial
            // reconstruction.
            if !self.base_bytes_counted {
                self.bytes_total += self.store.base_bytes();
                self.base_bytes_counted = true;
            }
            let anchor_codes = decode_anchors_bounded(self.store.anchors(), header.num_elements())?;
            engine.seed_anchors(&anchor_codes);
        } else {
            engine.seed_zero();
        }

        let had_planes = self.planes_loaded.clone();
        if let Err(e) = self.drive_levels(&works, initial, &mut engine, events, streaming) {
            if !initial {
                // Refinement must be atomic: the engine holding the applied
                // levels' delta field dies with this error, and `recon` is
                // only updated on success — leaving those levels marked
                // loaded would strand their contribution forever (a retry
                // would skip them). Undo every level this retrieval
                // completed: the planes it added occupy bits `[lo, hi)`
                // that were zero before the call, so clearing them (and
                // restoring the plane counts and byte accounting) restores
                // the pre-call state exactly. The failed level itself was
                // already rolled back by its own decode path, and an initial
                // reconstruction needs none of this — its partial loads are
                // consumed from the accumulators by the retry.
                for &(idx, lo, hi, want) in &works {
                    if self.planes_loaded[idx] == want {
                        let mask = (1u64 << hi) - (1u64 << lo);
                        for w in &mut self.acc[idx] {
                            *w &= !mask;
                        }
                        self.planes_loaded[idx] = had_planes[idx];
                    }
                }
                self.bytes_total = bytes_before;
            }
            return Err(e);
        }

        let field = engine.into_field();
        if initial {
            self.recon = Some(field);
        } else {
            let recon = self
                .recon
                .as_mut()
                .expect("refinement has a reconstruction");
            for (r, d) in recon.iter_mut().zip(&field) {
                *r += d;
            }
        }
        self.current_error_bound = self.error_bound_for_loaded();
        let data = ArrayD::from_vec(
            self.shape.clone(),
            self.recon.as_ref().expect("reconstruction present").clone(),
        );
        let bytes_this = self.bytes_total - bytes_before;
        let n = header.num_elements();
        m.retrieves.incr();
        m.retrieve_bytes.add(bytes_this as u64);
        span.add_arg("bytes", bytes_this as u64);
        Ok(Retrieval {
            data,
            bytes_this_request: bytes_this,
            bytes_total: self.bytes_total,
            bitrate: self.bytes_total as f64 * 8.0 / n as f64,
            error_bound: self.current_error_bound,
        })
    }

    /// Load every level in `works` and drive the cascade engine, coarsest
    /// level first, feeding each level's codes as soon as its planes are
    /// scattered (unless level streaming is disabled, in which case all
    /// passes run after the last load).
    ///
    /// Every path is built from the staged decode pipeline
    /// ([`crate::pipeline`]): with `events` set, planes stream region by
    /// region through [`PlaneStream`] (the pipeline driver, which for ranged
    /// sources overlaps region `k + 1`'s fetch with region `k`'s decode) and
    /// the callback observes every chunk region and cascade pass as it
    /// lands. Without it, the bulk entropy stage fans out across the rayon
    /// pool — and for ranged sources the *next level's* batched fetch is
    /// issued on a scoped worker while the current level decodes *and runs
    /// its interpolation pass*, so backend latency overlaps both decode and
    /// reconstruction compute without changing the request pattern (still
    /// one coalescible `read_ranges` per level).
    fn drive_levels(
        &mut self,
        works: &[(usize, u8, u8, u8)],
        initial: bool,
        engine: &mut CascadeEngine,
        events: &mut dyn FnMut(StreamEvent),
        streaming: bool,
    ) -> Result<()> {
        // Clone the store handle (a reference or a pair of `Arc`s) so level
        // borrows come from a local, leaving `self` free for field updates.
        let store = self.store.clone();
        let header = store.header();
        let prefix_bits = header.prefix_bits;
        let predictive = header.predictive_coding;
        let n_levels = store.num_level_entries();
        let streamed = cascade::cascade_streaming();
        // Passes parked for the end when level streaming is disabled.
        let mut deferred: Vec<(usize, Vec<i64>)> = Vec::new();
        let mut w = 0usize;

        if streaming {
            for idx in 0..n_levels {
                if works.get(w).map(|x| x.0) == Some(idx) {
                    let (_, lo, hi, want) = works[w];
                    w += 1;
                    let before = if initial {
                        None
                    } else {
                        Some(self.snapshot_level(idx))
                    };
                    // Version-3 levels stream in precinct-major order, which
                    // is not a canonical-order prefix — their cascade feed
                    // waits for the whole level instead of riding the region
                    // stream.
                    let span_feed = streamed && self.layouts.is_none();
                    let cascade = if span_feed {
                        Some((&mut *engine, before.as_deref()))
                    } else {
                        None
                    };
                    self.stream_level(
                        &store,
                        events,
                        cascade,
                        idx,
                        lo,
                        hi,
                        prefix_bits,
                        predictive,
                    )?;
                    self.planes_loaded[idx] = want;
                    if span_feed {
                        // Prefix feeding happened region by region inside the
                        // stream; close the level out.
                        for p in engine.level_complete(idx) {
                            events(StreamEvent::LevelReconstructed(p));
                        }
                    } else {
                        let codes =
                            self.canonical_codes(idx, self.loaded_codes(idx, before.as_deref()));
                        Self::feed(engine, &mut deferred, streamed, idx, codes, events);
                    }
                } else {
                    let codes = self.canonical_codes(idx, self.unchanged_codes(idx, initial));
                    Self::feed(engine, &mut deferred, streamed, idx, codes, events);
                }
            }
        } else {
            match &store {
                Store::Slice(c) => {
                    for idx in 0..n_levels {
                        if works.get(w).map(|x| x.0) == Some(idx) {
                            let (_, lo, hi, want) = works[w];
                            w += 1;
                            let before = if initial {
                                None
                            } else {
                                Some(self.snapshot_level(idx))
                            };
                            let level = &c.levels[idx];
                            decode_planes_into(
                                level,
                                lo,
                                hi,
                                prefix_bits,
                                predictive,
                                &mut self.acc[idx],
                            )?;
                            for p in lo..hi {
                                self.bytes_total += level.planes[p as usize].len();
                            }
                            self.planes_loaded[idx] = want;
                            let codes = self
                                .canonical_codes(idx, self.loaded_codes(idx, before.as_deref()));
                            Self::feed(engine, &mut deferred, streamed, idx, codes, events);
                        } else {
                            let codes =
                                self.canonical_codes(idx, self.unchanged_codes(idx, initial));
                            Self::feed(engine, &mut deferred, streamed, idx, codes, events);
                        }
                    }
                }
                Store::Source { map, source } => {
                    // Pipelined level loop: each level is one batched,
                    // coalescible `read_ranges` (exactly the PR 3 request
                    // pattern); the next level's fetch runs on a scoped
                    // worker while this one entropy-decodes, scatters, and
                    // runs its cascade pass.
                    let overlap = crate::pipeline::fetch_overlap();
                    let mut pending: Option<Result<crate::bitplane::EncodedLevel>> = None;
                    for idx in 0..n_levels {
                        if works.get(w).map(|x| x.0) == Some(idx) {
                            let (_, lo, hi, want) = works[w];
                            let next = works.get(w + 1).copied();
                            w += 1;
                            let fetched = match pending.take() {
                                Some(res) => res?,
                                None => map.levels[idx].fetch_planes(source.get(), lo, hi)?,
                            };
                            let before = if initial {
                                None
                            } else {
                                Some(self.snapshot_level(idx))
                            };
                            let layout = self.layouts.as_ref().map(|l| &l[idx]);
                            let acc = &mut self.acc[idx];
                            let mut work = || -> Result<()> {
                                decode_planes_into(&fetched, lo, hi, prefix_bits, predictive, acc)?;
                                let codes = match &before {
                                    None => cascade::residual_codes(acc),
                                    Some(b) => cascade::delta_codes(acc, b),
                                };
                                let codes = match layout {
                                    Some(lp) if !codes.is_empty() => lp.to_canonical_order(&codes),
                                    _ => codes,
                                };
                                Self::feed(engine, &mut deferred, streamed, idx, codes, events);
                                Ok(())
                            };
                            match next {
                                Some((nidx, nlo, nhi, _)) if overlap => {
                                    let (decoded, prefetch) = crate::pipeline::overlap_fetch(
                                        || map.levels[nidx].fetch_planes(source.get(), nlo, nhi),
                                        work,
                                    );
                                    pending = Some(prefetch);
                                    decoded?;
                                }
                                _ => work()?,
                            }
                            for p in lo..hi {
                                self.bytes_total += map.levels[idx].plane_bytes(p);
                            }
                            self.planes_loaded[idx] = want;
                        } else {
                            let codes = self.unchanged_codes(idx, initial);
                            Self::feed(engine, &mut deferred, streamed, idx, codes, events);
                        }
                    }
                }
            }
        }

        // Batch schedule (level streaming disabled): every pass after the
        // last load, in cascade order. Bits are identical to the streamed
        // schedule; only the fetch/compute overlap differs.
        for (idx, codes) in deferred {
            Self::feed(engine, &mut Vec::new(), true, idx, codes, events);
        }
        Ok(())
    }

    /// Feed one level's codes to the engine (streamed) or park them for the
    /// end-of-load batch schedule, reporting applied passes to `cb`.
    fn feed(
        engine: &mut CascadeEngine,
        deferred: &mut Vec<(usize, Vec<i64>)>,
        streamed: bool,
        idx: usize,
        codes: Vec<i64>,
        cb: &mut dyn FnMut(StreamEvent),
    ) {
        if streamed {
            for p in engine.level_ready(idx, codes) {
                cb(StreamEvent::LevelReconstructed(p));
            }
        } else {
            deferred.push((idx, codes));
        }
    }

    /// Cascade codes of a level this retrieval did not load: its full values
    /// on an initial reconstruction (an empty vector when nothing is loaded
    /// — all residuals zero), zero deltas on a refinement.
    fn unchanged_codes(&self, idx: usize, initial: bool) -> Vec<i64> {
        if initial && self.planes_loaded[idx] > 0 {
            cascade::residual_codes(&self.acc[idx])
        } else {
            Vec::new()
        }
    }

    /// Cascade codes of a freshly loaded level: full accumulator values on
    /// an initial reconstruction, deltas against the pre-load snapshot on a
    /// refinement.
    fn loaded_codes(&self, idx: usize, before: Option<&[i64]>) -> Vec<i64> {
        match before {
            None => cascade::residual_codes(&self.acc[idx]),
            Some(b) => cascade::delta_codes(&self.acc[idx], b),
        }
    }

    /// Negabinary values of one level's accumulators before new planes land
    /// (all zeros while nothing is loaded).
    fn snapshot_level(&self, idx: usize) -> Vec<i64> {
        if self.planes_loaded[idx] == 0 {
            vec![0; self.acc[idx].len()]
        } else {
            from_negabinary_slice(&self.acc[idx])
        }
    }

    /// Stream one level's planes region by region through the pipeline,
    /// reporting progress per region and rolling the accumulators and byte
    /// accounting back exactly on mid-stream failure.
    ///
    /// With `cascade` set, each region's newly final coefficient prefix is
    /// decoded to codes (values, or deltas against the refinement snapshot)
    /// and fed to the engine, so the level's early interpolation sub-passes
    /// run while its later regions are still fetching. A mid-stream failure
    /// needs no engine rollback: the whole retrieval fails and the engine is
    /// discarded with it.
    #[allow(clippy::too_many_arguments)] // decode parameters travel together
    fn stream_level(
        &mut self,
        store: &Store<'a>,
        cb: &mut dyn FnMut(StreamEvent),
        mut cascade: Option<(&mut CascadeEngine, Option<&[i64]>)>,
        idx: usize,
        lo: u8,
        hi: u8,
        prefix_bits: u8,
        predictive: bool,
    ) -> Result<()> {
        let n_values = store.level_n_values(idx);
        let acc = &mut self.acc[idx];
        let mut stream = match store {
            Store::Slice(c) => {
                PlaneStream::new(&c.levels[idx], lo, hi, prefix_bits, predictive, acc.len())?
            }
            Store::Source { map, source } => PlaneStream::from_source(
                &map.levels[idx],
                source.get(),
                lo,
                hi,
                prefix_bits,
                predictive,
                acc.len(),
            )?,
        };
        let mut region = 0usize;
        let bytes_before = self.bytes_total;
        let mut coeffs_done = 0usize;
        let failure = loop {
            let k = region;
            let n_regions = stream.num_regions();
            let region_bytes = if k < n_regions {
                stream.region_compressed_bytes(k)
            } else {
                0
            };
            // Progress reporting and cascade feeding run in the pipeline's
            // post-scatter hook — inside the fetch-overlap window, so the
            // level's early interpolation sub-passes execute while the next
            // region's chunks are still in flight.
            let bytes_total = &mut self.bytes_total;
            let cascade_ref = &mut cascade;
            let result = stream.decode_next_with(acc, |coeffs, acc_region| {
                *bytes_total += region_bytes;
                cb(StreamEvent::Region(StreamProgress {
                    level_idx: idx,
                    region: k,
                    regions_in_level: n_regions,
                    coeffs_decoded: coeffs.end,
                    coeffs_in_level: n_values,
                    bytes_total: *bytes_total,
                }));
                if let Some((engine, before)) = cascade_ref.as_mut() {
                    // The prefix `[0, coeffs.end)` is final across every
                    // streamed plane: append the region's codes and let
                    // covered sub-passes run now.
                    let before_span = before.map(|b| &b[coeffs]);
                    for p in engine.level_span_arrived(idx, acc_region, before_span) {
                        cb(StreamEvent::LevelReconstructed(p));
                    }
                }
            });
            match result {
                Ok(Some(coeffs)) => {
                    coeffs_done = coeffs.end;
                    region += 1;
                }
                Ok(None) => break None,
                Err(e) => break Some(e),
            }
        };
        if let Some(e) = failure {
            // Restore the decoder's bulk-path guarantee that a failed load
            // leaves no trace: the planes being added were all zero in the
            // accumulators before this call, so clearing their bit range in
            // the regions already scattered (and rolling back the byte
            // accounting) undoes the partial stream exactly.
            let mask = (1u64 << hi) - (1u64 << lo);
            for w in &mut acc[..coeffs_done] {
                *w &= !mask;
            }
            self.bytes_total = bytes_before;
            return Err(e);
        }
        Ok(())
    }

    /// Upper bound on the reconstruction error given the currently loaded planes.
    fn error_bound_for_loaded(&self) -> f64 {
        let c = self.store.plan_input();
        let mut extra = 0.0;
        for idx in 0..self.store.num_level_entries() {
            let discard = self.store.level_num_planes(idx) - self.planes_loaded[idx];
            extra += crate::optimizer::level_error(c, idx, discard);
        }
        self.store.header().error_bound + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::compress;
    use crate::config::Config;
    use ipc_metrics::linf_error;
    use ipc_tensor::{ArrayD, Shape};

    fn field() -> ArrayD<f64> {
        let shape = Shape::d3(24, 18, 20);
        ArrayD::from_fn(shape, |c| {
            (c[0] as f64 * 0.21).sin() * 3.0
                + (c[1] as f64 * 0.13).cos() * 2.0
                + (c[2] as f64 * 0.05) * (c[0] as f64 * 0.02)
        })
    }

    #[test]
    fn full_retrieval_respects_error_bound() {
        let data = field();
        let eb = 1e-5;
        let c = compress(&data, eb, &Config::default()).unwrap();
        let mut dec = ProgressiveDecoder::new(&c);
        let out = dec.retrieve(RetrievalRequest::Full).unwrap();
        let err = linf_error(data.as_slice(), out.data.as_slice());
        assert!(err <= eb * (1.0 + 1e-9), "err {err} > eb {eb}");
        assert!(out.error_bound <= eb * (1.0 + 1e-9));
    }

    #[test]
    fn coarse_retrieval_loads_fewer_bytes_and_respects_requested_bound() {
        let data = field();
        let c = compress(&data, 1e-7, &Config::default()).unwrap();

        let mut coarse_dec = ProgressiveDecoder::new(&c);
        let coarse = coarse_dec
            .retrieve(RetrievalRequest::ErrorBound(1e-2))
            .unwrap();
        let coarse_err = linf_error(data.as_slice(), coarse.data.as_slice());
        assert!(coarse_err <= 1e-2 * (1.0 + 1e-9), "coarse err {coarse_err}");

        let mut full_dec = ProgressiveDecoder::new(&c);
        let full = full_dec.retrieve(RetrievalRequest::Full).unwrap();
        assert!(
            coarse.bytes_total < full.bytes_total,
            "coarse {} vs full {}",
            coarse.bytes_total,
            full.bytes_total
        );
    }

    #[test]
    fn incremental_refinement_matches_from_scratch_reconstruction() {
        let data = field();
        let c = compress(&data, 1e-7, &Config::default()).unwrap();

        // Progressive path: coarse, then medium, then full on the same decoder.
        let mut dec = ProgressiveDecoder::new(&c);
        dec.retrieve(RetrievalRequest::ErrorBound(1e-2)).unwrap();
        dec.retrieve(RetrievalRequest::ErrorBound(1e-4)).unwrap();
        let refined = dec.retrieve(RetrievalRequest::Full).unwrap();

        // Reference path: full retrieval on a fresh decoder.
        let mut fresh = ProgressiveDecoder::new(&c);
        let reference = fresh.retrieve(RetrievalRequest::Full).unwrap();

        let diff = linf_error(reference.data.as_slice(), refined.data.as_slice());
        assert!(diff < 1e-9, "incremental vs direct differ by {diff}");
        // And the refined output must still satisfy the compression bound.
        let err = linf_error(data.as_slice(), refined.data.as_slice());
        assert!(err <= 1e-7 * (1.0 + 1e-6), "err {err}");
    }

    #[test]
    fn refinement_loads_only_new_bytes() {
        let data = field();
        let c = compress(&data, 1e-7, &Config::default()).unwrap();
        let mut dec = ProgressiveDecoder::new(&c);
        let first = dec.retrieve(RetrievalRequest::ErrorBound(1e-3)).unwrap();
        let second = dec.retrieve(RetrievalRequest::ErrorBound(1e-5)).unwrap();
        let third = dec.retrieve(RetrievalRequest::Full).unwrap();
        assert!(second.bytes_this_request > 0);
        assert!(third.bytes_this_request > 0);
        // Total bytes equal the sum of per-step bytes (each block read exactly once).
        assert_eq!(
            third.bytes_total,
            first.bytes_this_request + second.bytes_this_request + third.bytes_this_request
        );
        // And never exceed the full container size (within metadata estimation slack).
        assert!(third.bytes_total <= c.total_bytes() + 64);
    }

    #[test]
    fn lower_fidelity_request_after_refinement_is_a_noop() {
        let data = field();
        let c = compress(&data, 1e-6, &Config::default()).unwrap();
        let mut dec = ProgressiveDecoder::new(&c);
        let fine = dec.retrieve(RetrievalRequest::ErrorBound(1e-4)).unwrap();
        let coarse_again = dec.retrieve(RetrievalRequest::ErrorBound(1e-1)).unwrap();
        assert_eq!(coarse_again.bytes_this_request, 0);
        assert_eq!(coarse_again.data.as_slice(), fine.data.as_slice());
    }

    #[test]
    fn bitrate_retrieval_respects_budget() {
        let data = field();
        let c = compress(&data, 1e-8, &Config::default()).unwrap();
        let n = data.len();
        for bitrate in [1.0, 2.0, 4.0] {
            let mut dec = ProgressiveDecoder::new(&c);
            let out = dec.retrieve(RetrievalRequest::Bitrate(bitrate)).unwrap();
            let budget_bytes = (bitrate * n as f64 / 8.0) as usize;
            assert!(
                out.bytes_total <= budget_bytes.max(c.base_bytes()) + 1,
                "bitrate {bitrate}: loaded {} of budget {budget_bytes}",
                out.bytes_total
            );
        }
    }

    #[test]
    fn relative_error_bound_uses_value_range() {
        let data = field();
        let c = compress(&data, 1e-8, &Config::default()).unwrap();
        let mut dec = ProgressiveDecoder::new(&c);
        let out = dec.retrieve(RetrievalRequest::RelErrorBound(1e-3)).unwrap();
        let err = linf_error(data.as_slice(), out.data.as_slice());
        assert!(err <= 1e-3 * data.value_range() * (1.0 + 1e-9));
    }

    #[test]
    fn streaming_retrieval_matches_bulk_and_reports_monotone_progress() {
        let data = field();
        let c = compress(&data, 1e-7, &Config::default()).unwrap();

        let mut bulk_dec = ProgressiveDecoder::new(&c);
        let bulk = bulk_dec.retrieve(RetrievalRequest::Full).unwrap();

        let mut stream_dec = ProgressiveDecoder::new(&c);
        let mut reports: Vec<StreamProgress> = Vec::new();
        let streamed = stream_dec
            .retrieve_streaming(RetrievalRequest::Full, |p| reports.push(p))
            .unwrap();

        assert_eq!(streamed.data.as_slice(), bulk.data.as_slice());
        assert_eq!(streamed.bytes_total, bulk.bytes_total);
        assert!(!reports.is_empty());
        // Bytes and per-level coefficient coverage only ever grow, and every
        // level that holds planes reports completing its final region.
        for w in reports.windows(2) {
            assert!(w[1].bytes_total >= w[0].bytes_total);
        }
        for (idx, level) in c.levels.iter().enumerate() {
            if level.num_planes == 0 {
                continue;
            }
            let last = reports
                .iter()
                .rev()
                .find(|r| r.level_idx == idx)
                .expect("level with planes must report");
            assert_eq!(last.region + 1, last.regions_in_level);
            assert_eq!(last.coeffs_decoded, last.coeffs_in_level);
            assert_eq!(last.coeffs_in_level, level.n_values);
        }
    }

    #[test]
    fn streaming_refinement_matches_bulk_refinement() {
        let data = field();
        let c = compress(&data, 1e-7, &Config::default()).unwrap();

        let mut bulk_dec = ProgressiveDecoder::new(&c);
        bulk_dec
            .retrieve(RetrievalRequest::ErrorBound(1e-2))
            .unwrap();
        let bulk = bulk_dec.retrieve(RetrievalRequest::Full).unwrap();

        let mut stream_dec = ProgressiveDecoder::new(&c);
        stream_dec
            .retrieve_streaming(RetrievalRequest::ErrorBound(1e-2), |_| {})
            .unwrap();
        let mut refine_reports = 0usize;
        let streamed = stream_dec
            .retrieve_streaming(RetrievalRequest::Full, |_| refine_reports += 1)
            .unwrap();

        assert!(refine_reports > 0);
        assert_eq!(streamed.data.as_slice(), bulk.data.as_slice());
        assert_eq!(streamed.bytes_total, bulk.bytes_total);
    }

    #[test]
    fn failed_streaming_retrieval_leaves_no_partial_state() {
        let data = field();
        // Small chunks so every plane spans many regions, then corrupt a
        // *middle* chunk of the finest level's lowest plane: the streaming
        // path scatters several regions before hitting the corruption.
        let config = Config {
            chunk_bytes: 64,
            ..Config::default()
        };
        let mut c = compress(&data, 1e-7, &config).unwrap();
        let finest = c.levels.len() - 1;
        assert!(
            c.levels[finest].num_regions() > 6,
            "need multi-region planes"
        );
        c.levels[finest].planes[0].chunks[5] = vec![0xFF; 3];

        // A plan that stops above the corrupt plane decodes fine.
        let mut partial_plan = crate::optimizer::plan_full(&c);
        partial_plan.planes_loaded[finest] -= 1;
        let mut fresh = ProgressiveDecoder::new(&c);
        let reference = fresh.retrieve_with_plan(&partial_plan).unwrap();

        // The bulk path guarantees a failed load leaves no trace in the
        // accumulators; a failed streaming load must behave identically —
        // same values AND same byte accounting on the retry.
        let mut bulk_dec = ProgressiveDecoder::new(&c);
        assert!(bulk_dec.retrieve(RetrievalRequest::Full).is_err());
        let bulk_after = bulk_dec.retrieve_with_plan(&partial_plan).unwrap();

        let mut stream_dec = ProgressiveDecoder::new(&c);
        let mut regions_before_failure = 0usize;
        assert!(stream_dec
            .retrieve_streaming(RetrievalRequest::Full, |_| regions_before_failure += 1)
            .is_err());
        assert!(regions_before_failure > 0, "failure must be mid-stream");
        let stream_after = stream_dec.retrieve_with_plan(&partial_plan).unwrap();

        assert_eq!(stream_after.data.as_slice(), bulk_after.data.as_slice());
        assert_eq!(stream_after.bytes_total, bulk_after.bytes_total);
        // And the retry output carries no stray bits from the failed pass.
        assert_eq!(stream_after.data.as_slice(), reference.data.as_slice());
    }

    #[test]
    fn misaligned_chunk_bytes_config_is_rejected_not_panicking() {
        let data = field();
        let config = Config {
            chunk_bytes: 100,
            ..Config::default()
        };
        assert!(matches!(
            compress(&data, 1e-6, &config),
            Err(IpcompError::InvalidInput(_))
        ));
    }

    #[test]
    fn source_backed_retrieval_is_byte_identical_to_slice_path() {
        let data = field();
        let c = compress(&data, 1e-7, &Config::default()).unwrap();
        let source = crate::source::MemorySource::new(c.to_bytes());

        for request in [
            RetrievalRequest::ErrorBound(1e-3),
            RetrievalRequest::Bitrate(2.0),
            RetrievalRequest::Full,
        ] {
            let mut slice_dec = ProgressiveDecoder::new(&c);
            let a = slice_dec.retrieve(request).unwrap();
            let mut src_dec = ProgressiveDecoder::from_source(&source).unwrap();
            let b = src_dec.retrieve(request).unwrap();
            assert_eq!(a.data.as_slice(), b.data.as_slice(), "{request:?}");
            assert_eq!(a.bytes_total, b.bytes_total, "{request:?}");
            assert_eq!(a.error_bound, b.error_bound, "{request:?}");
        }
    }

    #[test]
    fn source_backed_refinement_matches_slice_refinement() {
        let data = field();
        let c = compress(&data, 1e-7, &Config::default()).unwrap();
        let source = crate::source::MemorySource::new(c.to_bytes());

        let mut slice_dec = ProgressiveDecoder::new(&c);
        let mut src_dec = ProgressiveDecoder::from_source(&source).unwrap();
        for request in [
            RetrievalRequest::ErrorBound(1e-2),
            RetrievalRequest::ErrorBound(1e-4),
            RetrievalRequest::Full,
        ] {
            let a = slice_dec.retrieve(request).unwrap();
            let b = src_dec.retrieve(request).unwrap();
            assert_eq!(a.data.as_slice(), b.data.as_slice(), "{request:?}");
            assert_eq!(a.bytes_this_request, b.bytes_this_request, "{request:?}");
        }
    }

    #[test]
    fn source_backed_streaming_matches_bulk() {
        let data = field();
        let config = Config {
            chunk_bytes: 64,
            ..Config::default()
        };
        let c = compress(&data, 1e-7, &config).unwrap();
        let source = crate::source::MemorySource::new(c.to_bytes());

        let mut bulk = ProgressiveDecoder::from_source(&source).unwrap();
        let full = bulk.retrieve(RetrievalRequest::Full).unwrap();

        let mut streaming = ProgressiveDecoder::from_source(&source).unwrap();
        let mut reports = 0usize;
        let streamed = streaming
            .retrieve_streaming(RetrievalRequest::Full, |_| reports += 1)
            .unwrap();
        assert!(reports > 1, "tiny chunks must stream many regions");
        assert_eq!(streamed.data.as_slice(), full.data.as_slice());
        assert_eq!(streamed.bytes_total, full.bytes_total);
    }

    #[test]
    fn shared_source_decoder_is_static_and_equivalent() {
        let data = field();
        let c = compress(&data, 1e-6, &Config::default()).unwrap();
        let source: Arc<dyn crate::source::ChunkSource> =
            Arc::new(crate::source::MemorySource::new(c.to_bytes()));
        let map = Arc::new(crate::container::ContainerMap::open(source.as_ref()).unwrap());
        let mut dec: ProgressiveDecoder<'static> =
            ProgressiveDecoder::from_shared_source(source, map);
        let out = dec.retrieve(RetrievalRequest::Full).unwrap();
        let reference = c.decompress().unwrap();
        assert_eq!(out.data.as_slice(), reference.as_slice());
    }

    #[test]
    fn precinct_layout_decodes_identically_to_byte_layout() {
        let data = field();
        let flat = compress(&data, 1e-6, &Config::default()).unwrap();
        let v3 = compress(&data, 1e-6, &Config::with_precincts(&[8, 8, 8])).unwrap();
        let a = flat.decompress().unwrap();
        let b = v3.decompress().unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        // The ranged-source and streaming paths canonicalize too.
        let source = crate::source::MemorySource::new(v3.to_bytes());
        let mut dec = ProgressiveDecoder::from_source(&source).unwrap();
        let out = dec.retrieve(RetrievalRequest::Full).unwrap();
        assert_eq!(out.data.as_slice(), a.as_slice());
        let mut sdec = ProgressiveDecoder::from_source(&source).unwrap();
        let mut regions = 0usize;
        let streamed = sdec
            .retrieve_streaming(RetrievalRequest::Full, |_| regions += 1)
            .unwrap();
        assert!(regions > 0);
        assert_eq!(streamed.data.as_slice(), a.as_slice());
    }

    #[test]
    fn precinct_refinement_converges_like_byte_layout() {
        // Precinct chunk boundaries change per-plane byte sizes, so the
        // optimizer may pick a different (equally valid) plane mix than the
        // byte-granular layout — partial decodes are not bitwise comparable
        // across layouts. The refinement contract is the same as the v2
        // layout's: every step honours its bound and refining to Full lands
        // within float-accumulation noise of a from-scratch full decode.
        let data = field();
        let v3 = compress(&data, 1e-7, &Config::with_precincts(&[8, 8, 8])).unwrap();
        let mut dec = ProgressiveDecoder::new(&v3);
        let mut prev_bytes = 0;
        for eb in [1e-2, 1e-4] {
            let r = dec.retrieve(RetrievalRequest::ErrorBound(eb)).unwrap();
            let err = linf_error(data.as_slice(), r.data.as_slice());
            assert!(err <= eb * (1.0 + 1e-9), "eb {eb}: err {err}");
            assert!(r.bytes_total > prev_bytes);
            prev_bytes = r.bytes_total;
        }
        let refined = dec.retrieve(RetrievalRequest::Full).unwrap();
        let direct = ProgressiveDecoder::new(&v3)
            .retrieve(RetrievalRequest::Full)
            .unwrap();
        let drift = linf_error(refined.data.as_slice(), direct.data.as_slice());
        assert!(drift < 1e-9, "refinement drift {drift}");
        let err = linf_error(data.as_slice(), refined.data.as_slice());
        assert!(err <= 1e-7 * (1.0 + 1e-9), "full err {err}");
    }

    #[test]
    fn roi_retrieval_matches_full_decode_then_crop() {
        let data = field(); // 24 x 18 x 20
        let c = compress(&data, 1e-7, &Config::with_precincts(&[6, 6, 5])).unwrap();
        let source = crate::source::MemorySource::new(c.to_bytes());
        let bounds = RoiBox::new(&[3, 0, 10], &[11, 7, 20]);
        for request in [RetrievalRequest::Full, RetrievalRequest::ErrorBound(1e-3)] {
            let mut full = ProgressiveDecoder::new(&c);
            let whole = full.retrieve(request).unwrap();
            let mut expect = Vec::new();
            for x in 3..11 {
                for y in 0..7 {
                    for z in 10..20 {
                        expect.push(whole.data.as_slice()[(x * 18 + y) * 20 + z]);
                    }
                }
            }
            let mut roi_dec = ProgressiveDecoder::from_source(&source).unwrap();
            let roi = roi_dec.retrieve_roi(bounds, request).unwrap();
            assert_eq!(roi.data.as_slice(), expect.as_slice(), "{request:?}");
            assert!(roi.bytes_total <= whole.bytes_total, "{request:?}");
            let mut roi_slice = ProgressiveDecoder::new(&c);
            let roi2 = roi_slice.retrieve_roi(bounds, request).unwrap();
            assert_eq!(roi2.data.as_slice(), expect.as_slice(), "{request:?}");
            assert_eq!(roi2.bytes_total, roi.bytes_total, "{request:?}");
        }
    }

    #[test]
    fn roi_request_variant_routes_through_retrieve() {
        let data = field();
        let c = compress(&data, 1e-7, &Config::with_precincts(&[6, 6, 5])).unwrap();
        let bounds = RoiBox::new(&[0, 0, 0], &[6, 6, 5]);
        let mut dec = ProgressiveDecoder::new(&c);
        let via_variant = dec
            .retrieve(RetrievalRequest::Roi {
                bounds,
                error_bound: 1e-3,
            })
            .unwrap();
        let mut dec2 = ProgressiveDecoder::new(&c);
        let direct = dec2
            .retrieve_roi(bounds, RetrievalRequest::ErrorBound(1e-3))
            .unwrap();
        assert_eq!(via_variant.data.as_slice(), direct.data.as_slice());
        assert_eq!(via_variant.data.shape().dims(), &[6, 6, 5]);
    }

    #[test]
    fn roi_requires_precinct_layout_and_valid_bounds() {
        let data = field();
        let flat = compress(&data, 1e-6, &Config::default()).unwrap();
        let mut dec = ProgressiveDecoder::new(&flat);
        assert!(matches!(
            dec.retrieve_roi(RoiBox::new(&[0, 0, 0], &[4, 4, 4]), RetrievalRequest::Full),
            Err(IpcompError::InvalidInput(_))
        ));
        let v3 = compress(&data, 1e-6, &Config::with_precincts(&[8, 8, 8])).unwrap();
        let mut dec = ProgressiveDecoder::new(&v3);
        // Out-of-domain and rank-mismatched boxes are rejected.
        assert!(dec
            .retrieve_roi(RoiBox::new(&[0, 0, 0], &[25, 4, 4]), RetrievalRequest::Full)
            .is_err());
        assert!(dec
            .retrieve_roi(RoiBox::new(&[0, 0], &[4, 4]), RetrievalRequest::Full)
            .is_err());
        // And a nested ROI request cannot sneak a second box in.
        assert!(dec
            .retrieve_roi(
                RoiBox::new(&[0, 0, 0], &[4, 4, 4]),
                RetrievalRequest::Roi {
                    bounds: RoiBox::new(&[0, 0, 0], &[4, 4, 4]),
                    error_bound: 1e-3,
                },
            )
            .is_err());
    }

    #[test]
    fn roi_budget_requests_scope_bytes_to_the_region() {
        let data = field();
        let c = compress(&data, 1e-8, &Config::with_precincts(&[6, 6, 5])).unwrap();
        let bounds = RoiBox::new(&[0, 0, 0], &[8, 8, 8]);
        let budget = c.base_bytes() + 2000;
        let mut dec = ProgressiveDecoder::new(&c);
        let out = dec
            .retrieve_roi(bounds, RetrievalRequest::SizeBudget(budget))
            .unwrap();
        assert!(
            out.bytes_total <= budget.max(c.base_bytes()) + 1,
            "loaded {} of budget {budget}",
            out.bytes_total
        );
        assert_eq!(out.data.shape().dims(), &[8, 8, 8]);
    }

    #[test]
    fn plan_mismatch_rejected() {
        let data = field();
        let c = compress(&data, 1e-6, &Config::default()).unwrap();
        let mut dec = ProgressiveDecoder::new(&c);
        let bad = LoadPlan {
            planes_loaded: vec![1],
            extra_error_bound: 0.0,
            payload_bytes: 0,
        };
        assert!(dec.retrieve_with_plan(&bad).is_err());
    }
}
