//! Multi-tenant store service: connection/session multiplexing over a
//! worker pool, with per-tenant budgets and incremental event streaming.
//!
//! [`StoreServer`](crate::StoreServer) fans a fixed batch of workloads over
//! the rayon pool and returns only when everything finished — fine for a
//! bench, not a service. [`StoreService`] is the service shape: tenants
//! submit workloads at any time over a **bounded admission path**, sessions
//! run on a long-lived worker pool, and each workload's results flow back
//! over its own **bounded event channel**, forwarding the decoder's
//! [`StreamEvent`]s *as they land* — a client renders the coarse lattice
//! while the fine planes are still streaming out of the shared cache,
//! exactly the consumer shape of a progressive-delivery frontend.
//!
//! ```text
//!  tenant A ──submit──▶ ┌─────────────┐     ┌────────────┐  events (bounded)
//!  tenant B ──submit──▶ │  admission  │ ──▶ │ job queue  │ ──▶ worker ──▶ rx A
//!      │                │  semaphores │     │ (≤ global  │ ──▶ worker ──▶ rx B
//!      └─ backpressure ◀┤  per-tenant │     │  in-flight)│       │
//!        (submit blocks)│  + global   │     └────────────┘       ▼
//!                       └─────────────┘              session_tagged(tenant)
//!                                                    over the shared cache
//! ```
//!
//! **Backpressure** exists at both ends: admission blocks (or
//! [`StoreService::try_submit`] refuses with [`ServiceError::Busy`]) once a
//! tenant — or the service globally — has its configured number of
//! workloads in flight, and a worker producing events faster than the
//! client drains them blocks on the bounded channel instead of buffering
//! unboundedly.
//!
//! **Tenancy**: each tenant's sessions read through the shared per-container
//! chunk cache under the tenant's [`CacheTag`], so its cache admissions are
//! quota-capped ([`TenantConfig::cache_quota`] — a deep sweep recycles the
//! tenant's own slots instead of flushing its neighbours) and its traffic is
//! attributed. A cumulative **byte budget** ([`TenantConfig::byte_budget`])
//! is enforced *before* each request runs, against the planner's exact byte
//! count for the delta the request would fetch — an over-budget tenant is
//! refused deterministically instead of cut off mid-transfer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ipc_telemetry::{now_nanos, span, Counter, Histogram, HistogramSnapshot};
use ipcomp::progressive::{RetrievalRequest, StreamEvent};
use ipcomp::source::{ByteRange, Bytes, ChunkSource};
use ipcomp::IpcompError;

use ipcomp::archive::ArchiveRequest;

use crate::archive::{ArchiveSession, ArchiveStore};
use crate::cache::CacheTag;
use crate::coalesce::coalesce_ranges;
use crate::server::{field_checksum, ClientOutcome, ClientStep};
use crate::session::{ContainerStore, RetrievalSession, SharedCache};

/// Handle of a container registered with the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerId(pub usize);

/// Handle of a time-series archive registered with the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveId(pub usize);

/// Handle of a registered tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantId(pub u32);

/// Per-tenant resource policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantConfig {
    /// Cumulative container payload bytes the tenant may fetch across its
    /// lifetime; a request whose planned delta would exceed the remainder
    /// fails with [`ServiceError::BudgetExhausted`] before any I/O.
    /// `None` = unmetered.
    pub byte_budget: Option<u64>,
    /// Cap on the shared-cache bytes this tenant's reads may keep resident
    /// per container (see [`crate::CachedSource::set_quota`]). `None` =
    /// uncapped.
    pub cache_quota: Option<usize>,
    /// Workloads the tenant may have in flight before `submit` blocks
    /// (backpressure) and `try_submit` refuses.
    pub max_inflight: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        Self {
            byte_budget: None,
            cache_quota: None,
            max_inflight: 4,
        }
    }
}

/// Cost model used to attribute simulated backend latency to each workload:
/// the misses a workload's reads generate are coalesced under `coalesce_gap`
/// (mirroring the GETs the backend would see) and charged
/// `latency_per_request` each plus transfer time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed cost per backend GET.
    pub latency_per_request: Duration,
    /// Transfer rate; `0.0` means latency-only.
    pub throughput_bytes_per_sec: f64,
    /// Gap under which adjacent misses merge into one GET (use the stack's
    /// coalescing gap so attribution matches the real request stream).
    pub coalesce_gap: u64,
}

impl CostModel {
    fn nanos(&self, gets: u64, bytes: u64) -> u64 {
        let mut secs = gets as f64 * self.latency_per_request.as_secs_f64();
        if self.throughput_bytes_per_sec > 0.0 {
            secs += bytes as f64 / self.throughput_bytes_per_sec;
        }
        (secs * 1e9) as u64
    }
}

/// Service-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Worker threads running sessions.
    pub workers: usize,
    /// Total workloads admitted (queued + running) before `submit` blocks.
    pub max_inflight: usize,
    /// Capacity of each workload's event channel; a slow consumer stalls
    /// its own worker once this many events are buffered.
    pub event_depth: usize,
    /// When set, every `RequestDone`/`WorkloadDone` event carries the
    /// simulated backend nanoseconds the workload's cache misses cost.
    pub cost_model: Option<CostModel>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_inflight: 64,
            event_depth: 64,
            cost_model: None,
        }
    }
}

/// Why a submission or workload failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The tenant id was never registered.
    UnknownTenant,
    /// The container id was never registered.
    UnknownContainer,
    /// `try_submit` would have had to block (tenant or global in-flight
    /// limit reached).
    Busy,
    /// The service is shutting down.
    ShuttingDown,
    /// The tenant's cumulative byte budget cannot cover the request's
    /// planned fetch.
    BudgetExhausted {
        /// Bytes the request would fetch.
        requested: u64,
        /// Bytes left in the tenant's budget.
        remaining: u64,
    },
    /// The retrieval itself failed (decode error, short read, ...). The
    /// session rolled back; peers are unaffected.
    Retrieval(IpcompError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownTenant => write!(f, "unknown tenant"),
            ServiceError::UnknownContainer => write!(f, "unknown container"),
            ServiceError::Busy => write!(f, "in-flight limit reached"),
            ServiceError::ShuttingDown => write!(f, "service shutting down"),
            ServiceError::BudgetExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "byte budget exhausted: request needs {requested} B, {remaining} B remaining"
            ),
            ServiceError::Retrieval(e) => write!(f, "retrieval failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One message on a workload's event channel, in delivery order.
#[derive(Debug, Clone)]
pub enum ServiceEvent {
    /// Incremental decode/reconstruction progress of request `request`,
    /// forwarded from the session as it lands (chunk regions and completed
    /// cascade levels — see [`StreamEvent`]).
    Stream {
        /// Index of the request within the workload.
        request: usize,
        /// The underlying decoder event.
        event: StreamEvent,
    },
    /// Request `request` completed; `step` carries its byte accounting.
    RequestDone {
        /// Index of the request within the workload.
        request: usize,
        /// Byte/error accounting of the completed request.
        step: ClientStep,
        /// Simulated backend cost attributed so far (0 without a
        /// [`ServiceConfig::cost_model`] or cache layer).
        sim_nanos: u64,
    },
    /// The whole workload completed; terminal event.
    WorkloadDone {
        /// Per-request accounting plus the final reconstruction's checksum.
        outcome: ClientOutcome,
        /// Total simulated backend cost of the workload.
        sim_nanos: u64,
    },
    /// The workload failed at request `request`; terminal event. Prior
    /// requests' results remain valid; the session rolled the failed one
    /// back.
    WorkloadFailed {
        /// Index of the failing request within the workload.
        request: usize,
        /// What went wrong.
        error: ServiceError,
    },
}

/// Point-in-time telemetry of one tenant (see
/// [`StoreService::metrics_snapshot`]).
#[derive(Debug, Clone)]
pub struct TenantMetricsSnapshot {
    /// The tenant these numbers belong to.
    pub tenant: TenantId,
    /// Workloads that ran to completion (`WorkloadDone`).
    pub workloads: u64,
    /// Workloads that ended in `WorkloadFailed`.
    pub failures: u64,
    /// Individual requests completed.
    pub requests: u64,
    /// Backend GETs attributed to the tenant (cache misses, coalesced under
    /// the cost model's gap when one is configured).
    pub gets: u64,
    /// Ranges served from the shared cache.
    pub cache_hits: u64,
    /// Ranges that had to be fetched from the backend.
    pub cache_misses: u64,
    /// Cumulative budget bytes consumed (see [`TenantConfig::byte_budget`]).
    pub bytes_used: u64,
    /// The tenant's configured budget, for "x of y" reporting.
    pub byte_budget: Option<u64>,
    /// Distribution of nanoseconds workloads spent queued before a worker
    /// picked them up.
    pub queue_wait_ns: HistogramSnapshot,
    /// Distribution of end-to-end workload latency in nanoseconds (simulated
    /// backend time under a cost model, wall-clock otherwise).
    pub latency_ns: HistogramSnapshot,
}

impl TenantMetricsSnapshot {
    /// Fraction of ranges served from cache, in `[0, 1]` (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Stable JSON object for this tenant (one entry of
    /// [`ServiceMetricsSnapshot::to_json`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tenant\": {}, \"workloads\": {}, \"failures\": {}, \"requests\": {}, \
             \"gets\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.4}, \
             \"bytes_used\": {}, \"byte_budget\": {}, \"queue_wait_ns\": {}, \"latency_ns\": {}}}",
            self.tenant.0,
            self.workloads,
            self.failures,
            self.requests,
            self.gets,
            self.cache_hits,
            self.cache_misses,
            self.hit_rate(),
            self.bytes_used,
            self.byte_budget
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
            self.queue_wait_ns.to_json(),
            self.latency_ns.to_json(),
        )
    }
}

/// Point-in-time telemetry of the whole service: per-tenant breakdowns plus
/// the merged aggregates. Histogram percentiles are meaningful only in
/// builds with the `telemetry` feature (the default); counters are exact in
/// every build.
#[derive(Debug, Clone)]
pub struct ServiceMetricsSnapshot {
    /// One entry per registered tenant, in registration order.
    pub tenants: Vec<TenantMetricsSnapshot>,
    /// All tenants' queue waits merged.
    pub queue_wait_ns: HistogramSnapshot,
    /// All tenants' workload latencies merged.
    pub latency_ns: HistogramSnapshot,
}

impl ServiceMetricsSnapshot {
    /// Stable JSON document (`schema: ipc-service-metrics-v1`).
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self.tenants.iter().map(|t| t.to_json()).collect();
        format!(
            "{{\"schema\": \"ipc-service-metrics-v1\", \"tenants\": [{}], \
             \"queue_wait_ns\": {}, \"latency_ns\": {}}}",
            tenants.join(", "),
            self.queue_wait_ns.to_json(),
            self.latency_ns.to_json(),
        )
    }
}

/// Counting semaphore (std has none; the vendored environment has no tokio).
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Self {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut p = self.permits.lock().expect("semaphore lock");
        while *p == 0 {
            p = self.cv.wait(p).expect("semaphore wait");
        }
        *p -= 1;
    }

    fn try_acquire(&self) -> bool {
        let mut p = self.permits.lock().expect("semaphore lock");
        if *p == 0 {
            return false;
        }
        *p -= 1;
        true
    }

    fn release(&self) {
        let mut p = self.permits.lock().expect("semaphore lock");
        *p += 1;
        self.cv.notify_one();
    }
}

/// Instance-local per-tenant telemetry. These live on the tenant's state —
/// not in the process-global registry — so two services in one process (or
/// parallel tests) never see each other's traffic; the registry only carries
/// the service-wide aggregates (`store.service.*`).
#[derive(Default)]
struct TenantMetrics {
    /// Workloads that ran to `WorkloadDone`.
    workloads: Counter,
    /// Workloads that ended in `WorkloadFailed`.
    failures: Counter,
    /// Requests completed across all workloads.
    requests: Counter,
    /// Backend GETs attributed to this tenant: each read's cache misses,
    /// coalesced under the cost model's gap when one is configured (mirroring
    /// the request stream the backend actually sees), raw misses otherwise.
    gets: Counter,
    /// Ranges served from the shared cache.
    cache_hits: Counter,
    /// Ranges that had to be fetched.
    cache_misses: Counter,
    /// Nanoseconds each workload spent queued before a worker picked it up.
    queue_wait_ns: Histogram,
    /// End-to-end workload latency: simulated backend nanoseconds under a
    /// [`ServiceConfig::cost_model`], wall-clock otherwise.
    latency_ns: Histogram,
}

struct TenantState {
    config: TenantConfig,
    tag: CacheTag,
    bytes_used: AtomicU64,
    inflight: Semaphore,
    metrics: TenantMetrics,
}

impl TenantState {
    /// Reserve `need` bytes against the budget without overshooting under
    /// concurrent workloads of the same tenant.
    fn try_reserve(&self, need: u64) -> Result<(), ServiceError> {
        let Some(budget) = self.config.byte_budget else {
            return Ok(());
        };
        let mut cur = self.bytes_used.load(Ordering::Relaxed);
        loop {
            if cur.saturating_add(need) > budget {
                return Err(ServiceError::BudgetExhausted {
                    requested: need,
                    remaining: budget - cur.min(budget),
                });
            }
            match self.bytes_used.compare_exchange(
                cur,
                cur + need,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => cur = now,
            }
        }
    }

    fn release_reservation(&self, bytes: u64) {
        self.bytes_used.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// What a job runs: a per-container request sequence or a step-spanning
/// archive request.
enum Work {
    Container {
        store: Arc<ContainerStore>,
        requests: Vec<RetrievalRequest>,
    },
    Archive {
        store: Arc<ArchiveStore>,
        request: ArchiveRequest,
    },
}

struct Job {
    /// Service-wide workload sequence number (span/trace correlation id).
    id: u64,
    work: Work,
    tenant: Arc<TenantState>,
    events: SyncSender<ServiceEvent>,
    /// Telemetry clock reading at enqueue; 0 when telemetry is disabled,
    /// which makes the recorded queue wait 0 rather than garbage.
    enqueued_at: u64,
}

struct Shared {
    containers: Mutex<Vec<Arc<ContainerStore>>>,
    archives: Mutex<Vec<Arc<ArchiveStore>>>,
    tenants: Mutex<Vec<Arc<TenantState>>>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    global: Semaphore,
    shutdown: AtomicBool,
    next_workload: AtomicU64,
    config: ServiceConfig,
}

/// Session source that meters simulated backend cost: reads go through the
/// shared cache under the tenant's tag, and the misses of each call —
/// coalesced the way the stack below would batch them — are charged to this
/// workload's clock. Per-workload instance, so attribution is exact even
/// when a tenant runs many sessions at once.
struct MeterSource {
    cache: Arc<SharedCache>,
    tenant: Arc<TenantState>,
    cost: Option<CostModel>,
    nanos: AtomicU64,
}

impl MeterSource {
    fn nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

impl ChunkSource for MeterSource {
    fn len(&self) -> u64 {
        self.cache.len()
    }

    fn read_ranges(&self, ranges: &[ByteRange]) -> ipcomp::Result<Vec<Bytes>> {
        let read = self
            .cache
            .read_ranges_tagged(Some(self.tenant.tag), ranges)?;
        let m = &self.tenant.metrics;
        let missed = read.missed.len() as u64;
        m.cache_hits.add(ranges.len() as u64 - missed);
        m.cache_misses.add(missed);
        if !read.missed.is_empty() {
            let miss: Vec<ByteRange> = read.missed.iter().map(|&i| ranges[i as usize]).collect();
            let bytes: u64 = miss.iter().map(|r| r.len as u64).sum();
            let gets = match &self.cost {
                // Coalesce the way the stack below batches GETs, so the
                // per-tenant count partitions the backend's request stream.
                Some(cost) => coalesce_ranges(&miss, cost.coalesce_gap).0.len() as u64,
                None => missed,
            };
            m.gets.add(gets);
            if let Some(cost) = &self.cost {
                self.nanos
                    .fetch_add(cost.nanos(gets, bytes), Ordering::Relaxed);
            }
        }
        Ok(read.bytes)
    }
}

/// A multi-tenant, multi-container retrieval service (see module docs).
pub struct StoreService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl StoreService {
    /// Start the worker pool.
    pub fn new(config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            containers: Mutex::new(Vec::new()),
            archives: Mutex::new(Vec::new()),
            tenants: Mutex::new(Vec::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            global: Semaphore::new(config.max_inflight.max(1)),
            shutdown: AtomicBool::new(false),
            next_workload: AtomicU64::new(0),
            config,
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Register a container; returns the id tenants address it by. Already
    /// registered tenants' cache quotas apply to it immediately.
    pub fn register_container(&self, store: Arc<ContainerStore>) -> ContainerId {
        for t in self.shared.tenants.lock().expect("tenants lock").iter() {
            if let Some(q) = t.config.cache_quota {
                store.set_tag_quota(t.tag, Some(q));
            }
        }
        let mut containers = self.shared.containers.lock().expect("containers lock");
        containers.push(store);
        ContainerId(containers.len() - 1)
    }

    /// Register a time-series archive; returns the id tenants address it by
    /// via [`StoreService::submit_archive`]. Already registered tenants'
    /// cache quotas apply to it immediately.
    pub fn register_archive(&self, store: Arc<ArchiveStore>) -> ArchiveId {
        for t in self.shared.tenants.lock().expect("tenants lock").iter() {
            if let Some(q) = t.config.cache_quota {
                store.set_tag_quota(t.tag, Some(q));
            }
        }
        let mut archives = self.shared.archives.lock().expect("archives lock");
        archives.push(store);
        ArchiveId(archives.len() - 1)
    }

    /// Register a tenant; its cache quota is installed on every registered
    /// container's and archive's shared cache.
    pub fn register_tenant(&self, config: TenantConfig) -> TenantId {
        let mut tenants = self.shared.tenants.lock().expect("tenants lock");
        let tag = tenants.len() as CacheTag;
        if let Some(q) = config.cache_quota {
            for store in self
                .shared
                .containers
                .lock()
                .expect("containers lock")
                .iter()
            {
                store.set_tag_quota(tag, Some(q));
            }
            for store in self.shared.archives.lock().expect("archives lock").iter() {
                store.set_tag_quota(tag, Some(q));
            }
        }
        tenants.push(Arc::new(TenantState {
            config,
            tag,
            bytes_used: AtomicU64::new(0),
            inflight: Semaphore::new(config.max_inflight.max(1)),
            metrics: TenantMetrics::default(),
        }));
        TenantId(tag)
    }

    /// Cumulative budget bytes `tenant` has consumed.
    pub fn tenant_bytes_used(&self, tenant: TenantId) -> u64 {
        self.shared
            .tenants
            .lock()
            .expect("tenants lock")
            .get(tenant.0 as usize)
            .map_or(0, |t| t.bytes_used.load(Ordering::Relaxed))
    }

    /// Snapshot every tenant's counters and latency distributions plus the
    /// service-wide merges. Cheap enough to poll: counters are relaxed loads
    /// and each histogram copies a fixed bucket array.
    pub fn metrics_snapshot(&self) -> ServiceMetricsSnapshot {
        let tenants = self.shared.tenants.lock().expect("tenants lock");
        let mut out = Vec::with_capacity(tenants.len());
        let mut queue_wait = HistogramSnapshot::empty();
        let mut latency = HistogramSnapshot::empty();
        for t in tenants.iter() {
            let q = t.metrics.queue_wait_ns.snapshot();
            let l = t.metrics.latency_ns.snapshot();
            queue_wait.merge(&q);
            latency.merge(&l);
            out.push(TenantMetricsSnapshot {
                tenant: TenantId(t.tag),
                workloads: t.metrics.workloads.get(),
                failures: t.metrics.failures.get(),
                requests: t.metrics.requests.get(),
                gets: t.metrics.gets.get(),
                cache_hits: t.metrics.cache_hits.get(),
                cache_misses: t.metrics.cache_misses.get(),
                bytes_used: t.bytes_used.load(Ordering::Relaxed),
                byte_budget: t.config.byte_budget,
                queue_wait_ns: q,
                latency_ns: l,
            });
        }
        ServiceMetricsSnapshot {
            tenants: out,
            queue_wait_ns: queue_wait,
            latency_ns: latency,
        }
    }

    /// [`StoreService::metrics_snapshot`] rendered as a stable JSON document.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    fn lookup_tenant(&self, tenant: TenantId) -> Result<Arc<TenantState>, ServiceError> {
        self.shared
            .tenants
            .lock()
            .expect("tenants lock")
            .get(tenant.0 as usize)
            .cloned()
            .ok_or(ServiceError::UnknownTenant)
    }

    fn lookup(
        &self,
        tenant: TenantId,
        container: ContainerId,
    ) -> Result<(Arc<TenantState>, Arc<ContainerStore>), ServiceError> {
        let tenant = self.lookup_tenant(tenant)?;
        let store = self
            .shared
            .containers
            .lock()
            .expect("containers lock")
            .get(container.0)
            .cloned()
            .ok_or(ServiceError::UnknownContainer)?;
        Ok((tenant, store))
    }

    fn lookup_archive(
        &self,
        tenant: TenantId,
        archive: ArchiveId,
    ) -> Result<(Arc<TenantState>, Arc<ArchiveStore>), ServiceError> {
        let tenant = self.lookup_tenant(tenant)?;
        let store = self
            .shared
            .archives
            .lock()
            .expect("archives lock")
            .get(archive.0)
            .cloned()
            .ok_or(ServiceError::UnknownContainer)?;
        Ok((tenant, store))
    }

    fn enqueue(
        &self,
        tenant: Arc<TenantState>,
        work: Work,
    ) -> Result<Receiver<ServiceEvent>, ServiceError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            tenant.inflight.release();
            self.shared.global.release();
            return Err(ServiceError::ShuttingDown);
        }
        let (tx, rx) = sync_channel(self.shared.config.event_depth.max(1));
        let mut queue = self.shared.queue.lock().expect("queue lock");
        queue.push_back(Job {
            id: self.shared.next_workload.fetch_add(1, Ordering::Relaxed),
            work,
            tenant,
            events: tx,
            enqueued_at: now_nanos(),
        });
        self.shared.queue_cv.notify_one();
        Ok(rx)
    }

    /// Submit a workload on behalf of `tenant` against `container`,
    /// **blocking** while the tenant or the service is at its in-flight
    /// limit (admission backpressure). Returns the workload's event
    /// receiver; events arrive incrementally and end with `WorkloadDone` or
    /// `WorkloadFailed`.
    pub fn submit(
        &self,
        tenant: TenantId,
        container: ContainerId,
        workload: Vec<RetrievalRequest>,
    ) -> Result<Receiver<ServiceEvent>, ServiceError> {
        let (tenant, store) = self.lookup(tenant, container)?;
        tenant.inflight.acquire();
        self.shared.global.acquire();
        self.enqueue(
            tenant,
            Work::Container {
                store,
                requests: workload,
            },
        )
    }

    /// Submit a step-spanning archive workload, blocking at the same
    /// admission limits as [`StoreService::submit`]. The event stream
    /// carries the per-step decoders' [`ServiceEvent::Stream`] progress
    /// (including [`StreamEvent::StepReconstructed`] per output step), one
    /// [`ServiceEvent::RequestDone`] per output step, and a terminal
    /// [`ServiceEvent::WorkloadDone`] whose checksum folds every emitted
    /// step's field checksum.
    pub fn submit_archive(
        &self,
        tenant: TenantId,
        archive: ArchiveId,
        request: ArchiveRequest,
    ) -> Result<Receiver<ServiceEvent>, ServiceError> {
        let (tenant, store) = self.lookup_archive(tenant, archive)?;
        tenant.inflight.acquire();
        self.shared.global.acquire();
        self.enqueue(tenant, Work::Archive { store, request })
    }

    /// Non-blocking [`StoreService::submit_archive`]: refuses with
    /// [`ServiceError::Busy`] instead of waiting for an in-flight slot.
    pub fn try_submit_archive(
        &self,
        tenant: TenantId,
        archive: ArchiveId,
        request: ArchiveRequest,
    ) -> Result<Receiver<ServiceEvent>, ServiceError> {
        let (tenant, store) = self.lookup_archive(tenant, archive)?;
        if !tenant.inflight.try_acquire() {
            return Err(ServiceError::Busy);
        }
        if !self.shared.global.try_acquire() {
            tenant.inflight.release();
            return Err(ServiceError::Busy);
        }
        self.enqueue(tenant, Work::Archive { store, request })
    }

    /// Non-blocking [`StoreService::submit`]: refuses with
    /// [`ServiceError::Busy`] instead of waiting for an in-flight slot.
    pub fn try_submit(
        &self,
        tenant: TenantId,
        container: ContainerId,
        workload: Vec<RetrievalRequest>,
    ) -> Result<Receiver<ServiceEvent>, ServiceError> {
        let (tenant, store) = self.lookup(tenant, container)?;
        if !tenant.inflight.try_acquire() {
            return Err(ServiceError::Busy);
        }
        if !self.shared.global.try_acquire() {
            tenant.inflight.release();
            return Err(ServiceError::Busy);
        }
        self.enqueue(
            tenant,
            Work::Container {
                store,
                requests: workload,
            },
        )
    }

    /// Stop accepting work, finish queued jobs, and join the workers.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for StoreService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("queue wait");
            }
        };
        run_job(&shared, job);
    }
}

/// Run one workload to completion on the calling worker. Always releases
/// the in-flight permits; always terminates the event stream (unless the
/// client hung up, in which case remaining work is abandoned).
fn run_job(shared: &Shared, job: Job) {
    let Job {
        id,
        work,
        tenant,
        events,
        enqueued_at,
    } = job;

    let started_at = now_nanos();
    let queue_wait = started_at.saturating_sub(enqueued_at);
    tenant.metrics.queue_wait_ns.record(queue_wait);
    crate::obs::metrics().queue_wait_ns.record(queue_wait);

    match work {
        Work::Container { store, requests } => run_container_job(
            shared, id, store, &tenant, requests, &events, queue_wait, started_at,
        ),
        Work::Archive { store, request } => run_archive_job(
            shared, id, store, &tenant, request, &events, queue_wait, started_at,
        ),
    }

    shared.global.release();
    tenant.inflight.release();
}

/// Build the per-workload meter over a store's shared cache, when it has one.
fn make_meter(
    shared: &Shared,
    tenant: &Arc<TenantState>,
    cache: Option<&Arc<SharedCache>>,
) -> Option<Arc<MeterSource>> {
    cache.map(|cache| {
        Arc::new(MeterSource {
            cache: Arc::clone(cache),
            tenant: Arc::clone(tenant),
            cost: shared.config.cost_model,
            nanos: AtomicU64::new(0),
        })
    })
}

#[allow(clippy::too_many_arguments)]
fn run_container_job(
    shared: &Shared,
    id: u64,
    store: Arc<ContainerStore>,
    tenant: &Arc<TenantState>,
    workload: Vec<RetrievalRequest>,
    events: &SyncSender<ServiceEvent>,
    queue_wait: u64,
    started_at: u64,
) {
    let mut wl_span = span("service", "workload")
        .arg("tenant", tenant.tag as u64)
        .arg("workload", id)
        .arg("requests", workload.len() as u64)
        .arg("queue_ns", queue_wait);

    let meter = make_meter(shared, tenant, store.cache());
    let mut session: RetrievalSession = match &meter {
        Some(m) => store.session_over(Arc::clone(m) as Arc<dyn ChunkSource>),
        None => store.session(),
    };
    let sim_nanos = |m: &Option<Arc<MeterSource>>| m.as_ref().map_or(0, |m| m.nanos());

    let mut steps = Vec::with_capacity(workload.len());
    let mut last = None;
    for (i, &request) in workload.iter().enumerate() {
        // Budget gate: the planner prices the exact delta this session
        // would fetch; refuse before any I/O happens.
        let reserved = match plan_bytes(&session, request, tenant) {
            Ok(reserved) => reserved,
            Err(error) => {
                tenant.metrics.failures.incr();
                let _ = events.send(ServiceEvent::WorkloadFailed { request: i, error });
                break;
            }
        };
        let forward = |event: StreamEvent| {
            // A gone client is detected between requests; mid-request we
            // just stop forwarding.
            let _ = events.send(ServiceEvent::Stream { request: i, event });
        };
        match session.retrieve_streaming_events(request, forward) {
            Ok(out) => {
                let step = ClientStep {
                    bytes_this_request: out.bytes_this_request,
                    bytes_total: out.bytes_total,
                    error_bound: out.error_bound,
                };
                steps.push(step);
                tenant.metrics.requests.incr();
                let done = ServiceEvent::RequestDone {
                    request: i,
                    step,
                    sim_nanos: sim_nanos(&meter),
                };
                last = Some(out);
                if events.send(done).is_err() {
                    break; // client hung up; stop wasting the worker
                }
            }
            Err(e) => {
                tenant.release_reservation(reserved);
                tenant.metrics.failures.incr();
                let _ = events.send(ServiceEvent::WorkloadFailed {
                    request: i,
                    error: ServiceError::Retrieval(e),
                });
                break;
            }
        }
    }
    if steps.len() == workload.len() {
        let sim = sim_nanos(&meter);
        // End-to-end latency on the timeline the deployment runs on: the
        // simulated backend clock when a cost model attributes one, the
        // telemetry wall clock otherwise. Recorded from the *same* value the
        // terminal event carries, so a client histogramming its
        // `WorkloadDone` nanos reproduces this histogram exactly.
        let latency = if shared.config.cost_model.is_some() && meter.is_some() {
            sim
        } else {
            now_nanos().saturating_sub(started_at)
        };
        tenant.metrics.workloads.incr();
        tenant.metrics.latency_ns.record(latency);
        crate::obs::metrics().workload_ns.record(latency);
        wl_span.add_arg("latency_ns", latency);
        let checksum = last.map_or(0, |out| field_checksum(out.data.as_slice()));
        let _ = events.send(ServiceEvent::WorkloadDone {
            outcome: ClientOutcome { steps, checksum },
            sim_nanos: sim,
        });
    }
    drop(wl_span);
}

/// Run one archive workload: a single step-spanning request whose whole
/// chunk plan is priced against the budget up front, streamed back as one
/// `RequestDone` per output step (request index = position in the output
/// window), with a terminal `WorkloadDone` whose checksum folds every
/// emitted step's field checksum in step order.
#[allow(clippy::too_many_arguments)]
fn run_archive_job(
    shared: &Shared,
    id: u64,
    store: Arc<ArchiveStore>,
    tenant: &Arc<TenantState>,
    request: ArchiveRequest,
    events: &SyncSender<ServiceEvent>,
    queue_wait: u64,
    started_at: u64,
) {
    let mut wl_span = span("service", "archive_workload")
        .arg("tenant", tenant.tag as u64)
        .arg("workload", id)
        .arg("steps", request.end.saturating_sub(request.start) as u64)
        .arg("queue_ns", queue_wait);

    let meter = make_meter(shared, tenant, store.cache());
    let mut session: ArchiveSession = match &meter {
        Some(m) => store.session_over(Arc::clone(m) as Arc<dyn ChunkSource>),
        None => store.session(),
    };
    let sim_nanos = |m: &Option<Arc<MeterSource>>| m.as_ref().map_or(0, |m| m.nanos());

    // Budget gate: price the whole step-spanning plan (chain prefix +
    // output window) before any I/O.
    let reserved = match plan_archive_bytes(&session, &request, tenant) {
        Ok(reserved) => reserved,
        Err(error) => {
            tenant.metrics.failures.incr();
            let _ = events.send(ServiceEvent::WorkloadFailed { request: 0, error });
            drop(wl_span);
            return;
        }
    };

    // Both callbacks index events by the output step's position in the
    // window; a Cell lets the stream callback read it while the step
    // callback owns the accumulators.
    let emitted = std::cell::Cell::new(0usize);
    let mut steps = Vec::new();
    let mut checksum = 0u64;
    let outcome = session.retrieve_steps_streaming_events(
        &request,
        |event| {
            let _ = events.send(ServiceEvent::Stream {
                request: emitted.get(),
                event,
            });
        },
        |s| {
            let step = ClientStep {
                bytes_this_request: s.bytes_step,
                bytes_total: s.bytes_step,
                error_bound: s.error_bound,
            };
            tenant.metrics.requests.incr();
            // Order-sensitive fold: swapping or dropping a step changes the
            // digest, so a client can verify the whole sweep end to end.
            checksum = checksum
                .rotate_left(17)
                .wrapping_add(field_checksum(s.data.as_slice()));
            let _ = events.send(ServiceEvent::RequestDone {
                request: emitted.get(),
                step,
                sim_nanos: sim_nanos(&meter),
            });
            emitted.set(emitted.get() + 1);
            steps.push(step);
        },
    );
    match outcome {
        Ok(out) => {
            let sim = sim_nanos(&meter);
            let latency = if shared.config.cost_model.is_some() && meter.is_some() {
                sim
            } else {
                now_nanos().saturating_sub(started_at)
            };
            // Running totals: make bytes_total cumulative across the sweep,
            // mirroring the per-request container semantics.
            let mut total = 0usize;
            for s in &mut steps {
                total += s.bytes_this_request;
                s.bytes_total = total;
            }
            tenant.metrics.workloads.incr();
            tenant.metrics.latency_ns.record(latency);
            crate::obs::metrics().workload_ns.record(latency);
            wl_span.add_arg("latency_ns", latency);
            wl_span.add_arg("bytes", out.bytes_this_request as u64);
            let _ = events.send(ServiceEvent::WorkloadDone {
                outcome: ClientOutcome { steps, checksum },
                sim_nanos: sim,
            });
        }
        Err(e) => {
            tenant.release_reservation(reserved);
            tenant.metrics.failures.incr();
            let _ = events.send(ServiceEvent::WorkloadFailed {
                request: steps.len(),
                error: ServiceError::Retrieval(e),
            });
        }
    }
    drop(wl_span);
}

/// Price `request` and reserve the bytes against the tenant's budget.
/// Returns the reserved byte count (0 when unmetered).
fn plan_bytes(
    session: &RetrievalSession,
    request: RetrievalRequest,
    tenant: &TenantState,
) -> Result<u64, ServiceError> {
    if tenant.config.byte_budget.is_none() {
        return Ok(0);
    }
    let need = session
        .plan_ranges(request)
        .map_err(ServiceError::Retrieval)?
        .payload_bytes() as u64;
    tenant.try_reserve(need)?;
    Ok(need)
}

/// Archive flavor of [`plan_bytes`]: price the full step-spanning plan.
fn plan_archive_bytes(
    session: &ArchiveSession,
    request: &ArchiveRequest,
    tenant: &TenantState,
) -> Result<u64, ServiceError> {
    if tenant.config.byte_budget.is_none() {
        return Ok(0);
    }
    let need = session
        .plan_ranges(request)
        .map_err(ServiceError::Retrieval)?
        .payload_bytes() as u64;
    tenant.try_reserve(need)?;
    Ok(need)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_tensor::{ArrayD, Shape};
    use ipcomp::source::MemorySource;
    use ipcomp::{compress, Config};

    use crate::session::StoreOptions;

    fn toy_store(cache_bytes: usize) -> (Arc<ContainerStore>, u64) {
        let field = ArrayD::from_fn(Shape::d3(16, 16, 12), |c| {
            (c[0] as f64 * 0.3).sin() + (c[1] as f64 * 0.2).cos() * 2.0 + c[2] as f64 * 0.01
        });
        let compressed = compress(&field, 1e-7, &Config::default()).unwrap();
        let bytes = compressed.to_bytes();
        let store = ContainerStore::open(
            Arc::new(MemorySource::new(bytes)),
            StoreOptions {
                cache_bytes,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        // Reference checksum from a plain single-client session running the
        // same coarse→fine workload the service tests submit (a one-shot
        // 1e-4 decode may legally load a different plane set than the
        // refinement path). Computed over a *separate* store instance so the
        // store under test keeps a stone-cold cache.
        let reference = {
            let mut dec = ipcomp::ProgressiveDecoder::new(&compressed);
            dec.retrieve(RetrievalRequest::ErrorBound(1e-2)).unwrap();
            let out = dec.retrieve(RetrievalRequest::ErrorBound(1e-4)).unwrap();
            field_checksum(out.data.as_slice())
        };
        (store, reference)
    }

    fn drain(rx: Receiver<ServiceEvent>) -> (Vec<ServiceEvent>, Option<ClientOutcome>) {
        let mut events = Vec::new();
        let mut outcome = None;
        while let Ok(ev) = rx.recv() {
            if let ServiceEvent::WorkloadDone { outcome: o, .. } = &ev {
                outcome = Some(o.clone());
            }
            events.push(ev);
        }
        (events, outcome)
    }

    #[test]
    fn workload_streams_events_then_completes_bit_identical() {
        let (store, reference) = toy_store(1 << 20);
        let service = StoreService::new(ServiceConfig::default());
        let cid = service.register_container(store);
        let tid = service.register_tenant(TenantConfig::default());
        let rx = service
            .submit(
                tid,
                cid,
                vec![
                    RetrievalRequest::ErrorBound(1e-2),
                    RetrievalRequest::ErrorBound(1e-4),
                ],
            )
            .unwrap();
        let (events, outcome) = drain(rx);
        let outcome = outcome.expect("workload completed");
        assert_eq!(outcome.steps.len(), 2);
        assert_eq!(outcome.checksum, reference);
        // Stream events arrived before their request's completion, and both
        // kinds of progress were forwarded.
        let first_stream = events
            .iter()
            .position(|e| matches!(e, ServiceEvent::Stream { .. }))
            .expect("stream events forwarded");
        let first_done = events
            .iter()
            .position(|e| matches!(e, ServiceEvent::RequestDone { .. }))
            .unwrap();
        assert!(first_stream < first_done);
        assert!(events.iter().any(|e| matches!(
            e,
            ServiceEvent::Stream {
                event: StreamEvent::LevelReconstructed(_),
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            ServiceEvent::Stream {
                event: StreamEvent::Region(_),
                ..
            }
        )));
    }

    #[test]
    fn byte_budget_refuses_before_any_io() {
        let (store, _) = toy_store(1 << 20);
        let backend_stats = store.cache_stats().unwrap();
        let service = StoreService::new(ServiceConfig::default());
        let cid = service.register_container(Arc::clone(&store));
        let broke = service.register_tenant(TenantConfig {
            byte_budget: Some(16), // can't afford anything
            ..TenantConfig::default()
        });
        let rx = service
            .submit(broke, cid, vec![RetrievalRequest::ErrorBound(1e-2)])
            .unwrap();
        let (events, outcome) = drain(rx);
        assert!(outcome.is_none());
        assert!(matches!(
            events.last(),
            Some(ServiceEvent::WorkloadFailed {
                error: ServiceError::BudgetExhausted { .. },
                ..
            })
        ));
        // Nothing was fetched on the broke tenant's behalf.
        let after = store.cache_stats().unwrap();
        assert_eq!(after.misses, backend_stats.misses);
        assert_eq!(service.tenant_bytes_used(broke), 0);
        // A funded tenant on the same service proceeds.
        let funded = service.register_tenant(TenantConfig {
            byte_budget: Some(u64::MAX / 2),
            ..TenantConfig::default()
        });
        let rx = service
            .submit(funded, cid, vec![RetrievalRequest::ErrorBound(1e-2)])
            .unwrap();
        let (_, outcome) = drain(rx);
        assert!(outcome.is_some());
        assert!(service.tenant_bytes_used(funded) > 0);
    }

    #[test]
    fn budget_spans_requests_and_cuts_off_refinement() {
        let (store, _) = toy_store(1 << 20);
        let service = StoreService::new(ServiceConfig::default());
        let cid = service.register_container(store);
        // Budget sized so the coarse step fits but the full refinement does
        // not: price both steps through a probe tenant first.
        let probe = service.register_tenant(TenantConfig::default());
        let rx = service
            .submit(probe, cid, vec![RetrievalRequest::ErrorBound(1e-2)])
            .unwrap();
        let (_, probe_out) = drain(rx);
        let coarse_bytes = probe_out.unwrap().steps[0].bytes_this_request as u64;
        let capped = service.register_tenant(TenantConfig {
            byte_budget: Some(coarse_bytes + 8),
            ..TenantConfig::default()
        });
        let rx = service
            .submit(
                capped,
                cid,
                vec![RetrievalRequest::ErrorBound(1e-2), RetrievalRequest::Full],
            )
            .unwrap();
        let (events, outcome) = drain(rx);
        assert!(outcome.is_none());
        // First request done, second refused.
        assert!(events
            .iter()
            .any(|e| matches!(e, ServiceEvent::RequestDone { request: 0, .. })));
        assert!(matches!(
            events.last(),
            Some(ServiceEvent::WorkloadFailed {
                request: 1,
                error: ServiceError::BudgetExhausted { .. },
            })
        ));
    }

    #[test]
    fn try_submit_refuses_when_tenant_inflight_full() {
        let (store, _) = toy_store(1 << 20);
        // One worker and an event queue of depth 1 that nobody drains: the
        // worker blocks forwarding events, pinning the workload in flight.
        let service = StoreService::new(ServiceConfig {
            workers: 1,
            max_inflight: 8,
            event_depth: 1,
            cost_model: None,
        });
        let cid = service.register_container(store);
        let tid = service.register_tenant(TenantConfig {
            max_inflight: 1,
            ..TenantConfig::default()
        });
        let rx = service
            .submit(tid, cid, vec![RetrievalRequest::ErrorBound(1e-3)])
            .unwrap();
        // The undrained first workload keeps the tenant at its limit.
        let refused = service.try_submit(tid, cid, vec![RetrievalRequest::ErrorBound(1e-2)]);
        assert!(matches!(refused, Err(ServiceError::Busy)));
        // Draining unblocks the worker and completes the workload ...
        let (_, outcome) = drain(rx);
        assert!(outcome.is_some());
        // ... after which the tenant may submit again.
        let rx = service
            .try_submit(tid, cid, vec![RetrievalRequest::ErrorBound(1e-2)])
            .unwrap();
        assert!(drain(rx).1.is_some());
    }

    #[test]
    fn cost_model_attributes_miss_cost_to_workloads() {
        let (store, _) = toy_store(1 << 20);
        let service = StoreService::new(ServiceConfig {
            cost_model: Some(CostModel {
                latency_per_request: Duration::from_millis(5),
                throughput_bytes_per_sec: 200e6,
                coalesce_gap: 4096,
            }),
            ..ServiceConfig::default()
        });
        let cid = service.register_container(store);
        let tid = service.register_tenant(TenantConfig::default());
        let run = |req| {
            let rx = service.submit(tid, cid, vec![req]).unwrap();
            let mut nanos = None;
            while let Ok(ev) = rx.recv() {
                if let ServiceEvent::WorkloadDone { sim_nanos, .. } = ev {
                    nanos = Some(sim_nanos);
                }
            }
            nanos.expect("completed")
        };
        let cold = run(RetrievalRequest::ErrorBound(1e-3));
        // Same request again: everything hits the now-warm cache.
        let warm = run(RetrievalRequest::ErrorBound(1e-3));
        assert!(cold > 0, "cold workload must pay simulated latency");
        assert_eq!(warm, 0, "warm workload is all cache hits: {warm}");
    }

    #[test]
    fn metrics_snapshot_attributes_traffic_per_tenant() {
        let (store, _) = toy_store(1 << 20);
        let service = StoreService::new(ServiceConfig {
            cost_model: Some(CostModel {
                latency_per_request: Duration::from_millis(5),
                throughput_bytes_per_sec: 200e6,
                coalesce_gap: 4096,
            }),
            ..ServiceConfig::default()
        });
        let cid = service.register_container(store);
        let busy = service.register_tenant(TenantConfig::default());
        let idle = service.register_tenant(TenantConfig::default());
        let mut done_nanos = Vec::new();
        for req in [
            RetrievalRequest::ErrorBound(1e-2),
            RetrievalRequest::ErrorBound(1e-4),
            RetrievalRequest::ErrorBound(1e-4), // warm repeat: all hits
        ] {
            let rx = service.submit(busy, cid, vec![req]).unwrap();
            while let Ok(ev) = rx.recv() {
                if let ServiceEvent::WorkloadDone { sim_nanos, .. } = ev {
                    done_nanos.push(sim_nanos);
                }
            }
        }
        let snap = service.metrics_snapshot();
        assert_eq!(snap.tenants.len(), 2);
        let t = &snap.tenants[busy.0 as usize];
        assert_eq!(t.tenant, busy);
        assert_eq!(t.workloads, 3);
        assert_eq!(t.requests, 3);
        assert_eq!(t.failures, 0);
        assert!(t.gets > 0, "cold workloads must have hit the backend");
        assert!(t.cache_misses > 0);
        assert!(t.cache_hits > 0, "the warm repeat must have hit the cache");
        assert!(t.hit_rate() > 0.0 && t.hit_rate() < 1.0);
        // The idle tenant saw none of that traffic.
        let z = &snap.tenants[idle.0 as usize];
        assert_eq!(
            (z.workloads, z.requests, z.gets, z.cache_hits),
            (0, 0, 0, 0)
        );
        // The JSON document is well-formed enough to carry both tenants.
        let json = service.metrics_json();
        assert!(json.starts_with("{\"schema\": \"ipc-service-metrics-v1\""));
        assert!(json.contains("\"tenants\": [{\"tenant\": 0,"));

        // With the `telemetry` feature on, the service-side latency
        // histogram is fed from the same values the client observed on its
        // WorkloadDone events — percentiles must agree exactly.
        #[cfg(feature = "telemetry")]
        {
            use ipc_telemetry::Histogram;
            assert_eq!(t.latency_ns.count, 3);
            assert_eq!(t.queue_wait_ns.count, 3);
            let client_side = Histogram::new();
            for &n in &done_nanos {
                client_side.record(n);
            }
            let client = client_side.snapshot();
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(t.latency_ns.percentile(q), client.percentile(q), "q={q}");
            }
            assert_eq!(t.latency_ns.sum, client.sum);
        }
        let _ = done_nanos;
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let service = StoreService::new(ServiceConfig::default());
        let err = service.submit(TenantId(0), ContainerId(0), vec![]);
        assert!(matches!(err, Err(ServiceError::UnknownTenant)));
        let tid = service.register_tenant(TenantConfig::default());
        let err = service.submit(tid, ContainerId(3), vec![]);
        assert!(matches!(err, Err(ServiceError::UnknownContainer)));
    }
}
