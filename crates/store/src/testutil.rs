//! Test/bench support: build chunk sources in whatever backend the
//! environment asks for.
//!
//! Setting `IPC_STORE_FORCE_FILE=1` makes [`test_source`] materialize every
//! container as a scratch file served by [`FileSource`], so one CI pass runs
//! the whole suite against the positioned-read path instead of the in-memory
//! fast path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ipcomp::source::{ChunkSource, MemorySource};

use crate::file::FileSource;

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `data` to a unique scratch file in the system temp directory and
/// return its path. Callers remove it when done.
pub fn scratch_file(name: &str, data: &[u8]) -> std::path::PathBuf {
    let seq = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("ipc_store_{name}_{}_{seq}.bin", std::process::id()));
    std::fs::write(&path, data).expect("write scratch container");
    path
}

/// Whether the environment forces the file-backed source.
pub fn file_backend_forced() -> bool {
    std::env::var("IPC_STORE_FORCE_FILE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Wrap serialized container bytes in the backend selected by the
/// environment: [`MemorySource`] by default, [`FileSource`] over a scratch
/// file when `IPC_STORE_FORCE_FILE=1`.
///
/// On Unix the scratch file is unlinked immediately (the open descriptor
/// keeps it readable), so forced-file runs leave no litter behind.
pub fn test_source(bytes: Vec<u8>) -> Arc<dyn ChunkSource> {
    if file_backend_forced() {
        let path = scratch_file("test_source", &bytes);
        let source = FileSource::open(&path).expect("open scratch container");
        #[cfg(unix)]
        std::fs::remove_file(&path).ok();
        Arc::new(source)
    } else {
        Arc::new(MemorySource::new(bytes))
    }
}
