//! Retrieval planner: lower a [`LoadPlan`] into the exact chunk byte ranges
//! it needs, given what a session has already loaded.
//!
//! The optimizer decides *how many planes* per level (over the metadata-only
//! [`ContainerMap`], so no payload is touched); this module turns that into
//! *which bytes*: one [`ChunkRead`] per `(level, plane, chunk)` triple the
//! plan adds, in container payload order. [`RangePlan::coalesced`] then
//! merges adjacent runs under a gap threshold — because plans always load
//! the top planes and the container stores planes low-to-high, the added
//! planes of a level form one contiguous tail run, so coalescing typically
//! collapses a level's whole fetch into a single ranged read.
//!
//! On version-1 containers (no chunk index) every plane is one
//! whole-payload chunk, so the same lowering degrades to a single range per
//! plane instead of erroring.

use ipcomp::container::ContainerMap;
use ipcomp::optimizer::{plan_for_request, LoadPlan};
use ipcomp::progressive::RetrievalRequest;
use ipcomp::source::ByteRange;
use ipcomp::Result;

use crate::coalesce::coalesce_ranges;

/// One chunk fetch of a lowered plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkRead {
    /// Index into the container's level list (coarsest first).
    pub level: usize,
    /// Plane index within the level (0 = least significant).
    pub plane: u8,
    /// Chunk index within the plane.
    pub chunk: usize,
    /// Absolute byte range of the compressed chunk.
    pub range: ByteRange,
}

/// A [`LoadPlan`] lowered to byte ranges.
#[derive(Debug, Clone, PartialEq)]
pub struct RangePlan {
    /// The plane-count plan this lowering realizes.
    pub load: LoadPlan,
    /// Chunk fetches in container payload order (level-major, then
    /// plane-major — exactly the serialized byte order).
    pub reads: Vec<ChunkRead>,
}

impl RangePlan {
    /// Total payload bytes the plan fetches.
    pub fn payload_bytes(&self) -> usize {
        self.reads.iter().map(|r| r.range.len).sum()
    }

    /// Number of per-chunk requests without coalescing.
    pub fn request_count(&self) -> usize {
        self.reads.len()
    }

    /// The raw per-chunk ranges, in payload order.
    pub fn ranges(&self) -> Vec<ByteRange> {
        self.reads.iter().map(|r| r.range).collect()
    }

    /// The batched reads after merging ranges whose gap is at most
    /// `max_gap` bytes.
    pub fn coalesced(&self, max_gap: u64) -> Vec<ByteRange> {
        coalesce_ranges(&self.ranges(), max_gap).0
    }
}

/// Lower `plan` against `map`, skipping planes already loaded.
///
/// `already_loaded[idx]` counts planes from the most significant, exactly
/// like `LoadPlan::planes_loaded` (pass all zeros for a fresh session).
pub fn lower_plan(map: &ContainerMap, already_loaded: &[u8], plan: &LoadPlan) -> RangePlan {
    let mut reads = Vec::new();
    for (idx, level) in map.levels.iter().enumerate() {
        let want = plan
            .planes_loaded
            .get(idx)
            .copied()
            .unwrap_or(0)
            .min(level.num_planes);
        let have = already_loaded.get(idx).copied().unwrap_or(0);
        if want <= have {
            continue;
        }
        // Top `want` planes minus the top `have` already present.
        let hi = level.num_planes - have;
        let lo = level.num_planes - want;
        for p in lo..hi {
            for k in 0..level.plane_chunk_count(p) {
                reads.push(ChunkRead {
                    level: idx,
                    plane: p,
                    chunk: k,
                    range: level.chunk_range(p, k),
                });
            }
        }
    }
    RangePlan {
        load: plan.clone(),
        reads,
    }
}

/// Lower `plan` to the chunks an ROI retrieval fetches: per level, only the
/// chunks of precincts whose mask bit is set (see
/// [`ipcomp::roi_precinct_masks`]). In the version-3 layout a plane's chunk
/// index *is* the precinct id, so the lowering stays a direct walk of the
/// chunk table. ROI retrievals are stateless — they never skip
/// already-loaded planes — so there is no `already_loaded` parameter.
pub fn lower_plan_roi(map: &ContainerMap, plan: &LoadPlan, masks: &[Vec<bool>]) -> RangePlan {
    let mut reads = Vec::new();
    for (idx, level) in map.levels.iter().enumerate() {
        let want = plan
            .planes_loaded
            .get(idx)
            .copied()
            .unwrap_or(0)
            .min(level.num_planes);
        if want == 0 {
            continue;
        }
        let lo = level.num_planes - want;
        for p in lo..level.num_planes {
            debug_assert_eq!(masks[idx].len(), level.plane_chunk_count(p));
            for (k, &fetch) in masks[idx].iter().enumerate() {
                if fetch {
                    reads.push(ChunkRead {
                        level: idx,
                        plane: p,
                        chunk: k,
                        range: level.chunk_range(p, k),
                    });
                }
            }
        }
    }
    RangePlan {
        load: plan.clone(),
        reads,
    }
}

/// Resolve `request` through the optimizer (the same dispatch the decoder's
/// `plan()` uses) and lower it in one step. A [`RetrievalRequest::Roi`]
/// lowers region-scoped: only chunk ranges of precincts intersecting the
/// box plus its cross-level ancestor halo.
pub fn plan_request(
    map: &ContainerMap,
    already_loaded: &[u8],
    request: RetrievalRequest,
) -> Result<RangePlan> {
    let plan = plan_for_request(map, request)?;
    if let RetrievalRequest::Roi { bounds, .. } = request {
        let masks = ipcomp::roi_precinct_masks(&map.header, &bounds)?;
        return Ok(lower_plan_roi(map, &plan, &masks));
    }
    Ok(lower_plan(map, already_loaded, &plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_tensor::{ArrayD, Shape};
    use ipcomp::{compress, Config, RetrievalRequest};

    fn toy_map(chunk_bytes: usize) -> (ipcomp::Compressed, ContainerMap) {
        let field = ArrayD::from_fn(Shape::d3(20, 18, 16), |c| {
            (c[0] as f64 * 0.3).sin() + (c[1] as f64 * 0.2).cos() * 2.0 + c[2] as f64 * 0.01
        });
        let config = Config {
            chunk_bytes,
            ..Config::default()
        };
        let c = compress(&field, 1e-7, &config).unwrap();
        let map = ContainerMap::from_compressed(&c);
        (c, map)
    }

    #[test]
    fn full_plan_covers_every_payload_byte() {
        let (c, map) = toy_map(64);
        let rp = plan_request(&map, &vec![0; map.levels.len()], RetrievalRequest::Full).unwrap();
        assert_eq!(rp.payload_bytes(), c.payload_bytes());
    }

    #[test]
    fn error_bound_plan_fetches_strict_subset() {
        let (c, map) = toy_map(64);
        let rp = plan_request(
            &map,
            &vec![0; map.levels.len()],
            RetrievalRequest::ErrorBound(1e-3),
        )
        .unwrap();
        assert!(rp.payload_bytes() > 0);
        assert!(rp.payload_bytes() < c.payload_bytes());
        // Reads arrive in payload order: offsets strictly increase.
        for w in rp.reads.windows(2) {
            assert!(w[1].range.offset >= w[0].range.end());
        }
    }

    #[test]
    fn refinement_lowering_skips_loaded_planes() {
        let (_, map) = toy_map(64);
        let coarse = plan_request(
            &map,
            &vec![0; map.levels.len()],
            RetrievalRequest::ErrorBound(1e-2),
        )
        .unwrap();
        let refined =
            plan_request(&map, &coarse.load.planes_loaded, RetrievalRequest::Full).unwrap();
        // No chunk is fetched twice across the two steps.
        let mut seen: std::collections::HashSet<(usize, u8, usize)> = Default::default();
        for r in coarse.reads.iter().chain(&refined.reads) {
            assert!(seen.insert((r.level, r.plane, r.chunk)), "duplicate {r:?}");
        }
        // Together they cover the full plan exactly.
        let full = plan_request(&map, &vec![0; map.levels.len()], RetrievalRequest::Full).unwrap();
        assert_eq!(
            coarse.payload_bytes() + refined.payload_bytes(),
            full.payload_bytes()
        );
    }

    #[test]
    fn roi_lowering_selects_masked_subset_and_matches_decoder_bytes() {
        use ipcomp::{PlanInput, ProgressiveDecoder, RoiBox};
        let field = ArrayD::from_fn(Shape::d3(24, 20, 16), |c| {
            (c[0] as f64 * 0.3).sin() + (c[1] as f64 * 0.2).cos() * 2.0 + c[2] as f64 * 0.01
        });
        let config = Config::with_precincts(&[8, 8, 8]);
        let c = compress(&field, 1e-7, &config).unwrap();
        let map = ContainerMap::from_compressed(&c);
        let bounds = RoiBox::new(&[0, 0, 0], &[8, 8, 8]);
        let zeros = vec![0u8; map.levels.len()];
        let request = RetrievalRequest::Roi {
            bounds,
            error_bound: 1e-3,
        };
        let roi = plan_request(&map, &zeros, request).unwrap();
        let full = plan_request(&map, &zeros, RetrievalRequest::ErrorBound(1e-3)).unwrap();
        // Same plane selection, strictly fewer chunks, and every ROI read is
        // one of the full lowering's reads.
        assert_eq!(roi.load.planes_loaded, full.load.planes_loaded);
        assert!(roi.request_count() < full.request_count());
        let all: std::collections::HashSet<_> = full
            .reads
            .iter()
            .map(|r| (r.level, r.plane, r.chunk))
            .collect();
        assert!(roi
            .reads
            .iter()
            .all(|r| all.contains(&(r.level, r.plane, r.chunk))));
        // The lowering predicts exactly the bytes the decoder fetches.
        let mut dec = ProgressiveDecoder::new(&c);
        let out = dec
            .retrieve_roi(bounds, RetrievalRequest::ErrorBound(1e-3))
            .unwrap();
        assert_eq!(
            roi.payload_bytes(),
            out.bytes_this_request - map.plan_base_bytes()
        );
    }

    #[test]
    fn roi_lowering_requires_precinct_layout() {
        let (_, map) = toy_map(64);
        let request = RetrievalRequest::Roi {
            bounds: ipcomp::RoiBox::new(&[0, 0, 0], &[4, 4, 4]),
            error_bound: 1e-3,
        };
        assert!(plan_request(&map, &vec![0; map.levels.len()], request).is_err());
    }

    #[test]
    fn coalescing_collapses_contiguous_plane_runs() {
        let (_, map) = toy_map(64);
        let rp = plan_request(&map, &vec![0; map.levels.len()], RetrievalRequest::Full).unwrap();
        let merged = rp.coalesced(0);
        // A full fetch of each level's payload is one contiguous run, and
        // adjacent levels are separated only by their metadata records.
        assert!(merged.len() <= map.levels.len());
        assert!(rp.request_count() >= 4 * merged.len());
    }
}
