//! Session layer: a shared [`ContainerStore`] (source stack + metadata map)
//! and per-client [`RetrievalSession`]s on top of it.
//!
//! One `ContainerStore` composes the source stack once — base backend, then
//! optional coalescing, then an optional shared LRU chunk cache with
//! protected top-plane admission — and hands out any number of sessions.
//! Each session owns its own [`ProgressiveDecoder`] (so per-client progress,
//! monotonicity, and failed-load rollback behave exactly as in the
//! single-reader API) while all sessions draw chunks through the same cache:
//! the first client to request a plane pays the backend cost, the rest hit
//! shared memory.
//!
//! Sessions inherit the decoder's staged pipeline (`ipcomp::pipeline`):
//! bulk retrievals issue each level's batched, coalescible range read one
//! level *ahead* of the decode, and streaming retrievals prefetch the next
//! chunk region while the current one decodes — so against a remote backend
//! the store's read latency overlaps entropy/scatter compute without
//! changing the request pattern the cache and coalescer see.

use std::sync::Arc;

use ipcomp::container::ContainerMap;
use ipcomp::progressive::{
    ProgressiveDecoder, Retrieval, RetrievalRequest, StreamEvent, StreamProgress,
};
use ipcomp::source::ChunkSource;
use ipcomp::Result;

use crate::cache::{CacheStats, CacheTag, CachedSource, TaggedSource};
use crate::coalesce::CoalescingSource;
use crate::planner::{lower_plan, plan_request};
use crate::whole::WholeReadSource;

/// The shared chunk cache type a [`ContainerStore`]'s stack composes.
pub type SharedCache = CachedSource<Arc<dyn ChunkSource>>;

/// Configuration of a [`ContainerStore`]'s source stack and sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreOptions {
    /// Byte budget of the shared LRU chunk cache; `0` disables the cache
    /// layer entirely.
    pub cache_bytes: usize,
    /// Number of independently locked shards the cache's key space is
    /// partitioned over (see [`CachedSource::with_shards`]; the byte budget
    /// and tag quotas stay global); `0` picks the default (the
    /// `IPC_CACHE_SHARDS` env var, else `available_parallelism()`).
    pub cache_shards: usize,
    /// Merge chunk requests whose byte gap is at most this threshold into
    /// batched reads; `None` disables the coalescing layer (every chunk is
    /// its own backend request).
    pub coalesce_gap: Option<u64>,
    /// After every retrieval, prefetch up to this many not-yet-loaded planes
    /// per level into the shared cache (refinement readahead). `0` disables.
    pub readahead_planes: u8,
    /// Protect the chunks of this many top (most significant) planes per
    /// level from cache eviction, so one-shot low-plane sweeps stop flushing
    /// the coarse prefix every client re-reads. Protection is capped at half
    /// the cache byte budget (topmost planes across all levels first) and is
    /// a no-op without a cache layer. `0` restores pure LRU.
    pub protect_top_planes: u8,
    /// Collapse the whole stack to **one whole-payload GET** when the
    /// container is at most this many bytes. Below the backend's
    /// latency/throughput break-even ([`crate::traffic_model_gap`]) ranged
    /// retrieval loses on simulated wall-clock — latency dominates and the
    /// fixed cost of extra round trips outweighs the bytes ranged reads
    /// skip — so small containers are served from a single resident fetch
    /// instead ([`WholeReadSource`]); the decoder and planner above are
    /// unchanged. `None` (the default) never collapses.
    pub whole_read_below: Option<u64>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            cache_bytes: 64 << 20,
            cache_shards: 0,
            coalesce_gap: Some(4096),
            readahead_planes: 0,
            protect_top_planes: 2,
            whole_read_below: None,
        }
    }
}

impl StoreOptions {
    /// Derive the traffic-shape knobs from a backend's cost model: both the
    /// coalescing gap and the whole-read collapse threshold are set to the
    /// model's break-even `latency × throughput` (see
    /// [`crate::traffic_model_gap`]), so range merging and the small-container
    /// collapse kick in exactly where the model says a request saved pays for
    /// the bytes it costs.
    pub fn for_backend(
        latency_per_request: std::time::Duration,
        throughput_bytes_per_sec: f64,
    ) -> Self {
        let gap = crate::coalesce::traffic_model_gap(latency_per_request, throughput_bytes_per_sec);
        Self {
            coalesce_gap: Some(gap),
            whole_read_below: Some(gap),
            ..Self::default()
        }
    }
}

/// A container opened for ranged multi-session retrieval: the parsed
/// metadata map plus the composed source stack every session reads through.
pub struct ContainerStore {
    map: Arc<ContainerMap>,
    stack: Arc<dyn ChunkSource>,
    cache: Option<Arc<SharedCache>>,
    options: StoreOptions,
}

impl ContainerStore {
    /// Open a container over `base`, reading its metadata map and composing
    /// the configured source stack above the backend. When the container
    /// falls under [`StoreOptions::whole_read_below`] the metadata parse
    /// itself triggers the collapse's single fetch, so the backend sees
    /// exactly one GET for the whole store lifetime.
    pub fn open(base: Arc<dyn ChunkSource>, options: StoreOptions) -> Result<Arc<Self>> {
        let (base, collapsed) = Self::collapse_small(base, &options);
        let map = Arc::new(ContainerMap::open(base.as_ref())?);
        Ok(Self::assemble(base, map, options, collapsed))
    }

    /// Like [`ContainerStore::open`] with an already-parsed metadata map.
    pub fn with_map(
        base: Arc<dyn ChunkSource>,
        map: Arc<ContainerMap>,
        options: StoreOptions,
    ) -> Arc<Self> {
        let (base, collapsed) = Self::collapse_small(base, &options);
        Self::assemble(base, map, options, collapsed)
    }

    /// Apply the small-container collapse policy: below the threshold the
    /// whole stack is one lazily-filled resident buffer.
    fn collapse_small(
        base: Arc<dyn ChunkSource>,
        options: &StoreOptions,
    ) -> (Arc<dyn ChunkSource>, bool) {
        match options.whole_read_below {
            Some(t) if base.len() <= t => (Arc::new(WholeReadSource::new(base)), true),
            _ => (base, false),
        }
    }

    fn assemble(
        base: Arc<dyn ChunkSource>,
        map: Arc<ContainerMap>,
        options: StoreOptions,
        collapsed: bool,
    ) -> Arc<Self> {
        let mut stack: Arc<dyn ChunkSource> = base;
        let mut cache = None;
        // A collapsed container is fully resident after its one GET;
        // coalescing and caching above it would only duplicate memory.
        if !collapsed {
            if let Some(gap) = options.coalesce_gap {
                stack = Arc::new(CoalescingSource::new(stack, gap));
            }
            if options.cache_bytes > 0 {
                let cached = Arc::new(match options.cache_shards {
                    0 => CachedSource::new(stack, options.cache_bytes),
                    n => CachedSource::with_shards(stack, options.cache_bytes, n),
                });
                if options.protect_top_planes > 0 {
                    cached.protect(&Self::protected_ranges(
                        &map,
                        options.protect_top_planes,
                        options.cache_bytes / 2,
                    ));
                }
                cache = Some(Arc::clone(&cached));
                stack = cached;
            }
        }
        Arc::new(Self {
            map,
            stack,
            cache,
            options,
        })
    }

    /// Chunk ranges of the top `depth` planes of every level, topmost tier
    /// first across all levels (the coarse prefix every client reads before
    /// anything else), greedily filled up to `byte_cap` so protection never
    /// crowds out the working set. Whole planes that no longer fit are
    /// skipped rather than aborting the sweep: a deep plane of the finest
    /// level can cost more than every remaining plane of the coarse levels
    /// combined, and those cheap-but-hot planes are exactly what the fleet
    /// re-reads.
    fn protected_ranges(map: &ContainerMap, depth: u8, byte_cap: usize) -> Vec<ipcomp::ByteRange> {
        let mut ranges = Vec::new();
        let mut bytes = 0usize;
        for tier in 0..depth {
            for level in &map.levels {
                if tier >= level.num_planes {
                    continue;
                }
                let p = level.num_planes - 1 - tier;
                let plane_bytes = level.plane_bytes(p);
                if bytes + plane_bytes > byte_cap {
                    continue;
                }
                bytes += plane_bytes;
                for k in 0..level.plane_chunk_count(p) {
                    ranges.push(level.chunk_range(p, k));
                }
            }
        }
        ranges
    }

    /// The container's metadata map.
    pub fn map(&self) -> &Arc<ContainerMap> {
        &self.map
    }

    /// The composed source stack sessions read through.
    pub fn source(&self) -> &Arc<dyn ChunkSource> {
        &self.stack
    }

    /// Shared-cache counters, if a cache layer is configured.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// The shared cache layer, if one is configured (absent when
    /// `cache_bytes` is 0 or the store collapsed to a whole read).
    pub fn cache(&self) -> Option<&Arc<SharedCache>> {
        self.cache.as_ref()
    }

    /// Cap the cache bytes reads tagged with `tag` may keep resident (see
    /// [`CachedSource::set_quota`]); a no-op without a cache layer.
    pub fn set_tag_quota(&self, tag: CacheTag, quota: Option<usize>) {
        if let Some(cache) = &self.cache {
            cache.set_quota(tag, quota);
        }
    }

    /// Start a fresh retrieval session (nothing loaded yet).
    pub fn session(self: &Arc<Self>) -> RetrievalSession {
        self.session_over(Arc::clone(&self.stack))
    }

    /// Start a session whose cache traffic is attributed to `tag` — the
    /// tenant entry point: admissions count against the tag's quota and the
    /// per-tag hit/miss/byte counters feed the service layer's accounting.
    /// Without a cache layer this degrades to a plain [`ContainerStore::session`].
    pub fn session_tagged(self: &Arc<Self>, tag: CacheTag) -> RetrievalSession {
        match &self.cache {
            Some(cache) => self.session_over(Arc::new(TaggedSource::new(Arc::clone(cache), tag))),
            None => self.session(),
        }
    }

    /// Start a session reading through a caller-supplied top of stack
    /// (wrapping [`ContainerStore::source`] — e.g. a per-session
    /// [`crate::FaultSource`] for deterministic fault routing, or a meter).
    /// The session still shares this store's metadata map and readahead
    /// configuration.
    pub fn session_over(self: &Arc<Self>, source: Arc<dyn ChunkSource>) -> RetrievalSession {
        let decoder = ProgressiveDecoder::from_shared_source(source, Arc::clone(&self.map));
        RetrievalSession {
            store: Arc::clone(self),
            decoder,
        }
    }
}

/// What a prefetch warmed up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetchOutcome {
    /// Chunk ranges fetched into the cache.
    pub ranges: usize,
    /// Payload bytes fetched.
    pub bytes: usize,
}

/// One client's progressive retrieval state over a shared [`ContainerStore`].
pub struct RetrievalSession {
    store: Arc<ContainerStore>,
    decoder: ProgressiveDecoder<'static>,
}

impl RetrievalSession {
    /// Retrieve (or refine to) the requested fidelity, then apply the
    /// configured readahead.
    pub fn retrieve(&mut self, request: RetrievalRequest) -> Result<Retrieval> {
        let out = self.decoder.retrieve(request)?;
        self.readahead();
        Ok(out)
    }

    /// Streaming variant of [`RetrievalSession::retrieve`].
    pub fn retrieve_streaming(
        &mut self,
        request: RetrievalRequest,
        progress: impl FnMut(StreamProgress),
    ) -> Result<Retrieval> {
        let out = self.decoder.retrieve_streaming(request, progress)?;
        self.readahead();
        Ok(out)
    }

    /// Streamed-reconstruction variant of
    /// [`RetrievalSession::retrieve_streaming`]: the callback observes both
    /// decoded chunk regions ([`StreamEvent::Region`]) and completed cascade
    /// passes ([`StreamEvent::LevelReconstructed`]) — a client can render or
    /// forward the coarse lattices while the finest level is still streaming
    /// out of the shared store.
    pub fn retrieve_streaming_events(
        &mut self,
        request: RetrievalRequest,
        events: impl FnMut(StreamEvent),
    ) -> Result<Retrieval> {
        let out = self.decoder.retrieve_streaming_events(request, events)?;
        self.readahead();
        Ok(out)
    }

    /// Retrieve a crop-exact region of the domain at the requested fidelity,
    /// fetching only the chunks of precincts intersecting `bounds` plus the
    /// cascade's cross-level ancestor halo. Requires a version-3 (precinct
    /// partitioned) container. ROI retrievals are stateless with respect to
    /// the session's progressive refinement and skip the configured
    /// readahead — a region client opted into region-scoped traffic, and
    /// prefetching full-domain planes would defeat exactly that.
    pub fn retrieve_roi(
        &mut self,
        bounds: ipcomp::RoiBox,
        request: RetrievalRequest,
    ) -> Result<Retrieval> {
        self.decoder.retrieve_roi(bounds, request)
    }

    /// Streaming variant of [`RetrievalSession::retrieve_roi`]: the callback
    /// observes per-precinct [`StreamEvent::Region`] decode progress and
    /// per-level [`StreamEvent::LevelReconstructed`] cascade completions
    /// scoped to the ROI window.
    pub fn retrieve_roi_streaming(
        &mut self,
        bounds: ipcomp::RoiBox,
        request: RetrievalRequest,
        events: impl FnMut(StreamEvent),
    ) -> Result<Retrieval> {
        self.decoder.retrieve_roi_streaming(bounds, request, events)
    }

    /// Warm the shared cache with every chunk `request` would add beyond
    /// what this session has loaded, without decoding anything. Returns what
    /// was fetched; a no-op (zero outcome) when the store has no cache layer
    /// to retain the bytes — fetching would pay backend cost for nothing.
    pub fn prefetch(&self, request: RetrievalRequest) -> Result<PrefetchOutcome> {
        if self.store.cache.is_none() {
            return Ok(PrefetchOutcome::default());
        }
        let plan = plan_request(&self.store.map, self.decoder.planes_loaded(), request)?;
        let ranges = plan.ranges();
        self.store.stack.read_ranges(&ranges)?;
        Ok(PrefetchOutcome {
            ranges: ranges.len(),
            bytes: plan.payload_bytes(),
        })
    }

    /// Best-effort readahead of the next `readahead_planes` planes per level
    /// below what is loaded; failures are ignored (the retrieval that
    /// actually needs the bytes will surface them). Skipped entirely when no
    /// cache layer exists to hold the prefetched chunks.
    fn readahead(&self) {
        let n = self.store.options.readahead_planes;
        if n == 0 || self.store.cache.is_none() {
            return;
        }
        // Express the readahead as a LoadPlan (current planes + n per level)
        // and reuse the planner's lowering, so the subtle planes-counted-
        // from-most-significant arithmetic lives in exactly one place.
        let loaded = self.decoder.planes_loaded();
        let plan = ipcomp::LoadPlan {
            planes_loaded: self
                .store
                .map
                .levels
                .iter()
                .zip(loaded)
                .map(|(level, &have)| (have + n).min(level.num_planes))
                .collect(),
            extra_error_bound: 0.0,
            payload_bytes: 0,
        };
        let ranges = lower_plan(&self.store.map, loaded, &plan).ranges();
        if !ranges.is_empty() {
            let _ = self.store.stack.read_ranges(&ranges);
        }
    }

    /// The plan lowering this session's next `request` would fetch (for
    /// inspection or cost estimation; does not read anything). ROI requests
    /// lower region-scoped: only chunk ranges of precincts the box (plus
    /// halo) touches.
    pub fn plan_ranges(&self, request: RetrievalRequest) -> Result<crate::planner::RangePlan> {
        if matches!(request, RetrievalRequest::Roi { .. }) {
            return plan_request(&self.store.map, self.decoder.planes_loaded(), request);
        }
        let plan = self.decoder.plan(request)?;
        Ok(lower_plan(
            &self.store.map,
            self.decoder.planes_loaded(),
            &plan,
        ))
    }

    /// Planes currently loaded per level (coarsest first).
    pub fn planes_loaded(&self) -> &[u8] {
        self.decoder.planes_loaded()
    }

    /// Cumulative container bytes this session has read (logical payload
    /// accounting; backend traffic lives in the source stack's stats).
    pub fn bytes_loaded(&self) -> usize {
        self.decoder.bytes_loaded()
    }

    /// Direct access to the underlying decoder.
    pub fn decoder_mut(&mut self) -> &mut ProgressiveDecoder<'static> {
        &mut self.decoder
    }
}
