//! Multi-client retrieval driver: N concurrent sessions over one shared
//! [`ContainerStore`].
//!
//! Each workload (a sequence of [`RetrievalRequest`]s) runs in its own
//! session on the rayon pool. Sessions are fully independent — per-client
//! monotone refinement and failed-load rollback hold unchanged — while all
//! of them pull chunks through the store's shared cache, so the backend sees
//! each chunk roughly once no matter how many clients ask for it. Every
//! session decodes through the staged fetch → entropy → scatter pipeline,
//! issuing its overlapped range reads through the same batched
//! `ChunkSource` API the cache and coalescer compose over, and the cache's
//! protected top-plane admission keeps the coarse prefix resident however
//! many one-shot deep sweeps the fleet mixes in.

use std::sync::Arc;

use ipcomp::progressive::RetrievalRequest;
use ipcomp::Result;
use rayon::prelude::*;

use crate::session::ContainerStore;

/// One completed retrieval step of a client workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientStep {
    /// Container bytes this step alone read.
    pub bytes_this_request: usize,
    /// Cumulative bytes after the step.
    pub bytes_total: usize,
    /// Error bound of the reconstruction after the step.
    pub error_bound: f64,
}

/// Result of one client's full workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOutcome {
    /// Per-request accounting, in workload order.
    pub steps: Vec<ClientStep>,
    /// FNV-1a hash over the final reconstruction's `f64` bit patterns, so
    /// callers can assert cross-client (and cross-backend) bit-identity
    /// without shipping whole fields around.
    pub checksum: u64,
}

/// Hash a reconstruction's exact bit patterns.
pub fn field_checksum(values: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Drives concurrent client sessions over one shared store.
pub struct StoreServer {
    store: Arc<ContainerStore>,
}

impl StoreServer {
    /// Serve sessions of `store`.
    pub fn new(store: Arc<ContainerStore>) -> Self {
        Self { store }
    }

    /// The shared store.
    pub fn store(&self) -> &Arc<ContainerStore> {
        &self.store
    }

    /// Run every workload as its own session, fanning out over the rayon
    /// pool. Results arrive in workload order; a failing request fails only
    /// its own client.
    ///
    /// The workloads are borrowed across the fan-out — a thousand-client
    /// bench used to duplicate every request vector up front
    /// (`workloads.to_vec()`) before any session ran, an allocation storm
    /// proportional to the fleet size that bought nothing: sessions only
    /// ever read the requests.
    pub fn serve(&self, workloads: &[Vec<RetrievalRequest>]) -> Vec<Result<ClientOutcome>> {
        workloads
            .par_iter()
            .map(|requests| {
                let mut session = self.store.session();
                let mut steps = Vec::with_capacity(requests.len());
                let mut last = None;
                for &request in requests {
                    let out = session.retrieve(request)?;
                    steps.push(ClientStep {
                        bytes_this_request: out.bytes_this_request,
                        bytes_total: out.bytes_total,
                        error_bound: out.error_bound,
                    });
                    last = Some(out);
                }
                // Hash once over the final reconstruction only — hashing a
                // megabyte-scale field per refinement step is wasted CPU.
                let checksum = last.map_or(0, |out| field_checksum(out.data.as_slice()));
                Ok(ClientOutcome { steps, checksum })
            })
            .collect()
    }
}
