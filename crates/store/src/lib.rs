//! # `ipc_store` — chunk-addressable storage backends and the progressive
//! retrieval service
//!
//! The version-2 IPComp container records every `(level, plane, chunk)`
//! triple's size and offset in its metadata; this crate is the read side
//! that exploits it end to end, so a retrieval touches exactly the bytes its
//! plan selects instead of materializing the whole archive:
//!
//! 1. **Backends** — implementations of [`ChunkSource`] (the trait lives in
//!    `ipcomp::source`, re-exported here): the in-memory [`MemorySource`],
//!    the positioned-read [`FileSource`], and the [`SimulatedObjectStore`]
//!    wrapper that models S3-like per-request latency/throughput, counts
//!    traffic, and can inject short reads for hardening tests.
//! 2. **Planner** — [`planner::plan_request`] resolves a
//!    [`RetrievalRequest`] through the optimizer *over metadata alone* and
//!    lowers the resulting plan to per-chunk byte ranges;
//!    [`coalesce::coalesce_ranges`] merges adjacent runs under a gap
//!    threshold so a level's plane fetch becomes a single ranged read.
//! 3. **Service** — [`ContainerStore`] composes a source stack (backend →
//!    coalescing → shared LRU [`CachedSource`]) and hands out
//!    [`RetrievalSession`]s; [`StoreServer`] drives N concurrent client
//!    sessions over the shared cache on the rayon pool, and [`StoreService`]
//!    is the long-lived multi-tenant front door: bounded admission, a
//!    worker pool streaming [`StreamEvent`]s back per workload, per-tenant
//!    byte budgets and cache quotas.
//!
//! ```
//! use std::sync::Arc;
//! use ipc_store::{ContainerStore, MemorySource, StoreOptions};
//! use ipcomp::{compress, Config, RetrievalRequest};
//! use ipc_tensor::{ArrayD, Shape};
//!
//! let field = ArrayD::from_fn(Shape::d3(16, 16, 16), |c| {
//!     (c[0] as f64 * 0.3).sin() + (c[1] as f64 * 0.2).cos() + c[2] as f64 * 0.01
//! });
//! let compressed = compress(&field, 1e-6, &Config::default()).unwrap();
//!
//! // Any ChunkSource works here — a file, an object-store simulator, ...
//! let base = Arc::new(MemorySource::new(compressed.to_bytes()));
//! let store = ContainerStore::open(base, StoreOptions::default()).unwrap();
//! let mut session = store.session();
//! let coarse = session.retrieve(RetrievalRequest::ErrorBound(1e-2)).unwrap();
//! let fine = session.retrieve(RetrievalRequest::ErrorBound(1e-5)).unwrap();
//! assert!(coarse.bytes_total < fine.bytes_total);
//! ```

pub mod archive;
pub mod async_source;
pub mod cache;
pub mod coalesce;
pub mod file;
pub mod obs;
pub mod planner;
pub mod server;
pub mod service;
pub mod session;
pub mod sim;
pub mod testutil;
pub mod whole;

pub use archive::{
    plan_archive_request, ArchiveRangePlan, ArchiveSession, ArchiveStepRanges, ArchiveStore,
};
pub use async_source::{AsyncSourceAdapter, BatchFetch, ThreadedFetch};
pub use cache::{CacheStats, CacheTag, CachedSource, TagStats, TaggedRead, TaggedSource};
pub use coalesce::{coalesce_ranges, traffic_model_gap, CoalescingSource};
pub use file::FileSource;
pub use planner::{lower_plan, lower_plan_roi, plan_request, ChunkRead, RangePlan};
pub use server::{field_checksum, ClientOutcome, ClientStep, StoreServer};
pub use service::{
    ArchiveId, ContainerId, CostModel, ServiceConfig, ServiceError, ServiceEvent,
    ServiceMetricsSnapshot, StoreService, TenantConfig, TenantId, TenantMetricsSnapshot,
};
pub use session::{ContainerStore, PrefetchOutcome, RetrievalSession, SharedCache, StoreOptions};
pub use sim::{Fault, FaultSource, SimProfile, SimStats, SimulatedObjectStore};
pub use whole::WholeReadSource;

// The storage abstraction itself lives next to the container format so the
// decoder can consume it; re-export it as part of this crate's surface.
pub use ipcomp::source::{read_ranges_exact, ByteRange, Bytes, ChunkSource, MemorySource};
pub use ipcomp::{ContainerMap, LevelMap};

/// Convenience re-export: requests sessions are driven with, and the spatial
/// types ROI retrievals are scoped by.
pub use ipcomp::{
    roi_precinct_masks, CascadeProgress, PrecinctGrid, RetrievalRequest, RoiBox, StreamEvent,
    StreamProgress,
};

/// Convenience re-export: the archive request/response types
/// [`ArchiveSession`] and [`StoreService::submit_archive`] are driven with.
pub use ipcomp::{
    ArchiveConfig, ArchiveMap, ArchiveOutcome, ArchiveReader, ArchiveRequest, StepKind,
    StepProgress, StepRetrieval,
};
