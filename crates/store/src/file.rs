//! File-backed [`ChunkSource`] using positioned reads.
//!
//! Each requested range becomes one `pread`-style read at an absolute offset,
//! so concurrent sessions share a single descriptor without seeking over each
//! other — the same access pattern an `mmap`-backed reader produces, without
//! the `unsafe` surface. The OS page cache plays the role of the mapping.

use std::fs::File;
use std::path::{Path, PathBuf};

use ipcomp::source::{ByteRange, Bytes, ChunkSource};
use ipcomp::{IpcompError, Result};

/// [`ChunkSource`] over a serialized container on the filesystem.
///
/// Reads are lock-free wherever the platform offers a positioned read
/// (`pread` on Unix, `seek_read` on Windows): concurrent sessions issue
/// independent reads against the shared descriptor without serializing on a
/// cursor. Only platforms with neither primitive fall back to a cursor lock.
pub struct FileSource {
    file: File,
    len: u64,
    path: PathBuf,
    /// Cursor lock for platforms without any positioned-read primitive.
    #[cfg(not(any(unix, windows)))]
    lock: std::sync::Mutex<()>,
}

impl FileSource {
    /// Open a serialized container file read-only.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let len = file.metadata()?.len();
        Ok(Self {
            file,
            len,
            path,
            #[cfg(not(any(unix, windows)))]
            lock: std::sync::Mutex::new(()),
        })
    }

    /// The file this source reads.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn read_at(&self, range: ByteRange) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; range.len];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file.read_exact_at(&mut buf, range.offset)?;
        }
        #[cfg(windows)]
        {
            use std::os::windows::fs::FileExt;
            let mut filled = 0usize;
            while filled < buf.len() {
                let n = self
                    .file
                    .seek_read(&mut buf[filled..], range.offset + filled as u64)?;
                if n == 0 {
                    return Err(std::io::Error::from(std::io::ErrorKind::UnexpectedEof).into());
                }
                filled += n;
            }
        }
        #[cfg(not(any(unix, windows)))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let _guard = self.lock.lock().expect("file cursor lock");
            let mut f = &self.file;
            f.seek(SeekFrom::Start(range.offset))?;
            f.read_exact(&mut buf)?;
        }
        Ok(buf)
    }
}

impl ChunkSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        let mut out = Vec::with_capacity(ranges.len());
        for r in ranges {
            if r.end() > self.len {
                return Err(IpcompError::CorruptContainer(
                    "byte range beyond end of source",
                ));
            }
            out.push(Bytes::from_vec(self.read_at(*r)?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_file;

    #[test]
    fn file_source_reads_exact_ranges() {
        let data: Vec<u8> = (0..200u8).collect();
        let path = scratch_file("file_source_ranges", &data);
        let src = FileSource::open(&path).unwrap();
        assert_eq!(src.len(), 200);
        let bufs = src
            .read_ranges(&[ByteRange::new(0, 3), ByteRange::new(190, 10)])
            .unwrap();
        assert_eq!(&bufs[0][..], &data[0..3]);
        assert_eq!(&bufs[1][..], &data[190..200]);
        assert!(src.read_ranges(&[ByteRange::new(195, 6)]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_readers_share_one_descriptor() {
        use std::sync::Arc;
        let data: Vec<u8> = (0..=255u8).cycle().take(1 << 16).collect();
        let path = scratch_file("file_source_concurrent", &data);
        let src = Arc::new(FileSource::open(&path).unwrap());
        let handles: Vec<_> = (0..8usize)
            .map(|t| {
                let src = Arc::clone(&src);
                let data = data.clone();
                std::thread::spawn(move || {
                    for i in 0..200usize {
                        let off = (t * 7919 + i * 104_729) % (data.len() - 600);
                        let len = 1 + (i * 31 + t) % 512;
                        let bufs = src.read_ranges(&[ByteRange::new(off as u64, len)]).unwrap();
                        assert_eq!(&bufs[0][..], &data[off..off + len]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
}
