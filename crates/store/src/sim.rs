//! Object-store simulator: wraps any [`ChunkSource`] with a configurable
//! per-request cost model and request accounting, so benchmarks can model
//! S3-like access — every range is one GET with fixed latency plus a
//! throughput term — on a single box, and hardening tests can inject
//! short reads.
//!
//! The simulated clock is accounted unconditionally (and readable via
//! [`SimulatedObjectStore::stats`]); actually sleeping for it is opt-in so CI
//! smoke runs stay fast while local benchmark runs can produce wall-clock
//! numbers too.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ipc_telemetry::{Clock, Counter, ManualClock};
use ipcomp::source::{ByteRange, Bytes, ChunkSource};
use ipcomp::Result;

/// Cost model of one simulated remote store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimProfile {
    /// Fixed cost charged per requested range (one range = one GET).
    pub latency_per_request: Duration,
    /// Transfer rate; `0.0` means infinitely fast (latency-only model).
    pub throughput_bytes_per_sec: f64,
    /// Actually sleep for the simulated time instead of only accounting it.
    pub real_sleep: bool,
}

impl SimProfile {
    /// The paper-style default: 5 ms per request, 200 MB/s, accounting only.
    pub fn object_store() -> Self {
        Self {
            latency_per_request: Duration::from_millis(5),
            throughput_bytes_per_sec: 200e6,
            real_sleep: false,
        }
    }

    /// Free access — counts requests without charging time.
    pub fn free() -> Self {
        Self {
            latency_per_request: Duration::ZERO,
            throughput_bytes_per_sec: 0.0,
            real_sleep: false,
        }
    }
}

/// Fault injection applied to returned buffers.
///
/// The request index the fault triggers on is whatever counter the wrapper
/// applying it maintains: store-lifetime-global on a
/// [`SimulatedObjectStore`] (so under concurrent sessions *which* session
/// observes the fault depends on scheduling), per-wrapper on a
/// [`FaultSource`] (deterministic — wrap one session's stack to fault
/// exactly that session's nth request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Honest backend.
    None,
    /// Every range request with index `>= after` returns only the first
    /// half of its bytes — the kind of silent truncation an interrupted
    /// transfer produces. Consumers must surface a bounded error, never
    /// panic.
    ShortReadAfter(u64),
}

impl Fault {
    /// Apply the fault to one batch of returned buffers, where
    /// `first_index` is the request index of `bufs[0]` under the applying
    /// wrapper's counter.
    fn apply(self, first_index: u64, bufs: Vec<Bytes>) -> Vec<Bytes> {
        match self {
            Fault::None => bufs,
            Fault::ShortReadAfter(after) => bufs
                .into_iter()
                .enumerate()
                .map(|(i, b)| {
                    if first_index + i as u64 >= after && !b.is_empty() {
                        let keep = b.len() / 2;
                        b.slice(0..keep)
                    } else {
                        b
                    }
                })
                .collect(),
        }
    }
}

/// Cumulative counters of one simulated store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimStats {
    /// Individual range requests served (each modeling one GET).
    pub requests: u64,
    /// `read_ranges` batches served.
    pub batches: u64,
    /// Payload bytes returned.
    pub bytes: u64,
    /// Total simulated transfer time in seconds.
    pub simulated_secs: f64,
}

/// A [`ChunkSource`] wrapper that charges a latency/throughput cost per
/// range, counts traffic, and optionally injects short reads.
pub struct SimulatedObjectStore<S> {
    inner: S,
    profile: SimProfile,
    fault: Fault,
    requests: Counter,
    batches: Counter,
    bytes: Counter,
    /// Simulated time, exposed as an injectable [`Clock`] so trace spans can
    /// run on the same timeline the cost model charges
    /// ([`SimulatedObjectStore::clock`] + [`ipc_telemetry::set_clock`]).
    clock: ManualClock,
}

impl<S: ChunkSource> SimulatedObjectStore<S> {
    /// Wrap `inner` with the given cost model.
    pub fn new(inner: S, profile: SimProfile) -> Self {
        Self {
            inner,
            profile,
            fault: Fault::None,
            requests: Counter::new(),
            batches: Counter::new(),
            bytes: Counter::new(),
            clock: ManualClock::new(),
        }
    }

    /// The simulated clock this store advances; clone shares the timeline.
    pub fn clock(&self) -> ManualClock {
        self.clock.clone()
    }

    /// Wrap `inner` with a cost model and fault injection.
    pub fn with_fault(inner: S, profile: SimProfile, fault: Fault) -> Self {
        Self {
            fault,
            ..Self::new(inner, profile)
        }
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> SimStats {
        SimStats {
            requests: self.requests.get(),
            batches: self.batches.get(),
            bytes: self.bytes.get(),
            simulated_secs: self.clock.now_nanos() as f64 * 1e-9,
        }
    }

    /// Reset the traffic counters (fault state is lifetime-global).
    pub fn reset_stats(&self) {
        self.requests.reset();
        self.batches.reset();
        self.bytes.reset();
        self.clock.set(0);
    }
}

impl<S: ChunkSource> ChunkSource for SimulatedObjectStore<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        let first_index = self.requests.fetch_add(ranges.len() as u64);
        self.batches.incr();
        let total: u64 = ranges.iter().map(|r| r.len as u64).sum();
        self.bytes.add(total);
        let m = crate::obs::metrics();
        m.sim_requests.add(ranges.len() as u64);
        m.sim_bytes.add(total);

        let mut cost = self.profile.latency_per_request * ranges.len() as u32;
        if self.profile.throughput_bytes_per_sec > 0.0 {
            cost += Duration::from_secs_f64(total as f64 / self.profile.throughput_bytes_per_sec);
        }
        self.clock.advance(cost.as_nanos() as u64);
        if self.profile.real_sleep && !cost.is_zero() {
            std::thread::sleep(cost);
        }

        let bufs = self.inner.read_ranges(ranges)?;
        Ok(self.fault.apply(first_index, bufs))
    }
}

/// Deterministic per-session fault injection: a [`ChunkSource`] wrapper
/// with its **own** request counter, so the fault's trigger index counts
/// only the requests issued through this wrapper. Wrap exactly one
/// session's view of a shared stack and that session — and no concurrent
/// peer — observes the fault on its nth request, reproducibly, however the
/// scheduler interleaves the fleet. (The [`SimulatedObjectStore`]'s own
/// fault counter is store-lifetime-global and therefore racy under
/// concurrency; use it only for single-session tests.)
///
/// The fault is swappable at runtime ([`FaultSource::set_fault`]), which
/// models a transient backend: inject, observe the bounded error and
/// rollback, heal, and verify the retry completes bit-identically.
pub struct FaultSource<S> {
    inner: S,
    fault: Mutex<Fault>,
    requests: AtomicU64,
}

impl<S: ChunkSource> FaultSource<S> {
    /// Wrap `inner`, applying `fault` against this wrapper's own counter.
    pub fn new(inner: S, fault: Fault) -> Self {
        Self {
            inner,
            fault: Mutex::new(fault),
            requests: AtomicU64::new(0),
        }
    }

    /// Replace the active fault (e.g. heal with [`Fault::None`]). The
    /// request counter keeps running.
    pub fn set_fault(&self, fault: Fault) {
        *self.fault.lock().expect("fault lock") = fault;
    }

    /// Requests issued through this wrapper so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

impl<S: ChunkSource> ChunkSource for FaultSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        let first_index = self
            .requests
            .fetch_add(ranges.len() as u64, Ordering::Relaxed);
        let fault = *self.fault.lock().expect("fault lock");
        let bufs = self.inner.read_ranges(ranges)?;
        Ok(fault.apply(first_index, bufs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcomp::source::MemorySource;

    #[test]
    fn counts_requests_bytes_and_simulated_time() {
        let sim = SimulatedObjectStore::new(
            MemorySource::new(vec![7u8; 1000]),
            SimProfile {
                latency_per_request: Duration::from_millis(5),
                throughput_bytes_per_sec: 1000.0,
                real_sleep: false,
            },
        );
        sim.read_ranges(&[ByteRange::new(0, 100), ByteRange::new(500, 400)])
            .unwrap();
        let s = sim.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.bytes, 500);
        // 2 × 5 ms latency + 500 B at 1000 B/s = 0.51 s.
        assert!(
            (s.simulated_secs - 0.51).abs() < 1e-9,
            "{}",
            s.simulated_secs
        );
        sim.reset_stats();
        assert_eq!(sim.stats().requests, 0);
    }

    #[test]
    fn short_read_fault_truncates_after_threshold() {
        let sim = SimulatedObjectStore::with_fault(
            MemorySource::new(vec![1u8; 64]),
            SimProfile::free(),
            Fault::ShortReadAfter(1),
        );
        let bufs = sim
            .read_ranges(&[ByteRange::new(0, 16), ByteRange::new(16, 16)])
            .unwrap();
        assert_eq!(bufs[0].len(), 16);
        assert_eq!(bufs[1].len(), 8);
        // And read_ranges_exact surfaces it as a bounded error.
        assert!(ipcomp::source::read_ranges_exact(&sim, &[ByteRange::new(0, 16)]).is_err());
    }

    #[test]
    fn fault_source_counts_per_wrapper_not_globally() {
        use std::sync::Arc;
        // One shared backend, two per-session fault wrappers: the fault
        // routes to each wrapper's own second request regardless of how the
        // other wrapper's traffic interleaves.
        let shared = Arc::new(MemorySource::new(vec![2u8; 256]));
        let a = FaultSource::new(Arc::clone(&shared) as Arc<dyn ChunkSource>, Fault::None);
        let b = FaultSource::new(
            Arc::clone(&shared) as Arc<dyn ChunkSource>,
            Fault::ShortReadAfter(1),
        );
        let r = [ByteRange::new(0, 32)];
        // Interleave traffic: a, b, a, b.
        assert_eq!(a.read_ranges(&r).unwrap()[0].len(), 32);
        assert_eq!(
            b.read_ranges(&r).unwrap()[0].len(),
            32,
            "b's request 0 is clean"
        );
        assert_eq!(a.read_ranges(&r).unwrap()[0].len(), 32);
        assert_eq!(
            b.read_ranges(&r).unwrap()[0].len(),
            16,
            "b's request 1 faults"
        );
        assert_eq!(a.read_ranges(&r).unwrap()[0].len(), 32, "a never faults");
        assert_eq!((a.requests(), b.requests()), (3, 2));
        // Healing stops further faults.
        b.set_fault(Fault::None);
        assert_eq!(b.read_ranges(&r).unwrap()[0].len(), 32);
    }
}
