//! Whole-payload collapse for small containers: below the backend's
//! latency/throughput break-even, ranged retrieval *loses* on wall-clock —
//! every GET pays the fixed latency, and a container smaller than
//! `latency × throughput` transfers in less time than one extra round trip
//! costs. The ROADMAP carried this as an honest caveat since PR 3; this
//! source closes it by turning the whole plan into **one** backend GET.
//!
//! [`WholeReadSource`] fetches the entire container on first use (a single
//! `read_ranges` of `[0, len)` against the wrapped source) and serves every
//! subsequent range as a zero-copy slice of that one buffer. The decoder,
//! planner, and session stack above are unchanged — they still request
//! exact chunk ranges, the backend just sees one request total. See
//! [`crate::session::StoreOptions::whole_read_below`] for the policy switch
//! that picks this layer, and [`crate::traffic_model_gap`] for the
//! break-even threshold it is compared against.

use std::sync::Mutex;

use ipcomp::source::{read_ranges_exact, ByteRange, Bytes, ChunkSource};
use ipcomp::{IpcompError, Result};

/// A [`ChunkSource`] that materializes the wrapped source with one
/// whole-payload read and answers all range requests from memory.
pub struct WholeReadSource<S> {
    inner: S,
    len: u64,
    /// Fetched lazily so merely opening a store does not pay the transfer;
    /// `ContainerStore` parses metadata through the same collapsed source,
    /// so in practice the single GET happens at open time.
    payload: Mutex<Option<Bytes>>,
}

impl<S: ChunkSource> WholeReadSource<S> {
    /// Collapse all reads of `inner` into one whole-payload fetch.
    pub fn new(inner: S) -> Self {
        let len = inner.len();
        Self {
            inner,
            len,
            payload: Mutex::new(None),
        }
    }

    /// Whether the single backend fetch has happened yet.
    pub fn is_resident(&self) -> bool {
        self.payload.lock().expect("whole-read lock").is_some()
    }

    fn payload(&self) -> Result<Bytes> {
        let mut slot = self.payload.lock().expect("whole-read lock");
        if let Some(b) = slot.as_ref() {
            return Ok(b.clone());
        }
        let whole = ByteRange::new(0, self.len as usize);
        let mut bufs = read_ranges_exact(&self.inner, std::slice::from_ref(&whole))?;
        let bytes = bufs.pop().expect("one buffer per range");
        *slot = Some(bytes.clone());
        Ok(bytes)
    }
}

impl<S: ChunkSource> ChunkSource for WholeReadSource<S> {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        let payload = self.payload()?;
        ranges
            .iter()
            .map(|r| {
                if r.end() > self.len {
                    return Err(IpcompError::InvalidInput(format!(
                        "range {}..{} beyond container of {} bytes",
                        r.offset,
                        r.end(),
                        self.len
                    )));
                }
                Ok(payload.slice(r.offset as usize..r.end() as usize))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimProfile, SimulatedObjectStore};
    use ipcomp::source::MemorySource;

    #[test]
    fn all_ranges_served_from_one_backend_get() {
        let data: Vec<u8> = (0..=255).cycle().take(4096).map(|v| v as u8).collect();
        let sim = SimulatedObjectStore::new(MemorySource::new(data.clone()), SimProfile::free());
        let whole = WholeReadSource::new(&sim);
        assert!(!whole.is_resident());
        let ranges = [
            ByteRange::new(0, 16),
            ByteRange::new(4000, 96),
            ByteRange::new(128, 0),
        ];
        let bufs = whole.read_ranges(&ranges).unwrap();
        for (r, b) in ranges.iter().zip(&bufs) {
            assert_eq!(&b[..], &data[r.offset as usize..r.end() as usize]);
        }
        whole.read_ranges(&[ByteRange::new(512, 512)]).unwrap();
        let s = sim.stats();
        assert_eq!(s.requests, 1, "exactly one backend GET");
        assert_eq!(s.bytes, 4096);
        assert!(whole.is_resident());
    }

    #[test]
    fn out_of_bounds_range_is_a_bounded_error() {
        let whole = WholeReadSource::new(MemorySource::new(vec![1u8; 64]));
        assert!(whole.read_ranges(&[ByteRange::new(32, 64)]).is_err());
        // In-bounds still works afterwards.
        assert_eq!(
            whole.read_ranges(&[ByteRange::new(32, 32)]).unwrap()[0].len(),
            32
        );
    }

    #[test]
    fn short_backend_read_surfaces_as_error_not_panic() {
        use crate::sim::Fault;
        let sim = SimulatedObjectStore::with_fault(
            MemorySource::new(vec![1u8; 64]),
            SimProfile::free(),
            Fault::ShortReadAfter(0),
        );
        let whole = WholeReadSource::new(&sim);
        assert!(whole.read_ranges(&[ByteRange::new(0, 16)]).is_err());
        assert!(!whole.is_resident(), "truncated payload must not be kept");
    }
}
