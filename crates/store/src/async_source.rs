//! Async-friendly batched fetch: a submit/complete split of the
//! [`ChunkSource`] batch read, so backends whose natural shape is
//! asynchronous — io_uring submission rings, HTTP range requests on a
//! connection pool, an RPC to a storage tier — can sit behind the decoder's
//! `FetchStage` without that stage (or anything above it) changing.
//!
//! [`BatchFetch`] is the split trait: `submit` hands a whole batch of byte
//! ranges to the backend and returns a ticket immediately; `complete` blocks
//! until that ticket's buffers are ready. [`AsyncSourceAdapter`] folds the
//! two halves back into the synchronous [`ChunkSource`] the rest of the
//! stack speaks — because the decoder's pipeline already overlaps its fetch
//! one stage ahead of decode, a backend that makes `submit` truly
//! asynchronous gets its I/O overlapped with entropy/scatter compute for
//! free.
//!
//! [`ThreadedFetch`] is the reference implementation: a background I/O
//! thread drains a submission queue and parks completions for pickup —
//! the exact control flow an io_uring backend would have, with the ring
//! replaced by a `VecDeque` and the CQE wait by a condvar. It exists so the
//! adapter's ticket plumbing is exercised by real concurrency in the test
//! suite, not just by a mock.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ipcomp::source::{ByteRange, Bytes, ChunkSource};
use ipcomp::{IpcompError, Result};

/// Ticket identifying one submitted batch.
pub type FetchTicket = u64;

/// A batched, submission/completion-split fetch backend.
///
/// Contract: every successful `submit` is eventually completable exactly
/// once; `complete` returns one buffer per submitted range, in range order
/// (buffers may be shorter than requested — the consumer handles short
/// reads, see `read_ranges_exact`).
#[allow(clippy::len_without_is_empty)] // mirrors `ChunkSource::len`: a payload length, not a collection
pub trait BatchFetch: Send + Sync {
    /// Total payload bytes addressable.
    fn len(&self) -> u64;
    /// Queue a batch of range reads; returns without waiting for I/O.
    fn submit(&self, ranges: &[ByteRange]) -> Result<FetchTicket>;
    /// Block until `ticket`'s batch finished; yields its buffers.
    fn complete(&self, ticket: FetchTicket) -> Result<Vec<Bytes>>;
}

/// Adapts a [`BatchFetch`] backend into the synchronous [`ChunkSource`]
/// interface the planner/cache/decoder stack composes over: one
/// `read_ranges` = one submitted batch, completed in place.
pub struct AsyncSourceAdapter<F> {
    fetch: F,
}

impl<F: BatchFetch> AsyncSourceAdapter<F> {
    /// Wrap a batch-fetch backend.
    pub fn new(fetch: F) -> Self {
        Self { fetch }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &F {
        &self.fetch
    }
}

impl<F: BatchFetch> ChunkSource for AsyncSourceAdapter<F> {
    fn len(&self) -> u64 {
        self.fetch.len()
    }

    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        let ticket = self.fetch.submit(ranges)?;
        self.fetch.complete(ticket)
    }
}

struct ThreadedShared {
    source: Arc<dyn ChunkSource>,
    queue: Mutex<VecDeque<(FetchTicket, Vec<ByteRange>)>>,
    queue_cv: Condvar,
    done: Mutex<HashMap<FetchTicket, Result<Vec<Bytes>>>>,
    done_cv: Condvar,
    shutdown: AtomicBool,
}

/// Reference [`BatchFetch`]: a dedicated I/O thread serves submissions in
/// order off a queue while callers overlap other work between `submit` and
/// `complete`.
pub struct ThreadedFetch {
    shared: Arc<ThreadedShared>,
    next_ticket: AtomicU64,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl ThreadedFetch {
    /// Serve `source` from a background I/O thread.
    pub fn new(source: Arc<dyn ChunkSource>) -> Self {
        let shared = Arc::new(ThreadedShared {
            source,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            done: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || loop {
                let (ticket, ranges) = {
                    let mut queue = shared.queue.lock().expect("fetch queue lock");
                    loop {
                        if let Some(job) = queue.pop_front() {
                            break job;
                        }
                        if shared.shutdown.load(Ordering::Acquire) {
                            return;
                        }
                        queue = shared.queue_cv.wait(queue).expect("fetch queue wait");
                    }
                };
                let result = shared.source.read_ranges(&ranges);
                let mut done = shared.done.lock().expect("fetch done lock");
                done.insert(ticket, result);
                shared.done_cv.notify_all();
            })
        };
        Self {
            shared,
            next_ticket: AtomicU64::new(0),
            worker: Mutex::new(Some(worker)),
        }
    }
}

impl BatchFetch for ThreadedFetch {
    fn len(&self) -> u64 {
        self.shared.source.len()
    }

    fn submit(&self, ranges: &[ByteRange]) -> Result<FetchTicket> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(IpcompError::Io("fetch backend shut down".into()));
        }
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut queue = self.shared.queue.lock().expect("fetch queue lock");
        queue.push_back((ticket, ranges.to_vec()));
        self.shared.queue_cv.notify_one();
        Ok(ticket)
    }

    fn complete(&self, ticket: FetchTicket) -> Result<Vec<Bytes>> {
        let mut done = self.shared.done.lock().expect("fetch done lock");
        loop {
            if let Some(result) = done.remove(&ticket) {
                return result;
            }
            done = self.shared.done_cv.wait(done).expect("fetch done wait");
        }
    }
}

impl Drop for ThreadedFetch {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        if let Some(worker) = self.worker.lock().expect("fetch worker lock").take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipcomp::source::MemorySource;

    #[test]
    fn adapter_round_trips_batches_in_order() {
        let data: Vec<u8> = (0..2048u32).map(|v| (v % 251) as u8).collect();
        let fetch = ThreadedFetch::new(Arc::new(MemorySource::new(data.clone())));
        let adapter = AsyncSourceAdapter::new(fetch);
        let ranges = [
            ByteRange::new(1024, 128),
            ByteRange::new(0, 64),
            ByteRange::new(500, 0),
        ];
        let bufs = adapter.read_ranges(&ranges).unwrap();
        assert_eq!(bufs.len(), ranges.len());
        for (r, b) in ranges.iter().zip(&bufs) {
            assert_eq!(&b[..], &data[r.offset as usize..r.end() as usize]);
        }
        assert_eq!(adapter.len(), 2048);
    }

    #[test]
    fn tickets_complete_out_of_submission_order() {
        let data = vec![9u8; 4096];
        let fetch = ThreadedFetch::new(Arc::new(MemorySource::new(data)));
        // Submit three batches up front, then complete them newest-first:
        // completions must route by ticket, not by arrival order.
        let t0 = fetch.submit(&[ByteRange::new(0, 1)]).unwrap();
        let t1 = fetch.submit(&[ByteRange::new(0, 2)]).unwrap();
        let t2 = fetch.submit(&[ByteRange::new(0, 3)]).unwrap();
        assert_eq!(fetch.complete(t2).unwrap()[0].len(), 3);
        assert_eq!(fetch.complete(t0).unwrap()[0].len(), 1);
        assert_eq!(fetch.complete(t1).unwrap()[0].len(), 2);
    }

    #[test]
    fn concurrent_submitters_get_their_own_buffers() {
        let data: Vec<u8> = (0..=255u16).cycle().take(8192).map(|v| v as u8).collect();
        let fetch = Arc::new(ThreadedFetch::new(Arc::new(MemorySource::new(
            data.clone(),
        ))));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let fetch = Arc::clone(&fetch);
                let data = &data;
                scope.spawn(move || {
                    for i in 0..32usize {
                        let off = ((t * 97 + i * 61) % 7000) as u64;
                        let ticket = fetch.submit(&[ByteRange::new(off, 128)]).unwrap();
                        let bufs = fetch.complete(ticket).unwrap();
                        assert_eq!(&bufs[0][..], &data[off as usize..off as usize + 128]);
                    }
                });
            }
        });
    }
}
