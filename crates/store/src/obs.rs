//! Registry handles for the store layer's process-wide instrumentation.
//!
//! Per-instance snapshots ([`crate::cache::CacheStats`],
//! [`crate::sim::SimStats`], per-tenant service metrics) stay exact and
//! instance-local; the handles here are the process-wide aggregates the
//! registry snapshot exports, fed from the same accounting sites.

use std::sync::OnceLock;

use ipc_telemetry::{Counter, Histogram};

/// Handles for every process-wide metric the store layer records.
pub struct StoreMetrics {
    /// Ranges served from any cache instance.
    pub cache_hits: &'static Counter,
    /// Ranges any cache instance fetched from its wrapped source.
    pub cache_misses: &'static Counter,
    /// Payload bytes of those missed ranges.
    pub cache_miss_bytes: &'static Counter,
    /// Ranges requested through any coalescing source.
    pub coalesce_ranges_in: &'static Counter,
    /// Backend reads those ranges collapsed into.
    pub coalesce_reads_out: &'static Counter,
    /// Simulated-store GETs (one per range request).
    pub sim_requests: &'static Counter,
    /// Simulated-store payload bytes returned.
    pub sim_bytes: &'static Counter,
    /// Service queue wait per workload (ns, wall clock).
    pub queue_wait_ns: &'static Histogram,
    /// End-to-end service workload latency (ns; simulated time when the
    /// service prices requests with a cost model, wall time otherwise).
    pub workload_ns: &'static Histogram,
}

/// The process-wide store metric bundle.
pub fn metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| StoreMetrics {
        cache_hits: ipc_telemetry::counter("store.cache.hits"),
        cache_misses: ipc_telemetry::counter("store.cache.misses"),
        cache_miss_bytes: ipc_telemetry::counter("store.cache.miss_bytes"),
        coalesce_ranges_in: ipc_telemetry::counter("store.coalesce.ranges_in"),
        coalesce_reads_out: ipc_telemetry::counter("store.coalesce.reads_out"),
        sim_requests: ipc_telemetry::counter("store.sim.requests"),
        sim_bytes: ipc_telemetry::counter("store.sim.bytes"),
        queue_wait_ns: ipc_telemetry::histogram("store.service.queue_wait_ns"),
        workload_ns: ipc_telemetry::histogram("store.service.workload_ns"),
    })
}
