//! Archive store layer: a shared source stack over a serialized time-series
//! archive (container format v4) plus per-client [`ArchiveSession`]s, and a
//! planner that lowers a step-spanning [`ArchiveRequest`] to the exact chunk
//! byte ranges it fetches.
//!
//! The stack mirrors [`ContainerStore`](crate::ContainerStore) — backend,
//! optional coalescing, optional shared LRU cache with per-tag quotas — but
//! addresses the whole archive as **one key space**: every embedded per-step
//! container reads through an [`OffsetSource`] window whose ranges translate
//! to archive-absolute offsets *above* the cache, so the keyframe and
//! coarse-prefix chunks that consecutive-step requests share deduplicate in
//! the shared cache exactly like two sessions sharing one container do
//! (per-[`CacheTag`] stats prove which tenant the reuse belongs to).

use std::collections::HashSet;
use std::sync::Arc;

use ipcomp::archive::{ArchiveMap, ArchiveOutcome, ArchiveRequest, StepRetrieval};
use ipcomp::progressive::{RetrievalRequest, StreamEvent};
use ipcomp::source::{ByteRange, ChunkSource};
use ipcomp::{ArchiveReader, IpcompError, Result};

use crate::cache::{CacheStats, CacheTag, TaggedSource};
use crate::coalesce::CoalescingSource;
use crate::planner::plan_request;
use crate::session::{SharedCache, StoreOptions};

/// A time-series archive opened for ranged multi-session retrieval: the
/// parsed [`ArchiveMap`] plus the composed source stack every session reads
/// through.
pub struct ArchiveStore {
    map: Arc<ArchiveMap>,
    stack: Arc<dyn ChunkSource>,
    cache: Option<Arc<SharedCache>>,
}

impl ArchiveStore {
    /// Open an archive over `base`, parsing its metadata (framing header,
    /// directory, and every embedded container's map) and composing the
    /// configured source stack. The small-container collapse and top-plane
    /// protection knobs of [`StoreOptions`] do not apply to archives — the
    /// former because archives are many containers, the latter because the
    /// hot prefix is the keyframe *chain*, which plain LRU plus tag quotas
    /// already keeps resident.
    pub fn open(base: Arc<dyn ChunkSource>, options: StoreOptions) -> Result<Arc<Self>> {
        let map = Arc::new(ArchiveMap::open(&base)?);
        Ok(Self::with_map(base, map, options))
    }

    /// Like [`ArchiveStore::open`] with an already-parsed map.
    pub fn with_map(
        base: Arc<dyn ChunkSource>,
        map: Arc<ArchiveMap>,
        options: StoreOptions,
    ) -> Arc<Self> {
        let mut stack: Arc<dyn ChunkSource> = base;
        let mut cache = None;
        if let Some(gap) = options.coalesce_gap {
            stack = Arc::new(CoalescingSource::new(stack, gap));
        }
        if options.cache_bytes > 0 {
            let cached = Arc::new(match options.cache_shards {
                0 => SharedCache::new(stack, options.cache_bytes),
                n => SharedCache::with_shards(stack, options.cache_bytes, n),
            });
            cache = Some(Arc::clone(&cached));
            stack = cached;
        }
        Arc::new(Self { map, stack, cache })
    }

    /// The archive's metadata map.
    pub fn map(&self) -> &Arc<ArchiveMap> {
        &self.map
    }

    /// The composed source stack sessions read through.
    pub fn source(&self) -> &Arc<dyn ChunkSource> {
        &self.stack
    }

    /// The shared cache layer, if one is configured.
    pub fn cache(&self) -> Option<&Arc<SharedCache>> {
        self.cache.as_ref()
    }

    /// Shared-cache counters, if a cache layer is configured.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Cap the cache bytes reads tagged with `tag` may keep resident; a
    /// no-op without a cache layer.
    pub fn set_tag_quota(&self, tag: CacheTag, quota: Option<usize>) {
        if let Some(cache) = &self.cache {
            cache.set_quota(tag, quota);
        }
    }

    /// Start a fresh archive session (no chain state yet).
    pub fn session(self: &Arc<Self>) -> ArchiveSession {
        self.session_over(Arc::clone(&self.stack))
    }

    /// Start a session whose cache traffic is attributed to `tag` (the
    /// tenant entry point). Without a cache layer this degrades to a plain
    /// [`ArchiveStore::session`].
    pub fn session_tagged(self: &Arc<Self>, tag: CacheTag) -> ArchiveSession {
        match &self.cache {
            Some(cache) => self.session_over(Arc::new(TaggedSource::new(Arc::clone(cache), tag))),
            None => self.session(),
        }
    }

    /// Start a session reading through a caller-supplied top of stack
    /// (wrapping [`ArchiveStore::source`] — e.g. a fault injector or meter).
    pub fn session_over(self: &Arc<Self>, source: Arc<dyn ChunkSource>) -> ArchiveSession {
        ArchiveSession {
            store: Arc::clone(self),
            reader: ArchiveReader::new(source, Arc::clone(&self.map)),
        }
    }
}

/// One client's step-spanning retrieval state over a shared [`ArchiveStore`]:
/// an [`ArchiveReader`] whose chain cache makes consecutive window requests
/// resume instead of re-decoding the keyframe prefix.
pub struct ArchiveSession {
    store: Arc<ArchiveStore>,
    reader: ArchiveReader,
}

impl ArchiveSession {
    /// Reconstruct every step of `request`, collecting the results.
    pub fn retrieve_steps(&mut self, request: &ArchiveRequest) -> Result<Vec<StepRetrieval>> {
        self.reader.retrieve_steps(request)
    }

    /// Streaming variant: forwards the per-step decoders' events plus one
    /// [`StreamEvent::StepReconstructed`] per output step, handing each
    /// reconstruction to `on_step` as it completes.
    pub fn retrieve_steps_streaming_events(
        &mut self,
        request: &ArchiveRequest,
        on_event: impl FnMut(StreamEvent),
        on_step: impl FnMut(StepRetrieval),
    ) -> Result<ArchiveOutcome> {
        self.reader
            .retrieve_steps_streaming_events(request, on_event, on_step)
    }

    /// The chunk ranges `request` would fetch given this session's current
    /// chain cache (for inspection or budget pricing; reads nothing).
    pub fn plan_ranges(&self, request: &ArchiveRequest) -> Result<ArchiveRangePlan> {
        plan_archive_request(&self.reader, request)
    }

    /// Cumulative archive bytes this session has read.
    pub fn bytes_loaded(&self) -> usize {
        self.reader.bytes_loaded()
    }

    /// Direct access to the underlying reader (chain-cache inspection).
    pub fn reader(&self) -> &ArchiveReader {
        &self.reader
    }

    /// The archive store this session draws from.
    pub fn store(&self) -> &Arc<ArchiveStore> {
        &self.store
    }
}

/// The byte ranges one scheduled step contributes to an archive plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveStepRanges {
    /// The archive step these ranges decode.
    pub step: usize,
    /// Chunk ranges in archive-absolute offsets, payload order.
    pub ranges: Vec<ByteRange>,
}

/// An [`ArchiveRequest`] lowered to byte ranges: the union of each scheduled
/// step's per-container plan (chain steps at the reference fidelity, output
/// steps at the requested fidelity, one shared plan when they coincide),
/// shifted to archive-absolute offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveRangePlan {
    /// Per scheduled step, in chain order.
    pub steps: Vec<ArchiveStepRanges>,
}

impl ArchiveRangePlan {
    /// Total payload bytes the plan fetches.
    pub fn payload_bytes(&self) -> usize {
        self.steps
            .iter()
            .flat_map(|s| &s.ranges)
            .map(|r| r.len)
            .sum()
    }

    /// Number of per-chunk requests without coalescing.
    pub fn request_count(&self) -> usize {
        self.steps.iter().map(|s| s.ranges.len()).sum()
    }

    /// All ranges of the plan, step order.
    pub fn ranges(&self) -> Vec<ByteRange> {
        self.steps.iter().flat_map(|s| s.ranges.clone()).collect()
    }
}

/// Lower `request` against `reader`'s schedule (which accounts for its
/// cached chain state) to the minimal chunk set: the keyframe-anchored chain
/// prefix priced at the reference fidelity, the output window at the
/// requested fidelity, and — when a step serves both — the union of the two
/// per-step plans, each composed with the existing per-container
/// plane/precinct lowering.
pub fn plan_archive_request(
    reader: &ArchiveReader,
    request: &ArchiveRequest,
) -> Result<ArchiveRangePlan> {
    let map = reader.map();
    let schedule = reader.step_schedule(request)?;
    let reference = step_request(RetrievalRequest::ErrorBound(map.reference_bound()), request)?;
    let fidelity = step_request(request.fidelity, request)?;
    let mut steps = Vec::with_capacity(schedule.len());
    for plan in schedule {
        let cmap = map.container(plan.step, request.variable);
        let zeros = vec![0u8; cmap.levels.len()];
        // Fresh decoders per step: nothing is pre-loaded.
        let mut ranges: Vec<ByteRange> = Vec::new();
        let mut seen: HashSet<ByteRange> = HashSet::new();
        if plan.output {
            for r in plan_request(cmap, &zeros, fidelity)?.ranges() {
                if seen.insert(r) {
                    ranges.push(r);
                }
            }
        }
        if plan.chain && (!plan.output || fidelity != reference) {
            for r in plan_request(cmap, &zeros, reference)?.ranges() {
                if seen.insert(r) {
                    ranges.push(r);
                }
            }
        }
        let base = map.entry(plan.step, request.variable).offset;
        for r in &mut ranges {
            r.offset += base;
        }
        steps.push(ArchiveStepRanges {
            step: plan.step,
            ranges,
        });
    }
    Ok(ArchiveRangePlan { steps })
}

/// The per-container request one step of `request` decodes with: the given
/// fidelity, scoped to the request's ROI window when one is set.
fn step_request(fidelity: RetrievalRequest, request: &ArchiveRequest) -> Result<RetrievalRequest> {
    match request.roi {
        None => Ok(fidelity),
        Some(bounds) => match fidelity {
            RetrievalRequest::ErrorBound(error_bound) => Ok(RetrievalRequest::Roi {
                bounds,
                error_bound,
            }),
            _ => Err(IpcompError::InvalidInput(
                "ROI-scoped archive requests require an ErrorBound fidelity".into(),
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipc_tensor::{ArrayD, Shape};
    use ipcomp::archive::{ArchiveBuilder, ArchiveConfig};
    use ipcomp::source::MemorySource;
    use ipcomp::Config;

    fn toy_archive_bytes(steps: usize, interval: usize) -> Vec<u8> {
        let shape = Shape::d3(14, 12, 10);
        let config = ArchiveConfig {
            keyframe_interval: interval,
            reference_bound: 1e-3,
            finest_bound: 1e-5,
            codec: Config::default(),
        };
        let mut builder = ArchiveBuilder::new(vec!["f".into()], shape.clone(), config).unwrap();
        for t in 0..steps {
            let f = ArrayD::from_fn(shape.clone(), |c| {
                ((c[0] as f64 * 0.3) + t as f64 * 0.1).sin()
                    + (c[1] as f64 * 0.2).cos()
                    + c[2] as f64 * 0.01
            });
            builder.push_step(std::slice::from_ref(&f)).unwrap();
        }
        builder.finish().unwrap()
    }

    #[test]
    fn archive_store_sessions_share_the_cache() {
        let bytes = toy_archive_bytes(6, 3);
        let store = ArchiveStore::open(Arc::new(MemorySource::new(bytes)), StoreOptions::default())
            .unwrap();
        let request = ArchiveRequest::steps(0, 0..6, RetrievalRequest::ErrorBound(1e-3));
        let mut a = store.session();
        let first = a.retrieve_steps(&request).unwrap();
        let misses_after_first = store.cache_stats().unwrap().misses;
        assert!(misses_after_first > 0);
        // A second session replays entirely from the shared cache.
        let mut b = store.session();
        let second = b.retrieve_steps(&request).unwrap();
        let stats = store.cache_stats().unwrap();
        assert_eq!(stats.misses, misses_after_first, "replay must be all hits");
        assert!(stats.hits > 0);
        for (x, y) in first.iter().zip(&second) {
            assert_eq!(x.data.as_slice(), y.data.as_slice());
        }
    }

    #[test]
    fn plan_prices_exactly_what_retrieval_fetches() {
        let bytes = toy_archive_bytes(8, 4);
        let store = ArchiveStore::open(
            Arc::new(MemorySource::new(bytes)),
            StoreOptions {
                cache_bytes: 0,
                coalesce_gap: None,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        use ipcomp::PlanInput;
        let reference = RetrievalRequest::ErrorBound(store.map().reference_bound());
        for (start, end, eb) in [(0, 3, 1e-2), (5, 8, 1e-3), (2, 7, 1e-4)] {
            let fidelity = RetrievalRequest::ErrorBound(eb);
            let request = ArchiveRequest::steps(0, start..end, fidelity);
            let mut session = store.session();
            let plan = session.plan_ranges(&request).unwrap();
            // Expected logical bytes: each per-step decoder fetches its own
            // plan plus the container's always-loaded base; a step whose
            // chain decode cannot share the output decode pays both.
            let mut expected = 0usize;
            let mut union = 0usize;
            for p in session.reader().step_schedule(&request).unwrap() {
                let cmap = store.map().container(p.step, 0);
                let zeros = vec![0u8; cmap.levels.len()];
                let shared = p.chain && p.output && fidelity == reference;
                if p.output {
                    expected += plan_request(cmap, &zeros, fidelity)
                        .unwrap()
                        .payload_bytes()
                        + cmap.plan_base_bytes();
                }
                if p.chain && !shared {
                    expected += plan_request(cmap, &zeros, reference)
                        .unwrap()
                        .payload_bytes()
                        + cmap.plan_base_bytes();
                }
                union += cmap.plan_base_bytes();
            }
            let before = session.bytes_loaded();
            session.retrieve_steps(&request).unwrap();
            let fetched = session.bytes_loaded() - before;
            assert_eq!(fetched, expected, "start={start} end={end} eb={eb}");
            // The plan's union never exceeds the logical bytes and covers at
            // least every step's payload once.
            assert!(plan.payload_bytes() + union <= expected);
            assert!(plan.payload_bytes() > 0);
        }
    }

    #[test]
    fn consecutive_windows_replan_only_new_steps() {
        let bytes = toy_archive_bytes(8, 8);
        let store = ArchiveStore::open(Arc::new(MemorySource::new(bytes)), StoreOptions::default())
            .unwrap();
        let fid = RetrievalRequest::ErrorBound(1e-3);
        let mut session = store.session();
        session
            .retrieve_steps(&ArchiveRequest::steps(0, 0..4, fid))
            .unwrap();
        // The next window resumes from the cached chain (which sits at step
        // 2, the last step of 0..4 that needed to hand a base to a
        // successor): the plan re-decodes only step 3's chain plus the new
        // window, not the whole keyframe prefix.
        assert_eq!(session.reader().chain_cache_step(0), Some(2));
        let plan = session
            .plan_ranges(&ArchiveRequest::steps(0, 4..6, fid))
            .unwrap();
        assert_eq!(
            plan.steps.iter().map(|s| s.step).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        // A cold session must pay for the whole prefix.
        let cold = store.session();
        let cold_plan = cold
            .plan_ranges(&ArchiveRequest::steps(0, 4..6, fid))
            .unwrap();
        assert_eq!(cold_plan.steps.len(), 6);
        assert!(cold_plan.payload_bytes() > plan.payload_bytes());
    }
}
