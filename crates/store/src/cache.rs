//! Byte-budgeted LRU cache over a [`ChunkSource`], with protected admission
//! for the hot coarse prefix.
//!
//! Keys are the exact requested ranges. That is effective because the
//! decoder always addresses a given chunk by the same `(offset, len)` pair —
//! the chunk index is immutable — so every re-request of a chunk by another
//! session (or a refinement pass) is a guaranteed key match. The cache sits
//! *above* coalescing in a source stack: hits are served per chunk without
//! touching the backend, and the misses of one batch flow down in a single
//! `read_ranges` call that the coalescer can still merge.
//!
//! **Admission/eviction policy**: ranges registered via
//! [`CachedSource::protect`] — in practice the top-plane chunks every client
//! touches first — are evicted only when no unprotected entry remains over
//! budget. Pure LRU failed exactly there: one client's one-shot sweep
//! through the low planes (a `Full` retrieval reads megabytes it will never
//! re-read) evicted the coarse prefix that every *other* client hits, so
//! fleet hit rates collapsed after each deep retrieval. Protecting the
//! coarse prefix costs the sweep nothing (its chunks were dead on arrival)
//! and keeps the common path warm.
//!
//! Concurrency: the miss fetch happens outside the lock, so two sessions
//! racing on the same cold chunk may both fetch it (last insert wins). That
//! duplicates a read instead of serializing every client behind remote
//! latency — the right trade for a read-only cache.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ipcomp::source::{read_ranges_exact, ByteRange, Bytes, ChunkSource};
use ipcomp::Result;

/// Hit/miss counters of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Ranges served from the cache.
    pub hits: u64,
    /// Ranges fetched from the wrapped source.
    pub misses: u64,
    /// Bytes currently resident.
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Ranges registered as protected (whether or not resident).
    pub protected_ranges: usize,
}

struct CacheEntry {
    bytes: Bytes,
    tick: u64,
}

struct CacheState {
    map: HashMap<ByteRange, CacheEntry>,
    /// Keys shielded from eviction while any unprotected victim exists.
    protected: HashSet<ByteRange>,
    resident: usize,
    tick: u64,
}

/// A [`ChunkSource`] wrapper holding recently requested ranges in an LRU
/// cache with a byte budget.
pub struct CachedSource<S> {
    inner: S,
    budget: usize,
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<S: ChunkSource> CachedSource<S> {
    /// Cache up to `budget_bytes` of range payload.
    pub fn new(inner: S, budget_bytes: usize) -> Self {
        Self {
            inner,
            budget: budget_bytes,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                protected: HashSet::new(),
                resident: 0,
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Register ranges whose entries should survive one-shot sweeps: they
    /// are evicted only when no unprotected entry is left to evict. Callers
    /// should keep the protected set comfortably below the byte budget
    /// (e.g. the top-plane chunks, see `ContainerStore`); protecting more
    /// than the budget degenerates to plain LRU among the protected set.
    pub fn protect(&self, ranges: &[ByteRange]) {
        let mut state = self.state.lock().expect("cache lock");
        state.protected.extend(ranges.iter().copied());
    }

    /// Snapshot of the hit/miss counters and residency.
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            resident_bytes: state.resident,
            entries: state.map.len(),
            protected_ranges: state.protected.len(),
        }
    }

    /// Drop every cached entry (counters keep accumulating, protection
    /// registrations persist).
    pub fn clear(&self) {
        let mut state = self.state.lock().expect("cache lock");
        state.map.clear();
        state.resident = 0;
    }

    /// Evict least-recently-used *unprotected* entries until the budget
    /// holds; protected entries go only when nothing else is left. The scan
    /// is linear in the entry count, which stays small (entries are
    /// chunk-sized, so a budget holds at most budget / chunk_size of them).
    fn evict_to_budget(state: &mut CacheState, budget: usize) {
        while state.resident > budget && !state.map.is_empty() {
            let victim = state
                .map
                .iter()
                .filter(|(k, _)| !state.protected.contains(*k))
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
                .or_else(|| {
                    // Only protected entries remain: fall back to LRU among
                    // them so the byte budget still bounds memory.
                    state
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.tick)
                        .map(|(k, _)| *k)
                })
                .expect("non-empty");
            if let Some(e) = state.map.remove(&victim) {
                state.resident -= e.bytes.len();
            }
        }
    }
}

impl<S: ChunkSource> ChunkSource for CachedSource<S> {
    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn read_ranges(&self, ranges: &[ByteRange]) -> Result<Vec<Bytes>> {
        let mut out: Vec<Option<Bytes>> = vec![None; ranges.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        {
            let mut state = self.state.lock().expect("cache lock");
            state.tick += 1;
            let tick = state.tick;
            for (i, r) in ranges.iter().enumerate() {
                if let Some(e) = state.map.get_mut(r) {
                    e.tick = tick;
                    out[i] = Some(e.bytes.clone());
                } else {
                    miss_idx.push(i);
                }
            }
        }
        self.hits
            .fetch_add((ranges.len() - miss_idx.len()) as u64, Ordering::Relaxed);
        self.misses
            .fetch_add(miss_idx.len() as u64, Ordering::Relaxed);

        if !miss_idx.is_empty() {
            let miss_ranges: Vec<ByteRange> = miss_idx.iter().map(|&i| ranges[i]).collect();
            // Fetch outside the lock; read_ranges_exact guarantees sizes, so
            // cached entries are always exactly their key's length.
            let bufs = read_ranges_exact(&self.inner, &miss_ranges)?;
            let mut state = self.state.lock().expect("cache lock");
            state.tick += 1;
            let tick = state.tick;
            for (&i, buf) in miss_idx.iter().zip(bufs) {
                out[i] = Some(buf.clone());
                let r = ranges[i];
                // Entries larger than the whole budget bypass the cache.
                if r.len <= self.budget && !state.map.contains_key(&r) {
                    // A coalescing layer below returns slices of one large
                    // merged read; storing such a slice would pin the whole
                    // backing buffer while `resident` counts only the slice.
                    // Copy into a right-sized allocation so the byte budget
                    // bounds real memory (one chunk-sized memcpy per miss).
                    let stored = if buf.len() == buf.backing_len() {
                        buf
                    } else {
                        Bytes::from_vec(buf.to_vec())
                    };
                    state.resident += stored.len();
                    state.map.insert(
                        r,
                        CacheEntry {
                            bytes: stored,
                            tick,
                        },
                    );
                }
            }
            let budget = self.budget;
            Self::evict_to_budget(&mut state, budget);
        }
        Ok(out
            .into_iter()
            .map(|b| b.expect("all slots filled"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimProfile, SimulatedObjectStore};
    use ipcomp::source::MemorySource;

    #[test]
    fn repeat_requests_hit_the_cache() {
        let sim = SimulatedObjectStore::new(MemorySource::new(vec![9u8; 4096]), SimProfile::free());
        let cache = CachedSource::new(&sim, 1 << 20);
        let ranges = [ByteRange::new(0, 128), ByteRange::new(1024, 64)];
        let a = cache.read_ranges(&ranges).unwrap();
        let b = cache.read_ranges(&ranges).unwrap();
        assert_eq!(&a[0][..], &b[0][..]);
        assert_eq!(sim.stats().requests, 2, "second round served from cache");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let data: Vec<u8> = (0..=255).cycle().take(4096).map(|v| v as u8).collect();
        let cache = CachedSource::new(MemorySource::new(data.clone()), 256);
        let r1 = ByteRange::new(0, 128);
        let r2 = ByteRange::new(128, 128);
        let r3 = ByteRange::new(256, 128);
        cache.read_ranges(&[r1, r2]).unwrap();
        // Touch r1 so r2 is the LRU victim when r3 arrives.
        cache.read_ranges(&[r1]).unwrap();
        cache.read_ranges(&[r3]).unwrap();
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert!(s.resident_bytes <= 256);
        // r1 still cached, r2 evicted.
        let before = cache.stats().misses;
        cache.read_ranges(&[r1]).unwrap();
        assert_eq!(cache.stats().misses, before);
        cache.read_ranges(&[r2]).unwrap();
        assert_eq!(cache.stats().misses, before + 1);
        // Content stays correct throughout.
        let buf = cache.read_ranges(&[r2]).unwrap();
        assert_eq!(&buf[0][..], &data[128..256]);
    }

    #[test]
    fn entries_from_coalesced_reads_are_right_sized_copies() {
        use crate::coalesce::CoalescingSource;
        let data: Vec<u8> = (0..=255).cycle().take(8192).map(|v| v as u8).collect();
        let inner = CoalescingSource::new(MemorySource::new(data.clone()), 1 << 16);
        let cache = CachedSource::new(inner, 1 << 20);
        // Both ranges merge into one backing read below the cache; the cached
        // entries must not pin that merged buffer.
        let ranges = [ByteRange::new(0, 64), ByteRange::new(4096, 64)];
        let first = cache.read_ranges(&ranges).unwrap();
        assert!(first.iter().any(|b| b.backing_len() > b.len()));
        let again = cache.read_ranges(&ranges).unwrap();
        for (r, b) in ranges.iter().zip(&again) {
            assert_eq!(&b[..], &data[r.offset as usize..r.end() as usize]);
            assert_eq!(b.backing_len(), b.len(), "cached entry pins extra bytes");
        }
        assert_eq!(cache.stats().resident_bytes, 128);
    }

    #[test]
    fn protected_entries_survive_one_shot_sweeps() {
        let data: Vec<u8> = (0..=255).cycle().take(8192).map(|v| v as u8).collect();
        let cache = CachedSource::new(MemorySource::new(data.clone()), 512);
        // The "hot coarse prefix": two chunks everyone re-reads.
        let hot = [ByteRange::new(0, 128), ByteRange::new(128, 128)];
        cache.protect(&hot);
        cache.read_ranges(&hot).unwrap();
        // A one-shot sweep through four times the budget of cold chunks.
        let sweep: Vec<ByteRange> = (0..16)
            .map(|i| ByteRange::new(1024 + i * 128, 128))
            .collect();
        for r in &sweep {
            cache.read_ranges(std::slice::from_ref(r)).unwrap();
        }
        // The hot prefix is still resident: re-reading it adds no misses.
        let misses_before = cache.stats().misses;
        let bufs = cache.read_ranges(&hot).unwrap();
        assert_eq!(
            cache.stats().misses,
            misses_before,
            "hot prefix was evicted"
        );
        for (r, b) in hot.iter().zip(&bufs) {
            assert_eq!(&b[..], &data[r.offset as usize..r.end() as usize]);
        }
        assert_eq!(cache.stats().protected_ranges, 2);
        assert!(cache.stats().resident_bytes <= 512);
    }

    #[test]
    fn protected_entries_still_bounded_by_budget() {
        // Protecting more than the budget must not leak memory: LRU applies
        // within the protected set once nothing unprotected remains.
        let cache = CachedSource::new(MemorySource::new(vec![3u8; 4096]), 256);
        let ranges: Vec<ByteRange> = (0..8).map(|i| ByteRange::new(i * 128, 128)).collect();
        cache.protect(&ranges);
        for r in &ranges {
            cache.read_ranges(std::slice::from_ref(r)).unwrap();
        }
        let s = cache.stats();
        assert!(
            s.resident_bytes <= 256,
            "budget must hold: {}",
            s.resident_bytes
        );
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn oversized_entries_bypass_the_cache() {
        let cache = CachedSource::new(MemorySource::new(vec![1u8; 4096]), 64);
        cache.read_ranges(&[ByteRange::new(0, 1024)]).unwrap();
        assert_eq!(cache.stats().entries, 0);
    }
}
